//! # geospan
//!
//! A production-quality reproduction of *"Geometric Spanners for Wireless
//! Ad Hoc Networks"* (Yu Wang, Xiang-Yang Li; ICDCS 2002): planar,
//! bounded-degree, hop- and length-spanner backbones for unit-disk-graph
//! wireless networks, built by localized distributed algorithms in which
//! every node sends only a constant number of messages.
//!
//! This facade crate re-exports the public API of the workspace:
//!
//! * [`geometry`] — robust predicates and Delaunay triangulations,
//! * [`graph`] — unit disk graphs, shortest paths, stretch factors,
//! * [`sim`] — the deterministic message-passing simulator,
//! * [`topology`] — RNG / Gabriel / Yao / localized-Delaunay baselines,
//! * [`cds`] — clustering and connector election (the CDS backbone),
//! * [`core`] — the full `LDel(ICDS)` pipeline and routing,
//! * [`traffic`] — the discrete-event packet traffic engine.
//!
//! # Quickstart
//!
//! ```
//! use geospan::core::{BackboneBuilder, BackboneConfig};
//! use geospan::graph::gen::{uniform_points, UnitDiskBuilder};
//! use geospan::graph::planarity::is_plane_embedding;
//!
//! let pts = uniform_points(60, 200.0, 7);
//! let udg = UnitDiskBuilder::new(60.0).build(&pts);
//! if udg.is_connected() {
//!     let backbone = BackboneBuilder::new(BackboneConfig::new(60.0))
//!         .build(&udg)
//!         .expect("a valid UDG always yields a backbone");
//!     assert!(is_plane_embedding(backbone.ldel_icds()));
//! }
//! ```

pub use geospan_cds as cds;
pub use geospan_core as core;
pub use geospan_geometry as geometry;
pub use geospan_graph as graph;
pub use geospan_sim as sim;
pub use geospan_topology as topology;
pub use geospan_traffic as traffic;
