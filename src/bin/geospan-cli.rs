//! `geospan-cli` — drive the spanner pipeline from the command line.
//!
//! ```text
//! geospan-cli generate --n 100 --side 200 --radius 60 --seed 1 --out nodes.csv
//! geospan-cli build    --nodes nodes.csv --radius 60 [--distributed]
//! geospan-cli render   --nodes nodes.csv --radius 60 --topology ldel-icds --out topo.svg
//! geospan-cli route    --nodes nodes.csv --radius 60 --from 0 --to 42
//! geospan-cli traffic  --nodes nodes.csv --radius 60 --rate 0.2 --duration 1000 --seed 1
//! ```
//!
//! Node files are CSV with one `x,y` pair per line.

use std::process::ExitCode;

use geospan::cds::Role;
use geospan::core::routing::backbone_route;
use geospan::core::{verify, BackboneBuilder, BackboneConfig};
use geospan::graph::gen::UnitDiskBuilder;
use geospan::graph::svg::{render_svg, NodeRole, SvgOptions};
use geospan::graph::{Graph, Point};
use geospan::sim::{ChurnMix, ChurnPlan, FaultPlan, OverloadConfig, ReliabilityConfig};
use geospan::topology::{
    gabriel, ldel, relative_neighborhood, restricted_delaunay, theta, yao, yao_sink,
};
use geospan::traffic::{
    run, AdmissionPolicy, ChurnEngine, Discipline, Forwarding, RepairStrategy, TrafficConfig,
    Workload,
};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let flags = match Flags::parse(&args[1..]) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match command.as_str() {
        "generate" => cmd_generate(&flags),
        "build" => cmd_build(&flags),
        "render" => cmd_render(&flags),
        "route" => cmd_route(&flags),
        "traffic" => cmd_traffic(&flags),
        other => Err(format!("unknown command `{other}`")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
usage:
  geospan-cli generate --n N --side S --radius R [--seed K] [--out FILE]
  geospan-cli build    --nodes FILE --radius R [--distributed]
  geospan-cli render   --nodes FILE --radius R [--topology NAME] --out FILE.svg
  geospan-cli route    --nodes FILE --radius R --from A --to B
  geospan-cli traffic  (--nodes FILE | --n N --side S) --radius R
                       [--policy backbone|gpsr|greedy] [--workload uniform|hotspot|bursty]
                       [--rate P] [--duration T] [--seed K] [--capacity Q] [--service T]
                       [--loss P] [--sink I] [--bias P] [--burst B]
                       [--discipline fifo|priority|drr] [--quantum N]
                       [--retries N] [--ack-timeout T]
                       [--high-watermark N [--low-watermark N] [--backoff-factor F]]
                       [--admit-ticks T [--admit-burst B]] [--shards N]
                       [--churn-rate P [--churn-seed K]]
                       [--out FILE.csv]

topologies:  udg, rng, gabriel, yao, theta, yao-sink, rdg, ldel, cds, ldel-icds,
             ldel-icds-prime
policies:    backbone (dominating-set routing over LDel(ICDS)),
             gpsr (over LDel(ICDS')), greedy (over the UDG)
disciplines: fifo, priority (by remaining distance), drr (per-destination
             deficit round robin, --quantum packets per visit)
retransmit:  --retries N > 0 enables per-hop link-layer retransmit with
             --ack-timeout service times of backoff
overload:    --high-watermark enables congestion-adaptive retransmit
             (shed retries above the high watermark, inflate backoff
             by --backoff-factor until the queue drains to
             --low-watermark); --admit-ticks enables token-bucket
             source admission (one packet per T ticks per source,
             bursts up to --admit-burst)
sharding:    --shards N runs the engine spatially sharded on up to N
             cores; output is bit-identical at every shard count
churn:       --churn-rate P schedules ~P membership/mobility events per
             tick (joins, leaves, moves in equal proportion, seeded by
             --churn-seed) and maintains the backbone with the paper's
             localized 2-hop repair while packets are in flight;
             requires --policy backbone";

/// Minimal flag map: `--key value` pairs plus boolean `--distributed`.
struct Flags {
    kv: std::collections::HashMap<String, String>,
    distributed: bool,
}

impl Flags {
    fn parse(args: &[String]) -> Result<Self, String> {
        let mut kv = std::collections::HashMap::new();
        let mut distributed = false;
        let mut it = args.iter();
        while let Some(a) = it.next() {
            let Some(key) = a.strip_prefix("--") else {
                return Err(format!("unexpected argument `{a}`"));
            };
            if key == "distributed" {
                distributed = true;
                continue;
            }
            let value = it
                .next()
                .ok_or_else(|| format!("missing value for --{key}"))?;
            kv.insert(key.to_string(), value.clone());
        }
        Ok(Flags { kv, distributed })
    }

    fn get<T: std::str::FromStr>(&self, key: &str) -> Result<T, String> {
        self.kv
            .get(key)
            .ok_or_else(|| format!("missing --{key}"))?
            .parse()
            .map_err(|_| format!("invalid value for --{key}"))
    }

    fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.kv.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("invalid value for --{key}")),
        }
    }
}

fn load_nodes(flags: &Flags) -> Result<Vec<Point>, String> {
    let path: String = flags.get("nodes")?;
    let text = std::fs::read_to_string(&path).map_err(|e| format!("reading {path}: {e}"))?;
    let mut pts = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with("x,") {
            continue;
        }
        let (x, y) = line
            .split_once(',')
            .ok_or_else(|| format!("{path}:{}: expected `x,y`", lineno + 1))?;
        let parse = |s: &str| {
            s.trim()
                .parse::<f64>()
                .map_err(|_| format!("{path}:{}: bad coordinate `{s}`", lineno + 1))
        };
        pts.push(Point::new(parse(x)?, parse(y)?));
    }
    if pts.is_empty() {
        return Err(format!("{path}: no nodes"));
    }
    Ok(pts)
}

fn udg_of(flags: &Flags, pts: &[Point]) -> Result<(Graph, f64), String> {
    let radius: f64 = flags.get("radius")?;
    if !(radius > 0.0 && radius.is_finite()) {
        return Err("radius must be positive".into());
    }
    Ok((UnitDiskBuilder::new(radius).build(pts), radius))
}

fn cmd_generate(flags: &Flags) -> Result<(), String> {
    let n: usize = flags.get("n")?;
    let side: f64 = flags.get("side")?;
    let radius: f64 = flags.get("radius")?;
    let seed: u64 = flags.get_or("seed", 1)?;
    let (pts, udg, used) = geospan::graph::gen::connected_unit_disk(n, side, radius, seed);
    let mut out = String::from("x,y\n");
    for p in &pts {
        out.push_str(&format!("{},{}\n", p.x, p.y));
    }
    match flags.kv.get("out") {
        Some(path) => {
            std::fs::write(path, out).map_err(|e| format!("writing {path}: {e}"))?;
            eprintln!(
                "wrote {n} nodes to {path} (seed {used}, {} links)",
                udg.edge_count()
            );
        }
        None => print!("{out}"),
    }
    Ok(())
}

fn cmd_build(flags: &Flags) -> Result<(), String> {
    let pts = load_nodes(flags)?;
    let (udg, radius) = udg_of(flags, &pts)?;
    let mut config = BackboneConfig::new(radius);
    if flags.distributed {
        config = config.distributed();
    }
    let backbone = BackboneBuilder::new(config)
        .build(&udg)
        .map_err(|e| e.to_string())?;
    println!("{}", verify(&backbone, &udg, radius));
    if let Some(stats) = backbone.stats() {
        let total = stats.total_per_node();
        println!(
            "  messages/node:   max {}, avg {:.1}",
            total.iter().max().unwrap_or(&0),
            total.iter().sum::<usize>() as f64 / total.len().max(1) as f64
        );
        for (kind, count) in stats.cds.per_kind() {
            println!("    {kind:<14} {count}");
        }
        for (kind, count) in stats.ldel.per_kind() {
            println!("    {kind:<14} {count}");
        }
    }
    Ok(())
}

fn cmd_render(flags: &Flags) -> Result<(), String> {
    let pts = load_nodes(flags)?;
    let (udg, radius) = udg_of(flags, &pts)?;
    let topology: String = flags.get_or("topology", "ldel-icds".to_string())?;
    let backbone = BackboneBuilder::new(BackboneConfig::new(radius))
        .build(&udg)
        .map_err(|e| e.to_string())?;
    let graph = match topology.as_str() {
        "udg" => udg.clone(),
        "rng" => relative_neighborhood(&udg),
        "gabriel" => gabriel(&udg),
        "yao" => yao(&udg, 6),
        "theta" => theta(&udg, 6),
        "yao-sink" => yao_sink(&udg, 6),
        "rdg" => restricted_delaunay(&udg),
        "ldel" => ldel::planarized(&udg).graph,
        "cds" => backbone.cds_graphs().cds.clone(),
        "ldel-icds" => backbone.ldel_icds().clone(),
        "ldel-icds-prime" => backbone.ldel_icds_prime().clone(),
        other => return Err(format!("unknown topology `{other}`")),
    };
    let roles: Vec<NodeRole> = backbone
        .roles()
        .iter()
        .map(|r| match r {
            Role::Dominator => NodeRole::Dominator,
            Role::Connector => NodeRole::Connector,
            Role::Dominatee => NodeRole::Dominatee,
        })
        .collect();
    let opts = SvgOptions {
        title: format!("{topology} — {} edges", graph.edge_count()),
        ..SvgOptions::default()
    };
    let svg = render_svg(&graph, &roles, &opts);
    let path: String = flags.get("out")?;
    std::fs::write(&path, svg).map_err(|e| format!("writing {path}: {e}"))?;
    eprintln!("wrote {path} ({} edges)", graph.edge_count());
    Ok(())
}

fn cmd_route(flags: &Flags) -> Result<(), String> {
    let pts = load_nodes(flags)?;
    let (udg, radius) = udg_of(flags, &pts)?;
    let from: usize = flags.get("from")?;
    let to: usize = flags.get("to")?;
    let n = udg.node_count();
    if from >= n || to >= n {
        return Err(format!("endpoints must be < {n}"));
    }
    let backbone = BackboneBuilder::new(BackboneConfig::new(radius))
        .build(&udg)
        .map_err(|e| e.to_string())?;
    let route = backbone_route(&backbone, &udg, from, to, 100 * n);
    if route.delivered() {
        println!(
            "delivered in {} hops, length {:.2}",
            route.hops(),
            route.length(&udg)
        );
        println!("path: {:?}", route.path);
        Ok(())
    } else {
        Err(format!(
            "routing failed: {:?} (path so far {:?})",
            route.outcome, route.path
        ))
    }
}

fn cmd_traffic(flags: &Flags) -> Result<(), String> {
    // Deployment: an explicit node file, or a generated connected field.
    let pts = if flags.kv.contains_key("nodes") {
        load_nodes(flags)?
    } else {
        let n: usize = flags.get("n")?;
        let side: f64 = flags.get("side")?;
        let radius: f64 = flags.get("radius")?;
        let seed: u64 = flags.get_or("seed", 1)?;
        geospan::graph::gen::connected_unit_disk(n, side, radius, seed).0
    };
    let (udg, radius) = udg_of(flags, &pts)?;
    let n = udg.node_count();
    if n < 2 {
        return Err("traffic needs at least two nodes".into());
    }

    let seed: u64 = flags.get_or("seed", 1)?;
    let rate: f64 = flags.get_or("rate", 0.2)?;
    let duration: u64 = flags.get_or("duration", 1_000)?;
    if !(rate > 0.0 && rate.is_finite()) {
        return Err("rate must be positive".into());
    }
    let workload_name: String = flags.get_or("workload", "uniform".to_string())?;
    let workload = match workload_name.as_str() {
        "uniform" => Workload::uniform(rate, duration),
        "hotspot" => {
            let sink: usize = flags.get_or("sink", 0)?;
            if sink >= n {
                return Err(format!("sink must be < {n}"));
            }
            Workload::hotspot(sink, flags.get_or("bias", 0.8)?, rate, duration)
        }
        "bursty" => Workload::bursty(flags.get_or("burst", 8)?, rate, duration),
        other => return Err(format!("unknown workload `{other}`")),
    };
    let policy: String = flags.get_or("policy", "backbone".to_string())?;
    let churn_rate: f64 = flags.get_or("churn-rate", 0.0)?;
    if !(churn_rate >= 0.0 && churn_rate.is_finite()) {
        return Err("churn-rate must be non-negative".into());
    }
    if churn_rate > 0.0 && policy != "backbone" {
        return Err("churn maintenance requires --policy backbone".into());
    }

    let loss: f64 = flags.get_or("loss", 0.0)?;
    let faults = if loss > 0.0 {
        FaultPlan::new(seed ^ 0x7a_f1c0).with_loss(loss)
    } else {
        FaultPlan::none()
    };
    let discipline_name: String = flags.get_or("discipline", "fifo".to_string())?;
    let discipline = match Discipline::parse(&discipline_name) {
        Some(Discipline::Drr { .. }) => Discipline::Drr {
            quantum: flags.get_or("quantum", 1)?,
        },
        Some(d) => d,
        None => return Err(format!("unknown discipline `{discipline_name}`")),
    };
    let retries: u32 = flags.get_or("retries", 0)?;
    let reliability = (retries > 0).then_some(ReliabilityConfig {
        max_retries: retries,
        ack_timeout: flags.get_or("ack-timeout", 3)?,
    });
    let overload = if flags.kv.contains_key("high-watermark") {
        let high: usize = flags.get("high-watermark")?;
        Some(OverloadConfig {
            high_watermark: high,
            // Mirror OverloadConfig::for_capacity's 3:1 hysteresis gap.
            low_watermark: flags.get_or("low-watermark", high / 3)?,
            backoff_factor: flags.get_or("backoff-factor", 4)?,
        })
    } else {
        None
    };
    let admission = if flags.kv.contains_key("admit-ticks") {
        AdmissionPolicy::TokenBucket {
            ticks_per_token: flags.get("admit-ticks")?,
            burst: flags.get_or("admit-burst", 1)?,
        }
    } else {
        AdmissionPolicy::Open
    };
    let cfg = TrafficConfig {
        queue_capacity: flags.get_or("capacity", 64)?,
        service_time: flags.get_or("service", 1)?,
        max_hops: (50 * n) as u32,
        discipline,
        reliability,
        overload,
        admission,
        shards: flags.get_or("shards", 1)?,
        ..TrafficConfig::default()
    };

    let (outcome, churn) = if churn_rate > 0.0 {
        // Churn events land in [1, duration]; joiners enter inside the
        // deployment square (the generated field's --side, or the node
        // file's bounding box).
        let side: f64 =
            flags.get_or("side", pts.iter().fold(radius, |m, p| m.max(p.x).max(p.y)))?;
        let churn_seed: u64 = flags.get_or("churn-seed", seed ^ 0xc4u64)?;
        let events = ((churn_rate * duration as f64).round() as usize).max(1);
        let plan = ChurnPlan::generate(churn_seed, n, side, events, duration, ChurnMix::balanced());
        let arrivals = workload.generate(plan.universe(), seed);
        let out = ChurnEngine::new(cfg.shards)
            .run(
                &pts,
                radius,
                &plan,
                &arrivals,
                &faults,
                &cfg,
                RepairStrategy::LocalRepair,
            )
            .map_err(|e| e.to_string())?;
        (out.traffic, Some(out.churn))
    } else {
        let arrivals = workload.generate(n, seed);
        let backbone = BackboneBuilder::new(BackboneConfig::new(radius))
            .build(&udg)
            .map_err(|e| e.to_string())?;
        let forwarding = match policy.as_str() {
            "backbone" => Forwarding::Backbone {
                backbone: &backbone,
                udg: &udg,
            },
            "gpsr" => Forwarding::Gpsr(backbone.ldel_icds_prime()),
            "greedy" => Forwarding::Greedy(&udg),
            other => return Err(format!("unknown policy `{other}`")),
        };
        (run(&forwarding, &udg, &arrivals, &faults, &cfg), None)
    };
    let report = &outcome.report;
    println!(
        "{workload_name} workload over `{policy}` ({n} nodes, rate {rate}, {duration} ticks, \
         seed {seed}, {} queue{})",
        discipline.label(),
        match cfg.reliability {
            Some(rel) => format!(", retransmit x{}", rel.max_retries),
            None => String::new(),
        }
    );
    print!("{}", report.format());
    if let Some(c) = &churn {
        println!(
            "churn: {} joins, {} leaves, {} moves; {} kept, {} local repairs, {} rebuilds; \
             repair cost {}, {} stale ticks, worst window {:.1}% delivery",
            c.joins,
            c.leaves,
            c.moves,
            c.kept,
            c.local_repairs,
            c.full_rebuilds,
            c.repair_cost,
            c.staleness_ticks,
            100.0
                * c.windows
                    .iter()
                    .map(|w| w.delivery_ratio())
                    .fold(1.0, f64::min)
        );
    }
    if let Some(path) = flags.kv.get("out") {
        let (repair_cost, staleness) = churn
            .as_ref()
            .map_or((0, 0), |c| (c.repair_cost, c.staleness_ticks));
        let csv = format!(
            "policy,workload,discipline,retx,rate,duration,seed,offered,delivered,\
             delivery_ratio,drop_stuck,drop_queue,drop_loss,drop_crash,drop_hop_limit,\
             drop_retry_shed,refused,retransmissions,latency_p50,latency_p99,latency_mean,\
             hop_stretch_avg,length_stretch_avg,queue_peak_max,drop_departed,churn_rate,\
             repair_cost,staleness_ticks\n\
             {policy},{workload_name},{},{},{rate},{duration},{seed},{},{},{:.6},{},{},{},{},{},{},{},{},{},{},{:.4},{:.4},{:.4},{},{},{churn_rate},{repair_cost},{staleness}\n",
            discipline.label(),
            if cfg.reliability.is_some() { "on" } else { "off" },
            report.offered,
            report.delivered,
            report.delivery_ratio(),
            report.drops.stuck,
            report.drops.queue_full,
            report.drops.link_loss,
            report.drops.node_crash,
            report.drops.hop_limit,
            report.drops.retry_shed,
            report.refused,
            report.retransmissions,
            report.latency_p50,
            report.latency_p99,
            report.latency_mean,
            report.hop_stretch_avg,
            report.length_stretch_avg,
            report.queue_peak_max,
            report.drops.node_departed
        );
        std::fs::write(path, csv).map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("wrote {path}");
    }
    Ok(())
}
