//! Larger-scale structural checks: the pipeline at the paper's n = 500
//! configuration and beyond (structure only; the all-pairs stretch
//! measurements live in the release-mode bench binaries).

use geospan::core::{BackboneBuilder, BackboneConfig};
use geospan::graph::gen::connected_unit_disk;
use geospan::graph::planarity::is_plane_embedding;
use geospan::graph::stats::{degree_stats, degree_stats_over};

#[test]
fn five_hundred_nodes_dense() {
    let (_pts, udg, _s) = connected_unit_disk(500, 200.0, 60.0, 5);
    assert!(degree_stats(&udg).avg > 50.0, "dense regime expected");
    let b = BackboneBuilder::new(BackboneConfig::new(60.0))
        .build(&udg)
        .unwrap();
    assert!(is_plane_embedding(b.ldel_icds()));
    assert!(b.ldel_icds_prime().is_connected());
    // The density-independence claim, at 5x Table I's density: the
    // backbone degree stays in the usual band.
    let deg = degree_stats_over(b.ldel_icds(), b.backbone_nodes());
    assert!(deg.max <= 16, "backbone max degree {}", deg.max);
    // Sparse: O(n) edges despite ~14000 UDG links.
    assert!(b.ldel_icds_prime().edge_count() <= 6 * udg.node_count());
    assert!(udg.edge_count() > 10_000);
}

#[test]
fn five_hundred_nodes_sparse() {
    let (_pts, udg, _s) = connected_unit_disk(500, 200.0, 20.0, 11);
    let b = BackboneBuilder::new(BackboneConfig::new(20.0))
        .build(&udg)
        .unwrap();
    assert!(is_plane_embedding(b.ldel_icds()));
    assert!(b.ldel_icds_prime().is_connected());
    let deg = degree_stats_over(b.ldel_icds(), b.backbone_nodes());
    assert!(deg.max <= 16, "backbone max degree {}", deg.max);
}

#[test]
fn thousand_node_distributed_build() {
    let (_pts, udg, _s) = connected_unit_disk(1000, 400.0, 60.0, 3);
    let b = BackboneBuilder::new(BackboneConfig::new(60.0).distributed())
        .build(&udg)
        .unwrap();
    assert!(is_plane_embedding(b.ldel_icds()));
    assert!(b.ldel_icds_prime().is_connected());
    // Lemma 3 at scale: constant per-node message cost.
    let stats = b.stats().unwrap();
    let max = stats.total_per_node().into_iter().max().unwrap();
    assert!(max <= 150, "per-node message cost {max} at n = 1000");
}
