//! Cross-crate property tests for the fault-injection layer: the
//! backbone's guarantees degrade gracefully — never catastrophically —
//! under seeded radio faults.
//!
//! The two contracts under test:
//!
//! 1. **Graceful degradation** — for any seeded fault plan with loss
//!    ≤ 20% and at most two crashes during construction, the surviving
//!    backbone is planar and spans every unit-disk component of the
//!    surviving nodes (the crash-timing range 0..10 always lands inside
//!    the election phases, exercising the self-healing recovery).
//! 2. **Zero-fault bit-identity** — a fault plan that injects nothing
//!    leaves the construction bit-identical to a fault-free run: same
//!    graphs, same roles, same message counts.

use geospan::core::{BackboneBuilder, BackboneConfig};
use geospan::graph::gen::{uniform_points, UnitDiskBuilder};
use geospan::graph::paths::bfs_hops;
use geospan::graph::planarity::is_plane_embedding;
use geospan::graph::Graph;
use geospan::sim::{FaultPlan, ReliabilityConfig};
use proptest::prelude::*;

/// Random deployment plus a fault plan from the guaranteed envelope:
/// loss ≤ 0.2 and at most two crashes whose rounds (0..10) land inside
/// the election phases. Connectivity of the deployment is *not*
/// required — spanning is asserted per surviving component.
fn faulty_deployment() -> impl Strategy<Value = (Graph, f64, FaultPlan)> {
    (14usize..40, 30.0f64..60.0, any::<u64>()).prop_flat_map(|(n, radius, seed)| {
        let crashes = proptest::collection::vec((0usize..n, 0usize..10), 0..=2);
        (any::<u64>(), 0.0f64..=0.2, crashes).prop_map(move |(fault_seed, loss, crashes)| {
            let pts = uniform_points(n, 120.0, seed);
            let udg = UnitDiskBuilder::new(radius).build(&pts);
            let mut plan = FaultPlan::new(fault_seed).with_loss(loss);
            for (node, round) in crashes {
                plan = plan.with_crash(node, round);
            }
            (udg, radius, plan)
        })
    })
}

/// A deep retry budget: loss ≤ 0.2 with nine delivery attempts makes an
/// undelivered message a ~`0.2^9` event, so the protocols converge to the
/// fault-free structure on the survivors.
fn reliability() -> ReliabilityConfig {
    ReliabilityConfig {
        max_retries: 8,
        ack_timeout: 2,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn faulty_backbone_is_planar_and_spans_survivors(
        (udg, radius, plan) in faulty_deployment(),
    ) {
        let config = BackboneConfig::new(radius)
            .distributed()
            .with_faults(plan.clone())
            .with_reliability(reliability());
        let b = BackboneBuilder::new(config)
            .build(&udg)
            .expect("faulty construction converges within its round budget");

        // Planarity survives any in-envelope fault plan.
        prop_assert!(is_plane_embedding(b.ldel_icds()));

        // Crash accounting matches the plan (a node crashing at round r
        // is dead for the run; zero plans report nothing).
        let report = b.fault_report().cloned().unwrap_or_default();
        let alive = |v: usize| !report.crashed.contains(&v);
        if !plan.is_zero() {
            for (node, _round) in plan.crashes() {
                prop_assert!(!alive(node), "crashed node {node} missing from report");
            }
        }

        // Spanning: within every unit-disk component of the survivors,
        // the surviving routing graph connects all members.
        let udg_alive = udg.filter_edges(|u, v| alive(u) && alive(v));
        let routing = b.ldel_icds_prime().filter_edges(|u, v| alive(u) && alive(v));
        for comp in udg_alive.components() {
            let members: Vec<usize> = comp.iter().copied().filter(|&v| alive(v)).collect();
            if members.len() < 2 {
                continue;
            }
            let hops = bfs_hops(&routing, members[0]);
            for &m in &members {
                prop_assert!(
                    hops[m].is_some(),
                    "survivor {m} disconnected from its component (plan {plan:?})"
                );
            }
        }
    }

    #[test]
    fn zero_fault_plan_is_bit_identical(
        (udg, radius, _plan) in faulty_deployment(),
        seed in any::<u64>(),
    ) {
        let plain = BackboneBuilder::new(BackboneConfig::new(radius).distributed())
            .build(&udg)
            .unwrap();
        // A seeded but empty plan must not even perturb message counts:
        // the fault machinery is never consulted on the zero path.
        let config = BackboneConfig::new(radius)
            .distributed()
            .with_faults(FaultPlan::new(seed))
            .with_reliability(reliability());
        let faulty = BackboneBuilder::new(config).build(&udg).unwrap();

        prop_assert_eq!(faulty.roles(), plain.roles());
        prop_assert_eq!(
            faulty.ldel_icds().edges().collect::<Vec<_>>(),
            plain.ldel_icds().edges().collect::<Vec<_>>()
        );
        prop_assert_eq!(
            faulty.ldel_icds_prime().edges().collect::<Vec<_>>(),
            plain.ldel_icds_prime().edges().collect::<Vec<_>>()
        );
        let (fs, ps) = (faulty.stats().unwrap(), plain.stats().unwrap());
        prop_assert_eq!(fs.cds.total_sent(), ps.cds.total_sent());
        prop_assert_eq!(fs.ldel.total_sent(), ps.ldel.total_sent());
        prop_assert_eq!(fs.cds.sent_per_node(), ps.cds.sent_per_node());
        prop_assert_eq!(fs.ldel.sent_per_node(), ps.ldel.sent_per_node());
        prop_assert!(faulty.fault_report().is_none());
    }
}
