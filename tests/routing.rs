//! Routing integration: delivery guarantees and route quality over the
//! constructed topologies.

use geospan::core::routing::{backbone_route, gpsr_route, greedy_route, RouteOutcome};
use geospan::core::{BackboneBuilder, BackboneConfig};
use geospan::graph::gen::connected_unit_disk;
use geospan::graph::paths::bfs_hops;
use geospan::topology::gabriel;

#[test]
fn backbone_routing_delivers_all_pairs() {
    for seed in 0..4 {
        let (_pts, udg, _s) = connected_unit_disk(70, 150.0, 45.0, seed * 71 + 1);
        let b = BackboneBuilder::new(BackboneConfig::new(45.0))
            .build(&udg)
            .unwrap();
        let n = udg.node_count();
        for s in 0..n {
            for t in (s + 1..n).step_by(13) {
                let r = backbone_route(&b, &udg, s, t, 100 * n);
                assert!(r.delivered(), "seed {seed}: {s} -> {t}: {:?}", r.outcome);
                assert_eq!(r.path[0], s);
                assert_eq!(*r.path.last().unwrap(), t);
            }
        }
    }
}

#[test]
fn gpsr_on_planar_backbone_delivers() {
    for seed in 0..4 {
        let (_pts, udg, _s) = connected_unit_disk(70, 150.0, 45.0, seed * 73 + 2);
        let b = BackboneBuilder::new(BackboneConfig::new(45.0))
            .build(&udg)
            .unwrap();
        let nodes = b.backbone_nodes();
        let n = udg.node_count();
        for (i, &s) in nodes.iter().enumerate() {
            for &t in nodes.iter().skip(i + 1).step_by(3) {
                let r = gpsr_route(b.ldel_icds(), s, t, 100 * n);
                assert!(r.delivered(), "seed {seed}: backbone {s} -> {t}");
            }
        }
    }
}

#[test]
fn backbone_routes_are_competitive_with_shortest_paths() {
    let (_pts, udg, _s) = connected_unit_disk(80, 150.0, 45.0, 99);
    let b = BackboneBuilder::new(BackboneConfig::new(45.0))
        .build(&udg)
        .unwrap();
    let n = udg.node_count();
    let mut ratio_sum = 0.0;
    let mut count = 0;
    for s in (0..n).step_by(5) {
        let opt = bfs_hops(&udg, s);
        for t in (0..n).step_by(7) {
            if s == t {
                continue;
            }
            let r = backbone_route(&b, &udg, s, t, 100 * n);
            assert!(r.delivered());
            let o = opt[t].unwrap() as f64;
            ratio_sum += r.hops() as f64 / o;
            count += 1;
        }
    }
    let avg_ratio = ratio_sum / count as f64;
    // Empirically ~1.5–2.2 on these densities; generous cap to avoid
    // flakiness while still catching regressions to flooding-like paths.
    assert!(avg_ratio < 3.0, "average hop inflation {avg_ratio}");
}

#[test]
fn greedy_beats_nothing_on_gabriel_but_gpsr_recovers() {
    // Gabriel graphs have voids; greedy alone must fail somewhere, GPSR
    // never does.
    let mut greedy_failures = 0;
    for seed in 0..4 {
        let (_pts, udg, _s) = connected_unit_disk(70, 170.0, 40.0, seed * 79 + 3);
        let gg = gabriel(&udg);
        let n = gg.node_count();
        for s in (0..n).step_by(3) {
            for t in (1..n).step_by(6) {
                if s == t {
                    continue;
                }
                if !greedy_route(&gg, s, t, 10 * n).delivered() {
                    greedy_failures += 1;
                }
                assert!(
                    gpsr_route(&gg, s, t, 100 * n).delivered(),
                    "seed {seed} {s}->{t}"
                );
            }
        }
    }
    assert!(
        greedy_failures > 0,
        "expected greedy to hit at least one void"
    );
}

#[test]
fn routing_around_a_ring_void() {
    // Nodes on a ring: every cross-ring route must detour around the
    // central hole — greedy fails constantly, the planar backbone plus
    // GPSR never does.
    use geospan::graph::gen::{ring_points, UnitDiskBuilder};
    for seed in 0..3 {
        let pts = ring_points(80, 60.0, 5.0, seed * 89 + 1);
        let udg = UnitDiskBuilder::new(20.0).build(&pts);
        if !udg.is_connected() {
            continue;
        }
        let b = BackboneBuilder::new(BackboneConfig::new(20.0))
            .build(&udg)
            .unwrap();
        let n = udg.node_count();
        let mut greedy_failures = 0;
        for s in (0..n).step_by(7) {
            for t in (1..n).step_by(11) {
                if s == t {
                    continue;
                }
                if !greedy_route(&udg, s, t, 10 * n).delivered() {
                    greedy_failures += 1;
                }
                let r = backbone_route(&b, &udg, s, t, 200 * n);
                assert!(r.delivered(), "seed {seed}: {s} -> {t} ({:?})", r.outcome);
            }
        }
        assert!(
            greedy_failures > 0,
            "seed {seed}: the void should defeat greedy"
        );
    }
}

#[test]
fn hop_limit_is_respected() {
    let (_pts, udg, _s) = connected_unit_disk(50, 150.0, 40.0, 11);
    let b = BackboneBuilder::new(BackboneConfig::new(40.0))
        .build(&udg)
        .unwrap();
    let r = backbone_route(&b, &udg, 0, 49, 1);
    if !r.delivered() {
        assert!(matches!(
            r.outcome,
            RouteOutcome::HopLimit | RouteOutcome::Stuck
        ));
        assert!(r.path.len() <= 4); // entry hop + limited inner route
    }
}
