//! One test per formal claim in the paper, quoted and checked.
//!
//! These tests are the executable version of the paper's Section III: for
//! each lemma or stated property, the corresponding assertion runs over
//! randomized deployments. (Constant-factor *bounds* are checked against
//! the paper's own constants where it gives them, and against generous
//! empirical bands where it proves only existence.)

use geospan::cds::{
    build_cds, cluster, dominators_within_hops, lemma2_bound, protocol, ClusterRank,
};
use geospan::core::{BackboneBuilder, BackboneConfig};
use geospan::graph::gen::connected_unit_disk;
use geospan::graph::paths::bfs_hops;
use geospan::graph::planarity::is_plane_embedding;
use geospan::graph::stats::degree_stats_over;
use geospan::graph::stretch::{stretch_factors, StretchOptions};

const R: f64 = 45.0;

fn udg(seed: u64) -> geospan::graph::Graph {
    connected_unit_disk(80, 160.0, R, seed).1
}

/// Lemma 1: "For every dominatee node, it can be connected to at most 5
/// dominator nodes in unit disk graph model."
#[test]
fn lemma_1_five_dominators() {
    for seed in 0..8 {
        let g = udg(seed * 101);
        for rank in [ClusterRank::LowestId, ClusterRank::HighestDegree] {
            let c = cluster(&g, &rank);
            for v in 0..g.node_count() {
                assert!(c.dominators_of[v].len() <= 5, "seed {seed}, node {v}");
            }
        }
    }
}

/// Lemma 2: "For every node, the number of dominators inside the disk
/// centered at it with radius k units is bounded by a constant" — with
/// the paper's own packing constant (2k+1)² as the bound.
#[test]
fn lemma_2_bounded_dominators_within_k_hops() {
    for seed in 0..5 {
        let g = udg(seed * 103 + 1);
        let c = cluster(&g, &ClusterRank::LowestId);
        for k in 1..=3 {
            for v in 0..g.node_count() {
                assert!(
                    dominators_within_hops(&g, &c, v, k) <= lemma2_bound(k),
                    "seed {seed}: node {v}, k = {k}"
                );
            }
        }
    }
}

/// Lemma 3: "Each node has to send out at most a constant number of
/// messages in forming a connected dominating set." Measured on the
/// simulator; the bound must not grow between n = 40 and n = 160.
#[test]
fn lemma_3_constant_messages() {
    let (_p, g_small, _s) = connected_unit_disk(40, 160.0, R, 7);
    let (_p, g_large, _s) = connected_unit_disk(160, 160.0, R, 8);
    let (_cds, stats_small) = protocol::run_cds(&g_small, &ClusterRank::LowestId).unwrap();
    let (_cds, stats_large) = protocol::run_cds(&g_large, &ClusterRank::LowestId).unwrap();
    // 4x the nodes: the per-node max stays in the same band.
    assert!(
        stats_large.max_sent() <= 2 * stats_small.max_sent().max(30),
        "per-node cost grew: {} -> {}",
        stats_small.max_sent(),
        stats_large.max_sent()
    );
}

/// Lemma 4: "The node degree of CDS is bounded by a constant."
#[test]
fn lemma_4_cds_degree() {
    for seed in 0..6 {
        let g = udg(seed * 107 + 2);
        let cds = build_cds(&g, &ClusterRank::LowestId);
        let stats = degree_stats_over(&cds.cds, cds.backbone_nodes());
        assert!(stats.max <= 24, "seed {seed}: CDS degree {}", stats.max);
    }
}

/// Lemma 5: "The hops stretch factor of CDS' is bounded by a constant" —
/// the paper proves factor 3 (plus an additive constant 2, which shows up
/// on short paths).
#[test]
fn lemma_5_cds_prime_hop_stretch() {
    for seed in 0..5 {
        let g = udg(seed * 109 + 3);
        let cds = build_cds(&g, &ClusterRank::LowestId);
        let r = stretch_factors(&g, &cds.cds_prime, StretchOptions::default());
        assert_eq!(r.disconnected_pairs, 0, "seed {seed}");
        // 3h + 2 over h >= 1 caps the ratio at 5.
        assert!(r.hop_max <= 5.0, "seed {seed}: hop stretch {}", r.hop_max);
    }
}

/// Lemma 6: "The length stretch factor of CDS' is bounded by a constant"
/// for pairs more than one transmission radius apart.
#[test]
fn lemma_6_cds_prime_length_stretch() {
    for seed in 0..5 {
        let g = udg(seed * 113 + 4);
        let cds = build_cds(&g, &ClusterRank::LowestId);
        let r = stretch_factors(
            &g,
            &cds.cds_prime,
            StretchOptions {
                min_euclidean_separation: R,
            },
        );
        // The paper's proof gives ~6 + additive slack for separated
        // pairs; observed max in its own simulation is 5.04.
        assert!(
            r.length_max <= 8.0,
            "seed {seed}: length stretch {}",
            r.length_max
        );
    }
}

/// Lemma 7: "The hops stretch factor of LDel(ICDS') is bounded by a
/// constant."
#[test]
fn lemma_7_planar_backbone_hop_stretch() {
    for seed in 0..5 {
        let g = udg(seed * 127 + 5);
        let b = BackboneBuilder::new(BackboneConfig::new(R))
            .build(&g)
            .unwrap();
        let r = stretch_factors(&g, b.ldel_icds_prime(), StretchOptions::default());
        assert_eq!(r.disconnected_pairs, 0, "seed {seed}");
        assert!(r.hop_max <= 8.0, "seed {seed}: hop stretch {}", r.hop_max);
    }
}

/// Lemma 8: "The node degree of ICDS is bounded by a constant" — and so
/// is the degree of LDel(ICDS).
#[test]
fn lemma_8_icds_degree() {
    for seed in 0..6 {
        let g = udg(seed * 131 + 6);
        let b = BackboneBuilder::new(BackboneConfig::new(R))
            .build(&g)
            .unwrap();
        let icds = degree_stats_over(&b.cds_graphs().icds, b.backbone_nodes());
        assert!(icds.max <= 30, "seed {seed}: ICDS degree {}", icds.max);
        let ldel = degree_stats_over(b.ldel_icds(), b.backbone_nodes());
        assert!(ldel.max <= icds.max, "planarization never raises degree");
    }
}

/// §III-B: "it is well-known that a dominatee node can only be connected
/// to at most five dominators" implies the CDS' edge count is at most
/// `|CDS edges| + 5(n - |dominators|)` — sparseness (O(n) edges).
#[test]
fn sparseness_claim() {
    for seed in 0..5 {
        let g = udg(seed * 137 + 7);
        let cds = build_cds(&g, &ClusterRank::LowestId);
        let n = g.node_count();
        let dominatee_count = n - cds.dominators.len();
        assert!(
            cds.cds_prime.edge_count() <= cds.cds.edge_count() + 5 * dominatee_count,
            "seed {seed}"
        );
        assert!(cds.cds_prime.edge_count() <= 6 * n, "seed {seed}: not O(n)");
    }
}

/// §III-A.2: "for each two hops away dominators pair u and v, there are
/// at most 2 nodes claiming it to be connectors for them" (the lune
/// argument) — checked structurally: stage-1 winners for a pair are
/// pairwise non-adjacent, and the paper's bound of 2 holds.
#[test]
fn at_most_two_stage1_connectors_per_pair() {
    use std::collections::HashMap;
    for seed in 0..5 {
        let g = udg(seed * 139 + 8);
        let c = cluster(&g, &ClusterRank::LowestId);
        // Stage-1 elections, replayed: candidates are the common
        // dominatees of each dominator pair; a candidate wins when no
        // smaller adjacent candidate exists.
        let mut candidates: HashMap<(usize, usize), Vec<usize>> = HashMap::new();
        for w in 0..g.node_count() {
            let doms = &c.dominators_of[w];
            for (i, &u) in doms.iter().enumerate() {
                for &v in &doms[i + 1..] {
                    candidates.entry((u, v)).or_default().push(w);
                }
            }
        }
        for (&(u, v), cands) in &candidates {
            let winners: Vec<usize> = cands
                .iter()
                .copied()
                .filter(|&w| !cands.iter().any(|&w2| w2 < w && g.has_edge(w, w2)))
                .collect();
            // Winners are pairwise out of range of each other...
            for (i, &a) in winners.iter().enumerate() {
                for &b in &winners[i + 1..] {
                    assert!(!g.has_edge(a, b), "adjacent winners for ({u},{v})");
                }
            }
            // ...and the lune fits at most two such nodes.
            assert!(
                winners.len() <= 2,
                "seed {seed}: pair ({u},{v}) elected {} stage-1 connectors",
                winners.len()
            );
        }
    }
}

/// §I property list: "(1) the backbone is a planar graph" — the headline,
/// across ranks and densities.
#[test]
fn headline_planarity_across_configs() {
    for (n, radius) in [(40, 60.0), (80, 45.0), (120, 35.0)] {
        for seed in 0..3 {
            let (_p, g, _s) = connected_unit_disk(n, 160.0, radius, seed * 149 + 9);
            for rank in [ClusterRank::LowestId, ClusterRank::HighestDegree] {
                let b = BackboneBuilder::new(BackboneConfig::new(radius).with_rank(rank.clone()))
                    .build(&g)
                    .unwrap();
                assert!(
                    is_plane_embedding(b.ldel_icds()),
                    "n {n}, R {radius}, seed {seed}, rank {rank:?}"
                );
            }
        }
    }
}

/// §III-A.2 connectivity basis: "graph G3(D) is connected" — every
/// dominator pair within 3 UDG hops ends up connected inside the CDS.
#[test]
fn g3_connectivity_basis() {
    for seed in 0..4 {
        let g = udg(seed * 151 + 10);
        let cds = build_cds(&g, &ClusterRank::LowestId);
        for &d1 in &cds.dominators {
            let udg_hops = bfs_hops(&g, d1);
            let cds_hops = bfs_hops(&cds.cds, d1);
            for &d2 in &cds.dominators {
                if d1 == d2 {
                    continue;
                }
                if udg_hops[d2].is_some_and(|h| h <= 3) {
                    assert!(
                        cds_hops[d2].is_some(),
                        "seed {seed}: dominators {d1},{d2} within 3 hops but unlinked"
                    );
                }
            }
        }
    }
}
