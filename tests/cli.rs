//! End-to-end tests of the `geospan-cli` binary.

use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_geospan-cli"))
}

fn tempdir(test: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("geospan-cli-test-{}-{test}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn generate_build_route_render_pipeline() {
    let dir = tempdir("pipeline");
    let nodes = dir.join("nodes.csv");

    // generate
    let out = cli()
        .args([
            "generate", "--n", "50", "--side", "150", "--radius", "50", "--seed", "7", "--out",
        ])
        .arg(&nodes)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let content = std::fs::read_to_string(&nodes).unwrap();
    assert!(content.starts_with("x,y\n"));
    assert_eq!(content.lines().count(), 51);

    // build + verify report
    let out = cli()
        .args(["build", "--nodes"])
        .arg(&nodes)
        .args(["--radius", "50"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("planar:          yes"), "{text}");
    assert!(text.contains("spans all pairs: yes"));

    // build --distributed includes message accounting
    let out = cli()
        .args(["build", "--nodes"])
        .arg(&nodes)
        .args(["--radius", "50", "--distributed"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("messages/node"), "{text}");
    assert!(text.contains("IamDominator"));

    // route
    let out = cli()
        .args(["route", "--nodes"])
        .arg(&nodes)
        .args(["--radius", "50", "--from", "0", "--to", "49"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("delivered in"), "{text}");
    assert!(text.contains("path: [0,"));

    // render
    let svg = dir.join("topo.svg");
    let out = cli()
        .args(["render", "--nodes"])
        .arg(&nodes)
        .args(["--radius", "50", "--topology", "gabriel", "--out"])
        .arg(&svg)
        .output()
        .unwrap();
    assert!(out.status.success());
    let content = std::fs::read_to_string(&svg).unwrap();
    assert!(content.starts_with("<svg"));
    assert!(content.contains("gabriel"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn traffic_reports_delivery_and_is_seed_deterministic() {
    let dir = tempdir("traffic");
    let base = [
        "traffic",
        "--n",
        "40",
        "--side",
        "130",
        "--radius",
        "45",
        "--rate",
        "0.2",
        "--duration",
        "400",
        "--seed",
        "11",
    ];

    let run = |out_name: &str| {
        let csv = dir.join(out_name);
        let out = cli().args(base).arg("--out").arg(&csv).output().unwrap();
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        let text = String::from_utf8_lossy(&out.stdout).to_string();
        (text, std::fs::read_to_string(&csv).unwrap())
    };

    let (text, csv_a) = run("a.csv");
    assert!(text.contains("uniform workload over `backbone`"), "{text}");
    assert!(text.contains("offered:"), "{text}");
    assert!(text.contains("delivered:"), "{text}");
    assert!(
        csv_a.starts_with("policy,workload,discipline,retx,rate,"),
        "{csv_a}"
    );
    assert_eq!(csv_a.lines().count(), 2);

    // Same seed, same bytes.
    let (_, csv_b) = run("b.csv");
    assert_eq!(
        csv_a, csv_b,
        "same seed must give a byte-identical artifact"
    );

    // A clean low-rate run over the backbone delivers everything, with
    // the default fifo/no-retransmit configuration on record.
    let row: Vec<&str> = csv_a.lines().nth(1).unwrap().split(',').collect();
    assert_eq!(row[2], "fifo", "{csv_a}");
    assert_eq!(row[3], "off", "{csv_a}");
    assert_eq!(row[7], row[8], "offered != delivered: {csv_a}");
    assert_eq!(row[15], "0", "retry-shed without watermarks: {csv_a}");
    assert_eq!(row[16], "0", "refusals without admission: {csv_a}");
    assert_eq!(row[17], "0", "retransmissions without --retries: {csv_a}");

    // Unknown policy fails cleanly.
    let out = cli()
        .args([
            "traffic", "--n", "10", "--side", "50", "--radius", "30", "--policy", "warp",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown policy"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn traffic_disciplines_and_retransmit_flags_work_end_to_end() {
    let dir = tempdir("reliability");
    let base = [
        "traffic",
        "--n",
        "40",
        "--side",
        "130",
        "--radius",
        "45",
        "--rate",
        "0.2",
        "--duration",
        "400",
        "--seed",
        "11",
        "--loss",
        "0.05",
        "--workload",
        "hotspot",
        "--bias",
        "0.8",
    ];

    let run = |out_name: &str, extra: &[&str]| {
        let csv = dir.join(out_name);
        let out = cli()
            .args(base)
            .args(extra)
            .arg("--out")
            .arg(&csv)
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        let text = String::from_utf8_lossy(&out.stdout).to_string();
        (text, std::fs::read_to_string(&csv).unwrap())
    };

    // Lossy, no retransmit: losses land in drop_loss.
    let (_, plain) = run("rel_off.csv", &[]);
    let row: Vec<String> = plain
        .lines()
        .nth(1)
        .unwrap()
        .split(',')
        .map(str::to_string)
        .collect();
    let lost: usize = row[12].parse().unwrap();
    assert!(lost > 0, "5% loss over 400 ticks never rolled: {plain}");

    // Same seed with retransmit + DRR: the report names the scheme, the
    // CSV records it, and retries recover the losses.
    let (text, rel) = run(
        "rel_on.csv",
        &[
            "--discipline",
            "drr",
            "--quantum",
            "2",
            "--retries",
            "3",
            "--ack-timeout",
            "2",
        ],
    );
    assert!(text.contains("drr queue, retransmit x3"), "{text}");
    let row: Vec<String> = rel
        .lines()
        .nth(1)
        .unwrap()
        .split(',')
        .map(str::to_string)
        .collect();
    assert_eq!(row[2], "drr", "{rel}");
    assert_eq!(row[3], "on", "{rel}");
    let lost_with_retx: usize = row[12].parse().unwrap();
    let retransmissions: usize = row[17].parse().unwrap();
    assert!(retransmissions > 0, "no retries under 5% loss: {rel}");
    assert!(
        lost_with_retx < lost,
        "retransmit did not reduce link losses ({lost} -> {lost_with_retx})"
    );

    // Unknown discipline fails cleanly.
    let out = cli()
        .args(base)
        .args(["--discipline", "lifo"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown discipline"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn traffic_overload_flags_shed_retries_and_refuse_admissions() {
    let dir = tempdir("overload");
    let base = [
        "traffic",
        "--n",
        "40",
        "--side",
        "130",
        "--radius",
        "45",
        "--rate",
        "6.4",
        "--duration",
        "300",
        "--seed",
        "11",
        "--loss",
        "0.1",
        "--workload",
        "hotspot",
        "--bias",
        "0.8",
        "--capacity",
        "8",
        "--retries",
        "3",
    ];

    let run = |out_name: &str, extra: &[&str]| {
        let csv = dir.join(out_name);
        let out = cli()
            .args(base)
            .args(extra)
            .arg("--out")
            .arg(&csv)
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        let row: Vec<String> = std::fs::read_to_string(&csv)
            .unwrap()
            .lines()
            .nth(1)
            .unwrap()
            .split(',')
            .map(str::to_string)
            .collect();
        let text = String::from_utf8_lossy(&out.stdout).to_string();
        (text, row)
    };
    let col = |row: &[String], i: usize| -> usize { row[i].parse().unwrap() };

    // Watermarks alone: the saturated hotspot sheds retries.
    let (text, wm) = run("wm.csv", &["--high-watermark", "6", "--low-watermark", "2"]);
    assert!(text.contains("retry-shed"), "{text}");
    assert!(
        col(&wm, 15) > 0,
        "saturated run with watermarks never shed a retry: {wm:?}"
    );
    assert_eq!(col(&wm, 16), 0, "refusals without admission: {wm:?}");

    // Watermarks + token-bucket admission: sources get refused, and the
    // ledger still balances (offered = delivered + drops + refused).
    let (_, adm) = run(
        "adm.csv",
        &[
            "--high-watermark",
            "6",
            "--low-watermark",
            "2",
            "--admit-ticks",
            "40",
            "--admit-burst",
            "2",
        ],
    );
    assert!(
        col(&adm, 16) > 0,
        "tight token bucket never refused: {adm:?}"
    );
    let drops: usize = (10..=15).map(|i| col(&adm, i)).sum();
    assert_eq!(
        col(&adm, 7),
        col(&adm, 8) + drops + col(&adm, 16),
        "offered != delivered + drops + refused: {adm:?}"
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn traffic_sharded_run_is_byte_identical_to_single_shard() {
    let dir = tempdir("shards");
    let base = [
        "traffic",
        "--n",
        "40",
        "--side",
        "130",
        "--radius",
        "45",
        "--rate",
        "3.2",
        "--duration",
        "400",
        "--seed",
        "11",
        "--loss",
        "0.08",
        "--workload",
        "hotspot",
        "--bias",
        "0.8",
        "--capacity",
        "8",
        "--retries",
        "3",
        "--high-watermark",
        "6",
        "--low-watermark",
        "2",
    ];

    let run = |out_name: &str, shards: &str| {
        let csv = dir.join(out_name);
        let out = cli()
            .args(base)
            .args(["--shards", shards])
            .arg("--out")
            .arg(&csv)
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        std::fs::read_to_string(&csv).unwrap()
    };

    let single = run("s1.csv", "1");
    let sharded = run("s4.csv", "4");
    assert_eq!(
        single, sharded,
        "--shards 4 must produce a byte-identical artifact to --shards 1"
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn traffic_churn_flags_run_repair_and_stay_shard_identical() {
    let dir = tempdir("churn");
    let base = [
        "traffic",
        "--n",
        "40",
        "--side",
        "120",
        "--radius",
        "45",
        "--rate",
        "0.2",
        "--duration",
        "400",
        "--seed",
        "1",
        "--churn-rate",
        "0.05",
        "--churn-seed",
        "9",
    ];

    let run = |out_name: &str, shards: &str| {
        let csv = dir.join(out_name);
        let out = cli()
            .args(base)
            .args(["--shards", shards])
            .arg("--out")
            .arg(&csv)
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        (
            String::from_utf8_lossy(&out.stdout).into_owned(),
            std::fs::read_to_string(&csv).unwrap(),
        )
    };

    let (text, single) = run("c1.csv", "1");
    assert!(text.contains("churn:"), "{text}");
    assert!(text.contains("local repairs"), "{text}");
    // The run applied churn and the ledger columns carry its cost.
    let header = single.lines().next().unwrap();
    assert!(header.ends_with("drop_departed,churn_rate,repair_cost,staleness_ticks"));
    let row: Vec<&str> = single.lines().nth(1).unwrap().split(',').collect();
    assert_eq!(row[25], "0.05", "{single}");
    assert_ne!(row[26], "0", "churn without repair cost: {single}");

    let (_, sharded) = run("c4.csv", "4");
    assert_eq!(
        single, sharded,
        "churn runs must stay byte-identical across shard counts"
    );

    // Churn maintenance only drives backbone routing.
    let out = cli()
        .args(base)
        .args(["--policy", "greedy"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("requires --policy backbone"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bad_usage_fails_cleanly() {
    // No command.
    let out = cli().output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));

    // Unknown command.
    let out = cli().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));

    // Missing flag value.
    let out = cli().args(["generate", "--n"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("missing value"));

    // Nonexistent nodes file.
    let out = cli()
        .args([
            "build",
            "--nodes",
            "/nonexistent/nodes.csv",
            "--radius",
            "10",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());

    // Unknown topology.
    let dir = tempdir("usage");
    let nodes = dir.join("n.csv");
    std::fs::write(&nodes, "0,0\n1,0\n").unwrap();
    let out = cli()
        .args(["render", "--nodes"])
        .arg(&nodes)
        .args([
            "--radius",
            "5",
            "--topology",
            "zelda",
            "--out",
            "/tmp/x.svg",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown topology"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn malformed_csv_rejected() {
    let dir = tempdir("malformed");
    let nodes = dir.join("bad.csv");
    std::fs::write(&nodes, "0,0\nnot-a-number,3\n").unwrap();
    let out = cli()
        .args(["build", "--nodes"])
        .arg(&nodes)
        .args(["--radius", "5"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("bad coordinate"));
    std::fs::remove_dir_all(&dir).ok();
}
