//! End-to-end pipeline invariants across random deployments: the five
//! headline properties of the paper, checked on every instance.

use geospan::cds::{build_cds, ClusterRank};
use geospan::core::{BackboneBuilder, BackboneConfig, Role};
use geospan::graph::gen::connected_unit_disk;
use geospan::graph::planarity::{crossing_count, is_plane_embedding};
use geospan::graph::stats::degree_stats_over;
use geospan::graph::stretch::{stretch_factors, StretchOptions};
use geospan::topology::{gabriel, ldel, relative_neighborhood, unit_delaunay};

const RADIUS: f64 = 45.0;

fn scenario(seed: u64) -> (geospan::graph::Graph, geospan::core::Backbone) {
    let (_pts, udg, _s) = connected_unit_disk(80, 160.0, RADIUS, seed);
    let backbone = BackboneBuilder::new(BackboneConfig::new(RADIUS))
        .build(&udg)
        .expect("valid UDG");
    (udg, backbone)
}

#[test]
fn property_1_planarity() {
    for seed in 0..10 {
        let (_udg, b) = scenario(seed * 37);
        assert!(
            is_plane_embedding(b.ldel_icds()),
            "seed {seed}: {} crossings in LDel(ICDS)",
            crossing_count(b.ldel_icds())
        );
    }
}

#[test]
fn property_2_bounded_degree() {
    // Backbone degree must not grow with density; test two densities.
    let mut max_sparse = 0;
    let mut max_dense = 0;
    for seed in 0..5 {
        let (_pts, udg, _s) = connected_unit_disk(40, 160.0, RADIUS, seed);
        let b = BackboneBuilder::new(BackboneConfig::new(RADIUS))
            .build(&udg)
            .unwrap();
        max_sparse = max_sparse.max(degree_stats_over(b.ldel_icds(), b.backbone_nodes()).max);
        let (_pts, udg, _s) = connected_unit_disk(160, 160.0, RADIUS, seed + 50);
        let b = BackboneBuilder::new(BackboneConfig::new(RADIUS))
            .build(&udg)
            .unwrap();
        max_dense = max_dense.max(degree_stats_over(b.ldel_icds(), b.backbone_nodes()).max);
    }
    // 4x the density: the backbone degree stays in the same small band.
    assert!(max_sparse <= 16, "sparse backbone degree {max_sparse}");
    assert!(max_dense <= 16, "dense backbone degree {max_dense}");
}

#[test]
fn property_3_spanner() {
    for seed in 0..6 {
        let (udg, b) = scenario(seed * 41 + 1);
        let r = stretch_factors(
            &udg,
            b.ldel_icds_prime(),
            StretchOptions {
                min_euclidean_separation: RADIUS,
            },
        );
        assert_eq!(r.disconnected_pairs, 0, "seed {seed}");
        assert!(
            r.length_max < 8.0,
            "seed {seed}: length stretch {}",
            r.length_max
        );
        assert!(r.hop_max < 8.0, "seed {seed}: hop stretch {}", r.hop_max);
        assert!(r.length_avg >= 1.0 && r.hop_avg >= 1.0);
    }
}

#[test]
fn property_4_sparseness() {
    for seed in 0..6 {
        let (udg, b) = scenario(seed * 43 + 2);
        let n = udg.node_count();
        // O(n) edges: generously, under 6n for the spanning variant.
        assert!(
            b.ldel_icds_prime().edge_count() <= 6 * n,
            "seed {seed}: {} edges for {} nodes",
            b.ldel_icds_prime().edge_count(),
            n
        );
        assert!(b.ldel_icds().edge_count() <= 3 * n);
    }
}

#[test]
fn property_5_localized_cost() {
    for seed in 0..3 {
        let (_pts, udg, _s) = connected_unit_disk(80, 160.0, RADIUS, seed * 47 + 3);
        let b = BackboneBuilder::new(BackboneConfig::new(RADIUS).distributed())
            .build(&udg)
            .unwrap();
        let stats = b.stats().unwrap();
        let per_node = stats.total_per_node();
        let max = per_node.iter().copied().max().unwrap();
        assert!(max <= 150, "seed {seed}: max per-node messages {max}");
    }
}

#[test]
fn subgraph_containments() {
    for seed in 0..4 {
        let (udg, b) = scenario(seed * 53 + 4);
        let rng = relative_neighborhood(&udg);
        let gg = gabriel(&udg);
        let pldel = ldel::planarized(&udg);
        let udel = unit_delaunay(&udg);
        // RNG ⊆ GG ⊆ PLDel ⊆ UDG.
        for (u, v) in rng.edges() {
            assert!(gg.has_edge(u, v), "seed {seed}: RNG ⊄ GG");
        }
        for (u, v) in gg.edges() {
            assert!(pldel.graph.has_edge(u, v), "seed {seed}: GG ⊄ PLDel");
        }
        for (u, v) in pldel.graph.edges() {
            assert!(udg.has_edge(u, v), "seed {seed}: PLDel ⊄ UDG");
        }
        // UDel ⊆ PLDel (the spanner-proof containment).
        for (u, v) in udel.edges() {
            assert!(pldel.graph.has_edge(u, v), "seed {seed}: UDel ⊄ PLDel");
        }
        // CDS ⊆ ICDS ⊆ UDG; LDel(ICDS) ⊆ ICDS.
        let cds = b.cds_graphs();
        for (u, v) in cds.cds.edges() {
            assert!(cds.icds.has_edge(u, v));
        }
        for (u, v) in cds.icds.edges() {
            assert!(udg.has_edge(u, v));
        }
        for (u, v) in b.ldel_icds().edges() {
            assert!(cds.icds.has_edge(u, v), "seed {seed}: LDel(ICDS) ⊄ ICDS");
        }
    }
}

#[test]
fn roles_partition_and_lemma_one() {
    for seed in 0..4 {
        let (udg, b) = scenario(seed * 59 + 5);
        let cds = b.cds_graphs();
        for v in 0..udg.node_count() {
            match b.roles()[v] {
                Role::Dominator => {
                    assert!(cds.dominators.contains(&v));
                    assert!(cds.dominators_of[v].is_empty());
                }
                Role::Connector => {
                    assert!(cds.connectors.contains(&v));
                    assert!(!cds.dominators_of[v].is_empty());
                }
                Role::Dominatee => {
                    assert!(!cds.dominators_of[v].is_empty());
                }
            }
            // Lemma 1: at most 5 adjacent dominators.
            assert!(cds.dominators_of[v].len() <= 5, "seed {seed}, node {v}");
        }
    }
}

#[test]
fn cds_may_cross_but_ldel_never() {
    // The paper's Figure 5 point: CDS is not guaranteed planar; the
    // localized Delaunay planarization is what restores planarity.
    let mut saw_crossing_cds = false;
    for seed in 0..30 {
        let (_pts, udg, _s) = connected_unit_disk(80, 160.0, RADIUS, seed * 61);
        let cds = build_cds(&udg, &ClusterRank::LowestId);
        if crossing_count(&cds.icds) > 0 {
            saw_crossing_cds = true;
        }
        let b = BackboneBuilder::new(BackboneConfig::new(RADIUS))
            .build(&udg)
            .unwrap();
        assert!(is_plane_embedding(b.ldel_icds()), "seed {seed}");
    }
    assert!(
        saw_crossing_cds,
        "expected at least one instance with a non-planar induced backbone"
    );
}

#[test]
fn distributed_equals_centralized_end_to_end() {
    for seed in [5u64, 77, 123] {
        let (_pts, udg, _s) = connected_unit_disk(60, 160.0, RADIUS, seed);
        let central = BackboneBuilder::new(BackboneConfig::new(RADIUS))
            .build(&udg)
            .unwrap();
        let dist = BackboneBuilder::new(BackboneConfig::new(RADIUS).distributed())
            .build(&udg)
            .unwrap();
        assert_eq!(central.roles(), dist.roles());
        assert_eq!(
            central.ldel_icds().edges().collect::<Vec<_>>(),
            dist.ldel_icds().edges().collect::<Vec<_>>()
        );
        assert_eq!(
            central.ldel_icds_prime().edges().collect::<Vec<_>>(),
            dist.ldel_icds_prime().edges().collect::<Vec<_>>()
        );
    }
}
