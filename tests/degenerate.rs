//! Adversarial and degenerate deployments: exact grids (massive
//! cocircularity), collinear chains at exactly unit spacing, clustered
//! fields, and tiny networks. The pipeline must stay correct — planar,
//! connected, bounded — on all of them, which is what the exact
//! predicates buy.

use geospan::core::{BackboneBuilder, BackboneConfig};
use geospan::graph::gen::{gaussian_clusters, perturbed_grid, UnitDiskBuilder};
use geospan::graph::planarity::is_plane_embedding;
use geospan::graph::stretch::{stretch_factors, StretchOptions};
use geospan::graph::{Graph, Point};
use geospan::topology::{gabriel, ldel, relative_neighborhood};

#[test]
fn exact_grid_full_pipeline() {
    // A perfect grid: every unit square is a cocircular quadruple, every
    // row/column is collinear. Radius covers the diagonal.
    let pts = perturbed_grid(8, 8, 10.0, 0.0, 0);
    let udg = UnitDiskBuilder::new(15.0).build(&pts);
    assert!(udg.is_connected());

    let gg = gabriel(&udg);
    assert!(is_plane_embedding(&gg), "Gabriel graph crossed on the grid");
    assert!(gg.is_connected());

    let rng = relative_neighborhood(&udg);
    assert!(is_plane_embedding(&rng));
    assert!(rng.is_connected());

    let pl = ldel::planarized(&udg);
    assert!(is_plane_embedding(&pl.graph), "PLDel crossed on the grid");
    assert!(pl.graph.is_connected());

    let b = BackboneBuilder::new(BackboneConfig::new(15.0))
        .build(&udg)
        .unwrap();
    assert!(is_plane_embedding(b.ldel_icds()));
    assert!(b.ldel_icds_prime().is_connected());
}

#[test]
fn exact_grid_distributed_matches() {
    let pts = perturbed_grid(6, 6, 10.0, 0.0, 0);
    let udg = UnitDiskBuilder::new(15.0).build(&pts);
    let central = BackboneBuilder::new(BackboneConfig::new(15.0))
        .build(&udg)
        .unwrap();
    let dist = BackboneBuilder::new(BackboneConfig::new(15.0).distributed())
        .build(&udg)
        .unwrap();
    assert_eq!(central.roles(), dist.roles());
    assert_eq!(
        central.ldel_icds().edges().collect::<Vec<_>>(),
        dist.ldel_icds().edges().collect::<Vec<_>>()
    );
}

#[test]
fn unit_chain_at_exact_radius() {
    // Nodes exactly one radius apart in a line: every link is boundary-
    // tight, and the paper's own Yao counterexample configuration.
    let pts: Vec<Point> = (0..20).map(|i| Point::new(i as f64, 0.0)).collect();
    let udg = UnitDiskBuilder::new(1.0).build(&pts);
    assert_eq!(udg.edge_count(), 19);
    let b = BackboneBuilder::new(BackboneConfig::new(1.0))
        .build(&udg)
        .unwrap();
    assert!(b.ldel_icds_prime().is_connected());
    assert!(is_plane_embedding(b.ldel_icds()));
    // The backbone of a chain is the chain: hop stretch stays 1-ish.
    let r = stretch_factors(&udg, b.ldel_icds_prime(), StretchOptions::default());
    assert_eq!(r.disconnected_pairs, 0);
    assert!(r.hop_max <= 3.0, "hop stretch {} on a chain", r.hop_max);
}

#[test]
fn dense_clusters() {
    let pts = gaussian_clusters(120, 100.0, 3, 8.0, 7);
    let udg = UnitDiskBuilder::new(40.0).build(&pts);
    if !udg.is_connected() {
        return; // clusters may be mutually unreachable; nothing to test
    }
    let b = BackboneBuilder::new(BackboneConfig::new(40.0))
        .build(&udg)
        .unwrap();
    assert!(is_plane_embedding(b.ldel_icds()));
    assert!(b.ldel_icds_prime().is_connected());
    let r = stretch_factors(
        &udg,
        b.ldel_icds_prime(),
        StretchOptions {
            min_euclidean_separation: 40.0,
        },
    );
    assert_eq!(r.disconnected_pairs, 0);
}

#[test]
fn tiny_networks() {
    // 1 node.
    let udg = Graph::new(vec![Point::new(0.0, 0.0)]);
    let b = BackboneBuilder::new(BackboneConfig::new(1.0))
        .build(&udg)
        .unwrap();
    assert_eq!(b.cds_graphs().dominators, vec![0]);
    assert_eq!(b.ldel_icds().edge_count(), 0);

    // 2 nodes in range: one dominator, one dominatee, one edge in the
    // prime graph.
    let udg = UnitDiskBuilder::new(1.0).build(&[Point::new(0.0, 0.0), Point::new(0.5, 0.0)]);
    let b = BackboneBuilder::new(BackboneConfig::new(1.0))
        .build(&udg)
        .unwrap();
    assert_eq!(b.cds_graphs().dominators.len(), 1);
    assert_eq!(b.ldel_icds_prime().edge_count(), 1);
    assert!(b.ldel_icds_prime().is_connected());

    // 3 nodes in a triangle.
    let udg = UnitDiskBuilder::new(1.0).build(&[
        Point::new(0.0, 0.0),
        Point::new(0.8, 0.0),
        Point::new(0.4, 0.6),
    ]);
    let b = BackboneBuilder::new(BackboneConfig::new(1.0))
        .build(&udg)
        .unwrap();
    assert!(b.ldel_icds_prime().is_connected());
    assert!(is_plane_embedding(b.ldel_icds()));
}

#[test]
fn two_clusters_bridged_by_three_hop_dominators() {
    // Hand-built: two stars whose heads are exactly 3 hops apart, forcing
    // the stage-2/stage-3 connector elections.
    let pts = vec![
        Point::new(0.0, 0.0),  // 0: head A (dominator)
        Point::new(0.9, 0.0),  // 1: bridge node a
        Point::new(1.8, 0.0),  // 2: bridge node b
        Point::new(2.7, 0.0),  // 3: head B (dominator)
        Point::new(-0.5, 0.5), // 4: leaf of A
        Point::new(3.2, 0.5),  // 5: leaf of B
    ];
    let udg = UnitDiskBuilder::new(1.0).build(&pts);
    // Weight rank forces the two heads to win their elections.
    let rank = geospan::cds::ClusterRank::Weight(vec![10, 0, 0, 10, 0, 0]);
    let b = BackboneBuilder::new(BackboneConfig::new(1.0).with_rank(rank))
        .build(&udg)
        .unwrap();
    let cds = b.cds_graphs();
    assert!(cds.dominators.contains(&0) && cds.dominators.contains(&3));
    assert!(cds.connectors.contains(&1) && cds.connectors.contains(&2));
    assert!(cds.cds.has_edge(0, 1));
    assert!(cds.cds.has_edge(1, 2));
    assert!(cds.cds.has_edge(2, 3));
    assert!(b.ldel_icds_prime().is_connected());
}

#[test]
fn disconnected_input_handled_per_component() {
    // Two far-apart triangles: the pipeline must not panic, and each
    // component gets its own backbone.
    let pts = vec![
        Point::new(0.0, 0.0),
        Point::new(1.0, 0.0),
        Point::new(0.5, 0.8),
        Point::new(100.0, 0.0),
        Point::new(101.0, 0.0),
        Point::new(100.5, 0.8),
    ];
    let udg = UnitDiskBuilder::new(1.5).build(&pts);
    assert!(!udg.is_connected());
    let b = BackboneBuilder::new(BackboneConfig::new(1.5))
        .build(&udg)
        .unwrap();
    // Every node is dominated within its component.
    let comps = b.ldel_icds_prime().components();
    assert_eq!(comps.len(), 2);
    assert_eq!(comps[0].len(), 3);
    assert_eq!(comps[1].len(), 3);
}
