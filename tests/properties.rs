//! Cross-crate property tests: the paper's invariants under randomized
//! deployments, driven by proptest.

use geospan::cds::{build_cds, ClusterRank};
use geospan::core::{BackboneBuilder, BackboneConfig};
use geospan::graph::gen::{uniform_points, UnitDiskBuilder};
use geospan::graph::planarity::is_plane_embedding;
use geospan::graph::stretch::{stretch_factors, StretchOptions};
use geospan::graph::Graph;
use geospan::topology::{gabriel, ldel, relative_neighborhood};
use proptest::prelude::*;

/// Random deployment: node count, radius and seed drawn by proptest.
fn deployment() -> impl Strategy<Value = (Graph, f64)> {
    (10usize..70, 25.0f64..60.0, any::<u64>()).prop_map(|(n, radius, seed)| {
        let pts = uniform_points(n, 120.0, seed);
        (UnitDiskBuilder::new(radius).build(&pts), radius)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn backbone_invariants((udg, radius) in deployment()) {
        let b = BackboneBuilder::new(BackboneConfig::new(radius)).build(&udg).unwrap();
        // Planarity, unconditionally.
        prop_assert!(is_plane_embedding(b.ldel_icds()));
        // Domination: every node is a dominator or has one adjacent.
        let cds = b.cds_graphs();
        for v in 0..udg.node_count() {
            let dominated = cds.dominators.contains(&v) || !cds.dominators_of[v].is_empty();
            prop_assert!(dominated, "node {v} undominated");
            prop_assert!(cds.dominators_of[v].len() <= 5, "Lemma 1 violated at {v}");
        }
        // Independence of the MIS.
        for &a in &cds.dominators {
            for &b2 in &cds.dominators {
                if a < b2 {
                    prop_assert!(!udg.has_edge(a, b2));
                }
            }
        }
        // Spanning: LDel(ICDS') preserves every UDG connection.
        let r = stretch_factors(&udg, b.ldel_icds_prime(), StretchOptions::default());
        prop_assert_eq!(r.disconnected_pairs, 0);
    }

    #[test]
    fn containment_chain((udg, _radius) in deployment()) {
        let rng = relative_neighborhood(&udg);
        let gg = gabriel(&udg);
        let pl = ldel::planarized(&udg);
        for (u, v) in rng.edges() {
            prop_assert!(gg.has_edge(u, v));
        }
        for (u, v) in gg.edges() {
            prop_assert!(pl.graph.has_edge(u, v));
        }
        for (u, v) in pl.graph.edges() {
            prop_assert!(udg.has_edge(u, v));
        }
        // All three preserve the UDG's connectivity structure.
        prop_assert_eq!(rng.components().len(), udg.components().len());
        prop_assert_eq!(gg.components().len(), udg.components().len());
        prop_assert_eq!(pl.graph.components().len(), udg.components().len());
    }

    #[test]
    fn planar_structures_really_are_planar((udg, _radius) in deployment()) {
        prop_assert!(is_plane_embedding(&relative_neighborhood(&udg)));
        prop_assert!(is_plane_embedding(&gabriel(&udg)));
        prop_assert!(is_plane_embedding(&ldel::planarized(&udg).graph));
    }

    #[test]
    fn rank_choice_preserves_invariants((udg, radius) in deployment()) {
        let _ = radius;
        for rank in [ClusterRank::LowestId, ClusterRank::HighestDegree] {
            let cds = build_cds(&udg, &rank);
            for v in 0..udg.node_count() {
                let ok = cds.dominators.contains(&v) || !cds.dominators_of[v].is_empty();
                prop_assert!(ok);
            }
            // Backbone nodes of one UDG component stay connected in CDS.
            for comp in udg.components() {
                let members: Vec<usize> =
                    comp.iter().copied().filter(|&v| cds.is_backbone(v)).collect();
                if members.len() <= 1 {
                    continue;
                }
                let sub_comps = cds.cds.components();
                let home = sub_comps.iter().find(|c| c.contains(&members[0])).unwrap();
                for &m in &members {
                    prop_assert!(home.contains(&m), "backbone split inside a component");
                }
            }
        }
    }

    #[test]
    fn stretch_never_below_one((udg, radius) in deployment()) {
        let b = BackboneBuilder::new(BackboneConfig::new(radius)).build(&udg).unwrap();
        let r = stretch_factors(&udg, b.ldel_icds_prime(), StretchOptions::default());
        if r.hop_pairs > 0 {
            prop_assert!(r.hop_avg >= 1.0 - 1e-12);
            prop_assert!(r.length_avg >= 1.0 - 1e-12);
            prop_assert!(r.hop_max >= r.hop_avg - 1e-12);
            prop_assert!(r.length_max >= r.length_avg - 1e-12);
        }
    }
}
