//! Offline stand-in for the `rayon` crate (see `stubs/README.md`).
//!
//! Implements the slice/range data-parallel surface this workspace uses
//! — `par_iter()`, `into_par_iter()`, `map`, `for_each`, `collect` — on
//! top of `std::thread::scope`. Work is split into one contiguous chunk
//! per worker, so results come back in input order and `collect` is
//! deterministic regardless of the worker count.
//!
//! The worker count is re-read from `RAYON_NUM_THREADS` on every
//! parallel call (real rayon fixes it at global-pool creation); set it
//! to `1` to force fully serial execution. With one worker no threads
//! are spawned at all.

#![forbid(unsafe_code)]

use std::ops::Range;

/// The conventional bulk import, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParallelIterator};
}

/// Number of workers parallel calls will use: `RAYON_NUM_THREADS` when
/// set to a positive integer, otherwise the machine's available
/// parallelism.
pub fn current_num_threads() -> usize {
    match std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        Some(n) if n > 0 => n,
        _ => std::thread::available_parallelism().map_or(1, |n| n.get()),
    }
}

/// Runs two closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        let ra = a();
        let rb = b();
        return (ra, rb);
    }
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        let rb = hb.join().expect("rayon-stub worker panicked");
        (ra, rb)
    })
}

/// Order-preserving parallel map over owned items: the workhorse behind
/// every adapter in this stub.
fn par_map_vec<T, U, F>(items: Vec<T>, f: &F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let threads = current_num_threads().min(items.len().max(1));
    if threads <= 1 || items.len() < 2 {
        return items.into_iter().map(f).collect();
    }
    // One contiguous chunk per worker keeps output order == input order.
    let len = items.len();
    let chunk = len.div_ceil(threads);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(threads);
    let mut items = items;
    // Split from the back so each drain is O(chunk).
    while items.len() > chunk {
        chunks.push(items.split_off(items.len() - chunk));
    }
    chunks.push(items);
    chunks.reverse(); // back-to-front splitting reversed the order
    std::thread::scope(|s| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|c| s.spawn(move || c.into_iter().map(f).collect::<Vec<U>>()))
            .collect();
        let mut out = Vec::with_capacity(len);
        for h in handles {
            out.extend(h.join().expect("rayon-stub worker panicked"));
        }
        out
    })
}

/// A parallel iterator: an eager snapshot of the items plus the adapter
/// surface (`map`, `for_each`, `collect`).
pub struct ParIter<T> {
    items: Vec<T>,
}

/// The adapter trait, so call sites can write `rayon::prelude::*` and
/// use the same names as real rayon.
pub trait ParallelIterator: Sized {
    /// Item type produced by this iterator.
    type Item: Send;

    /// Consumes the iterator into its (input-ordered) item buffer.
    fn into_items(self) -> Vec<Self::Item>;

    /// Maps every item through `f`, in parallel.
    fn map<U, F>(self, f: F) -> Map<Self, F>
    where
        U: Send,
        F: Fn(Self::Item) -> U + Sync,
    {
        Map { inner: self, f }
    }

    /// Applies `f` to every item, in parallel.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync,
    {
        let _ = par_map_vec(self.into_items(), &|x| f(x));
    }

    /// Collects the items, preserving input order.
    fn collect<C>(self) -> C
    where
        C: FromParallelIterator<Self::Item>,
    {
        C::from_ordered_vec(self.into_items())
    }

    /// Sums the items, in input order.
    fn sum<S>(self) -> S
    where
        S: std::iter::Sum<Self::Item>,
    {
        self.into_items().into_iter().sum()
    }
}

impl<T: Send> ParallelIterator for ParIter<T> {
    type Item = T;

    fn into_items(self) -> Vec<T> {
        self.items
    }
}

/// Lazy `map` adapter; the closure runs (in parallel) when the adapter
/// is consumed.
pub struct Map<I, F> {
    inner: I,
    f: F,
}

impl<I, U, F> ParallelIterator for Map<I, F>
where
    I: ParallelIterator,
    U: Send,
    F: Fn(I::Item) -> U + Sync,
{
    type Item = U;

    fn into_items(self) -> Vec<U> {
        par_map_vec(self.inner.into_items(), &self.f)
    }
}

/// Conversion from an ordered item buffer, mirroring rayon's
/// `FromParallelIterator` so `collect::<Vec<_>>()` works verbatim.
pub trait FromParallelIterator<T> {
    /// Builds the collection from items in input order.
    fn from_ordered_vec(v: Vec<T>) -> Self;
}

impl<T> FromParallelIterator<T> for Vec<T> {
    fn from_ordered_vec(v: Vec<T>) -> Self {
        v
    }
}

/// Types convertible into a [`ParIter`] by value.
pub trait IntoParallelIterator {
    /// Item type of the resulting iterator.
    type Item: Send;
    /// Converts into a parallel iterator over owned items.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl IntoParallelIterator for Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

/// Types offering a borrowing parallel iterator (`par_iter()`).
pub trait IntoParallelRefIterator<'a> {
    /// Item type of the resulting iterator (a shared reference).
    type Item: Send;
    /// A parallel iterator over shared references.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let out: Vec<usize> = (0..1000).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(out, (0..1000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn slice_par_iter() {
        let v = vec![3, 1, 4, 1, 5];
        let out: Vec<i32> = v.par_iter().map(|&x| x + 1).collect();
        assert_eq!(out, vec![4, 2, 5, 2, 6]);
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = super::join(|| 1 + 1, || "x".to_string());
        assert_eq!(a, 2);
        assert_eq!(b, "x");
    }

    #[test]
    fn sum_and_for_each() {
        let s: usize = (0..100).into_par_iter().map(|i| i).sum();
        assert_eq!(s, 4950);
        let counter = std::sync::atomic::AtomicUsize::new(0);
        (0..37).into_par_iter().for_each(|_| {
            counter.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        });
        assert_eq!(counter.load(std::sync::atomic::Ordering::Relaxed), 37);
    }

    #[test]
    fn empty_inputs() {
        let out: Vec<usize> = (0..0).into_par_iter().map(|i| i).collect();
        assert!(out.is_empty());
    }
}
