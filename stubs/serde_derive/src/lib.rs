//! No-op `Serialize`/`Deserialize` derives for offline builds.
//!
//! Nothing in this workspace performs actual serialization yet; the
//! derives exist so types can stay annotated for when the real serde is
//! swapped back in. Each derive expands to nothing.

use proc_macro::TokenStream;

/// Expands to nothing; keeps `#[derive(Serialize)]` annotations compiling.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; keeps `#[derive(Deserialize)]` annotations compiling.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
