//! Offline stand-in for the `criterion` crate (see `stubs/README.md`).
//!
//! Provides the structural API the workspace's benches use — groups,
//! `bench_function`, `bench_with_input`, the two macros — backed by a
//! plain wall-clock timer with a handful of iterations. Good enough to
//! keep `cargo bench` runnable and the bench sources compiling; not a
//! statistics engine.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Number of timed iterations per benchmark in this stub.
const ITERS: u32 = 5;

/// Smoke mode: `cargo bench -- --test` (or `--quick`) runs every
/// benchmark exactly once with no warm-up, as a correctness check rather
/// than a measurement — mirroring real criterion's `--test` flag. Used by
/// CI to keep the bench suite compiling and panic-free.
fn test_mode() -> bool {
    std::env::args().any(|a| a == "--test" || a == "--quick")
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
        }
    }
}

/// A named collection of benchmarks.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub always runs a fixed,
    /// small number of iterations.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::default();
        f(&mut b);
        b.report(&self.name, &id.to_string());
        self
    }

    /// Runs one parameterized benchmark.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::default();
        f(&mut b, input);
        b.report(&self.name, &id.0);
        self
    }

    /// Ends the group (no-op in the stub).
    pub fn finish(self) {}
}

/// Identifier of a parameterized benchmark.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Combines a function name with a parameter value.
    pub fn new(name: impl Display, param: impl Display) -> Self {
        BenchmarkId(format!("{name}/{param}"))
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Timer handle passed to benchmark closures.
#[derive(Debug, Default)]
pub struct Bencher {
    elapsed: Duration,
    iters: u32,
}

impl Bencher {
    /// Times the routine over a few iterations (once, without warm-up,
    /// under `--test`).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let iters = if test_mode() {
            1
        } else {
            // One untimed warm-up.
            std::hint::black_box(routine());
            ITERS
        };
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iters = iters;
    }

    fn report(&self, group: &str, id: &str) {
        if self.iters == 0 {
            return;
        }
        let per = self.elapsed / self.iters;
        println!("{group}/{id}: {per:?}/iter over {} iters", self.iters);
    }
}

/// Declares a group runner function from a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` from a list of group runners.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
