//! Offline stand-in for the `serde_json` crate (see `stubs/README.md`).
//!
//! Nothing in this workspace serializes JSON yet; this placeholder only
//! satisfies the dependency edge. Add functionality here the day a
//! call-site appears.

#![forbid(unsafe_code)]
