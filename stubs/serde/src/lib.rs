//! Offline stand-in for the `serde` crate (see `stubs/README.md`).
//!
//! Provides the trait names and (with the `derive` feature) no-op derive
//! macros so annotated types compile. No serialization is performed.

#![forbid(unsafe_code)]

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
