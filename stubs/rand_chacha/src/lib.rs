//! Offline stand-in for the `rand_chacha` crate (see `stubs/README.md`).
//!
//! Exposes the ChaCha generator names over the stub `rand` core. The
//! stream is *not* ChaCha — it is the same SplitMix64 core as `StdRng`,
//! salted per flavour — which is sufficient for the seeded-simulation
//! uses in this workspace.

#![forbid(unsafe_code)]

use rand::{RngCore, SeedableRng};

macro_rules! chacha_stub {
    ($(#[$doc:meta] $name:ident, $salt:expr;)*) => {$(
        #[$doc]
        #[derive(Debug, Clone)]
        pub struct $name {
            state: u64,
        }

        impl RngCore for $name {
            fn next_u64(&mut self) -> u64 {
                self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = self.state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            }
        }

        impl SeedableRng for $name {
            fn seed_from_u64(state: u64) -> Self {
                $name { state: state ^ $salt }
            }
        }
    )*};
}

chacha_stub! {
    /// 8-round ChaCha flavour (stub).
    ChaCha8Rng, 0x08;
    /// 12-round ChaCha flavour (stub).
    ChaCha12Rng, 0x0C;
    /// 20-round ChaCha flavour (stub).
    ChaCha20Rng, 0x14;
}
