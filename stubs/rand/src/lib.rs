//! Offline stand-in for the `rand` crate (see `stubs/README.md`).
//!
//! Implements the slice of the rand 0.9 API this workspace uses: a
//! seedable `StdRng` and `Rng::random_range` over integer and float
//! ranges. The generator is SplitMix64 — statistically fine for
//! simulation inputs, deterministic per seed.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Low-level source of random `u64`s.
pub trait RngCore {
    /// Returns the next pseudo-random 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Returns the next pseudo-random 32-bit value.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// High-level sampling helpers, blanket-implemented for every core rng.
pub trait Rng: RngCore {
    /// Samples uniformly from a half-open range.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    fn random_f64(&mut self) -> f64
    where
        Self: Sized,
    {
        unit_f64(self.next_u64())
    }
}

impl<R: RngCore> Rng for R {}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

fn unit_f64(bits: u64) -> f64 {
    // 53 uniform mantissa bits in [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let v = self.start + unit_f64(rng.next_u64()) * (self.end - self.start);
        // Guard against floating-point rounding up to the excluded end.
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        let wide = (f64::from(self.start)..f64::from(self.end)).sample_from(rng);
        (wide as f32).clamp(self.start, self.end)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let span = (self.end as i128) - (self.start as i128);
                assert!(span > 0, "cannot sample empty range");
                let r = (rng.next_u64() as u128 % span as u128) as i128;
                (self.start as i128 + r) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128) - (lo as i128) + 1;
                let r = (rng.next_u64() as u128 % span as u128) as i128;
                (lo as i128 + r) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The default seedable generator (SplitMix64 in this stub).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = a.random_range(2.0..5.0);
            assert_eq!(x, b.random_range(2.0..5.0));
            assert!((2.0..5.0).contains(&x));
            let k: usize = a.random_range(3..9);
            assert_eq!(k, b.random_range(3..9));
            assert!((3..9).contains(&k));
        }
    }

    #[test]
    fn min_positive_range_is_positive() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let u: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
            assert!(u > 0.0 && u < 1.0);
        }
    }
}
