//! Offline stand-in for the `proptest` crate (see `stubs/README.md`).
//!
//! A miniature, fully deterministic property-testing engine covering the
//! API surface this workspace uses: the `proptest!` test macro,
//! `prop_assert*`, `prop_oneof!`, strategies built from ranges, tuples,
//! `Just`, `any`, `prop_map`/`prop_flat_map`, and
//! `prop::collection::vec`. Case `k` of a test always sees the same
//! inputs (seeded from the test name), so runs are reproducible; there
//! is no shrinking — failures report the case index instead.

#![forbid(unsafe_code)]

pub mod strategy {
    //! Strategy trait and combinators.

    use crate::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms generated values.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Chains a dependent strategy.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }

        /// Erases the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// Type-erased strategy.
    pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate(rng)
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Output of [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, S2> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Always generates a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between boxed alternatives (see `prop_oneof!`).
    pub struct OneOf<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> OneOf<T> {
        /// Builds from a non-empty list of alternatives.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            OneOf { options }
        }
    }

    impl<T> Strategy for OneOf<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.options.len());
            self.options[idx].generate(rng)
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            let v = self.start + rng.unit_f64() * (self.end - self.start);
            if v < self.end {
                v
            } else {
                self.start
            }
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start() <= self.end(), "empty range strategy");
            self.start() + rng.unit_f64() * (self.end() - self.start())
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let span = (self.end as i128) - (self.start as i128);
                    assert!(span > 0, "empty range strategy");
                    let r = (rng.next_u64() as u128 % span as u128) as i128;
                    (self.start as i128 + r) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let span = (*self.end() as i128) - (*self.start() as i128) + 1;
                    assert!(span > 0, "empty range strategy");
                    let r = (rng.next_u64() as u128 % span as u128) as i128;
                    (*self.start() as i128 + r) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Finite, sign-symmetric values across many magnitudes.
            let m = rng.unit_f64() * 2.0 - 1.0;
            let e = (rng.next_u64() % 64) as i32 - 32;
            m * 2f64.powi(e)
        }
    }

    /// Strategy for [`Arbitrary`] types (see [`any`]).
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Admissible collection sizes.
    #[derive(Debug, Clone)]
    pub struct SizeRange(Range<usize>);

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange(n..n + 1)
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange(r)
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange(*r.start()..*r.end() + 1)
        }
    }

    /// Strategy for `Vec<T>` with sizes drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Output of [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let SizeRange(ref r) = self.size;
            assert!(r.start < r.end, "empty size range");
            let len = r.start + rng.below(r.end - r.start);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Configuration, RNG, and failure plumbing for `proptest!`.

    use std::fmt;

    /// Subset of proptest's run configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Configuration running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic per-case generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds from the test name and case index, so every test walks
        /// its own reproducible sequence.
        pub fn from_name_and_case(name: &str, case: u64) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng {
                state: h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform index in `0..n`.
        pub fn below(&mut self, n: usize) -> usize {
            assert!(n > 0);
            (self.next_u64() % n as u64) as usize
        }
    }

    /// A failed property case.
    #[derive(Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Builds a failure with the given message.
        pub fn fail(message: String) -> Self {
            TestCaseError(message)
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }
}

/// Defines deterministic property tests.
///
/// Mirrors proptest's macro: an optional
/// `#![proptest_config(...)]` header, then test functions whose
/// arguments are drawn from strategies with `pattern in strategy`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $($(#[$meta:meta])* fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let strategies = ($($strat,)+);
                for case in 0..config.cases {
                    let mut __proptest_rng =
                        $crate::test_runner::TestRng::from_name_and_case(stringify!($name), u64::from(case));
                    let ($($pat,)+) =
                        $crate::strategy::Strategy::generate(&strategies, &mut __proptest_rng);
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!("{} failed at deterministic case {case}: {e}", stringify!($name));
                    }
                }
            }
        )*
    };
}

/// Fails the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless both sides are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "{}: `{:?}` == `{:?}`",
            format!($($fmt)+),
            left,
            right
        );
    }};
}

/// Fails the current case if both sides are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "{}: `{:?}` != `{:?}`",
            format!($($fmt)+),
            left,
            right
        );
    }};
}

/// Uniform choice between strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $($crate::strategy::Strategy::boxed($s)),+
        ])
    };
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.

    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Namespace alias so `prop::collection::vec(...)` works.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}
