//! The per-file lint rules (D01–D07, D11) plus directive hygiene (A00).
//!
//! Every rule is a token-pattern check over the [`crate::lexer`] output,
//! scoped by the structural regions the [`crate::parser`] recovers
//! (test items, `invariant-checks` items). The cross-file rules
//! (D08–D10) live in [`crate::xrules`]. The rules are deliberately
//! conservative heuristics: they know nothing about types, only about
//! names and shapes — which is exactly what the project's conventions
//! are written in terms of. False positives are handled by inline
//! `// geospan-analyze: allow(<rule>, reason)` directives or the
//! committed baseline, both of which require a reason.

use crate::lexer::{Directive, Lexed, Tok, TokKind};
use crate::parser::{parse, ParsedFile};

/// A single lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule id (`D01`..`D11`, `A00`).
    pub rule: &'static str,
    /// Workspace-relative path, forward slashes.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// The trimmed source line the finding sits on (the baseline key).
    pub snippet: String,
    /// Human-readable explanation.
    pub message: String,
}

/// Rule metadata: a one-line summary for `--list-rules` and the longer
/// rationale behind `--explain <RULE>`.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// Rule id (`D01`..`D11`, `A00`).
    pub id: &'static str,
    /// One-line summary of what the rule matches.
    pub summary: &'static str,
    /// Why the rule exists — the invariant it protects.
    pub rationale: &'static str,
}

/// The rule table, in id order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "A00",
        summary: "malformed geospan-analyze directive (needs allow(<rule>, <reason>))",
        rationale: "Suppressions are part of the reviewed source: a directive that fails to \
                    parse would otherwise silently suppress nothing while looking like it \
                    does. Malformed directives are findings so typos cannot create \
                    unenforced exemptions.",
    },
    RuleInfo {
        id: "D01",
        summary: "iteration over std HashMap/HashSet in non-test code: unordered iteration \
                  makes results order-dependent; use BTreeMap/BTreeSet or sort before \
                  consuming",
        rationale: "Every artifact the workspace ships (Table-1 rows, traffic CSVs, bench \
                    JSON) is contractually byte-identical across runs. Hash iteration \
                    order changes between processes (SipHash keys), so any hash-ordered \
                    loop that feeds an output breaks the contract nondeterministically \
                    and rarely — the worst kind of bug to bisect.",
    },
    RuleInfo {
        id: "D02",
        summary: "wall-clock / OS-entropy / raw-thread API (Instant::now, SystemTime, \
                  thread_rng, std::thread::spawn): nondeterministic outside the sim clock \
                  and the rayon stub",
        rationale: "The simulator owns time (ticks) and randomness (seeded RNGs). Wall \
                    clocks and OS entropy smuggle the host into the simulation, making \
                    runs unreproducible; raw thread spawns reorder events. Measurement \
                    code uses the bench harness's clock, never the library's.",
    },
    RuleInfo {
        id: "D03",
        summary: "partial_cmp(..).unwrap()/expect() float comparator: panics on NaN and \
                  invites inconsistent orderings; use f64::total_cmp",
        rationale: "A partial order resolved with unwrap() is a latent panic (NaN) and a \
                    latent nondeterminism (sort implementations may compare in different \
                    orders). f64::total_cmp is total, stable, and free.",
    },
    RuleInfo {
        id: "D04",
        summary: "bare .unwrap() in non-test code: panics without a recorded reason; use \
                  expect(\"why\") or an allow directive",
        rationale: "Every panic path in library code is a claim that the state is \
                    impossible. expect(\"why\") records the claim so the panic message \
                    carries it; a bare unwrap() records nothing and reads as an oversight.",
    },
    RuleInfo {
        id: "D05",
        summary: "float accumulation through a parallel iterator (sum/fold/reduce after \
                  par_iter): reduction order depends on the scheduler; fold serially in a \
                  fixed order",
        rationale: "Float addition is not associative: parallel reduction order changes \
                    the low bits, and the workspace's outputs are compared bit-for-bit \
                    across thread counts in CI. Parallelize the map, collect, then fold \
                    in index order.",
    },
    RuleInfo {
        id: "D06",
        summary: "node-id-keyed BTreeMap<usize, _>/BTreeSet<usize> in a construction \
                  crate: the hot path uses flat arenas (VecMap/VecSet from geospan-graph) \
                  with identical ascending iteration; BTree stays only where a non-usize \
                  key (pair/triple/tuple) encodes message-emission order",
        rationale: "PR 7 moved the million-node construction path to flat index-keyed \
                    arenas; a node-id-keyed BTree reintroduces pointer-chasing and \
                    per-node allocation on exactly the structures the arena refactor \
                    flattened. VecMap/VecSet iterate in the same ascending order, so the \
                    swap is behavior-preserving.",
    },
    RuleInfo {
        id: "D07",
        summary: "raw threading primitive (std::thread, Barrier, Condvar, mpsc channels) \
                  outside the sharded engine driver: bit-identical results are only \
                  proven for the barrier protocol in crates/traffic/src/shard.rs; \
                  everything else parallelizes through the rayon facade",
        rationale: "The shard driver's two-barrier round protocol carries the \
                    determinism proof (DESIGN.md §11). Any other thread coordination \
                    would need its own proof; until one exists, raw primitives anywhere \
                    else are presumed to reorder events.",
    },
    RuleInfo {
        id: "D08",
        summary: "DropCause ledger coupling: every variant needs a DropCounts field, an \
                  accounting site in engine.rs/shard.rs, and a drops.<field> CSV column \
                  in crates/bench/src (and no orphan DropCounts fields)",
        rationale: "The conservation ledger (offered == delivered + drops.total() + \
                    refused) is the engine's ground truth, and every PR that adds a drop \
                    cause must extend three files in lockstep. A variant missing its \
                    field, accounting site, or CSV column silently under-reports drops — \
                    the ledger still balances, so no runtime check catches it. Only a \
                    cross-file structural check can.",
    },
    RuleInfo {
        id: "D09",
        summary: "RNG seed taint: from_entropy/thread_rng/rand::random banned; \
                  seed_from_u64/from_seed arguments must be a named seed, a literal, or \
                  a fn parameter that provably receives one (one level of indirection)",
        rationale: "Bit-identical replay requires every RNG to be a pure function of \
                    configuration. An RNG seeded from OS entropy — or from a helper \
                    parameter nobody can trace back to a seed — makes a run \
                    unreproducible in a way that only shows up when someone tries to \
                    replay a failure. Seeds must be visibly named at the construction \
                    site or one hop away.",
    },
    RuleInfo {
        id: "D10",
        summary: "phase confinement: engine shared state (queues, heaps, store, ledger \
                  counters) mutated only inside phase_local/phase_merge or helpers \
                  reachable from them in engine.rs/shard.rs",
        rationale: "PR 8's shard byte-identity proof rests on the tick being exactly \
                    four canonical phases: arrivals, retries, service completions, merge. \
                    A mutation reachable from anywhere else (driver loops, aggregation, \
                    accessors) executes at a point the proof never ordered, so any shard \
                    or thread count could observe a different interleaving. The rule \
                    makes the proof's premise structural.",
    },
    RuleInfo {
        id: "D11",
        summary: "panic!/unreachable!/todo!/unimplemented! in non-test library code must \
                  be inside a #[cfg(feature = \"invariant-checks\")] item or carry an \
                  allow directive (bin targets exempt)",
        rationale: "A production engine serving traffic must degrade, not abort: panics \
                    in library code are reserved for the invariant-checks build, where \
                    hard assertions are the point. Everything else either returns an \
                    error or documents — via the allow directive's reason — why the \
                    state is truly impossible. CLI binaries may panic on bad arguments; \
                    that is their error reporting.",
    },
];

/// Files allowed to use raw threading primitives (rule D07): the
/// sharded traffic engine's driver, whose two-barrier round protocol
/// carries the determinism proof (see DESIGN.md §11).
const D07_EXEMPT: &[&str] = &["crates/traffic/src/shard.rs"];

/// Crates whose construction hot path is arena-backed (rule D06). Paths
/// are workspace-relative with forward slashes; `src/` excludes the
/// `tests/` oracles, which deliberately keep the pre-refactor containers.
const D06_CRATES: &[&str] = &[
    "crates/geometry/src/",
    "crates/graph/src/",
    "crates/topology/src/",
    "crates/cds/src/",
];

/// Iterator-producing methods on hash collections (rule D01).
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "into_keys",
    "values",
    "values_mut",
    "into_values",
    "drain",
];

/// Chain sinks whose result is independent of iteration order.
const ORDER_FREE_SINKS: &[&str] = &["any", "all", "count", "contains", "is_empty", "len"];

/// Parallel-iterator entry points (rule D05).
const PAR_ITER: &[&str] = &[
    "par_iter",
    "into_par_iter",
    "par_iter_mut",
    "par_chunks",
    "par_bridge",
];

/// Order-sensitive reducers on a parallel chain (rule D05).
const PAR_REDUCERS: &[&str] = &["sum", "product", "fold", "reduce", "reduce_with"];

/// Runs every per-file rule over one file's source and returns the raw
/// findings (inline directives already applied; malformed directives
/// reported). The cross-file rules (D08–D10) need the whole workspace —
/// see [`crate::analyze_sources`].
pub fn check_source(path: &str, src: &str) -> Vec<Finding> {
    let pf = parse(path, src);
    apply_directives(check_file(&pf), &pf.lexed)
}

/// Runs the per-file rules over one parsed file. Directives are *not*
/// applied here — the caller applies them once, after the cross-file
/// rules have contributed their findings for this path.
pub fn check_file(pf: &ParsedFile) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut emit = |rule: &'static str, line: u32, message: String| {
        findings.push(Finding {
            rule,
            path: pf.path.clone(),
            line,
            snippet: pf.snippet(line),
            message,
        });
    };

    for d in &pf.lexed.directives {
        if d.malformed {
            emit(
                "A00",
                d.line,
                "malformed directive: expected `geospan-analyze: allow(<rule>, <reason>)` \
                 with a known rule id and a non-empty reason"
                    .to_string(),
            );
        }
    }

    let toks = &pf.lexed.tokens;
    let in_test = |line: u32| pf.in_test(line);

    rule_d01(toks, &in_test, &mut emit);
    rule_d02(toks, &in_test, &mut emit);
    rule_d03(toks, &in_test, &mut emit);
    rule_d04(toks, &in_test, &mut emit);
    rule_d05(toks, &in_test, &mut emit);
    rule_d06(&pf.path, toks, &in_test, &mut emit);
    rule_d07(&pf.path, toks, &in_test, &mut emit);
    rule_d11(pf, &mut emit);

    findings
}

/// Drops findings covered by a well-formed allow directive on the same
/// line or the directly preceding line.
pub(crate) fn apply_directives(findings: Vec<Finding>, lexed: &Lexed) -> Vec<Finding> {
    let allows: Vec<&Directive> = lexed.directives.iter().filter(|d| !d.malformed).collect();
    findings
        .into_iter()
        .filter(|f| {
            !allows
                .iter()
                .any(|d| d.rule == f.rule && (d.line == f.line || d.line + 1 == f.line))
        })
        .collect()
}

/// D01 — iteration over `HashMap`/`HashSet`.
fn rule_d01(
    toks: &[Tok],
    in_test: &dyn Fn(u32) -> bool,
    emit: &mut dyn FnMut(&'static str, u32, String),
) {
    let hashy = collect_hash_names(toks);
    if hashy.is_empty() {
        return;
    }
    let mut i = 0;
    while i < toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            i += 1;
            continue;
        }
        match t.text.as_str() {
            // `for <pat> in <expr> {` with a hash-typed name in the expr.
            "for" => {
                if let Some(in_pos) = find_for_in(toks, i) {
                    let mut j = in_pos + 1;
                    let mut depth = 0usize;
                    let mut hit: Option<(u32, String)> = None;
                    while j < toks.len() {
                        let u = &toks[j];
                        match u.text.as_str() {
                            "(" | "[" => depth += 1,
                            ")" | "]" => depth = depth.saturating_sub(1),
                            "{" if depth == 0 => break,
                            _ => {}
                        }
                        if u.kind == TokKind::Ident && hashy.contains(&u.text) && hit.is_none() {
                            hit = Some((u.line, u.text.clone()));
                        }
                        j += 1;
                    }
                    if let Some((line, name)) = hit {
                        if !in_test(line) {
                            emit(
                                "D01",
                                line,
                                format!(
                                    "`for` over hash collection `{name}`: iteration order is \
                                     unspecified; use BTreeMap/BTreeSet or sort first"
                                ),
                            );
                        }
                    }
                    i = j;
                    continue;
                }
            }
            // `<hashy>.iter()`-family with an order-sensitive consumer.
            name if hashy.contains(&t.text) => {
                if let Some((method, after_call)) = method_call_after(toks, i) {
                    if ITER_METHODS.contains(&method.as_str()) {
                        let line = t.line;
                        if !in_test(line) && !chain_is_order_free(toks, after_call) {
                            emit(
                                "D01",
                                line,
                                format!(
                                    "iteration over hash collection `{name}` feeds an \
                                     order-sensitive consumer; use BTreeMap/BTreeSet, sort, \
                                     or an order-free sink (any/all/count)"
                                ),
                            );
                        }
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }
}

/// Names declared with a `HashMap`/`HashSet` type or initializer in this
/// file (struct fields, lets, fn params — anything shaped `name :` or
/// `name =` followed by a path ending in the hash type).
fn collect_hash_names(toks: &[Tok]) -> std::collections::BTreeSet<String> {
    let mut out = std::collections::BTreeSet::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || (t.text != "HashMap" && t.text != "HashSet") {
            continue;
        }
        // Walk back over the path prefix (`std :: collections ::`).
        let mut j = i;
        while j >= 2 && toks[j - 1].text == ":" && toks[j - 2].text == ":" {
            if j >= 3 && toks[j - 3].kind == TokKind::Ident {
                j -= 3;
            } else {
                break;
            }
        }
        if j == 0 {
            continue;
        }
        // `name : [&]*[mut]? [Vec <]? path::HashMap` — accept a couple of
        // wrapper tokens between the colon and the path head.
        let mut k = j - 1;
        let mut steps = 0;
        while steps < 4 {
            match toks[k].text.as_str() {
                "&" | "mut" | "Vec" | "<" => {
                    if k == 0 {
                        break;
                    }
                    k -= 1;
                    steps += 1;
                }
                _ => break,
            }
        }
        let bindish = toks[k].text == ":" || toks[k].text == "=";
        if bindish && k > 0 && toks[k - 1].kind == TokKind::Ident {
            // Skip `::` paths masquerading: `a::HashMap` handled above.
            if !(toks[k].text == ":" && k >= 2 && toks[k - 2].text == ":") {
                out.insert(toks[k - 1].text.clone());
            }
        }
    }
    out
}

/// For a `for` at `i`, the position of its depth-0 `in` (None for
/// `for<'a>` HRTBs and malformed input).
fn find_for_in(toks: &[Tok], i: usize) -> Option<usize> {
    if toks.get(i + 1).map(|t| t.kind) == Some(TokKind::Lifetime)
        || toks.get(i + 1).map(|t| t.text.as_str()) == Some("<")
    {
        return None;
    }
    let mut depth = 0usize;
    for (j, t) in toks.iter().enumerate().skip(i + 1).take(64) {
        match t.text.as_str() {
            "(" | "[" => depth += 1,
            ")" | "]" => depth = depth.saturating_sub(1),
            "in" if depth == 0 => return Some(j),
            "{" | ";" => return None,
            _ => {}
        }
    }
    None
}

/// If `toks[i]` is followed by `.method(`, returns the method name and
/// the index just past the call's matching `)`.
fn method_call_after(toks: &[Tok], i: usize) -> Option<(String, usize)> {
    if toks.get(i + 1)?.text != "." {
        return None;
    }
    let m = toks.get(i + 2)?;
    if m.kind != TokKind::Ident || toks.get(i + 3)?.text != "(" {
        return None;
    }
    let mut depth = 1usize;
    let mut j = i + 4;
    while j < toks.len() && depth > 0 {
        match toks[j].text.as_str() {
            "(" => depth += 1,
            ")" => depth -= 1,
            _ => {}
        }
        j += 1;
    }
    Some((m.text.clone(), j))
}

/// Walks a method chain starting at `pos` (just past a call) and decides
/// whether the eventual sink is order-independent: an order-free
/// terminal (`any`, `all`, `count`, ...) or a `collect` into a `BTree*`
/// collection.
fn chain_is_order_free(toks: &[Tok], mut pos: usize) -> bool {
    loop {
        if toks.get(pos).map(|t| t.text.as_str()) != Some(".") {
            return false;
        }
        let Some(m) = toks.get(pos + 1) else {
            return false;
        };
        if m.kind != TokKind::Ident {
            return false;
        }
        if ORDER_FREE_SINKS.contains(&m.text.as_str()) {
            return true;
        }
        if m.text == "collect" {
            // Order-free only when collecting back into an ordered or
            // unordered *set/map*, where insertion order can't leak:
            // look for BTreeSet/BTreeMap/HashSet/HashMap in the turbofish.
            for t in toks.iter().skip(pos + 2).take(8) {
                if matches!(
                    t.text.as_str(),
                    "BTreeSet" | "BTreeMap" | "HashSet" | "HashMap"
                ) {
                    return true;
                }
                if matches!(t.text.as_str(), "(" | ";") {
                    break;
                }
            }
            return false;
        }
        // Adapter (`map`, `filter`, `copied`, ...): skip its args.
        match toks.get(pos + 2).map(|t| t.text.as_str()) {
            Some("(") => {
                let mut depth = 1usize;
                let mut j = pos + 3;
                while j < toks.len() && depth > 0 {
                    match toks[j].text.as_str() {
                        "(" => depth += 1,
                        ")" => depth -= 1,
                        _ => {}
                    }
                    j += 1;
                }
                pos = j;
            }
            Some("::") => {
                // Turbofish on an adapter; too rare to chase. Treat as
                // order-sensitive.
                return false;
            }
            _ => return false,
        }
    }
}

/// D02 — wall clock, OS entropy, raw threads.
fn rule_d02(
    toks: &[Tok],
    in_test: &dyn Fn(u32) -> bool,
    emit: &mut dyn FnMut(&'static str, u32, String),
) {
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || in_test(t.line) {
            continue;
        }
        let flagged = match t.text.as_str() {
            "Instant" | "SystemTime" => true,
            "thread_rng" => true,
            "spawn" => {
                i >= 2 && toks[i - 1].text == ":" && toks[i - 2].text == ":" && {
                    toks.get(i.wrapping_sub(3)).map(|t| t.text.as_str()) == Some("thread")
                }
            }
            _ => false,
        };
        if flagged {
            emit(
                "D02",
                t.line,
                format!(
                    "`{}` is nondeterministic (wall clock / OS entropy / raw threads); \
                     use the sim clock, seeded RNGs, or the rayon stub",
                    t.text
                ),
            );
        }
    }
}

/// D03 — `partial_cmp` comparators resolved with `unwrap`/`expect`.
fn rule_d03(
    toks: &[Tok],
    in_test: &dyn Fn(u32) -> bool,
    emit: &mut dyn FnMut(&'static str, u32, String),
) {
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || t.text != "partial_cmp" || in_test(t.line) {
            continue;
        }
        // Skip the `fn partial_cmp` of a PartialOrd impl.
        if i > 0 && toks[i - 1].text == "fn" {
            continue;
        }
        // Scan the rest of the statement for unwrap/expect.
        let mut depth = 0i32;
        for u in toks.iter().skip(i + 1).take(80) {
            match u.text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    depth -= 1;
                    if depth < -1 {
                        break;
                    }
                }
                ";" if depth <= 0 => break,
                "unwrap" | "expect" if u.kind == TokKind::Ident => {
                    emit(
                        "D03",
                        t.line,
                        "float comparator via partial_cmp().unwrap()/expect(): NaN panics \
                         and the ordering is not total; use f64::total_cmp"
                            .to_string(),
                    );
                    break;
                }
                _ => {}
            }
        }
    }
}

/// D04 — bare `.unwrap()` without a recorded reason.
fn rule_d04(
    toks: &[Tok],
    in_test: &dyn Fn(u32) -> bool,
    emit: &mut dyn FnMut(&'static str, u32, String),
) {
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || t.text != "unwrap" || in_test(t.line) {
            continue;
        }
        let dotted = i > 0 && toks[i - 1].text == ".";
        let called = toks.get(i + 1).map(|t| t.text.as_str()) == Some("(")
            && toks.get(i + 2).map(|t| t.text.as_str()) == Some(")");
        if dotted && called {
            emit(
                "D04",
                t.line,
                "bare .unwrap() in non-test code: record the reason with expect(\"...\") \
                 or an allow directive"
                    .to_string(),
            );
        }
    }
}

/// D05 — order-sensitive reduction on a parallel iterator chain.
fn rule_d05(
    toks: &[Tok],
    in_test: &dyn Fn(u32) -> bool,
    emit: &mut dyn FnMut(&'static str, u32, String),
) {
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || !PAR_ITER.contains(&t.text.as_str()) || in_test(t.line) {
            continue;
        }
        // Scan the rest of the statement for a reducing combinator at
        // chain position (preceded by `.`).
        let mut depth = 0i32;
        let mut j = i + 1;
        while j < toks.len() && j < i + 200 {
            let u = &toks[j];
            match u.text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    depth -= 1;
                    if depth < -1 {
                        break;
                    }
                }
                ";" if depth <= 0 => break,
                name if u.kind == TokKind::Ident
                    && PAR_REDUCERS.contains(&name)
                    && toks[j - 1].text == "." =>
                {
                    emit(
                        "D05",
                        u.line,
                        format!(
                            "`{name}` on a parallel iterator: float accumulation order \
                             depends on chunking; collect and fold serially in index order"
                        ),
                    );
                    break;
                }
                _ => {}
            }
            j += 1;
        }
    }
}

/// D06: node-id-keyed `BTreeMap<usize, _>` / `BTreeSet<usize>` in the
/// arena-backed construction crates. Matches the literal token shapes
/// `BTreeSet < usize >` and `BTreeMap < usize ,` — the order-load-bearing
/// survivors are keyed by pairs, triples, or tuples and never match.
fn rule_d06(
    path: &str,
    toks: &[Tok],
    in_test: &dyn Fn(u32) -> bool,
    emit: &mut dyn FnMut(&'static str, u32, String),
) {
    if !D06_CRATES.iter().any(|c| path.starts_with(c)) {
        return;
    }
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || in_test(t.line) {
            continue;
        }
        let (name, closer) = match t.text.as_str() {
            "BTreeSet" => ("BTreeSet<usize>", ">"),
            "BTreeMap" => ("BTreeMap<usize, _>", ","),
            _ => continue,
        };
        let keyed_by_node_id = toks.get(i + 1).map(|u| u.text.as_str()) == Some("<")
            && toks.get(i + 2).map(|u| u.text.as_str()) == Some("usize")
            && toks.get(i + 3).map(|u| u.text.as_str()) == Some(closer);
        if keyed_by_node_id {
            emit(
                "D06",
                t.line,
                format!(
                    "`{name}` keyed by node id in a construction crate: use VecSet/VecMap \
                     from geospan-graph (same ascending iteration, flat storage)"
                ),
            );
        }
    }
}

/// D07 — raw threading primitives outside the blessed shard driver.
/// Matches the `std::thread` module path (`thread ::` — scope, spawn,
/// sleep, builders) and the synchronization idents `Barrier`,
/// `Condvar`, and `mpsc`. `Mutex`/`Arc` alone are not flagged: without
/// threads to race they cannot reorder anything.
fn rule_d07(
    path: &str,
    toks: &[Tok],
    in_test: &dyn Fn(u32) -> bool,
    emit: &mut dyn FnMut(&'static str, u32, String),
) {
    if D07_EXEMPT.contains(&path) {
        return;
    }
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || in_test(t.line) {
            continue;
        }
        let flagged = match t.text.as_str() {
            "Barrier" | "Condvar" | "mpsc" => true,
            "thread" => {
                toks.get(i + 1).map(|u| u.text.as_str()) == Some(":")
                    && toks.get(i + 2).map(|u| u.text.as_str()) == Some(":")
            }
            _ => false,
        };
        if flagged {
            emit(
                "D07",
                t.line,
                format!(
                    "`{}` is a raw threading primitive: deterministic parallelism lives in \
                     the sharded engine driver (crates/traffic/src/shard.rs) or behind the \
                     rayon facade; anything else reorders events",
                    t.text
                ),
            );
        }
    }
}

/// Panicking macros in scope for rule D11.
const D11_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// D11 — panic policy. Panicking macros in non-test library code must
/// sit inside a `#[cfg(feature = "invariant-checks")]` item (where hard
/// assertions are the point) or carry an allow directive recording why
/// the state is impossible. Binary targets (`src/bin/`, `main.rs`) are
/// exempt: a CLI panicking on bad arguments is its error reporting.
fn rule_d11(pf: &ParsedFile, emit: &mut dyn FnMut(&'static str, u32, String)) {
    if pf.path.contains("/bin/") || pf.path.ends_with("/main.rs") || pf.path == "main.rs" {
        return;
    }
    let toks = &pf.lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || !D11_MACROS.contains(&t.text.as_str()) {
            continue;
        }
        if toks.get(i + 1).map(|u| u.text.as_str()) != Some("!") {
            continue;
        }
        if pf.in_test(t.line) || pf.invariant_lines.contains(&t.line) {
            continue;
        }
        emit(
            "D11",
            t.line,
            format!(
                "`{}!` in non-test library code: gate it behind \
                 #[cfg(feature = \"invariant-checks\")], return an error, or record why \
                 the state is impossible with an allow(D11, ...) directive",
                t.text
            ),
        );
    }
}
