//! Cross-file coupling rules (D08–D10).
//!
//! These rules see the whole workspace at once, as a slice of
//! [`ParsedFile`]s, and check invariants no single file can witness:
//! the drop-cause ledger coupling (D08), seed provenance through helper
//! fns (D09), and phase confinement of engine state mutation (D10).
//! Each rule names its anchor files by workspace-relative path and
//! silently skips when the anchors are absent, so synthetic workspaces
//! in tests can opt in by using the real paths.

use crate::lexer::{Tok, TokKind};
use crate::parser::ParsedFile;
use crate::rules::Finding;
use std::collections::{BTreeMap, BTreeSet};

/// The file declaring `DropCause` and `DropCounts` (rule D08).
const D08_REPORT: &str = "crates/traffic/src/report.rs";
/// Files where every drop cause must have an accounting site (D08) and
/// the only files where engine shared state may be mutated (D10).
const ENGINE_FILES: &[&str] = &[
    "crates/traffic/src/engine.rs",
    "crates/traffic/src/shard.rs",
];
/// Directory whose CSV writers must column-ize every drop cause (D08).
const D08_BENCH_DIR: &str = "crates/bench/src/";

/// The canonical tick phases (DESIGN.md §11): the only roots from which
/// engine shared state may be mutated (D10).
const D10_ROOTS: &[&str] = &["phase_local", "phase_merge"];
/// Shared-state containers whose mutating calls are confined (D10).
const D10_CONTAINERS: &[&str] = &["services", "retries", "done", "queue", "store", "outboxes"];
/// Mutating methods on those containers.
const D10_MUT_METHODS: &[&str] = &[
    "push",
    "pop",
    "push_back",
    "pop_front",
    "drain",
    "clear",
    "take",
];
/// Ledger counters whose `+=`/`-=` is confined (D10). All are fields
/// (the pattern requires a preceding `.`), so same-named locals in
/// aggregation code never match.
const D10_COUNTERS: &[&str] = &[
    "rounds",
    "idle_rounds",
    "cursor",
    "events",
    "boundary_in",
    "retransmissions",
    "duplicates_suppressed",
    "enqueue_seq",
];

/// RNG constructors whose seed argument must be provably seeded (D09).
const D09_SEED_CTORS: &[&str] = &["seed_from_u64", "from_seed"];
/// Idents that never launder a seed argument (casts and int types).
const D09_BENIGN: &[&str] = &["as", "u8", "u16", "u32", "u64", "u128", "usize"];

/// Runs all cross-file rules over the parsed workspace.
pub fn check_workspace(files: &[ParsedFile]) -> Vec<Finding> {
    let mut findings = Vec::new();
    check_d08(files, &mut findings);
    check_d09(files, &mut findings);
    check_d10(files, &mut findings);
    findings
}

fn emit(out: &mut Vec<Finding>, rule: &'static str, pf: &ParsedFile, line: u32, message: String) {
    out.push(Finding {
        rule,
        path: pf.path.clone(),
        line,
        snippet: pf.snippet(line),
        message,
    });
}

/// Converts a CamelCase variant name to its snake_case field name.
fn snake_case(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 4);
    for (i, c) in name.chars().enumerate() {
        if c.is_ascii_uppercase() {
            if i > 0 {
                out.push('_');
            }
            out.push(c.to_ascii_lowercase());
        } else {
            out.push(c);
        }
    }
    out
}

/// True when tokens `seq` appear consecutively anywhere in `toks`,
/// optionally restricted to non-test lines.
fn has_token_seq(pf: &ParsedFile, seq: &[&str], skip_tests: bool) -> bool {
    let toks = &pf.lexed.tokens;
    toks.windows(seq.len()).any(|w| {
        w.iter().zip(seq).all(|(t, s)| t.text == *s) && !(skip_tests && pf.in_test(w[0].line))
    })
}

/// D08 — ledger-exhaustiveness coupling. Every `DropCause` variant must
/// have: a snake_case `DropCounts` field, an accounting site
/// (`DropCause::Variant`) in the engine files, a `drops.<field>` read in
/// the bench CSV writers, and coverage in every non-wildcard `match` on
/// a cause in the report file. Orphan `DropCounts` fields (no matching
/// variant) are also findings.
fn check_d08(files: &[ParsedFile], out: &mut Vec<Finding>) {
    let Some(report) = files.iter().find(|f| f.path == D08_REPORT) else {
        return;
    };
    let Some(cause) = report.enums.iter().find(|e| e.name == "DropCause") else {
        return;
    };
    let Some(counts) = report.structs.iter().find(|s| s.name == "DropCounts") else {
        return;
    };
    let engines: Vec<&ParsedFile> = files
        .iter()
        .filter(|f| ENGINE_FILES.contains(&f.path.as_str()))
        .collect();
    let bench: Vec<&ParsedFile> = files
        .iter()
        .filter(|f| f.path.starts_with(D08_BENCH_DIR))
        .collect();
    let field_names: BTreeSet<&str> = counts.fields.iter().map(|(n, _)| n.as_str()).collect();

    for (variant, vline) in &cause.variants {
        let field = snake_case(variant);
        if !field_names.contains(field.as_str()) {
            emit(
                out,
                "D08",
                report,
                *vline,
                format!(
                    "DropCause::{variant} has no `{field}` field in DropCounts: the \
                     conservation ledger (offered == delivered + drops + refused) \
                     cannot bucket this cause"
                ),
            );
        }
        if !engines.is_empty()
            && !engines
                .iter()
                .any(|f| has_token_seq(f, &["DropCause", ":", ":", variant], true))
        {
            emit(
                out,
                "D08",
                report,
                *vline,
                format!(
                    "DropCause::{variant} is never recorded in \
                     crates/traffic/src/engine.rs or shard.rs: the variant has no \
                     accounting site, so its ledger column stays zero forever"
                ),
            );
        }
        if !bench.is_empty()
            && !bench
                .iter()
                .any(|f| has_token_seq(f, &["drops", ".", &field], false))
        {
            emit(
                out,
                "D08",
                report,
                *vline,
                format!(
                    "DropCause::{variant} has no `drops.{field}` read under \
                     crates/bench/src/: the CSV writers will silently omit this \
                     cause's column"
                ),
            );
        }
    }

    // Orphan fields: a DropCounts field with no originating variant.
    let variant_fields: BTreeSet<String> =
        cause.variants.iter().map(|(v, _)| snake_case(v)).collect();
    for (field, fline) in &counts.fields {
        if !variant_fields.contains(field) {
            emit(
                out,
                "D08",
                report,
                *fline,
                format!(
                    "DropCounts field `{field}` matches no DropCause variant: \
                     dead ledger column (or a renamed variant left it behind)"
                ),
            );
        }
    }

    // Structural exhaustiveness: every match over a cause in report.rs
    // whose arms name `DropCause ::` must cover all variants or carry a
    // wildcard arm.
    for m in &report.matches {
        let mentions_cause = m.arms.iter().any(|(p, _)| p.contains("DropCause ::"));
        if !mentions_cause {
            continue;
        }
        let has_wildcard = m.arms.iter().any(|(p, _)| p.trim() == "_");
        if has_wildcard {
            continue;
        }
        for (variant, _) in &cause.variants {
            let covered = m
                .arms
                .iter()
                .any(|(p, _)| p.contains(&format!(":: {variant}")));
            if !covered {
                emit(
                    out,
                    "D08",
                    report,
                    m.line,
                    format!(
                        "match on a drop cause does not cover DropCause::{variant} \
                         and has no wildcard arm: record() would drop the count"
                    ),
                );
            }
        }
    }
}

/// D09 — RNG seed taint. `from_entropy` / `thread_rng` / `rand::random`
/// are banned outright; `seed_from_u64` / `from_seed` arguments must be
/// a named seed (ident containing "seed"), a literal constant, or a fn
/// parameter whose every call site passes one (one level of
/// indirection).
fn check_d09(files: &[ParsedFile], out: &mut Vec<Finding>) {
    for pf in files {
        let toks = &pf.lexed.tokens;
        for (i, t) in toks.iter().enumerate() {
            if t.kind != TokKind::Ident || pf.in_test(t.line) {
                continue;
            }
            match t.text.as_str() {
                "from_entropy" | "thread_rng" => {
                    emit(
                        out,
                        "D09",
                        pf,
                        t.line,
                        format!(
                            "`{}` draws OS entropy: every RNG must be constructed \
                             from a named seed so runs replay bit-identically",
                            t.text
                        ),
                    );
                }
                "random"
                    if i >= 3
                        && toks[i - 1].text == ":"
                        && toks[i - 2].text == ":"
                        && toks[i - 3].text == "rand" =>
                {
                    emit(
                        out,
                        "D09",
                        pf,
                        t.line,
                        "`rand::random` draws from the thread-local OS-seeded RNG; \
                         construct a seeded RNG instead"
                            .to_string(),
                    );
                }
                ctor if D09_SEED_CTORS.contains(&ctor) => {
                    check_seed_arg(files, pf, i, out);
                }
                _ => {}
            }
        }
    }
}

/// Checks the first argument of a `seed_from_u64`/`from_seed` call at
/// token index `i`.
fn check_seed_arg(files: &[ParsedFile], pf: &ParsedFile, i: usize, out: &mut Vec<Finding>) {
    let toks = &pf.lexed.tokens;
    let ctor = toks[i].text.clone();
    // Only calls: `seed_from_u64 (` — a bare mention (use item, fn
    // definition in a trait impl) is not a construction.
    if toks.get(i + 1).map(|t| t.text.as_str()) != Some("(") {
        return;
    }
    if i > 0 && toks[i - 1].text == "fn" {
        return; // defining the method, not calling it
    }
    let args = call_args(toks, i + 1);
    let Some(arg) = args.first() else {
        return; // zero-arg call: not the seeding ctor shape
    };
    if seedish(arg) {
        return;
    }
    // One level of indirection: a single-ident argument that is a
    // parameter of the enclosing fn is OK when every call site of that
    // fn passes a seedish value at the same position.
    let idents: Vec<&Tok> = arg.iter().filter(|t| t.kind == TokKind::Ident).collect();
    if let [only] = idents.as_slice() {
        if let Some(f) = pf.enclosing_fn(i) {
            if let Some(pos) = f.params.iter().position(|p| p == &only.text) {
                let sites = call_sites(files, &f.name);
                if !sites.is_empty()
                    && sites
                        .iter()
                        .all(|(_, _, args)| args.get(pos).map(|a| seedish(a)).unwrap_or(false))
                {
                    return;
                }
                let bad = sites
                    .iter()
                    .find(|(_, _, args)| !args.get(pos).map(|a| seedish(a)).unwrap_or(false));
                let detail = match bad {
                    Some((path, line, _)) => {
                        format!("call site {path}:{line} passes an unproven value")
                    }
                    None => "no call sites found to prove the flow".to_string(),
                };
                emit(
                    out,
                    "D09",
                    pf,
                    toks[i].line,
                    format!(
                        "`{ctor}` seeded from parameter `{}` of fn `{}`, but the \
                         seed flow is unproven ({detail}); rename the parameter to \
                         contain \"seed\" or pass a named seed",
                        only.text, f.name
                    ),
                );
                return;
            }
        }
    }
    emit(
        out,
        "D09",
        pf,
        toks[i].line,
        format!(
            "`{ctor}` argument is not a named seed, a literal, or a traceable \
             fn parameter: seeds must flow from configuration so runs replay"
        ),
    );
}

/// True when the token slice is an acceptable seed expression: it names
/// an ident containing "seed", or is a constant expression (literals,
/// casts, punctuation only).
fn seedish(arg: &[Tok]) -> bool {
    let mut has_literal = false;
    let mut has_other_ident = false;
    for t in arg {
        match t.kind {
            TokKind::Ident => {
                if t.text.to_ascii_lowercase().contains("seed") {
                    return true;
                }
                if !D09_BENIGN.contains(&t.text.as_str()) {
                    has_other_ident = true;
                }
            }
            TokKind::Literal => has_literal = true,
            _ => {}
        }
    }
    has_literal && !has_other_ident
}

/// Splits the argument tokens of a call whose `(` sits at `open` into
/// top-level comma-separated slices.
fn call_args(toks: &[Tok], open: usize) -> Vec<Vec<Tok>> {
    let mut args: Vec<Vec<Tok>> = Vec::new();
    let mut cur: Vec<Tok> = Vec::new();
    let mut depth = 0usize;
    let mut j = open;
    while j < toks.len() {
        match toks[j].text.as_str() {
            "(" | "[" | "{" => {
                depth += 1;
                if depth > 1 {
                    cur.push(toks[j].clone());
                }
            }
            ")" | "]" | "}" => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    break;
                }
                cur.push(toks[j].clone());
            }
            "," if depth == 1 => {
                args.push(std::mem::take(&mut cur));
            }
            _ => {
                if depth >= 1 {
                    cur.push(toks[j].clone());
                }
            }
        }
        j += 1;
    }
    if !cur.is_empty() {
        args.push(cur);
    }
    args
}

/// All call sites of `name` across the workspace: `(path, line, args)`.
/// Definitions (`fn name(`) are excluded.
fn call_sites(files: &[ParsedFile], name: &str) -> Vec<(String, u32, Vec<Vec<Tok>>)> {
    let mut out = Vec::new();
    for pf in files {
        let toks = &pf.lexed.tokens;
        for (i, t) in toks.iter().enumerate() {
            if t.kind != TokKind::Ident || t.text != name {
                continue;
            }
            if toks.get(i + 1).map(|t| t.text.as_str()) != Some("(") {
                continue;
            }
            if i > 0 && toks[i - 1].text == "fn" {
                continue;
            }
            out.push((pf.path.clone(), t.line, call_args(toks, i + 1)));
        }
    }
    out
}

/// D10 — phase confinement. In the engine files, mutations of shared
/// engine state (container push/pop/drain, `store[..] =`, ledger
/// counter `+=`) may only happen inside the canonical phase fns
/// (`phase_local`, `phase_merge`) or helpers reachable from them
/// through the intra-engine call graph.
fn check_d10(files: &[ParsedFile], out: &mut Vec<Finding>) {
    let scope: Vec<&ParsedFile> = files
        .iter()
        .filter(|f| ENGINE_FILES.contains(&f.path.as_str()))
        .collect();
    if scope.is_empty() {
        return;
    }
    // All fn names defined in scope, and the call graph between them.
    let mut defined: BTreeSet<&str> = BTreeSet::new();
    for pf in &scope {
        for f in &pf.fns {
            defined.insert(f.name.as_str());
        }
    }
    let mut calls: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for pf in &scope {
        let toks = &pf.lexed.tokens;
        for f in &pf.fns {
            let Some((open, close)) = f.body else {
                continue;
            };
            let callees = calls.entry(f.name.as_str()).or_default();
            for j in open..=close.min(toks.len().saturating_sub(1)) {
                let t = &toks[j];
                if t.kind == TokKind::Ident
                    && defined.contains(t.text.as_str())
                    && toks.get(j + 1).map(|u| u.text.as_str()) == Some("(")
                    && !(j > 0 && toks[j - 1].text == "fn")
                {
                    callees.insert(
                        defined
                            .get(t.text.as_str())
                            .expect("contained in the defined set"),
                    );
                }
            }
        }
    }
    // Reachability from the blessed phase roots.
    let mut blessed: BTreeSet<&str> = BTreeSet::new();
    let mut work: Vec<&str> = D10_ROOTS
        .iter()
        .filter(|r| defined.contains(**r))
        .copied()
        .collect();
    while let Some(f) = work.pop() {
        if !blessed.insert(f) {
            continue;
        }
        if let Some(callees) = calls.get(f) {
            work.extend(callees.iter().copied());
        }
    }

    for pf in &scope {
        let toks = &pf.lexed.tokens;
        for (i, t) in toks.iter().enumerate() {
            if t.kind != TokKind::Ident || pf.in_test(t.line) {
                continue;
            }
            let mutation = mutation_at(toks, i);
            let Some(what) = mutation else {
                continue;
            };
            let holder = pf.enclosing_fn(i);
            let ok = holder.is_some_and(|f| blessed.contains(f.name.as_str()));
            if !ok {
                let place = holder.map_or("outside any fn".to_string(), |f| {
                    format!("in fn `{}`", f.name)
                });
                emit(
                    out,
                    "D10",
                    pf,
                    t.line,
                    format!(
                        "{what} {place}, which is not reachable from the canonical \
                         phase fns (phase_local/phase_merge): mutations outside the \
                         four tick phases break the shard byte-identity proof"
                    ),
                );
            }
        }
    }
}

/// If token `i` starts a shared-state mutation, a short description.
fn mutation_at(toks: &[Tok], i: usize) -> Option<String> {
    let t = &toks[i];
    let name = t.text.as_str();
    // Counter increments: `.counter +=` / `-=` (field position only).
    if D10_COUNTERS.contains(&name) {
        let dotted = i > 0 && toks[i - 1].text == ".";
        let op = toks.get(i + 1).map(|u| u.text.as_str());
        let eq = toks.get(i + 2).map(|u| u.text.as_str());
        if dotted && matches!(op, Some("+") | Some("-")) && eq == Some("=") {
            return Some(format!("ledger counter `{name}` mutated"));
        }
        return None;
    }
    if !D10_CONTAINERS.contains(&name) {
        return None;
    }
    // Skip an optional index expression: `store [ .. ]`.
    let mut j = i + 1;
    let mut indexed = false;
    if toks.get(j).map(|u| u.text.as_str()) == Some("[") {
        indexed = true;
        let mut depth = 0usize;
        while j < toks.len() {
            match toks[j].text.as_str() {
                "[" => depth += 1,
                "]" => {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
    }
    // `store[p] = ...` (assignment, not comparison).
    if indexed
        && toks.get(j).map(|u| u.text.as_str()) == Some("=")
        && toks.get(j + 1).map(|u| u.text.as_str()) != Some("=")
    {
        return Some(format!("container `{name}[..]` assigned"));
    }
    // `.push(` / `.pop(` / `.drain(` / `.take(` ...
    if toks.get(j).map(|u| u.text.as_str()) == Some(".") {
        let m = toks.get(j + 1)?;
        if m.kind == TokKind::Ident
            && D10_MUT_METHODS.contains(&m.text.as_str())
            && toks.get(j + 2).map(|u| u.text.as_str()) == Some("(")
        {
            return Some(format!("container `{name}.{}()` mutation", m.text));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snake_case_handles_camel_runs() {
        assert_eq!(snake_case("Stuck"), "stuck");
        assert_eq!(snake_case("QueueFull"), "queue_full");
        assert_eq!(snake_case("NodeDeparted"), "node_departed");
    }

    #[test]
    fn seedish_accepts_named_seeds_and_literals() {
        let toks = |src: &str| crate::lexer::lex(src).tokens;
        assert!(seedish(&toks("cfg . rng_seed")));
        assert!(seedish(&toks("seed ^ 0x9e3779b9")));
        assert!(seedish(&toks("12345")));
        assert!(seedish(&toks("7 as u64")));
        assert!(!seedish(&toks("value")));
        assert!(!seedish(&toks("x + 1")));
    }
}
