//! SARIF 2.1.0 output, for CI inline annotations.
//!
//! Hand-rolled JSON (the crate is dependency-free). The document shape
//! is the minimum GitHub code scanning consumes: one run, the full rule
//! table on the driver (so annotations link summaries and rationale),
//! and one `result` per finding with a physical location.

use crate::json_escape as esc;
use crate::rules::{Finding, RULES};

/// Renders findings as a SARIF 2.1.0 document.
pub fn findings_to_sarif(findings: &[Finding]) -> String {
    let mut out = String::with_capacity(4096 + findings.len() * 256);
    out.push_str(
        "{\n  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n  \
         \"version\": \"2.1.0\",\n  \"runs\": [\n    {\n      \"tool\": {\n        \
         \"driver\": {\n          \"name\": \"geospan-analyze\",\n          \
         \"informationUri\": \"DESIGN.md\",\n          \"rules\": [\n",
    );
    for (i, r) in RULES.iter().enumerate() {
        out.push_str(&format!(
            "            {{\"id\": \"{}\", \"shortDescription\": {{\"text\": \"{}\"}}, \
             \"fullDescription\": {{\"text\": \"{}\"}}, \"defaultConfiguration\": \
             {{\"level\": \"error\"}}}}{}\n",
            r.id,
            esc(r.summary),
            esc(r.rationale),
            if i + 1 < RULES.len() { "," } else { "" }
        ));
    }
    out.push_str("          ]\n        }\n      },\n      \"results\": [\n");
    for (i, f) in findings.iter().enumerate() {
        let rule_index = RULES
            .iter()
            .position(|r| r.id == f.rule)
            .unwrap_or(usize::MAX);
        out.push_str(&format!(
            "        {{\"ruleId\": \"{}\", \"ruleIndex\": {}, \"level\": \"error\", \
             \"message\": {{\"text\": \"{}\"}}, \"locations\": [{{\"physicalLocation\": \
             {{\"artifactLocation\": {{\"uri\": \"{}\"}}, \"region\": {{\"startLine\": \
             {}}}}}}}]}}{}\n",
            f.rule,
            rule_index,
            esc(&format!("{} ({})", f.message, f.snippet)),
            esc(&f.path),
            f.line.max(1),
            if i + 1 < findings.len() { "," } else { "" }
        ));
    }
    out.push_str("      ]\n    }\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding() -> Finding {
        Finding {
            rule: "D04",
            path: "crates/x/src/lib.rs".to_string(),
            line: 7,
            snippet: "x.unwrap();".to_string(),
            message: "bare .unwrap()".to_string(),
        }
    }

    #[test]
    fn sarif_document_has_schema_rules_and_results() {
        let doc = findings_to_sarif(&[finding()]);
        assert!(doc.contains("\"version\": \"2.1.0\""));
        assert!(doc.contains("\"name\": \"geospan-analyze\""));
        // Every rule in the table is on the driver.
        for r in RULES {
            assert!(doc.contains(&format!("\"id\": \"{}\"", r.id)), "{}", r.id);
        }
        assert!(doc.contains("\"ruleId\": \"D04\""));
        assert!(doc.contains("\"uri\": \"crates/x/src/lib.rs\""));
        assert!(doc.contains("\"startLine\": 7"));
        // ruleIndex points at the driver table position of D04.
        let d04 = RULES
            .iter()
            .position(|r| r.id == "D04")
            .expect("D04 listed");
        assert!(doc.contains(&format!("\"ruleIndex\": {d04}")));
    }

    #[test]
    fn empty_findings_is_still_a_valid_run() {
        let doc = findings_to_sarif(&[]);
        assert!(doc.contains("\"results\": [\n      ]"));
    }
}
