//! CLI for the workspace determinism linter.
//!
//! ```text
//! cargo run -p geospan-analyze -- --check
//! ```
//!
//! Exit codes: 0 clean (or findings printed without `--check`),
//! 1 usage / IO error, 2 findings (or stale baseline entries) under
//! `--check`.

use std::path::PathBuf;
use std::process::ExitCode;

use geospan_analyze::{analyze_workspace, findings_to_json, findings_to_sarif, Baseline, RULES};

const DEFAULT_BASELINE: &str = "analyze-baseline.tsv";

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Format {
    Text,
    Json,
    Sarif,
}

#[derive(Debug)]
struct Options {
    root: PathBuf,
    baseline: Option<PathBuf>,
    check: bool,
    format: Format,
    write_baseline: bool,
    prune_baseline: bool,
    list_rules: bool,
    explain: Option<String>,
    help: bool,
}

const USAGE: &str = "\
geospan-analyze — workspace determinism linter

USAGE:
    geospan-analyze [OPTIONS]

OPTIONS:
    --check              exit 2 when unsuppressed findings (or stale
                         baseline entries) remain
    --root <DIR>         workspace root to scan (default: .)
    --baseline <FILE>    baseline file (default: <root>/analyze-baseline.tsv;
                         a missing default file means an empty baseline)
    --format <FMT>       output format: text, json, or sarif (default: text)
    --write-baseline     write all current findings to the baseline file
                         (with a TRIAGE-ME reason) and exit
    --prune-baseline     remove stale baseline entries (matching nothing),
                         print what was removed, and exit
    --list-rules         print the rule table and exit
    --explain <RULE>     print one rule's summary and rationale and exit
    --help               this message
";

fn parse_args(mut args: impl Iterator<Item = String>) -> Result<Options, String> {
    let mut opts = Options {
        root: PathBuf::from("."),
        baseline: None,
        check: false,
        format: Format::Text,
        write_baseline: false,
        prune_baseline: false,
        list_rules: false,
        explain: None,
        help: false,
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => opts.check = true,
            "--root" => {
                opts.root = PathBuf::from(args.next().ok_or("--root needs a value")?);
            }
            "--baseline" => {
                opts.baseline = Some(PathBuf::from(
                    args.next().ok_or("--baseline needs a value")?,
                ));
            }
            "--format" => match args.next().as_deref() {
                Some("text") => opts.format = Format::Text,
                Some("json") => opts.format = Format::Json,
                Some("sarif") => opts.format = Format::Sarif,
                Some(other) => {
                    return Err(format!("--format expects text|json|sarif, got `{other}`"))
                }
                None => return Err("--format needs a value (text|json|sarif)".to_string()),
            },
            "--write-baseline" => opts.write_baseline = true,
            "--prune-baseline" => opts.prune_baseline = true,
            "--list-rules" => opts.list_rules = true,
            "--explain" => {
                let rule = args
                    .next()
                    .ok_or("--explain needs a rule id (e.g. D08)")?
                    .to_ascii_uppercase();
                if !RULES.iter().any(|r| r.id == rule) {
                    return Err(format!(
                        "--explain: unknown rule `{rule}` (see --list-rules)"
                    ));
                }
                opts.explain = Some(rule);
            }
            "--help" | "-h" => opts.help = true,
            other => return Err(format!("unknown argument `{other}` (see --help)")),
        }
    }
    Ok(opts)
}

fn run() -> Result<ExitCode, String> {
    let opts = parse_args(std::env::args().skip(1))?;
    if opts.help {
        print!("{USAGE}");
        return Ok(ExitCode::SUCCESS);
    }
    if opts.list_rules {
        for r in RULES {
            println!("{}  {}", r.id, r.summary);
        }
        return Ok(ExitCode::SUCCESS);
    }
    if let Some(rule) = &opts.explain {
        let r = RULES
            .iter()
            .find(|r| r.id == rule)
            .expect("validated during arg parsing");
        println!("{}  {}", r.id, r.summary);
        println!();
        println!("{}", r.rationale);
        return Ok(ExitCode::SUCCESS);
    }
    let findings = analyze_workspace(&opts.root)?;
    let baseline_path = opts
        .baseline
        .clone()
        .unwrap_or_else(|| opts.root.join(DEFAULT_BASELINE));

    if opts.write_baseline {
        let text = Baseline::render(&findings, "TRIAGE-ME: reason pending");
        std::fs::write(&baseline_path, &text)
            .map_err(|e| format!("write {}: {e}", baseline_path.display()))?;
        eprintln!(
            "wrote {} entries to {} — replace every TRIAGE-ME with a real reason",
            findings.len(),
            baseline_path.display()
        );
        return Ok(ExitCode::SUCCESS);
    }

    let baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => Baseline::parse(&text)?,
        // A missing *default* baseline is an empty baseline; an
        // explicitly named missing file is an error.
        Err(_) if opts.baseline.is_none() => Baseline::default(),
        Err(e) => return Err(format!("read {}: {e}", baseline_path.display())),
    };
    let res = baseline.apply(findings);

    if opts.prune_baseline {
        if res.stale.is_empty() {
            eprintln!("nothing to prune: every baseline entry still matches a finding");
            return Ok(ExitCode::SUCCESS);
        }
        let retained: Vec<_> = baseline
            .entries
            .iter()
            .filter(|e| !res.stale.contains(e))
            .cloned()
            .collect();
        let text = Baseline::render_entries(&retained);
        std::fs::write(&baseline_path, &text)
            .map_err(|e| format!("write {}: {e}", baseline_path.display()))?;
        for e in &res.stale {
            eprintln!(
                "pruned: {}\t{}\t{}\t{}",
                e.rule, e.path, e.snippet, e.reason
            );
        }
        eprintln!(
            "pruned {} stale entr(ies) from {} ({} kept)",
            res.stale.len(),
            baseline_path.display(),
            retained.len()
        );
        return Ok(ExitCode::SUCCESS);
    }

    match opts.format {
        Format::Json => println!("{}", findings_to_json(&res.unsuppressed)),
        Format::Sarif => println!("{}", findings_to_sarif(&res.unsuppressed)),
        Format::Text => {
            for f in &res.unsuppressed {
                println!("{}: {}:{}: {}", f.rule, f.path, f.line, f.message);
                println!("    {}", f.snippet);
            }
            if res.suppressed > 0 {
                eprintln!("note: baseline suppressed {} finding(s)", res.suppressed);
            }
        }
    }
    for e in &res.stale {
        eprintln!(
            "stale baseline entry (matches nothing): {}\t{}\t{}",
            e.rule, e.path, e.snippet
        );
    }

    let failed = !res.unsuppressed.is_empty() || (opts.check && !res.stale.is_empty());
    if failed {
        eprintln!(
            "geospan-analyze: {} finding(s), {} stale baseline entr(ies)",
            res.unsuppressed.len(),
            res.stale.len()
        );
        if opts.check {
            return Ok(ExitCode::from(2));
        }
    } else if opts.format == Format::Text {
        eprintln!(
            "geospan-analyze: clean ({} suppressed by baseline)",
            res.suppressed
        );
    }
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("geospan-analyze: error: {msg}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Options, String> {
        parse_args(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn format_without_a_value_is_a_usage_error_not_a_panic() {
        let err = parse(&["--format"]).expect_err("missing value must error");
        assert!(err.contains("--format needs a value"), "{err}");
    }

    #[test]
    fn format_accepts_the_three_renderers() {
        assert_eq!(parse(&["--format", "text"]).unwrap().format, Format::Text);
        assert_eq!(parse(&["--format", "json"]).unwrap().format, Format::Json);
        assert_eq!(parse(&["--format", "sarif"]).unwrap().format, Format::Sarif);
        let err = parse(&["--format", "xml"]).expect_err("xml is not supported");
        assert!(err.contains("text|json|sarif"), "{err}");
    }

    #[test]
    fn explain_validates_the_rule_id() {
        assert_eq!(
            parse(&["--explain", "d08"]).unwrap().explain.as_deref(),
            Some("D08"),
            "rule ids are case-insensitive"
        );
        assert!(parse(&["--explain", "D99"]).is_err());
        assert!(parse(&["--explain"]).is_err());
    }

    #[test]
    fn prune_and_check_flags_parse() {
        let o = parse(&["--prune-baseline", "--check", "--root", "/tmp/x"]).unwrap();
        assert!(o.prune_baseline);
        assert!(o.check);
        assert_eq!(o.root, PathBuf::from("/tmp/x"));
    }

    #[test]
    fn missing_values_for_paths_are_errors() {
        assert!(parse(&["--root"]).is_err());
        assert!(parse(&["--baseline"]).is_err());
        assert!(parse(&["--frobnicate"]).is_err());
    }
}
