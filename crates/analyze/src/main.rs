//! CLI for the workspace determinism linter.
//!
//! ```text
//! cargo run -p geospan-analyze -- --check
//! ```
//!
//! Exit codes: 0 clean (or findings printed without `--check`),
//! 1 usage / IO error, 2 findings (or stale baseline entries) under
//! `--check`.

use std::path::PathBuf;
use std::process::ExitCode;

use geospan_analyze::{analyze_workspace, findings_to_json, Baseline, RULES};

const DEFAULT_BASELINE: &str = "analyze-baseline.tsv";

struct Options {
    root: PathBuf,
    baseline: Option<PathBuf>,
    check: bool,
    json: bool,
    write_baseline: bool,
    list_rules: bool,
}

const USAGE: &str = "\
geospan-analyze — workspace determinism linter

USAGE:
    geospan-analyze [OPTIONS]

OPTIONS:
    --check              exit 2 when unsuppressed findings (or stale
                         baseline entries) remain
    --root <DIR>         workspace root to scan (default: .)
    --baseline <FILE>    baseline file (default: <root>/analyze-baseline.tsv;
                         a missing default file means an empty baseline)
    --format <text|json> output format (default: text)
    --write-baseline     write all current findings to the baseline file
                         (with a TRIAGE-ME reason) and exit
    --list-rules         print the rule table and exit
    --help               this message
";

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        root: PathBuf::from("."),
        baseline: None,
        check: false,
        json: false,
        write_baseline: false,
        list_rules: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => opts.check = true,
            "--root" => {
                opts.root = PathBuf::from(args.next().ok_or("--root needs a value")?);
            }
            "--baseline" => {
                opts.baseline = Some(PathBuf::from(
                    args.next().ok_or("--baseline needs a value")?,
                ));
            }
            "--format" => match args.next().as_deref() {
                Some("text") => opts.json = false,
                Some("json") => opts.json = true,
                other => return Err(format!("--format expects text|json, got {other:?}")),
            },
            "--write-baseline" => opts.write_baseline = true,
            "--list-rules" => opts.list_rules = true,
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}` (see --help)")),
        }
    }
    Ok(opts)
}

fn run() -> Result<ExitCode, String> {
    let opts = parse_args()?;
    if opts.list_rules {
        for (id, what) in RULES {
            println!("{id}  {what}");
        }
        return Ok(ExitCode::SUCCESS);
    }
    let findings = analyze_workspace(&opts.root)?;
    let baseline_path = opts
        .baseline
        .clone()
        .unwrap_or_else(|| opts.root.join(DEFAULT_BASELINE));

    if opts.write_baseline {
        let text = Baseline::render(&findings, "TRIAGE-ME: reason pending");
        std::fs::write(&baseline_path, &text)
            .map_err(|e| format!("write {}: {e}", baseline_path.display()))?;
        eprintln!(
            "wrote {} entries to {} — replace every TRIAGE-ME with a real reason",
            findings.len(),
            baseline_path.display()
        );
        return Ok(ExitCode::SUCCESS);
    }

    let baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => Baseline::parse(&text)?,
        // A missing *default* baseline is an empty baseline; an
        // explicitly named missing file is an error.
        Err(_) if opts.baseline.is_none() => Baseline::default(),
        Err(e) => return Err(format!("read {}: {e}", baseline_path.display())),
    };
    let res = baseline.apply(findings);

    if opts.json {
        println!("{}", findings_to_json(&res.unsuppressed));
    } else {
        for f in &res.unsuppressed {
            println!("{}: {}:{}: {}", f.rule, f.path, f.line, f.message);
            println!("    {}", f.snippet);
        }
        if res.suppressed > 0 {
            eprintln!("note: baseline suppressed {} finding(s)", res.suppressed);
        }
    }
    for e in &res.stale {
        eprintln!(
            "stale baseline entry (matches nothing): {}\t{}\t{}",
            e.rule, e.path, e.snippet
        );
    }

    let failed = !res.unsuppressed.is_empty() || (opts.check && !res.stale.is_empty());
    if failed {
        eprintln!(
            "geospan-analyze: {} finding(s), {} stale baseline entr(ies)",
            res.unsuppressed.len(),
            res.stale.len()
        );
        if opts.check {
            return Ok(ExitCode::from(2));
        }
    } else if !opts.json {
        eprintln!(
            "geospan-analyze: clean ({} suppressed by baseline)",
            res.suppressed
        );
    }
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("geospan-analyze: error: {msg}");
            ExitCode::FAILURE
        }
    }
}
