//! The committed baseline: triaged legacy findings the gate tolerates.
//!
//! Format: one tab-separated entry per line —
//!
//! ```text
//! <rule>\t<path>\t<trimmed source line>\t<reason>
//! ```
//!
//! Entries key on the *content* of the offending line, not its number,
//! so unrelated edits above a finding don't invalidate the baseline.
//! Every entry needs a reason; stale entries (matching nothing) fail
//! `--check` so suppressions can't outlive the code they excuse.

use crate::rules::Finding;

/// One parsed baseline entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineEntry {
    /// Rule id the entry suppresses.
    pub rule: String,
    /// Workspace-relative path, forward slashes.
    pub path: String,
    /// Trimmed source line the finding sits on.
    pub snippet: String,
    /// Why this finding is tolerated.
    pub reason: String,
}

/// A parsed baseline file.
#[derive(Debug, Default)]
pub struct Baseline {
    /// The entries, in file order.
    pub entries: Vec<BaselineEntry>,
}

/// The outcome of filtering findings through a baseline.
#[derive(Debug)]
pub struct BaselineResult {
    /// Findings not covered by any entry.
    pub unsuppressed: Vec<Finding>,
    /// Number of findings the baseline absorbed.
    pub suppressed: usize,
    /// Entries that matched nothing (stale — an error under `--check`).
    pub stale: Vec<BaselineEntry>,
}

impl Baseline {
    /// Parses baseline text. Blank lines and `#` comments are ignored.
    ///
    /// # Errors
    /// Returns a message naming the first malformed line.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let mut entries = Vec::new();
        for (no, line) in text.lines().enumerate() {
            let line = line.trim_end();
            if line.is_empty() || line.trim_start().starts_with('#') {
                continue;
            }
            let parts: Vec<&str> = line.splitn(4, '\t').collect();
            if parts.len() != 4 || parts.iter().any(|p| p.trim().is_empty()) {
                return Err(format!(
                    "baseline line {}: expected `rule<TAB>path<TAB>snippet<TAB>reason`",
                    no + 1
                ));
            }
            entries.push(BaselineEntry {
                rule: parts[0].trim().to_string(),
                path: parts[1].trim().to_string(),
                snippet: parts[2].trim().to_string(),
                reason: parts[3].trim().to_string(),
            });
        }
        Ok(Baseline { entries })
    }

    /// Splits findings into suppressed / unsuppressed and reports stale
    /// entries.
    pub fn apply(&self, findings: Vec<Finding>) -> BaselineResult {
        let mut used = vec![false; self.entries.len()];
        let mut unsuppressed = Vec::new();
        let mut suppressed = 0usize;
        for f in findings {
            let hit = self
                .entries
                .iter()
                .position(|e| e.rule == f.rule && e.path == f.path && e.snippet == f.snippet);
            match hit {
                Some(k) => {
                    used[k] = true;
                    suppressed += 1;
                }
                None => unsuppressed.push(f),
            }
        }
        let stale = self
            .entries
            .iter()
            .zip(&used)
            .filter(|(_, &u)| !u)
            .map(|(e, _)| e.clone())
            .collect();
        BaselineResult {
            unsuppressed,
            suppressed,
            stale,
        }
    }

    /// Renders existing entries back to baseline text, preserving their
    /// reasons and order (for `--prune-baseline`).
    pub fn render_entries(entries: &[BaselineEntry]) -> String {
        let mut out = String::from(
            "# geospan-analyze baseline: triaged legacy findings.\n\
             # Format: rule<TAB>path<TAB>trimmed source line<TAB>reason\n",
        );
        for e in entries {
            out.push_str(&format!(
                "{}\t{}\t{}\t{}\n",
                e.rule, e.path, e.snippet, e.reason
            ));
        }
        out
    }

    /// Renders findings as baseline text (for `--write-baseline`).
    pub fn render(findings: &[Finding], reason: &str) -> String {
        let mut out = String::from(
            "# geospan-analyze baseline: triaged legacy findings.\n\
             # Format: rule<TAB>path<TAB>trimmed source line<TAB>reason\n",
        );
        let mut seen = std::collections::BTreeSet::new();
        for f in findings {
            if seen.insert((f.rule, f.path.clone(), f.snippet.clone())) {
                out.push_str(&format!(
                    "{}\t{}\t{}\t{}\n",
                    f.rule, f.path, f.snippet, reason
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &'static str, path: &str, snippet: &str) -> Finding {
        Finding {
            rule,
            path: path.to_string(),
            line: 1,
            snippet: snippet.to_string(),
            message: String::new(),
        }
    }

    #[test]
    fn baseline_suppresses_exactly_matching_findings() {
        let bl = Baseline::parse("D01\tsrc/a.rs\tfor x in &set {\ttriaged\n").unwrap();
        let res = bl.apply(vec![
            finding("D01", "src/a.rs", "for x in &set {"),
            finding("D01", "src/b.rs", "for x in &set {"),
            finding("D03", "src/a.rs", "for x in &set {"),
        ]);
        assert_eq!(res.suppressed, 1);
        assert_eq!(res.unsuppressed.len(), 2);
        assert!(res.stale.is_empty());
    }

    #[test]
    fn stale_entries_are_reported() {
        let bl = Baseline::parse("D01\tsrc/a.rs\tgone line\twas triaged\n").unwrap();
        let res = bl.apply(vec![]);
        assert_eq!(res.stale.len(), 1);
        assert_eq!(res.stale[0].snippet, "gone line");
    }

    #[test]
    fn malformed_lines_are_rejected() {
        assert!(Baseline::parse("D01\tsrc/a.rs\tmissing reason\n").is_err());
        assert!(Baseline::parse("D01 src/a.rs spaces not tabs reason\n").is_err());
        // Comments and blanks are fine.
        assert!(Baseline::parse("# comment\n\n").unwrap().entries.is_empty());
    }

    #[test]
    fn render_entries_round_trips_through_parse() {
        let text = "D01\tsrc/a.rs\tfor x in &set {\titeration feeds a sort\n";
        let bl = Baseline::parse(text).expect("valid baseline");
        let rendered = Baseline::render_entries(&bl.entries);
        let reparsed = Baseline::parse(&rendered).expect("rendered baseline parses");
        assert_eq!(reparsed.entries, bl.entries);
    }

    #[test]
    fn one_entry_covers_repeated_identical_lines() {
        let bl = Baseline::parse("D04\tsrc/a.rs\tx.unwrap();\tlegacy\n").unwrap();
        let res = bl.apply(vec![
            finding("D04", "src/a.rs", "x.unwrap();"),
            finding("D04", "src/a.rs", "x.unwrap();"),
        ]);
        assert_eq!(res.suppressed, 2);
        assert!(res.unsuppressed.is_empty());
    }
}
