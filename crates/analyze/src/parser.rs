//! A lightweight structural layer over the token lexer.
//!
//! The cross-file rules (D08–D11) need more than token patterns: they
//! reason about *items* — which fn a token lives in, which variants an
//! enum declares, which arms a match covers. This module recovers that
//! item tree from the token stream with brace matching. It is not a
//! real parser: no expressions, no types, no precedence — just enough
//! shape for the rules, and resilient to anything it does not
//! understand (unknown constructs simply contribute no items).

use crate::lexer::{lex, Lexed, Tok, TokKind};
use std::collections::BTreeSet;

/// A `fn` item: name, parameter names, and the token-index span of its
/// brace-matched body (absent for trait-method signatures).
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Function name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Parameter names in declaration order, `self` receivers excluded
    /// so positions line up with call-site arguments.
    pub params: Vec<String>,
    /// Token indices of the body's `{` and `}` (inclusive), if any.
    pub body: Option<(usize, usize)>,
}

/// An `enum` declaration with its variant names.
#[derive(Debug, Clone)]
pub struct EnumItem {
    /// Enum name.
    pub name: String,
    /// 1-based line of the `enum` keyword.
    pub line: u32,
    /// `(variant name, line)` in declaration order.
    pub variants: Vec<(String, u32)>,
}

/// A `struct` declaration with its named fields (empty for tuple and
/// unit structs).
#[derive(Debug, Clone)]
pub struct StructItem {
    /// Struct name.
    pub name: String,
    /// 1-based line of the `struct` keyword.
    pub line: u32,
    /// `(field name, line)` in declaration order.
    pub fields: Vec<(String, u32)>,
}

/// A `match` expression with the raw text of each arm pattern.
#[derive(Debug, Clone)]
pub struct MatchExpr {
    /// The scrutinee tokens joined with spaces (`self . cause`).
    pub scrutinee: String,
    /// 1-based line of the `match` keyword.
    pub line: u32,
    /// `(pattern tokens joined with spaces, line)` per arm; guards are
    /// included in the pattern text.
    pub arms: Vec<(String, u32)>,
}

/// One file, lexed and structurally indexed.
#[derive(Debug)]
pub struct ParsedFile {
    /// Workspace-relative path, forward slashes.
    pub path: String,
    /// The lexer output (tokens + directives).
    pub lexed: Lexed,
    /// All fn items, in source order (nested fns included).
    pub fns: Vec<FnItem>,
    /// All enum declarations.
    pub enums: Vec<EnumItem>,
    /// All struct declarations.
    pub structs: Vec<StructItem>,
    /// All match expressions.
    pub matches: Vec<MatchExpr>,
    /// Lines covered by `#[test]` / `#[cfg(test)]` items.
    pub test_lines: BTreeSet<u32>,
    /// Lines covered by `#[cfg(feature = "invariant-checks")]` items
    /// and statements (the D11 panic-policy exemption).
    pub invariant_lines: BTreeSet<u32>,
    /// Trimmed source lines, for finding snippets (baseline keys).
    lines: Vec<String>,
}

impl ParsedFile {
    /// True when `line` is inside a test region.
    pub fn in_test(&self, line: u32) -> bool {
        self.test_lines.contains(&line)
    }

    /// The trimmed source text of 1-based `line` (the baseline key).
    pub fn snippet(&self, line: u32) -> String {
        self.lines
            .get(line as usize - 1)
            .cloned()
            .unwrap_or_default()
    }

    /// The innermost fn whose body spans token index `idx`, if any.
    pub fn enclosing_fn(&self, idx: usize) -> Option<&FnItem> {
        self.fns
            .iter()
            .filter(|f| f.body.is_some_and(|(o, c)| o <= idx && idx <= c))
            .min_by_key(|f| f.body.map(|(o, c)| c - o).unwrap_or(usize::MAX))
    }
}

/// Lexes and structurally indexes one file.
pub fn parse(path: &str, src: &str) -> ParsedFile {
    let lexed = lex(src);
    let (test_lines, invariant_lines) = attr_regions(&lexed.tokens);
    let mut pf = ParsedFile {
        path: path.to_string(),
        lexed,
        fns: Vec::new(),
        enums: Vec::new(),
        structs: Vec::new(),
        matches: Vec::new(),
        test_lines,
        invariant_lines,
        lines: src.lines().map(|l| l.trim().to_string()).collect(),
    };
    let toks = &pf.lexed.tokens;
    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            i += 1;
            continue;
        }
        match t.text.as_str() {
            "fn" => {
                if let Some(item) = parse_fn(toks, i) {
                    pf.fns.push(item);
                }
            }
            "enum" => {
                if let Some(item) = parse_enum(toks, i) {
                    pf.enums.push(item);
                }
            }
            "struct" => {
                if let Some(item) = parse_struct(toks, i) {
                    pf.structs.push(item);
                }
            }
            "match" => {
                if let Some(item) = parse_match(toks, i) {
                    pf.matches.push(item);
                }
            }
            _ => {}
        }
        i += 1;
    }
    pf
}

/// Joins token texts with spaces, merging consecutive `:` tokens into
/// `::` so path patterns read naturally (`DropCause :: Stuck`).
fn join_tokens<'a>(parts: impl Iterator<Item = &'a str>) -> String {
    let mut out = String::new();
    for p in parts {
        if p == ":" && out.ends_with(':') {
            out.push(':');
            continue;
        }
        if !out.is_empty() {
            out.push(' ');
        }
        out.push_str(p);
    }
    out
}

/// Skips a generic-parameter list starting at `<`, returning the index
/// just past the matching `>`. `->` and `=>` never decrement (`>` with
/// a `-`/`=` directly before it).
fn skip_generics(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0i32;
    let mut j = open;
    while j < toks.len() {
        match toks[j].text.as_str() {
            "<" => depth += 1,
            ">" if j > 0 && matches!(toks[j - 1].text.as_str(), "-" | "=") => {}
            ">" => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            ";" | "{" => return j, // malformed; bail before the body
            _ => {}
        }
        j += 1;
    }
    toks.len()
}

/// Finds the matching close brace for the `{` at `open`.
fn match_brace(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0usize;
    let mut j = open;
    while j < toks.len() {
        match toks[j].text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            _ => {}
        }
        j += 1;
    }
    toks.len().saturating_sub(1)
}

fn parse_fn(toks: &[Tok], kw: usize) -> Option<FnItem> {
    // `fn` in a fn-pointer type (`fn(u32) -> u32`) has no name ident.
    let name_tok = toks.get(kw + 1)?;
    if name_tok.kind != TokKind::Ident {
        return None;
    }
    let mut j = kw + 2;
    if toks.get(j).map(|t| t.text.as_str()) == Some("<") {
        j = skip_generics(toks, j);
    }
    if toks.get(j).map(|t| t.text.as_str()) != Some("(") {
        return None;
    }
    // Parameter list: idents at paren depth 1 directly followed by `:`
    // (and not part of a `::` path). `self` receivers are skipped.
    let mut params = Vec::new();
    let mut depth = 0usize;
    while j < toks.len() {
        match toks[j].text.as_str() {
            "(" | "[" => depth += 1,
            ")" | "]" => {
                depth -= 1;
                if depth == 0 {
                    j += 1;
                    break;
                }
            }
            _ => {
                if depth == 1
                    && toks[j].kind == TokKind::Ident
                    && toks[j].text != "self"
                    && toks.get(j + 1).map(|t| t.text.as_str()) == Some(":")
                    && toks.get(j + 2).map(|t| t.text.as_str()) != Some(":")
                    && !(j > 0 && toks[j - 1].text == ":")
                {
                    params.push(toks[j].text.clone());
                }
            }
        }
        j += 1;
    }
    // Skip the return type / where clause up to the body `{` or a `;`.
    let mut body = None;
    let mut depth = 0usize;
    while j < toks.len() {
        match toks[j].text.as_str() {
            "(" | "[" | "<" => depth += 1,
            ")" | "]" => depth = depth.saturating_sub(1),
            ">" if j > 0 && !matches!(toks[j - 1].text.as_str(), "-" | "=") => {
                depth = depth.saturating_sub(1)
            }
            ";" if depth == 0 => break,
            "{" if depth == 0 => {
                body = Some((j, match_brace(toks, j)));
                break;
            }
            _ => {}
        }
        j += 1;
    }
    Some(FnItem {
        name: name_tok.text.clone(),
        line: toks[kw].line,
        params,
        body,
    })
}

fn parse_enum(toks: &[Tok], kw: usize) -> Option<EnumItem> {
    let name_tok = toks.get(kw + 1)?;
    if name_tok.kind != TokKind::Ident {
        return None;
    }
    let mut j = kw + 2;
    if toks.get(j).map(|t| t.text.as_str()) == Some("<") {
        j = skip_generics(toks, j);
    }
    if toks.get(j).map(|t| t.text.as_str()) != Some("{") {
        return None;
    }
    let close = match_brace(toks, j);
    let mut variants = Vec::new();
    let mut bdepth = 0usize; // brace depth relative to the enum body
    let mut pdepth = 0usize; // paren/bracket depth (payloads, attrs)
    let mut k = j;
    while k <= close {
        match toks[k].text.as_str() {
            "{" => bdepth += 1,
            "}" => bdepth = bdepth.saturating_sub(1),
            "(" | "[" => pdepth += 1,
            ")" | "]" => pdepth = pdepth.saturating_sub(1),
            _ => {
                if bdepth == 1
                    && pdepth == 0
                    && toks[k].kind == TokKind::Ident
                    && k > 0
                    && matches!(toks[k - 1].text.as_str(), "{" | "," | "]")
                {
                    variants.push((toks[k].text.clone(), toks[k].line));
                }
            }
        }
        k += 1;
    }
    Some(EnumItem {
        name: name_tok.text.clone(),
        line: toks[kw].line,
        variants,
    })
}

fn parse_struct(toks: &[Tok], kw: usize) -> Option<StructItem> {
    let name_tok = toks.get(kw + 1)?;
    if name_tok.kind != TokKind::Ident {
        return None;
    }
    let mut j = kw + 2;
    if toks.get(j).map(|t| t.text.as_str()) == Some("<") {
        j = skip_generics(toks, j);
    }
    // Unit (`;`) and tuple (`(`) structs have no named fields.
    if toks.get(j).map(|t| t.text.as_str()) != Some("{") {
        return Some(StructItem {
            name: name_tok.text.clone(),
            line: toks[kw].line,
            fields: Vec::new(),
        });
    }
    let close = match_brace(toks, j);
    let mut fields = Vec::new();
    let mut bdepth = 0usize;
    let mut pdepth = 0usize;
    let mut k = j;
    while k <= close {
        match toks[k].text.as_str() {
            "{" => bdepth += 1,
            "}" => bdepth = bdepth.saturating_sub(1),
            "(" | "[" | "<" => pdepth += 1,
            ")" | "]" => pdepth = pdepth.saturating_sub(1),
            ">" if k > 0 && !matches!(toks[k - 1].text.as_str(), "-" | "=") => {
                pdepth = pdepth.saturating_sub(1)
            }
            _ => {
                if bdepth == 1
                    && pdepth == 0
                    && toks[k].kind == TokKind::Ident
                    && toks.get(k + 1).map(|t| t.text.as_str()) == Some(":")
                    && toks.get(k + 2).map(|t| t.text.as_str()) != Some(":")
                    && !(k > 0 && toks[k - 1].text == ":")
                {
                    fields.push((toks[k].text.clone(), toks[k].line));
                }
            }
        }
        k += 1;
    }
    Some(StructItem {
        name: name_tok.text.clone(),
        line: toks[kw].line,
        fields,
    })
}

fn parse_match(toks: &[Tok], kw: usize) -> Option<MatchExpr> {
    // Scrutinee: tokens up to the depth-0 `{` that opens the arm block.
    let mut j = kw + 1;
    let mut depth = 0usize;
    let mut scrutinee: Vec<&str> = Vec::new();
    let open = loop {
        let t = toks.get(j)?;
        match t.text.as_str() {
            "(" | "[" => depth += 1,
            ")" | "]" => depth = depth.saturating_sub(1),
            "{" if depth == 0 => break j,
            ";" => return None, // `match` used as an ident-ish fragment
            _ => {}
        }
        scrutinee.push(t.text.as_str());
        j += 1;
        if j > kw + 200 {
            return None;
        }
    };
    let close = match_brace(toks, open);
    let mut arms = Vec::new();
    let mut k = open + 1;
    let mut pattern_start = k;
    let mut depth = 0usize;
    while k < close {
        match toks[k].text.as_str() {
            "{" | "(" | "[" => depth += 1,
            "}" | ")" | "]" => depth = depth.saturating_sub(1),
            "=" if depth == 0 && toks.get(k + 1).map(|t| t.text.as_str()) == Some(">") => {
                let pat = join_tokens(toks[pattern_start..k].iter().map(|t| t.text.as_str()));
                let line = toks
                    .get(pattern_start)
                    .map(|t| t.line)
                    .unwrap_or(toks[kw].line);
                arms.push((pat, line));
                // Skip the arm body: a block, or tokens to the next
                // depth-0 comma.
                k += 2;
                if toks.get(k).map(|t| t.text.as_str()) == Some("{") {
                    k = match_brace(toks, k) + 1;
                } else {
                    let mut bd = 0usize;
                    while k < close {
                        match toks[k].text.as_str() {
                            "{" | "(" | "[" => bd += 1,
                            "}" | ")" | "]" => bd = bd.saturating_sub(1),
                            "," if bd == 0 => break,
                            _ => {}
                        }
                        k += 1;
                    }
                }
                if toks.get(k).map(|t| t.text.as_str()) == Some(",") {
                    k += 1;
                }
                pattern_start = k;
                continue;
            }
            _ => {}
        }
        k += 1;
    }
    Some(MatchExpr {
        scrutinee: join_tokens(scrutinee.into_iter()),
        line: toks[kw].line,
        arms,
    })
}

/// Lines covered by test attributes and by
/// `#[cfg(feature = "invariant-checks")]` attributes.
///
/// Both scans share the mechanism: find `#[...]`, classify it, then
/// extend the region over the next item — the matching `}` of its
/// first depth-0 `{`, or a `;` arriving first.
fn attr_regions(toks: &[Tok]) -> (BTreeSet<u32>, BTreeSet<u32>) {
    let mut test = BTreeSet::new();
    let mut invariant = BTreeSet::new();
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].text != "#" || toks.get(i + 1).map(|t| t.text.as_str()) != Some("[") {
            i += 1;
            continue;
        }
        let mut j = i + 2;
        let mut depth = 1usize;
        let mut attr: Vec<&str> = Vec::new();
        while j < toks.len() && depth > 0 {
            match toks[j].text.as_str() {
                "[" => depth += 1,
                "]" => depth -= 1,
                _ => {}
            }
            if depth > 0 {
                attr.push(toks[j].text.as_str());
            }
            j += 1;
        }
        let is_test =
            attr.first() == Some(&"test") || (attr.contains(&"cfg") && attr.contains(&"test"));
        let is_invariant =
            attr.contains(&"cfg") && attr.iter().any(|t| t.contains("invariant-checks"));
        if is_test || is_invariant {
            let start_line = toks[i].line;
            let mut k = j;
            let mut bdepth = 0usize;
            let mut end_line = start_line;
            while k < toks.len() {
                match toks[k].text.as_str() {
                    "{" => bdepth += 1,
                    "}" => {
                        bdepth = bdepth.saturating_sub(1);
                        if bdepth == 0 {
                            end_line = toks[k].line;
                            break;
                        }
                    }
                    ";" if bdepth == 0 => {
                        end_line = toks[k].line;
                        break;
                    }
                    _ => {}
                }
                end_line = toks[k].line;
                k += 1;
            }
            if is_test {
                test.extend(start_line..=end_line);
            }
            if is_invariant {
                invariant.extend(start_line..=end_line);
            }
        }
        i = j;
    }
    (test, invariant)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fn_items_with_params_and_bodies() {
        let src = "impl S {\n    fn helper(&mut self, seed: u64, n: usize) -> u64 {\n        seed + n as u64\n    }\n}\nfn free(x: u32) {}\nfn sig_only(y: u32);\n";
        let pf = parse("f.rs", src);
        assert_eq!(pf.fns.len(), 3);
        assert_eq!(pf.fns[0].name, "helper");
        assert_eq!(pf.fns[0].params, vec!["seed", "n"]);
        assert!(pf.fns[0].body.is_some());
        assert_eq!(pf.fns[1].params, vec!["x"]);
        assert!(pf.fns[2].body.is_none());
    }

    #[test]
    fn generic_fns_parse_past_arrow_bounds() {
        let src = "fn apply<F: Fn(u32) -> u32>(f: F, v: u32) -> u32 { f(v) }";
        let pf = parse("f.rs", src);
        assert_eq!(pf.fns.len(), 1);
        assert_eq!(pf.fns[0].params, vec!["f", "v"]);
        assert!(pf.fns[0].body.is_some());
    }

    #[test]
    fn enum_variants_skip_payload_fields() {
        let src = "pub enum DropCause {\n    Stuck,\n    #[doc = \"full\"]\n    QueueFull { cap: usize },\n    LinkLoss(u32, u32),\n}\n";
        let pf = parse("f.rs", src);
        assert_eq!(pf.enums.len(), 1);
        let names: Vec<&str> = pf.enums[0]
            .variants
            .iter()
            .map(|(n, _)| n.as_str())
            .collect();
        assert_eq!(names, vec!["Stuck", "QueueFull", "LinkLoss"]);
    }

    #[test]
    fn struct_fields_skip_generics_and_methods() {
        let src = "pub struct DropCounts {\n    pub stuck: usize,\n    pub map: BTreeMap<u32, Vec<u64>>,\n}\nstruct Unit;\nstruct Tuple(u32, u64);\n";
        let pf = parse("f.rs", src);
        assert_eq!(pf.structs.len(), 3);
        let names: Vec<&str> = pf.structs[0]
            .fields
            .iter()
            .map(|(n, _)| n.as_str())
            .collect();
        assert_eq!(names, vec!["stuck", "map"]);
        assert!(pf.structs[1].fields.is_empty());
        assert!(pf.structs[2].fields.is_empty());
    }

    #[test]
    fn match_arms_recover_patterns_and_guards() {
        let src = "fn f(c: DropCause, n: u32) -> u32 {\n    match c {\n        DropCause::Stuck if n >= 3 => 0,\n        DropCause::QueueFull => { n + 1 }\n        _ => match n { 0 => 9, _ => 10 },\n    }\n}\n";
        let pf = parse("f.rs", src);
        assert_eq!(pf.matches.len(), 2);
        let outer = &pf.matches[0];
        assert_eq!(outer.scrutinee, "c");
        assert_eq!(outer.arms.len(), 3);
        assert!(outer.arms[0].0.contains("DropCause :: Stuck"));
        assert!(outer.arms[0].0.contains("if n > = 3"));
        assert!(outer.arms[1].0.contains("QueueFull"));
        assert_eq!(pf.matches[1].arms.len(), 2);
    }

    #[test]
    fn enclosing_fn_picks_the_innermost_body() {
        let src = "fn outer() {\n    fn inner(marker: u32) { let _ = marker; }\n}\n";
        let pf = parse("f.rs", src);
        let idx = pf
            .lexed
            .tokens
            .iter()
            .position(|t| t.text == "marker" && t.line == 2)
            .expect("marker token present");
        // Use the *second* occurrence (inside inner's body).
        let idx2 = pf
            .lexed
            .tokens
            .iter()
            .enumerate()
            .skip(idx + 1)
            .find(|(_, t)| t.text == "marker")
            .map(|(i, _)| i)
            .expect("second marker");
        assert_eq!(pf.enclosing_fn(idx2).expect("inside a fn").name, "inner");
    }

    #[test]
    fn invariant_regions_cover_attributed_items() {
        let src = "#[cfg(feature = \"invariant-checks\")]\nfn check(&self) {\n    panic!(\"bad\");\n}\nfn live() {}\n";
        let pf = parse("f.rs", src);
        assert!(pf.invariant_lines.contains(&3));
        assert!(!pf.invariant_lines.contains(&5));
        assert!(pf.test_lines.is_empty());
    }

    #[test]
    fn test_regions_still_found() {
        let src = "#[cfg(test)]\nmod tests {\n    fn helper() { panic!(\"test only\"); }\n}\nfn live() {}\n";
        let pf = parse("f.rs", src);
        assert!(pf.in_test(3));
        assert!(!pf.in_test(5));
    }
}
