//! A small token-level lexer for Rust source.
//!
//! The linter needs just enough structure to reason about identifiers,
//! punctuation, and brace nesting while *never* being confused by the
//! contents of strings or comments. Full parsing (`syn`) is deliberately
//! out of scope: the workspace builds offline and the rules below are
//! token-pattern rules.
//!
//! Comments are not discarded: `// geospan-analyze: allow(...)`
//! directives are extracted during the scan (see [`Directive`]).

/// The coarse classification of a token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`for`, `HashMap`, `unwrap`, ...).
    Ident,
    /// A single punctuation character (`{`, `.`, `<`, ...).
    Punct,
    /// String / char / numeric literal (text is the raw source slice,
    /// so rule passes can inspect e.g. `cfg(feature = "...")` strings).
    Literal,
    /// A lifetime token (`'a`) — distinguished from char literals.
    Lifetime,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Token kind.
    pub kind: TokKind,
    /// Token text (for literals, the raw source slice).
    pub text: String,
    /// 1-based line number.
    pub line: u32,
}

/// An inline suppression parsed from a `geospan-analyze:` comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Directive {
    /// Rule id the directive allows (e.g. `"D01"`), upper-cased.
    pub rule: String,
    /// The stated reason (must be non-empty for the directive to count).
    pub reason: String,
    /// 1-based line the comment sits on.
    pub line: u32,
    /// True when the directive could not be parsed (missing rule or
    /// reason); malformed directives are themselves reported (rule A00).
    pub malformed: bool,
}

/// The full result of lexing one file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// The token stream (comments and whitespace removed).
    pub tokens: Vec<Tok>,
    /// All `geospan-analyze:` directives found in comments.
    pub directives: Vec<Directive>,
}

const DIRECTIVE_TAG: &str = "geospan-analyze:";

/// Lexes Rust source into tokens + directives.
///
/// Handles line and (nested) block comments, plain and raw strings,
/// char literals vs lifetimes, and numeric literals. Anything it cannot
/// classify is emitted as single-character punctuation, which is all the
/// rules need.
pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;
    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                let end = src[i..].find('\n').map_or(b.len(), |p| i + p);
                // Doc comments (`///`, `//!`) can *mention* the directive
                // syntax without carrying directives.
                let text = &src[i..end];
                if !text.starts_with("///") && !text.starts_with("//!") {
                    scan_directive(text, line, &mut out.directives);
                }
                i = end;
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                let start_line = line;
                let mut depth = 1usize;
                let mut j = i + 2;
                while j < b.len() && depth > 0 {
                    if b[j] == b'\n' {
                        line += 1;
                        j += 1;
                    } else if b[j] == b'/' && j + 1 < b.len() && b[j + 1] == b'*' {
                        depth += 1;
                        j += 2;
                    } else if b[j] == b'*' && j + 1 < b.len() && b[j + 1] == b'/' {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                let text = &src[i..j.min(b.len())];
                if !text.starts_with("/**") && !text.starts_with("/*!") {
                    scan_directive(text, start_line, &mut out.directives);
                }
                i = j;
            }
            b'r' if starts_raw_string(b, i) => {
                let (end, newlines) = skip_raw_string(b, i);
                out.tokens.push(Tok {
                    kind: TokKind::Literal,
                    text: src[i..end.min(b.len())].to_string(),
                    line,
                });
                line += newlines;
                i = end;
            }
            b'b' if i + 1 < b.len() && b[i + 1] == b'"' => {
                let (end, newlines) = skip_string(b, i + 1);
                out.tokens.push(Tok {
                    kind: TokKind::Literal,
                    text: src[i..end.min(b.len())].to_string(),
                    line,
                });
                line += newlines;
                i = end;
            }
            b'"' => {
                let (end, newlines) = skip_string(b, i);
                out.tokens.push(Tok {
                    kind: TokKind::Literal,
                    text: src[i..end.min(b.len())].to_string(),
                    line,
                });
                line += newlines;
                i = end;
            }
            b'\'' => {
                // Lifetime (`'a`) vs char literal (`'a'`, `'\n'`).
                if is_lifetime(b, i) {
                    let mut j = i + 1;
                    while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
                        j += 1;
                    }
                    out.tokens.push(Tok {
                        kind: TokKind::Lifetime,
                        text: src[i..j].to_string(),
                        line,
                    });
                    i = j;
                } else {
                    let end = skip_char_literal(b, i);
                    out.tokens.push(Tok {
                        kind: TokKind::Literal,
                        text: src[i..end.min(b.len())].to_string(),
                        line,
                    });
                    i = end;
                }
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let mut j = i + 1;
                while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
                    j += 1;
                }
                out.tokens.push(Tok {
                    kind: TokKind::Ident,
                    text: src[i..j].to_string(),
                    line,
                });
                i = j;
            }
            c if c.is_ascii_digit() => {
                let mut j = i + 1;
                while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_' || b[j] == b'.')
                {
                    // `1..=3` range: stop before the second dot.
                    if b[j] == b'.' && j + 1 < b.len() && b[j + 1] == b'.' {
                        break;
                    }
                    j += 1;
                }
                out.tokens.push(Tok {
                    kind: TokKind::Literal,
                    text: src[i..j].to_string(),
                    line,
                });
                i = j;
            }
            _ => {
                out.tokens.push(Tok {
                    kind: TokKind::Punct,
                    text: (c as char).to_string(),
                    line,
                });
                i += 1;
            }
        }
    }
    out
}

/// Parses `geospan-analyze: allow(RULE, reason...)` out of a comment.
fn scan_directive(comment: &str, line: u32, out: &mut Vec<Directive>) {
    let Some(pos) = comment.find(DIRECTIVE_TAG) else {
        return;
    };
    let rest = comment[pos + DIRECTIVE_TAG.len()..].trim();
    let malformed = |out: &mut Vec<Directive>| {
        out.push(Directive {
            rule: String::new(),
            reason: String::new(),
            line,
            malformed: true,
        });
    };
    let Some(args) = rest
        .strip_prefix("allow(")
        .and_then(|r| r.rfind(')').map(|p| &r[..p]))
    else {
        return malformed(out);
    };
    let Some((rule, reason)) = args.split_once(',') else {
        return malformed(out);
    };
    let rule = rule.trim().to_ascii_uppercase();
    let reason = reason.trim().to_string();
    let rule_ok = rule.len() == 3
        && rule.starts_with(['D', 'A'])
        && rule[1..].bytes().all(|c| c.is_ascii_digit());
    if !rule_ok || reason.is_empty() {
        return malformed(out);
    }
    out.push(Directive {
        rule,
        reason,
        line,
        malformed: false,
    });
}

fn starts_raw_string(b: &[u8], i: usize) -> bool {
    let mut j = i + 1;
    if j < b.len() && b[j] == b'b' {
        j += 1;
    }
    while j < b.len() && b[j] == b'#' {
        j += 1;
    }
    j < b.len() && b[j] == b'"' && j > i // at least r" or r#"
}

fn skip_raw_string(b: &[u8], i: usize) -> (usize, u32) {
    let mut j = i + 1;
    if j < b.len() && b[j] == b'b' {
        j += 1;
    }
    let mut hashes = 0usize;
    while j < b.len() && b[j] == b'#' {
        hashes += 1;
        j += 1;
    }
    j += 1; // opening quote
    let mut newlines = 0u32;
    while j < b.len() {
        if b[j] == b'\n' {
            newlines += 1;
            j += 1;
            continue;
        }
        if b[j] == b'"' {
            let mut k = j + 1;
            let mut h = 0usize;
            while k < b.len() && b[k] == b'#' && h < hashes {
                h += 1;
                k += 1;
            }
            if h == hashes {
                return (k, newlines);
            }
        }
        j += 1;
    }
    (b.len(), newlines)
}

fn skip_string(b: &[u8], open: usize) -> (usize, u32) {
    let mut j = open + 1;
    let mut newlines = 0u32;
    while j < b.len() {
        match b[j] {
            b'\\' => j += 2,
            b'\n' => {
                newlines += 1;
                j += 1;
            }
            b'"' => return (j + 1, newlines),
            _ => j += 1,
        }
    }
    (b.len(), newlines)
}

fn is_lifetime(b: &[u8], i: usize) -> bool {
    // 'x is a lifetime unless followed by a closing quote ('x').
    let Some(&first) = b.get(i + 1) else {
        return false;
    };
    if first == b'\\' {
        return false;
    }
    if !(first.is_ascii_alphabetic() || first == b'_') {
        return false;
    }
    // `'static`, `'a` — lifetime when the char after the ident run is
    // not a closing quote.
    let mut j = i + 2;
    while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
        j += 1;
    }
    b.get(j) != Some(&b'\'')
}

fn skip_char_literal(b: &[u8], open: usize) -> usize {
    let mut j = open + 1;
    while j < b.len() {
        match b[j] {
            b'\\' => j += 2,
            b'\'' => return j + 1,
            b'\n' => return j, // malformed; bail at the line end
            _ => j += 1,
        }
    }
    b.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_and_comments_do_not_leak_tokens() {
        let src = r##"
            // HashMap in a comment
            /* Instant::now() in a block /* nested */ comment */
            let s = "HashMap::new()";
            let r = r#"thread_rng"#;
            let c = 'H';
            fn real() {}
        "##;
        let ids = idents(src);
        assert!(!ids.contains(&"HashMap".to_string()), "{ids:?}");
        assert!(!ids.contains(&"thread_rng".to_string()));
        assert!(ids.contains(&"real".to_string()));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x } let c = 'x';";
        let lx = lex(src);
        let lifetimes: Vec<_> = lx
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 3);
        assert!(lx
            .tokens
            .iter()
            .any(|t| t.kind == TokKind::Literal && t.text == "'x'"));
    }

    #[test]
    fn line_numbers_survive_multiline_constructs() {
        let src = "let a = \"x\ny\";\nlet b = 1;";
        let lx = lex(src);
        let b = lx.tokens.iter().find(|t| t.text == "b").unwrap();
        assert_eq!(b.line, 3);
    }

    #[test]
    fn directives_parse_rule_and_reason() {
        let src = "// geospan-analyze: allow(D01, iteration feeds a sort)\nlet x = 1;";
        let lx = lex(src);
        assert_eq!(lx.directives.len(), 1);
        let d = &lx.directives[0];
        assert!(!d.malformed);
        assert_eq!(d.rule, "D01");
        assert_eq!(d.reason, "iteration feeds a sort");
        assert_eq!(d.line, 1);
    }

    #[test]
    fn directive_without_reason_is_malformed() {
        for bad in [
            "// geospan-analyze: allow(D01)",
            "// geospan-analyze: allow(D01, )",
            "// geospan-analyze: allow(X99, because)",
            "// geospan-analyze: permit(D01, because)",
        ] {
            let lx = lex(bad);
            assert_eq!(lx.directives.len(), 1, "{bad}");
            assert!(lx.directives[0].malformed, "{bad}");
        }
    }
}
