//! `geospan-analyze` — the workspace determinism linter.
//!
//! Every artifact this reproduction ships (Table-1 rows,
//! `traffic_load.csv`, `traffic_reliability.csv`) is contractually
//! byte-identical across runs and thread counts. That property is easy
//! to break silently: one `HashMap` iteration feeding an output, one
//! `partial_cmp().unwrap()` comparator meeting a NaN, one wall-clock
//! read in a measurement path. This crate is a dependency-free,
//! token-level static pass over the workspace's own source that turns
//! those conventions into named, enforced lint rules — see
//! [`rules::RULES`] and DESIGN.md §13.
//!
//! The pass is layered: [`lexer`] (tokens + directives) → [`parser`]
//! (item tree: fns with bodies, enums, structs, match arms, attribute
//! regions) → rule passes — per-file token rules in [`rules`]
//! (D01–D07, D11, A00) and cross-file coupling rules in [`xrules`]
//! (D08–D10), which see the whole workspace at once.
//!
//! Suppression is always *with a reason*: inline
//! `// geospan-analyze: allow(<rule>, <reason>)` directives for
//! reviewed sites, or the committed tab-separated baseline
//! (`analyze-baseline.tsv`) for triaged legacy findings. Stale baseline
//! entries fail the gate, so suppressions cannot outlive their code.

pub mod baseline;
pub mod lexer;
pub mod parser;
pub mod rules;
pub mod sarif;
pub mod xrules;

use std::fs;
use std::path::{Path, PathBuf};

pub use baseline::{Baseline, BaselineResult};
pub use rules::{check_source, Finding, RuleInfo, RULES};
pub use sarif::findings_to_sarif;

/// Directories never scanned, at any depth.
const SKIP_DIRS: &[&str] = &[
    "target", "stubs", ".git",
    // Test/bench/example trees: the determinism contract is about
    // library and binary code; tests exercise panics and hash maps
    // freely.
    "tests", "benches", "examples",
];

/// Collects the workspace `.rs` files subject to the lint, relative to
/// `root`: every `crates/*/src/**` tree plus the root package `src/`.
///
/// # Errors
/// Returns an IO error message when a directory walk fails.
pub fn workspace_files(root: &Path) -> Result<Vec<PathBuf>, String> {
    let mut out = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut members: Vec<PathBuf> = read_dir_sorted(&crates_dir)?
            .into_iter()
            .filter(|p| p.is_dir())
            .collect();
        members.sort();
        for member in members {
            let src = member.join("src");
            if src.is_dir() {
                walk(&src, &mut out)?;
            }
        }
    }
    let root_src = root.join("src");
    if root_src.is_dir() {
        walk(&root_src, &mut out)?;
    }
    out.sort();
    Ok(out)
}

fn read_dir_sorted(dir: &Path) -> Result<Vec<PathBuf>, String> {
    let rd = fs::read_dir(dir).map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
    let mut entries = Vec::new();
    for entry in rd {
        let entry = entry.map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
        entries.push(entry.path());
    }
    entries.sort();
    Ok(entries)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    for path in read_dir_sorted(dir)? {
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name.as_str()) {
                walk(&path, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lints a set of `(path, source)` pairs as one workspace: per-file
/// rules plus the cross-file coupling rules (D08–D10), with inline
/// directives applied per path. Findings come back sorted by path,
/// line, rule.
///
/// This is the whole pipeline behind [`analyze_workspace`], exposed so
/// tests can lint synthetic workspaces (and mutated copies of real
/// files) without touching the filesystem.
pub fn analyze_sources(files: &[(String, String)]) -> Vec<Finding> {
    let parsed: Vec<parser::ParsedFile> = files
        .iter()
        .map(|(path, src)| parser::parse(path, src))
        .collect();
    let mut findings = Vec::new();
    for pf in &parsed {
        findings.extend(rules::check_file(pf));
    }
    findings.extend(xrules::check_workspace(&parsed));
    // Apply each file's inline directives to its findings (cross-file
    // findings included: a directive next to the flagged line works the
    // same whichever rule produced the finding).
    let mut out = Vec::new();
    for pf in &parsed {
        let (mine, rest): (Vec<Finding>, Vec<Finding>) =
            findings.into_iter().partition(|f| f.path == pf.path);
        findings = rest;
        out.extend(rules::apply_directives(mine, &pf.lexed));
    }
    out.extend(findings); // findings for paths not in the set (none today)
    out.sort_by(|a, b| (a.path.as_str(), a.line, a.rule).cmp(&(b.path.as_str(), b.line, b.rule)));
    out
}

/// Lints the whole workspace under `root` and returns all raw findings
/// (inline directives applied; baseline not yet applied), sorted by
/// path, line, rule.
///
/// # Errors
/// Returns an IO error message when a file cannot be read.
pub fn analyze_workspace(root: &Path) -> Result<Vec<Finding>, String> {
    let mut files = Vec::new();
    for file in workspace_files(root)? {
        let src = fs::read_to_string(&file).map_err(|e| format!("read {}: {e}", file.display()))?;
        let rel = file
            .strip_prefix(root)
            .unwrap_or(&file)
            .to_string_lossy()
            .replace('\\', "/");
        files.push((rel, src));
    }
    Ok(analyze_sources(&files))
}

/// JSON string escaping shared by the JSON and SARIF renderers.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders findings as a JSON array (machine-readable output; the crate
/// is dependency-free, so the JSON is emitted by hand).
pub fn findings_to_json(findings: &[Finding]) -> String {
    let esc = json_escape;
    let mut out = String::from("[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n  {{\"rule\":\"{}\",\"path\":\"{}\",\"line\":{},\"snippet\":\"{}\",\"message\":\"{}\"}}",
            f.rule,
            esc(&f.path),
            f.line,
            esc(&f.snippet),
            esc(&f.message)
        ));
    }
    out.push_str(if findings.is_empty() { "]" } else { "\n]" });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_output_escapes_quotes_and_backslashes() {
        let f = Finding {
            rule: "D04",
            path: "src/a.rs".to_string(),
            line: 3,
            snippet: "x.expect(\"a\\b\")".to_string(),
            message: "m".to_string(),
        };
        let json = findings_to_json(&[f]);
        assert!(json.contains("\\\"a\\\\b\\\""), "{json}");
        assert_eq!(findings_to_json(&[]), "[]");
    }
}
