//! The linter's own gate, as a test: the workspace must be clean modulo
//! the committed baseline. This is the same check CI runs via
//! `cargo run -p geospan-analyze -- --check`, kept as a test so plain
//! `cargo test` catches regressions too.

use std::path::Path;

use geospan_analyze::{analyze_workspace, workspace_files, Baseline};

#[test]
fn workspace_is_clean_modulo_committed_baseline() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/analyze sits two levels under the workspace root")
        .to_path_buf();
    let findings = analyze_workspace(&root).expect("workspace scan succeeds");

    let baseline_path = root.join("analyze-baseline.tsv");
    let text = std::fs::read_to_string(&baseline_path).expect("committed baseline exists");
    let baseline = Baseline::parse(&text).expect("committed baseline parses");
    assert!(
        baseline.entries.len() <= 10,
        "baseline has grown past the triage budget: {} entries",
        baseline.entries.len()
    );

    let res = baseline.apply(findings);
    assert!(
        res.unsuppressed.is_empty(),
        "unsuppressed lint findings:\n{}",
        res.unsuppressed
            .iter()
            .map(|f| format!("  {}: {}:{}: {}", f.rule, f.path, f.line, f.snippet))
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(
        res.stale.is_empty(),
        "stale baseline entries (delete them):\n{}",
        res.stale
            .iter()
            .map(|e| format!("  {}\t{}\t{}", e.rule, e.path, e.snippet))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn the_analyzer_lints_its_own_crate() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/analyze sits two levels under the workspace root")
        .to_path_buf();
    let files = workspace_files(&root).expect("workspace scan succeeds");
    let own: Vec<_> = files
        .iter()
        .filter(|p| p.starts_with(root.join("crates/analyze/src")))
        .collect();
    // No self-exemption: the linter's own sources are in the scan set
    // and subject to every rule, same as any other crate.
    for must in ["lexer.rs", "parser.rs", "rules.rs", "xrules.rs", "sarif.rs"] {
        assert!(
            own.iter().any(|p| p.ends_with(must)),
            "crates/analyze/src/{must} missing from the scan set: {own:?}"
        );
    }
}

#[test]
fn every_baseline_entry_has_a_real_reason() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/analyze sits two levels under the workspace root")
        .to_path_buf();
    let text = std::fs::read_to_string(root.join("analyze-baseline.tsv")).expect("baseline exists");
    let baseline = Baseline::parse(&text).expect("baseline parses");
    for e in &baseline.entries {
        assert!(
            !e.reason.contains("TRIAGE-ME") && e.reason.len() >= 10,
            "baseline entry for {} lacks a substantive reason: {:?}",
            e.path,
            e.reason
        );
    }
}
