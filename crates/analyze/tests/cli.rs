//! End-to-end tests of the `geospan-analyze` binary: argument errors,
//! the three output formats, rule explanation, the `--check` gate, and
//! `--prune-baseline` against a scratch workspace.

use std::path::PathBuf;
use std::process::{Command, Output};

fn run(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_geospan-analyze"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

/// Creates a scratch workspace (`crates/pkg/src/lib.rs` holding `src`)
/// under the target directory and returns its root.
fn scratch(name: &str, src: &str) -> PathBuf {
    let root = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
    let pkg_src = root.join("crates/pkg/src");
    if root.exists() {
        std::fs::remove_dir_all(&root).expect("reset scratch root");
    }
    std::fs::create_dir_all(&pkg_src).expect("create scratch tree");
    std::fs::write(pkg_src.join("lib.rs"), src).expect("write scratch source");
    root
}

#[test]
fn format_without_a_value_exits_with_a_usage_error() {
    let out = run(&["--format"]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    assert!(
        stderr(&out).contains("--format needs a value"),
        "{}",
        stderr(&out)
    );
}

#[test]
fn unknown_format_and_unknown_flag_are_usage_errors() {
    let out = run(&["--format", "xml"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(stderr(&out).contains("text|json|sarif"), "{}", stderr(&out));

    let out = run(&["--frobnicate"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(
        stderr(&out).contains("unknown argument"),
        "{}",
        stderr(&out)
    );
}

#[test]
fn explain_prints_the_rationale_and_rejects_unknown_rules() {
    let out = run(&["--explain", "d08"]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let text = stdout(&out);
    assert!(text.contains("D08"), "{text}");
    assert!(text.contains("DropCause"), "rationale missing: {text}");

    let out = run(&["--explain", "D99"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(stderr(&out).contains("unknown rule"), "{}", stderr(&out));
}

#[test]
fn list_rules_covers_the_full_table() {
    let out = run(&["--list-rules"]);
    assert_eq!(out.status.code(), Some(0));
    let text = stdout(&out);
    for id in ["A00", "D01", "D08", "D09", "D10", "D11"] {
        assert!(text.contains(id), "missing {id} in {text}");
    }
}

#[test]
fn check_exits_2_on_findings_and_0_when_clean() {
    let root = scratch(
        "cli-check-dirty",
        "pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n",
    );
    let out = run(&["--check", "--root", root.to_str().expect("utf-8 path")]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    assert!(stdout(&out).contains("D04"), "{}", stdout(&out));

    let root = scratch(
        "cli-check-clean",
        "pub fn f(x: Option<u32>) -> u32 { x.unwrap_or(0) }\n",
    );
    let out = run(&["--check", "--root", root.to_str().expect("utf-8 path")]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
}

#[test]
fn sarif_output_is_a_2_1_0_log_with_the_finding() {
    let root = scratch(
        "cli-sarif",
        "pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n",
    );
    let out = run(&[
        "--format",
        "sarif",
        "--root",
        root.to_str().expect("utf-8 path"),
    ]);
    let text = stdout(&out);
    assert!(text.contains("\"version\": \"2.1.0\""), "{text}");
    assert!(text.contains("geospan-analyze"), "{text}");
    assert!(text.contains("\"ruleId\": \"D04\""), "{text}");
    assert!(text.contains("crates/pkg/src/lib.rs"), "{text}");
}

#[test]
fn json_output_is_the_pinned_array_schema() {
    let root = scratch(
        "cli-json",
        "pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n",
    );
    let out = run(&[
        "--format",
        "json",
        "--root",
        root.to_str().expect("utf-8 path"),
    ]);
    let text = stdout(&out);
    assert!(text.starts_with("[\n  {\"rule\":\"D04\""), "{text}");
    assert!(
        text.contains("\"snippet\":\"pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\""),
        "{text}"
    );
}

#[test]
fn prune_baseline_removes_only_stale_entries() {
    let root = scratch(
        "cli-prune",
        "pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n",
    );
    let baseline = root.join("analyze-baseline.tsv");
    std::fs::write(
        &baseline,
        "D04\tcrates/pkg/src/lib.rs\tpub fn f(x: Option<u32>) -> u32 { x.unwrap() }\tstill live\n\
         D04\tcrates/pkg/src/lib.rs\tgone.unwrap()\tcode was deleted\n",
    )
    .expect("write baseline");

    let out = run(&[
        "--prune-baseline",
        "--root",
        root.to_str().expect("utf-8 path"),
    ]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let err = stderr(&out);
    assert!(err.contains("pruned: D04"), "{err}");
    assert!(err.contains("gone.unwrap()"), "{err}");
    assert!(err.contains("1 kept"), "{err}");

    let kept = std::fs::read_to_string(&baseline).expect("baseline still exists");
    assert!(kept.contains("still live"), "{kept}");
    assert!(!kept.contains("gone.unwrap()"), "{kept}");

    // The pruned baseline still gates: the surviving entry suppresses
    // the finding, so --check is clean.
    let out = run(&["--check", "--root", root.to_str().expect("utf-8 path")]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");

    // A second prune is a no-op.
    let out = run(&[
        "--prune-baseline",
        "--root",
        root.to_str().expect("utf-8 path"),
    ]);
    assert_eq!(out.status.code(), Some(0));
    assert!(
        stderr(&out).contains("nothing to prune"),
        "{}",
        stderr(&out)
    );
}
