//! Mutation-style tests: the cross-file rules must fire on *mutated
//! copies of the real workspace files*, not just on synthetic fixtures.
//! Each test loads the live ledger/engine sources, applies the exact
//! edit a careless future change would make, and asserts the rule
//! catches it — proving the anchors (paths, item names, phase roots)
//! still match the code they guard.

use std::path::{Path, PathBuf};

use geospan_analyze::{analyze_sources, Finding};

/// The real workspace root (`crates/analyze` sits two levels under it).
fn root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/analyze sits two levels under the workspace root")
        .to_path_buf()
}

/// The live files participating in the D08/D10 coupling, as
/// `(workspace-relative path, source)` pairs.
fn ledger_files() -> Vec<(String, String)> {
    let root = root();
    [
        "crates/traffic/src/report.rs",
        "crates/traffic/src/engine.rs",
        "crates/traffic/src/shard.rs",
        "crates/bench/src/traffic.rs",
        "crates/bench/src/churn.rs",
    ]
    .iter()
    .map(|rel| {
        let src =
            std::fs::read_to_string(root.join(rel)).unwrap_or_else(|e| panic!("read {rel}: {e}"));
        (rel.to_string(), src)
    })
    .collect()
}

fn replace_in(files: &mut [(String, String)], path: &str, from: &str, to: &str) {
    let (_, src) = files
        .iter_mut()
        .find(|(p, _)| p == path)
        .unwrap_or_else(|| panic!("{path} not in the loaded set"));
    assert!(src.contains(from), "anchor {from:?} vanished from {path}");
    *src = src.replacen(from, to, 1);
}

#[test]
fn unmutated_ledger_files_are_clean() {
    let findings = analyze_sources(&ledger_files());
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn d08_fires_when_a_drop_cause_variant_is_added_without_wiring() {
    let mut files = ledger_files();
    // The exact edit a future cause starts with: one new variant at the
    // end of the enum, nothing else wired up.
    replace_in(
        &mut files,
        "crates/traffic/src/report.rs",
        "    NodeDeparted,\n}",
        "    NodeDeparted,\n    Zap,\n}",
    );
    let findings = analyze_sources(&files);
    let d08: Vec<&Finding> = findings.iter().filter(|f| f.rule == "D08").collect();
    assert!(!d08.is_empty(), "{findings:?}");
    assert!(
        d08.iter()
            .all(|f| f.message.contains("Zap") || f.message.contains("zap")),
        "{d08:?}"
    );
    // The three coupling legs each produce a finding: missing
    // DropCounts field, missing engine accounting site, missing bench
    // CSV column — plus one per exhaustive match left uncovered.
    assert!(
        d08.iter()
            .any(|f| f.message.contains("field in DropCounts")),
        "{d08:?}"
    );
    assert!(
        d08.iter().any(|f| f.message.contains("never recorded")),
        "{d08:?}"
    );
    assert!(
        d08.iter().any(|f| f.message.contains("drops.zap")),
        "{d08:?}"
    );
}

#[test]
fn d08_fires_on_an_orphaned_dropcounts_field() {
    let mut files = ledger_files();
    replace_in(
        &mut files,
        "crates/traffic/src/report.rs",
        "pub struct DropCounts {",
        "pub struct DropCounts {\n    /// Orphan injected by the mutation test.\n    pub zap: u64,",
    );
    let findings = analyze_sources(&files);
    let d08: Vec<&Finding> = findings.iter().filter(|f| f.rule == "D08").collect();
    assert_eq!(d08.len(), 1, "{findings:?}");
    assert!(
        d08[0].message.contains("matches no DropCause variant"),
        "{}",
        d08[0].message
    );
}

#[test]
fn d10_fires_on_a_mutation_injected_outside_the_phase_fns() {
    let mut files = ledger_files();
    // Append a helper nobody calls from the phase roots; it pushes into
    // the shared completion log.
    let (_, engine) = files
        .iter_mut()
        .find(|(p, _)| p == "crates/traffic/src/engine.rs")
        .expect("engine source loaded");
    engine.push_str(
        "\nimpl ShardCore<'_> {\n    fn sneaky(&mut self, rec: (u32, PacketRecord)) {\n        self.done.push(rec);\n    }\n}\n",
    );
    let findings = analyze_sources(&files);
    let d10: Vec<&Finding> = findings.iter().filter(|f| f.rule == "D10").collect();
    assert_eq!(d10.len(), 1, "{findings:?}");
    assert!(d10[0].message.contains("sneaky"), "{}", d10[0].message);
    assert!(d10[0].message.contains("phase_local"), "{}", d10[0].message);
}
