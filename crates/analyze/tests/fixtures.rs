//! Per-rule positive/negative fixtures for the determinism linter.
//!
//! Each rule gets at least one source string it must flag and one
//! shaped-alike string it must not, plus coverage for the two
//! suppression channels (inline allow directives, baseline entries).

use geospan_analyze::{check_source, Baseline};

fn rules_hit(src: &str) -> Vec<&'static str> {
    let mut rules: Vec<&'static str> = check_source("fixture.rs", src)
        .into_iter()
        .map(|f| f.rule)
        .collect();
    rules.sort_unstable();
    rules.dedup();
    rules
}

// ---------------------------------------------------------------- D01

#[test]
fn d01_flags_for_loop_over_hashmap() {
    let src = r#"
use std::collections::HashMap;
pub fn emit() -> Vec<(u32, u32)> {
    let mut m: HashMap<u32, u32> = HashMap::new();
    m.insert(1, 2);
    let mut out = Vec::new();
    for (k, v) in &m {
        out.push((*k, *v));
    }
    out
}
"#;
    assert_eq!(rules_hit(src), ["D01"]);
}

#[test]
fn d01_flags_iter_collect_into_vec() {
    let src = r#"
use std::collections::HashSet;
pub fn emit(s: HashSet<u32>) -> Vec<u32> {
    s.into_iter().collect()
}
"#;
    assert_eq!(rules_hit(src), ["D01"]);
}

#[test]
fn d01_ignores_btreemap_and_order_free_sinks() {
    let src = r#"
use std::collections::{BTreeMap, HashSet};
pub fn ok(m: BTreeMap<u32, u32>, s: HashSet<u32>) -> (u32, bool, usize) {
    let mut acc = 0;
    for (_k, v) in &m {
        acc += v;
    }
    // Order-free sinks on a hash collection are fine.
    (acc, s.iter().any(|&x| x > 3), s.iter().count())
}
"#;
    assert_eq!(rules_hit(src), Vec::<&str>::new());
}

#[test]
fn d01_ignores_hash_iteration_inside_test_code() {
    let src = r#"
use std::collections::HashSet;

#[cfg(test)]
mod tests {
    use super::*;
    #[test]
    fn order_does_not_matter_here() {
        let s: HashSet<u32> = HashSet::new();
        for x in &s {
            let _ = x;
        }
    }
}
"#;
    assert_eq!(rules_hit(src), Vec::<&str>::new());
}

#[test]
fn d01_collect_back_into_a_set_is_order_free() {
    let src = r#"
use std::collections::{BTreeSet, HashSet};
pub fn ok(s: HashSet<u32>) -> BTreeSet<u32> {
    s.into_iter().collect::<BTreeSet<u32>>()
}
"#;
    assert_eq!(rules_hit(src), Vec::<&str>::new());
}

// ---------------------------------------------------------------- D02

#[test]
fn d02_flags_instant_systemtime_thread_rng_and_raw_spawn() {
    let src = r#"
pub fn bad() {
    let _t = std::time::Instant::now();
    let _s = std::time::SystemTime::now();
    let _r = rand::thread_rng();
    let _h = std::thread::spawn(|| 1);
}
"#;
    let findings = check_source("fixture.rs", src);
    let d02 = findings.iter().filter(|f| f.rule == "D02").count();
    assert_eq!(d02, 4, "{findings:?}");
}

#[test]
fn d02_ignores_sim_clock_and_test_code() {
    let src = r#"
pub fn ok(clock: u64) -> u64 {
    clock + 1
}

#[test]
fn timing_in_tests_is_fine() {
    let _t = std::time::Instant::now();
}
"#;
    assert_eq!(rules_hit(src), Vec::<&str>::new());
}

// ---------------------------------------------------------------- D03

#[test]
fn d03_flags_partial_cmp_unwrap_and_expect() {
    let src = r#"
pub fn sortit(v: &mut Vec<f64>) {
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
}
pub fn sortit2(v: &mut Vec<f64>) {
    v.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
}
"#;
    let findings = check_source("fixture.rs", src);
    let d03 = findings.iter().filter(|f| f.rule == "D03").count();
    assert_eq!(d03, 2, "{findings:?}");
}

#[test]
fn d03_ignores_total_cmp_and_partial_ord_impls() {
    let src = r#"
use std::cmp::Ordering;
pub struct E(f64);
impl PartialOrd for E {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.0.total_cmp(&other.0))
    }
}
pub fn sortit(v: &mut Vec<f64>) {
    v.sort_by(|a, b| a.total_cmp(b));
}
"#;
    // The bare `.unwrap()`-free source must not trip D03; the
    // PartialOrd impl's own `fn partial_cmp` is exempt.
    assert_eq!(rules_hit(src), Vec::<&str>::new());
}

// ---------------------------------------------------------------- D04

#[test]
fn d04_flags_bare_unwrap_but_not_expect() {
    let src = r#"
pub fn bad(x: Option<u32>) -> u32 {
    x.unwrap()
}
pub fn ok(x: Option<u32>) -> u32 {
    x.expect("caller guarantees Some")
}
"#;
    let findings = check_source("fixture.rs", src);
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].rule, "D04");
    assert_eq!(findings[0].snippet, "x.unwrap()");
}

#[test]
fn d04_ignores_unwrap_in_test_functions() {
    let src = r#"
#[test]
fn unwrap_is_fine_in_tests() {
    let x: Option<u32> = Some(1);
    assert_eq!(x.unwrap(), 1);
}
"#;
    assert_eq!(rules_hit(src), Vec::<&str>::new());
}

#[test]
fn d04_ignores_unwrap_or_variants() {
    let src = r#"
pub fn ok(x: Option<u32>) -> u32 {
    x.unwrap_or(0) + x.unwrap_or_default() + x.unwrap_or_else(|| 2)
}
"#;
    assert_eq!(rules_hit(src), Vec::<&str>::new());
}

// ---------------------------------------------------------------- D05

#[test]
fn d05_flags_parallel_float_reduction() {
    let src = r#"
use rayon::prelude::*;
pub fn bad(v: &[f64]) -> f64 {
    v.par_iter().map(|x| x * x).sum()
}
"#;
    assert_eq!(rules_hit(src), ["D05"]);
}

#[test]
fn d05_ignores_par_map_collect_with_serial_fold() {
    let src = r#"
use rayon::prelude::*;
pub fn ok(v: &[f64]) -> f64 {
    let squares: Vec<f64> = v.par_iter().map(|x| x * x).collect();
    let mut acc = 0.0;
    for s in &squares {
        acc += s;
    }
    acc
}
"#;
    assert_eq!(rules_hit(src), Vec::<&str>::new());
}

// ---------------------------------------------------------------- D06

#[test]
fn d06_flags_node_id_keyed_btrees_in_construction_crates() {
    let src = r#"
use std::collections::{BTreeMap, BTreeSet};
pub struct NodeState {
    neighbors: BTreeSet<usize>,
    positions: BTreeMap<usize, (f64, f64)>,
}
"#;
    let findings = check_source("crates/topology/src/fixture.rs", src);
    let d06 = findings.iter().filter(|f| f.rule == "D06").count();
    assert_eq!(d06, 2, "{findings:?}");
}

#[test]
fn d06_ignores_tuple_keys_and_non_construction_crates() {
    // Pair/triple keys encode message-emission order and never match.
    let src = r#"
use std::collections::{BTreeMap, BTreeSet};
pub struct NodeState {
    edges: BTreeSet<(usize, usize)>,
    votes: BTreeMap<[usize; 3], u32>,
    winners: BTreeMap<(usize, usize), Vec<usize>>,
}
"#;
    assert!(check_source("crates/cds/src/fixture.rs", src).is_empty());

    // Node-id keys outside the construction crates are not D06's business.
    let src = r#"
use std::collections::BTreeSet;
pub struct Flows {
    active: BTreeSet<usize>,
}
"#;
    assert!(check_source("crates/traffic/src/fixture.rs", src).is_empty());
}

#[test]
fn d06_ignores_test_code_and_honors_allow_directive() {
    let src = r#"
#[cfg(test)]
mod tests {
    use std::collections::BTreeSet;
    pub struct Oracle {
        neighbors: BTreeSet<usize>,
    }
}
"#;
    assert!(check_source("crates/graph/src/fixture.rs", src).is_empty());

    let src = r#"
use std::collections::BTreeSet;
pub struct NodeState {
    // geospan-analyze: allow(D06, emission order of this set is load-bearing)
    neighbors: BTreeSet<usize>,
}
"#;
    assert!(check_source("crates/graph/src/fixture.rs", src).is_empty());
}

// ---------------------------------------------------------------- D07

#[test]
fn d07_flags_raw_threading_primitives() {
    let src = r#"
use std::sync::Barrier;
pub fn bad(n: usize) -> u32 {
    let b = Barrier::new(n);
    let (tx, rx) = std::sync::mpsc::channel::<u32>();
    std::thread::scope(|s| {
        s.spawn(|| {
            b.wait();
            tx.send(1).expect("receiver lives");
        });
    });
    rx.recv().expect("sender sent")
}
"#;
    let findings = check_source("crates/sim/src/fixture.rs", src);
    let d07 = findings.iter().filter(|f| f.rule == "D07").count();
    // `Barrier` twice (use + construction), `mpsc`, `thread::`.
    assert_eq!(d07, 4, "{findings:?}");
}

#[test]
fn d07_exempts_the_shard_driver_and_test_code() {
    let src = r#"
pub fn drive() {
    std::thread::scope(|_s| {});
}
"#;
    // The sharded engine driver carries the determinism proof.
    assert!(check_source("crates/traffic/src/shard.rs", src).is_empty());
    // The same code anywhere else is flagged.
    assert_eq!(rules_hit(src), ["D07"]);

    // Threads inside test code are the test harness's business.
    let src = r#"
#[cfg(test)]
mod tests {
    #[test]
    fn concurrent_probe() {
        std::thread::scope(|_s| {});
    }
}
"#;
    assert_eq!(rules_hit(src), Vec::<&str>::new());
}

#[test]
fn d07_ignores_rayon_and_honors_allow_directive() {
    let src = r#"
use rayon::prelude::*;
use std::sync::{Arc, Mutex};
pub fn ok(v: &[u64]) -> u64 {
    let m = Arc::new(Mutex::new(0u64));
    let rows: Vec<u64> = v.par_iter().map(|x| x + 1).collect();
    *m.lock().expect("no poisoned threads here") + rows.len() as u64
}
"#;
    assert_eq!(rules_hit(src), Vec::<&str>::new());

    let src = r#"
pub fn cores() -> usize {
    // geospan-analyze: allow(D07, reading the core count spawns nothing)
    std::thread::available_parallelism().map_or(1, |p| p.get())
}
"#;
    assert_eq!(rules_hit(src), Vec::<&str>::new());
}

// ------------------------------------------------- directives and A00

#[test]
fn allow_directive_on_same_line_suppresses() {
    let src = r#"
pub fn bad(x: Option<u32>) -> u32 {
    x.unwrap() // geospan-analyze: allow(D04, fixture demonstrates suppression)
}
"#;
    assert_eq!(rules_hit(src), Vec::<&str>::new());
}

#[test]
fn allow_directive_on_preceding_line_suppresses() {
    let src = r#"
pub fn bad(x: Option<u32>) -> u32 {
    // geospan-analyze: allow(D04, fixture demonstrates suppression)
    x.unwrap()
}
"#;
    assert_eq!(rules_hit(src), Vec::<&str>::new());
}

#[test]
fn allow_directive_for_wrong_rule_does_not_suppress() {
    let src = r#"
pub fn bad(x: Option<u32>) -> u32 {
    // geospan-analyze: allow(D01, wrong rule id)
    x.unwrap()
}
"#;
    assert_eq!(rules_hit(src), ["D04"]);
}

#[test]
fn malformed_directive_is_reported_as_a00() {
    // Missing reason.
    let src = "pub fn f() {} // geospan-analyze: allow(D04)\n";
    assert_eq!(rules_hit(src), ["A00"]);
    // Unknown shape.
    let src = "pub fn f() {} // geospan-analyze: suppress(D04, reason)\n";
    assert_eq!(rules_hit(src), ["A00"]);
}

#[test]
fn directive_syntax_inside_doc_comments_is_not_parsed() {
    let src = r#"
//! Mentions `geospan-analyze: allow(D04)` in crate docs.

/// Docs may show `geospan-analyze: allow(broken` without tripping A00.
pub fn f() {}
"#;
    assert_eq!(rules_hit(src), Vec::<&str>::new());
}

// ------------------------------------------------------------ baseline

#[test]
fn baseline_suppresses_finding_and_flags_stale_entries() {
    let src = r#"
pub fn bad(x: Option<u32>) -> u32 {
    x.unwrap()
}
"#;
    let findings = check_source("src/legacy.rs", src);
    assert_eq!(findings.len(), 1);

    let bl =
        Baseline::parse("D04\tsrc/legacy.rs\tx.unwrap()\ttriaged legacy site\n").expect("parses");
    let res = bl.apply(findings.clone());
    assert_eq!(res.suppressed, 1);
    assert!(res.unsuppressed.is_empty());
    assert!(res.stale.is_empty());

    // A baseline for code that no longer exists is stale.
    let bl = Baseline::parse("D04\tsrc/legacy.rs\tgone.unwrap()\told\n").expect("parses");
    let res = bl.apply(findings);
    assert_eq!(res.unsuppressed.len(), 1);
    assert_eq!(res.stale.len(), 1);
}

#[test]
fn violations_inside_string_literals_are_not_flagged() {
    let src = r#"
pub fn ok() -> &'static str {
    "for x in &hash_map { x.unwrap() } std::time::Instant::now()"
}
"#;
    assert_eq!(rules_hit(src), Vec::<&str>::new());
}
