//! Per-rule positive/negative fixtures for the determinism linter.
//!
//! Each rule gets at least one source string it must flag and one
//! shaped-alike string it must not, plus coverage for the two
//! suppression channels (inline allow directives, baseline entries).

use geospan_analyze::{analyze_sources, check_source, Baseline, Finding};

fn rules_hit(src: &str) -> Vec<&'static str> {
    let mut rules: Vec<&'static str> = check_source("fixture.rs", src)
        .into_iter()
        .map(|f| f.rule)
        .collect();
    rules.sort_unstable();
    rules.dedup();
    rules
}

// ---------------------------------------------------------------- D01

#[test]
fn d01_flags_for_loop_over_hashmap() {
    let src = r#"
use std::collections::HashMap;
pub fn emit() -> Vec<(u32, u32)> {
    let mut m: HashMap<u32, u32> = HashMap::new();
    m.insert(1, 2);
    let mut out = Vec::new();
    for (k, v) in &m {
        out.push((*k, *v));
    }
    out
}
"#;
    assert_eq!(rules_hit(src), ["D01"]);
}

#[test]
fn d01_flags_iter_collect_into_vec() {
    let src = r#"
use std::collections::HashSet;
pub fn emit(s: HashSet<u32>) -> Vec<u32> {
    s.into_iter().collect()
}
"#;
    assert_eq!(rules_hit(src), ["D01"]);
}

#[test]
fn d01_ignores_btreemap_and_order_free_sinks() {
    let src = r#"
use std::collections::{BTreeMap, HashSet};
pub fn ok(m: BTreeMap<u32, u32>, s: HashSet<u32>) -> (u32, bool, usize) {
    let mut acc = 0;
    for (_k, v) in &m {
        acc += v;
    }
    // Order-free sinks on a hash collection are fine.
    (acc, s.iter().any(|&x| x > 3), s.iter().count())
}
"#;
    assert_eq!(rules_hit(src), Vec::<&str>::new());
}

#[test]
fn d01_ignores_hash_iteration_inside_test_code() {
    let src = r#"
use std::collections::HashSet;

#[cfg(test)]
mod tests {
    use super::*;
    #[test]
    fn order_does_not_matter_here() {
        let s: HashSet<u32> = HashSet::new();
        for x in &s {
            let _ = x;
        }
    }
}
"#;
    assert_eq!(rules_hit(src), Vec::<&str>::new());
}

#[test]
fn d01_collect_back_into_a_set_is_order_free() {
    let src = r#"
use std::collections::{BTreeSet, HashSet};
pub fn ok(s: HashSet<u32>) -> BTreeSet<u32> {
    s.into_iter().collect::<BTreeSet<u32>>()
}
"#;
    assert_eq!(rules_hit(src), Vec::<&str>::new());
}

// ---------------------------------------------------------------- D02

#[test]
fn d02_flags_instant_systemtime_thread_rng_and_raw_spawn() {
    let src = r#"
pub fn bad() {
    let _t = std::time::Instant::now();
    let _s = std::time::SystemTime::now();
    let _r = rand::thread_rng();
    let _h = std::thread::spawn(|| 1);
}
"#;
    let findings = check_source("fixture.rs", src);
    let d02 = findings.iter().filter(|f| f.rule == "D02").count();
    assert_eq!(d02, 4, "{findings:?}");
}

#[test]
fn d02_ignores_sim_clock_and_test_code() {
    let src = r#"
pub fn ok(clock: u64) -> u64 {
    clock + 1
}

#[test]
fn timing_in_tests_is_fine() {
    let _t = std::time::Instant::now();
}
"#;
    assert_eq!(rules_hit(src), Vec::<&str>::new());
}

// ---------------------------------------------------------------- D03

#[test]
fn d03_flags_partial_cmp_unwrap_and_expect() {
    let src = r#"
pub fn sortit(v: &mut Vec<f64>) {
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
}
pub fn sortit2(v: &mut Vec<f64>) {
    v.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
}
"#;
    let findings = check_source("fixture.rs", src);
    let d03 = findings.iter().filter(|f| f.rule == "D03").count();
    assert_eq!(d03, 2, "{findings:?}");
}

#[test]
fn d03_ignores_total_cmp_and_partial_ord_impls() {
    let src = r#"
use std::cmp::Ordering;
pub struct E(f64);
impl PartialOrd for E {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.0.total_cmp(&other.0))
    }
}
pub fn sortit(v: &mut Vec<f64>) {
    v.sort_by(|a, b| a.total_cmp(b));
}
"#;
    // The bare `.unwrap()`-free source must not trip D03; the
    // PartialOrd impl's own `fn partial_cmp` is exempt.
    assert_eq!(rules_hit(src), Vec::<&str>::new());
}

// ---------------------------------------------------------------- D04

#[test]
fn d04_flags_bare_unwrap_but_not_expect() {
    let src = r#"
pub fn bad(x: Option<u32>) -> u32 {
    x.unwrap()
}
pub fn ok(x: Option<u32>) -> u32 {
    x.expect("caller guarantees Some")
}
"#;
    let findings = check_source("fixture.rs", src);
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].rule, "D04");
    assert_eq!(findings[0].snippet, "x.unwrap()");
}

#[test]
fn d04_ignores_unwrap_in_test_functions() {
    let src = r#"
#[test]
fn unwrap_is_fine_in_tests() {
    let x: Option<u32> = Some(1);
    assert_eq!(x.unwrap(), 1);
}
"#;
    assert_eq!(rules_hit(src), Vec::<&str>::new());
}

#[test]
fn d04_ignores_unwrap_or_variants() {
    let src = r#"
pub fn ok(x: Option<u32>) -> u32 {
    x.unwrap_or(0) + x.unwrap_or_default() + x.unwrap_or_else(|| 2)
}
"#;
    assert_eq!(rules_hit(src), Vec::<&str>::new());
}

// ---------------------------------------------------------------- D05

#[test]
fn d05_flags_parallel_float_reduction() {
    let src = r#"
use rayon::prelude::*;
pub fn bad(v: &[f64]) -> f64 {
    v.par_iter().map(|x| x * x).sum()
}
"#;
    assert_eq!(rules_hit(src), ["D05"]);
}

#[test]
fn d05_ignores_par_map_collect_with_serial_fold() {
    let src = r#"
use rayon::prelude::*;
pub fn ok(v: &[f64]) -> f64 {
    let squares: Vec<f64> = v.par_iter().map(|x| x * x).collect();
    let mut acc = 0.0;
    for s in &squares {
        acc += s;
    }
    acc
}
"#;
    assert_eq!(rules_hit(src), Vec::<&str>::new());
}

// ---------------------------------------------------------------- D06

#[test]
fn d06_flags_node_id_keyed_btrees_in_construction_crates() {
    let src = r#"
use std::collections::{BTreeMap, BTreeSet};
pub struct NodeState {
    neighbors: BTreeSet<usize>,
    positions: BTreeMap<usize, (f64, f64)>,
}
"#;
    let findings = check_source("crates/topology/src/fixture.rs", src);
    let d06 = findings.iter().filter(|f| f.rule == "D06").count();
    assert_eq!(d06, 2, "{findings:?}");
}

#[test]
fn d06_ignores_tuple_keys_and_non_construction_crates() {
    // Pair/triple keys encode message-emission order and never match.
    let src = r#"
use std::collections::{BTreeMap, BTreeSet};
pub struct NodeState {
    edges: BTreeSet<(usize, usize)>,
    votes: BTreeMap<[usize; 3], u32>,
    winners: BTreeMap<(usize, usize), Vec<usize>>,
}
"#;
    assert!(check_source("crates/cds/src/fixture.rs", src).is_empty());

    // Node-id keys outside the construction crates are not D06's business.
    let src = r#"
use std::collections::BTreeSet;
pub struct Flows {
    active: BTreeSet<usize>,
}
"#;
    assert!(check_source("crates/traffic/src/fixture.rs", src).is_empty());
}

#[test]
fn d06_ignores_test_code_and_honors_allow_directive() {
    let src = r#"
#[cfg(test)]
mod tests {
    use std::collections::BTreeSet;
    pub struct Oracle {
        neighbors: BTreeSet<usize>,
    }
}
"#;
    assert!(check_source("crates/graph/src/fixture.rs", src).is_empty());

    let src = r#"
use std::collections::BTreeSet;
pub struct NodeState {
    // geospan-analyze: allow(D06, emission order of this set is load-bearing)
    neighbors: BTreeSet<usize>,
}
"#;
    assert!(check_source("crates/graph/src/fixture.rs", src).is_empty());
}

// ---------------------------------------------------------------- D07

#[test]
fn d07_flags_raw_threading_primitives() {
    let src = r#"
use std::sync::Barrier;
pub fn bad(n: usize) -> u32 {
    let b = Barrier::new(n);
    let (tx, rx) = std::sync::mpsc::channel::<u32>();
    std::thread::scope(|s| {
        s.spawn(|| {
            b.wait();
            tx.send(1).expect("receiver lives");
        });
    });
    rx.recv().expect("sender sent")
}
"#;
    let findings = check_source("crates/sim/src/fixture.rs", src);
    let d07 = findings.iter().filter(|f| f.rule == "D07").count();
    // `Barrier` twice (use + construction), `mpsc`, `thread::`.
    assert_eq!(d07, 4, "{findings:?}");
}

#[test]
fn d07_exempts_the_shard_driver_and_test_code() {
    let src = r#"
pub fn drive() {
    std::thread::scope(|_s| {});
}
"#;
    // The sharded engine driver carries the determinism proof.
    assert!(check_source("crates/traffic/src/shard.rs", src).is_empty());
    // The same code anywhere else is flagged.
    assert_eq!(rules_hit(src), ["D07"]);

    // Threads inside test code are the test harness's business.
    let src = r#"
#[cfg(test)]
mod tests {
    #[test]
    fn concurrent_probe() {
        std::thread::scope(|_s| {});
    }
}
"#;
    assert_eq!(rules_hit(src), Vec::<&str>::new());
}

#[test]
fn d07_ignores_rayon_and_honors_allow_directive() {
    let src = r#"
use rayon::prelude::*;
use std::sync::{Arc, Mutex};
pub fn ok(v: &[u64]) -> u64 {
    let m = Arc::new(Mutex::new(0u64));
    let rows: Vec<u64> = v.par_iter().map(|x| x + 1).collect();
    *m.lock().expect("no poisoned threads here") + rows.len() as u64
}
"#;
    assert_eq!(rules_hit(src), Vec::<&str>::new());

    let src = r#"
pub fn cores() -> usize {
    // geospan-analyze: allow(D07, reading the core count spawns nothing)
    std::thread::available_parallelism().map_or(1, |p| p.get())
}
"#;
    assert_eq!(rules_hit(src), Vec::<&str>::new());
}

// ------------------------------------------------- directives and A00

#[test]
fn allow_directive_on_same_line_suppresses() {
    let src = r#"
pub fn bad(x: Option<u32>) -> u32 {
    x.unwrap() // geospan-analyze: allow(D04, fixture demonstrates suppression)
}
"#;
    assert_eq!(rules_hit(src), Vec::<&str>::new());
}

#[test]
fn allow_directive_on_preceding_line_suppresses() {
    let src = r#"
pub fn bad(x: Option<u32>) -> u32 {
    // geospan-analyze: allow(D04, fixture demonstrates suppression)
    x.unwrap()
}
"#;
    assert_eq!(rules_hit(src), Vec::<&str>::new());
}

#[test]
fn allow_directive_for_wrong_rule_does_not_suppress() {
    let src = r#"
pub fn bad(x: Option<u32>) -> u32 {
    // geospan-analyze: allow(D01, wrong rule id)
    x.unwrap()
}
"#;
    assert_eq!(rules_hit(src), ["D04"]);
}

#[test]
fn malformed_directive_is_reported_as_a00() {
    // Missing reason.
    let src = "pub fn f() {} // geospan-analyze: allow(D04)\n";
    assert_eq!(rules_hit(src), ["A00"]);
    // Unknown shape.
    let src = "pub fn f() {} // geospan-analyze: suppress(D04, reason)\n";
    assert_eq!(rules_hit(src), ["A00"]);
}

#[test]
fn directive_syntax_inside_doc_comments_is_not_parsed() {
    let src = r#"
//! Mentions `geospan-analyze: allow(D04)` in crate docs.

/// Docs may show `geospan-analyze: allow(broken` without tripping A00.
pub fn f() {}
"#;
    assert_eq!(rules_hit(src), Vec::<&str>::new());
}

// ------------------------------------------------------------ baseline

#[test]
fn baseline_suppresses_finding_and_flags_stale_entries() {
    let src = r#"
pub fn bad(x: Option<u32>) -> u32 {
    x.unwrap()
}
"#;
    let findings = check_source("src/legacy.rs", src);
    assert_eq!(findings.len(), 1);

    let bl =
        Baseline::parse("D04\tsrc/legacy.rs\tx.unwrap()\ttriaged legacy site\n").expect("parses");
    let res = bl.apply(findings.clone());
    assert_eq!(res.suppressed, 1);
    assert!(res.unsuppressed.is_empty());
    assert!(res.stale.is_empty());

    // A baseline for code that no longer exists is stale.
    let bl = Baseline::parse("D04\tsrc/legacy.rs\tgone.unwrap()\told\n").expect("parses");
    let res = bl.apply(findings);
    assert_eq!(res.unsuppressed.len(), 1);
    assert_eq!(res.stale.len(), 1);
}

#[test]
fn violations_inside_string_literals_are_not_flagged() {
    let src = r#"
pub fn ok() -> &'static str {
    "for x in &hash_map { x.unwrap() } std::time::Instant::now()"
}
"#;
    assert_eq!(rules_hit(src), Vec::<&str>::new());
}

// --------------------------------------------------- cross-file helpers

/// Lints a synthetic multi-file workspace through the full pipeline
/// (per-file rules + D08–D10 + inline directives).
fn workspace(files: &[(&str, &str)]) -> Vec<Finding> {
    let owned: Vec<(String, String)> = files
        .iter()
        .map(|(p, s)| (p.to_string(), s.to_string()))
        .collect();
    analyze_sources(&owned)
}

// ---------------------------------------------------------------- D08

/// A fully coupled two-cause ledger: every variant has a field, an
/// accounting site in the engine, and a CSV column in the bench writer.
const D08_REPORT_OK: &str = r#"
pub enum DropCause {
    Stuck,
    QueueFull,
}
pub struct DropCounts {
    pub stuck: u64,
    pub queue_full: u64,
}
impl DropCounts {
    pub fn record(&mut self, c: DropCause) {
        match c {
            DropCause::Stuck => self.stuck += 1,
            DropCause::QueueFull => self.queue_full += 1,
        }
    }
}
"#;

const D08_ENGINE_OK: &str = r#"
pub fn account(drops: &mut DropCounts, full: bool) {
    if full {
        drops.record(DropCause::QueueFull);
    } else {
        drops.record(DropCause::Stuck);
    }
}
"#;

const D08_BENCH_OK: &str = r#"
pub fn csv_row(r: &TrafficReport) -> String {
    format!("{},{}", r.drops.stuck, r.drops.queue_full)
}
"#;

fn d08_workspace(report: &str, engine: &str, bench: &str) -> Vec<Finding> {
    workspace(&[
        ("crates/traffic/src/report.rs", report),
        ("crates/traffic/src/engine.rs", engine),
        ("crates/bench/src/traffic.rs", bench),
    ])
}

#[test]
fn d08_fully_coupled_ledger_is_clean() {
    let fs = d08_workspace(D08_REPORT_OK, D08_ENGINE_OK, D08_BENCH_OK);
    assert!(fs.is_empty(), "{fs:?}");
}

#[test]
fn d08_flags_variant_with_no_field_accounting_column_or_match_arm() {
    // A freshly added cause with nothing wired up yet: four findings
    // (missing DropCounts field, missing engine accounting site,
    // missing bench CSV column, uncovered match arm in record()).
    let report = D08_REPORT_OK.replacen("    QueueFull,\n}", "    QueueFull,\n    LinkLoss,\n}", 1);
    let fs = d08_workspace(&report, D08_ENGINE_OK, D08_BENCH_OK);
    assert_eq!(fs.len(), 4, "{fs:?}");
    assert!(fs.iter().all(|f| f.rule == "D08"), "{fs:?}");
    assert!(
        fs.iter()
            .all(|f| f.message.contains("LinkLoss") || f.message.contains("link_loss")),
        "{fs:?}"
    );
}

#[test]
fn d08_flags_orphan_dropcounts_field() {
    let report = D08_REPORT_OK.replacen(
        "    pub queue_full: u64,\n}",
        "    pub queue_full: u64,\n    pub ghost: u64,\n}",
        1,
    );
    let fs = d08_workspace(&report, D08_ENGINE_OK, D08_BENCH_OK);
    assert_eq!(fs.len(), 1, "{fs:?}");
    assert_eq!(fs[0].rule, "D08");
    assert!(fs[0].message.contains("ghost"), "{}", fs[0].message);
    assert!(
        fs[0].message.contains("matches no DropCause variant"),
        "{}",
        fs[0].message
    );
}

#[test]
fn d08_flags_missing_bench_column_alone() {
    let bench = r#"
pub fn csv_row(r: &TrafficReport) -> String {
    format!("{}", r.drops.stuck)
}
"#;
    let fs = d08_workspace(D08_REPORT_OK, D08_ENGINE_OK, bench);
    assert_eq!(fs.len(), 1, "{fs:?}");
    assert!(
        fs[0].message.contains("drops.queue_full"),
        "{}",
        fs[0].message
    );
}

#[test]
fn d08_match_with_wildcard_arm_is_exempt_from_coverage() {
    let report = r#"
pub enum DropCause {
    Stuck,
    QueueFull,
}
pub struct DropCounts {
    pub stuck: u64,
    pub queue_full: u64,
}
impl DropCounts {
    pub fn is_congestion(c: DropCause) -> bool {
        match c {
            DropCause::QueueFull => true,
            _ => false,
        }
    }
    pub fn record(&mut self, c: DropCause) {
        match c {
            DropCause::Stuck => self.stuck += 1,
            DropCause::QueueFull => self.queue_full += 1,
        }
    }
}
"#;
    let fs = d08_workspace(report, D08_ENGINE_OK, D08_BENCH_OK);
    assert!(fs.is_empty(), "{fs:?}");
}

#[test]
fn d08_is_silent_without_the_anchor_file() {
    // The same enum/struct under any other path is not the ledger.
    let fs = workspace(&[("crates/sim/src/report.rs", D08_REPORT_OK)]);
    assert!(fs.is_empty(), "{fs:?}");
}

// ---------------------------------------------------------------- D09

#[test]
fn d09_flags_entropy_and_thread_local_rng_sources() {
    let src = r#"
pub fn bad() -> u32 {
    let _rng = StdRng::from_entropy();
    rand::random()
}
"#;
    let fs = workspace(&[("crates/sim/src/fixture.rs", src)]);
    let d09 = fs.iter().filter(|f| f.rule == "D09").count();
    assert_eq!(d09, 2, "{fs:?}");
}

#[test]
fn d09_flags_unproven_seed_arguments() {
    // A value with no "seed" in its name and no provable flow.
    let src = r#"
pub fn bad(count: u64) -> u64 {
    let _r = StdRng::seed_from_u64(count * 31);
    count
}
"#;
    let fs = workspace(&[("crates/sim/src/fixture.rs", src)]);
    assert_eq!(fs.len(), 1, "{fs:?}");
    assert_eq!(fs[0].rule, "D09");

    // One level of indirection, but a call site passes a non-seed.
    let src = r#"
pub fn make(x: u64) -> StdRng {
    StdRng::seed_from_u64(x)
}
pub fn caller(ticks: u64) -> StdRng {
    make(ticks)
}
"#;
    let fs = workspace(&[("crates/sim/src/fixture.rs", src)]);
    assert_eq!(fs.len(), 1, "{fs:?}");
    assert_eq!(fs[0].rule, "D09");
    assert!(fs[0].message.contains("unproven"), "{}", fs[0].message);
}

#[test]
fn d09_accepts_named_seeds_literals_and_constant_mixes() {
    let src = r#"
pub fn ok(cfg: Config) -> (StdRng, StdRng, StdRng) {
    let a = StdRng::seed_from_u64(cfg.rng_seed);
    let b = StdRng::seed_from_u64(42);
    let c = StdRng::seed_from_u64(cfg.rng_seed ^ 0x9e3779b9);
    (a, b, c)
}
"#;
    let fs = workspace(&[("crates/sim/src/fixture.rs", src)]);
    assert!(fs.is_empty(), "{fs:?}");
}

#[test]
fn d09_proves_seed_flow_through_one_helper_level() {
    let src = r#"
pub fn make(x: u64) -> StdRng {
    StdRng::seed_from_u64(x)
}
pub fn run(seed: u64) -> (StdRng, StdRng) {
    (make(seed), make(seed + 1))
}
"#;
    let fs = workspace(&[("crates/sim/src/fixture.rs", src)]);
    assert!(fs.is_empty(), "{fs:?}");
}

#[test]
fn d09_ignores_entropy_in_test_code() {
    let src = r#"
#[cfg(test)]
mod tests {
    #[test]
    fn entropy_is_fine_in_tests() {
        let _rng = StdRng::from_entropy();
    }
}
"#;
    let fs = workspace(&[("crates/sim/src/fixture.rs", src)]);
    assert!(fs.is_empty(), "{fs:?}");
}

// ---------------------------------------------------------------- D10

#[test]
fn d10_flags_container_mutation_outside_the_phase_call_tree() {
    let src = r#"
pub struct Core {
    queue: Vec<u32>,
    done: Vec<u32>,
}
impl Core {
    pub fn phase_local(&mut self) {
        self.step();
    }
    fn step(&mut self) {
        self.queue.push(1);
    }
    fn sneaky(&mut self) {
        self.done.push(2);
    }
}
"#;
    let fs = workspace(&[("crates/traffic/src/engine.rs", src)]);
    assert_eq!(fs.len(), 1, "{fs:?}");
    assert_eq!(fs[0].rule, "D10");
    assert!(fs[0].message.contains("sneaky"), "{}", fs[0].message);
    assert!(fs[0].message.contains("done"), "{}", fs[0].message);
}

#[test]
fn d10_flags_ledger_counter_increment_outside_the_phases() {
    let src = r#"
pub struct Core {
    rounds: u64,
}
impl Core {
    pub fn phase_merge(&mut self) {
        self.rounds += 1;
    }
    fn audit(&mut self) {
        self.rounds += 1;
    }
}
"#;
    let fs = workspace(&[("crates/traffic/src/shard.rs", src)]);
    assert_eq!(fs.len(), 1, "{fs:?}");
    assert_eq!(fs[0].rule, "D10");
    assert!(
        fs[0].message.contains("ledger counter `rounds`"),
        "{}",
        fs[0].message
    );
    assert!(fs[0].message.contains("audit"), "{}", fs[0].message);
}

#[test]
fn d10_blesses_helpers_reachable_from_the_phase_fns() {
    let src = r#"
pub struct Core {
    queue: Vec<u32>,
    retries: Vec<u32>,
    events: u64,
}
impl Core {
    pub fn phase_local(&mut self) {
        self.service();
    }
    fn service(&mut self) {
        self.retry();
        self.queue.pop();
    }
    fn retry(&mut self) {
        self.retries.push(7);
        self.events += 1;
    }
}
"#;
    let fs = workspace(&[("crates/traffic/src/engine.rs", src)]);
    assert!(fs.is_empty(), "{fs:?}");
}

#[test]
fn d10_ignores_non_engine_files_locals_and_test_code() {
    // The same unblessed mutation outside the engine files is not
    // D10's business.
    let rogue = r#"
pub struct Core {
    done: Vec<u32>,
}
impl Core {
    fn sneaky(&mut self) {
        self.done.push(2);
    }
}
"#;
    let fs = workspace(&[("crates/sim/src/engine.rs", rogue)]);
    assert!(fs.is_empty(), "{fs:?}");

    // A local named like a ledger counter (no field `.` prefix) and
    // mutations inside engine test code are both fine.
    let src = r#"
pub struct Core {
    done: Vec<u32>,
}
impl Core {
    pub fn phase_local(&mut self) {}
    fn tally(&self) -> u64 {
        let mut rounds = 0;
        rounds += 1;
        rounds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    #[test]
    fn probe() {
        let mut c = Core { done: Vec::new() };
        c.done.push(3);
    }
}
"#;
    let fs = workspace(&[("crates/traffic/src/engine.rs", src)]);
    assert!(fs.is_empty(), "{fs:?}");
}

// ---------------------------------------------------------------- D11

#[test]
fn d11_flags_panic_and_unreachable_in_library_code() {
    let src = r#"
pub fn f(x: u32) -> u32 {
    if x > 10 {
        panic!("too big");
    }
    match x {
        0 => unreachable!(),
        _ => x,
    }
}
"#;
    let findings = check_source("crates/core/src/fixture.rs", src);
    let d11 = findings.iter().filter(|f| f.rule == "D11").count();
    assert_eq!(d11, 2, "{findings:?}");
}

#[test]
fn d11_flags_todo_and_unimplemented() {
    let src = r#"
pub fn later() {
    todo!("write this")
}
pub fn never() {
    unimplemented!()
}
"#;
    let findings = check_source("crates/core/src/fixture.rs", src);
    let d11 = findings.iter().filter(|f| f.rule == "D11").count();
    assert_eq!(d11, 2, "{findings:?}");
}

#[test]
fn d11_exempts_bin_targets_and_test_code() {
    let src = r#"
pub fn f() {
    panic!("usage: pass a subcommand");
}
"#;
    assert!(check_source("crates/bench/src/bin/tool.rs", src).is_empty());
    assert!(check_source("src/main.rs", src).is_empty());
    assert_eq!(rules_hit(src), ["D11"], "library paths still flag");

    let src = r#"
#[test]
fn panics_are_how_tests_fail() {
    panic!("assert failed");
}
"#;
    assert_eq!(rules_hit(src), Vec::<&str>::new());
}

#[test]
fn d11_exempts_invariant_gated_code_and_allow_directives() {
    let src = r#"
impl Core {
    #[cfg(feature = "invariant-checks")]
    fn assert_balanced(&self) {
        if self.offered != self.delivered {
            panic!("ledger imbalance");
        }
    }
}
"#;
    assert_eq!(rules_hit(src), Vec::<&str>::new());

    let src = r#"
pub fn f(stage: u8) -> u8 {
    match stage {
        1 => 2,
        // geospan-analyze: allow(D11, stages are validated at parse time)
        _ => unreachable!(),
    }
}
"#;
    assert_eq!(rules_hit(src), Vec::<&str>::new());
}
