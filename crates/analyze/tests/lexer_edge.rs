//! Lexer edge cases the rule passes depend on — raw strings with hash
//! fences, nested block comments, byte/char literals vs lifetimes —
//! plus a snapshot pinning the `--format json` output schema.

use geospan_analyze::lexer::{lex, TokKind};
use geospan_analyze::{check_source, findings_to_json, Finding};

fn literals(src: &str) -> Vec<String> {
    lex(src)
        .tokens
        .into_iter()
        .filter(|t| t.kind == TokKind::Literal)
        .map(|t| t.text)
        .collect()
}

// ---------------------------------------------------------- raw strings

#[test]
fn raw_string_with_one_hash_is_a_single_literal() {
    let src = "pub fn f() -> &'static str { r#\"has \"quotes\" and \\ inside\"# }";
    let lits = literals(src);
    assert_eq!(lits.len(), 1, "{lits:?}");
    assert_eq!(lits[0], "r#\"has \"quotes\" and \\ inside\"#");
}

#[test]
fn raw_string_fence_counts_hashes_exactly() {
    // `"#` inside an `r##"…"##` string terminates nothing.
    let src = "let s = r##\"inner \"# fence does not close\"##; let t = 1;";
    let lits = literals(src);
    assert_eq!(lits.len(), 2, "{lits:?}");
    assert!(lits[0].contains("fence does not close"), "{lits:?}");
    assert_eq!(lits[1], "1");
}

#[test]
fn raw_byte_string_and_multiline_raw_string_track_lines() {
    let src = "let b = br#\"bytes\"#;\nlet s = r\"line1\nline2\";\nfn after() {}";
    let lexed = lex(src);
    let after = lexed
        .tokens
        .iter()
        .find(|t| t.text == "after")
        .expect("ident after the multi-line literal");
    assert_eq!(after.line, 4, "newlines inside raw strings must count");
}

#[test]
fn rule_tokens_inside_raw_strings_are_inert() {
    let src = "pub fn ok() -> &'static str {\n    r#\"x.unwrap() panic!() thread_rng()\"#\n}\n";
    assert!(check_source("crates/core/src/f.rs", src).is_empty());
}

// ------------------------------------------------- nested block comments

#[test]
fn nested_block_comments_do_not_leak_tokens() {
    let src = "/* outer /* inner x.unwrap() */ still comment */ pub fn f() {}";
    let lexed = lex(src);
    let idents: Vec<&str> = lexed
        .tokens
        .iter()
        .filter(|t| t.kind == TokKind::Ident)
        .map(|t| t.text.as_str())
        .collect();
    assert_eq!(idents, ["pub", "fn", "f"], "{idents:?}");
}

#[test]
fn nested_block_comments_preserve_line_numbers() {
    let src = "/* a\n/* b\n*/\n*/\nfn f() {}";
    let lexed = lex(src);
    let f = lexed
        .tokens
        .iter()
        .find(|t| t.text == "fn")
        .expect("fn token");
    assert_eq!(f.line, 5);
}

// ------------------------------------------- chars, bytes, and lifetimes

#[test]
fn char_and_byte_literals_are_not_lifetimes() {
    let src = "fn f<'a>(x: &'a [u8]) -> (char, u8, &'static str) { ('}', b'{', \"s\") }";
    let lexed = lex(src);
    let lifetimes: Vec<&str> = lexed
        .tokens
        .iter()
        .filter(|t| t.kind == TokKind::Lifetime)
        .map(|t| t.text.as_str())
        .collect();
    assert_eq!(lifetimes, ["'a", "'a", "'static"], "{lifetimes:?}");
    // The unbalanced-looking brace chars live inside literals: the
    // token stream's real braces still pair up.
    let opens = lexed.tokens.iter().filter(|t| t.text == "{").count();
    let closes = lexed.tokens.iter().filter(|t| t.text == "}").count();
    assert_eq!(opens, 1);
    assert_eq!(closes, 1);
}

#[test]
fn lifetime_in_generics_followed_by_char_literal() {
    let src = "fn g<'s>(v: Vec<&'s str>) -> char { 'x' }";
    let lexed = lex(src);
    assert!(
        lexed
            .tokens
            .iter()
            .any(|t| t.kind == TokKind::Literal && t.text == "'x'"),
        "{:?}",
        lexed.tokens
    );
    assert!(
        lexed
            .tokens
            .iter()
            .any(|t| t.kind == TokKind::Lifetime && t.text == "'s"),
        "{:?}",
        lexed.tokens
    );
}

// ------------------------------------------------- JSON schema snapshot

#[test]
fn json_format_schema_is_pinned_exactly() {
    // The `--format json` consumer contract: an array of objects with
    // exactly these keys, in this order. Changing the shape must break
    // this snapshot.
    let f = Finding {
        rule: "D04",
        path: "crates/x/src/lib.rs".to_string(),
        line: 7,
        snippet: "x.unwrap()".to_string(),
        message: "say \"why\"".to_string(),
    };
    assert_eq!(
        findings_to_json(&[f]),
        "[\n  {\"rule\":\"D04\",\"path\":\"crates/x/src/lib.rs\",\"line\":7,\
         \"snippet\":\"x.unwrap()\",\"message\":\"say \\\"why\\\"\"}\n]"
    );
    assert_eq!(findings_to_json(&[]), "[]");
}

#[test]
fn json_output_of_a_real_finding_round_trips_the_schema_keys() {
    let findings = check_source(
        "crates/x/src/lib.rs",
        "pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n",
    );
    assert_eq!(findings.len(), 1);
    let json = findings_to_json(&findings);
    for key in [
        "\"rule\":",
        "\"path\":",
        "\"line\":",
        "\"snippet\":",
        "\"message\":",
    ] {
        assert!(json.contains(key), "missing {key} in {json}");
    }
    assert!(json.starts_with("[\n  {\"rule\":\"D04\""), "{json}");
}
