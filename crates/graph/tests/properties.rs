//! Property-based tests for the graph substrate.

use geospan_graph::gen::{uniform_points, UnitDiskBuilder};
use geospan_graph::paths::{bfs_hops, dijkstra_lengths, path_length, shortest_length_path};
use geospan_graph::stats::degree_stats;
use geospan_graph::stretch::{stretch_factors, StretchOptions};
use geospan_graph::Graph;
use proptest::prelude::*;

fn deployment() -> impl Strategy<Value = (Vec<geospan_graph::Point>, f64)> {
    (5usize..60, 20.0f64..80.0, any::<u64>())
        .prop_map(|(n, radius, seed)| (uniform_points(n, 100.0, seed), radius))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn udg_edges_respect_radius((pts, radius) in deployment()) {
        let g = UnitDiskBuilder::new(radius).build(&pts);
        for (u, v) in g.edges() {
            prop_assert!(g.edge_length(u, v) <= radius);
        }
        // Completeness: no missing edge.
        for u in 0..pts.len() {
            for v in u + 1..pts.len() {
                if pts[u].distance(pts[v]) <= radius {
                    prop_assert!(g.has_edge(u, v));
                }
            }
        }
    }

    #[test]
    fn degree_sum_is_twice_edges((pts, radius) in deployment()) {
        let g = UnitDiskBuilder::new(radius).build(&pts);
        let sum: usize = (0..g.node_count()).map(|v| g.degree(v)).sum();
        prop_assert_eq!(sum, 2 * g.edge_count());
        let stats = degree_stats(&g);
        prop_assert!(stats.avg <= stats.max as f64 + 1e-12);
    }

    #[test]
    fn bfs_satisfies_triangle_property((pts, radius) in deployment()) {
        let g = UnitDiskBuilder::new(radius).build(&pts);
        let d = bfs_hops(&g, 0);
        // Adjacent nodes differ by at most one hop level.
        for (u, v) in g.edges() {
            if let (Some(du), Some(dv)) = (d[u], d[v]) {
                prop_assert!(du.abs_diff(dv) <= 1);
            }
        }
    }

    #[test]
    fn dijkstra_lower_bounded_by_euclidean((pts, radius) in deployment()) {
        let g = UnitDiskBuilder::new(radius).build(&pts);
        let d = dijkstra_lengths(&g, 0);
        for (v, dist) in d.iter().enumerate() {
            if let Some(len) = dist {
                prop_assert!(*len + 1e-9 >= pts[0].distance(pts[v]));
            }
        }
    }

    #[test]
    fn shortest_length_path_matches_dijkstra((pts, radius) in deployment()) {
        let g = UnitDiskBuilder::new(radius).build(&pts);
        let d = dijkstra_lengths(&g, 0);
        #[allow(clippy::needless_range_loop)]
        for v in 1..g.node_count() {
            match (d[v], shortest_length_path(&g, 0, v)) {
                (Some(len), Some(path)) => {
                    prop_assert!((path_length(&g, &path) - len).abs() < 1e-9);
                    prop_assert_eq!(path[0], 0);
                    prop_assert_eq!(*path.last().unwrap(), v);
                    // Each step is an actual edge.
                    for w in path.windows(2) {
                        prop_assert!(g.has_edge(w[0], w[1]));
                    }
                }
                (None, None) => {}
                (a, b) => prop_assert!(false, "reachability mismatch: {:?} vs {:?}", a, b.map(|p| p.len())),
            }
        }
    }

    #[test]
    fn stretch_of_self_is_one((pts, radius) in deployment()) {
        let g = UnitDiskBuilder::new(radius).build(&pts);
        let r = stretch_factors(&g, &g, StretchOptions::default());
        prop_assert_eq!(r.disconnected_pairs, 0);
        if r.hop_pairs > 0 {
            prop_assert!((r.hop_avg - 1.0).abs() < 1e-12);
            prop_assert!((r.hop_max - 1.0).abs() < 1e-12);
            prop_assert!((r.length_max - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn subgraph_stretch_at_least_one((pts, radius) in deployment()) {
        let g = UnitDiskBuilder::new(radius).build(&pts);
        // Drop every third edge.
        let mut k = 0usize;
        let sub = g.filter_edges(|_, _| {
            k += 1;
            !k.is_multiple_of(3)
        });
        let r = stretch_factors(&g, &sub, StretchOptions::default());
        if r.hop_pairs > 0 {
            prop_assert!(r.hop_avg + 1e-12 >= 1.0);
            prop_assert!(r.length_avg + 1e-12 >= 1.0);
            prop_assert!(r.hop_max + 1e-12 >= r.hop_avg);
            prop_assert!(r.length_max + 1e-12 >= r.length_avg);
        }
    }

    #[test]
    fn components_partition_vertices((pts, radius) in deployment()) {
        let g = UnitDiskBuilder::new(radius).build(&pts);
        let comps = g.components();
        let total: usize = comps.iter().map(Vec::len).sum();
        prop_assert_eq!(total, g.node_count());
        prop_assert_eq!(comps.len() == 1, g.is_connected());
        // Components are sorted by size descending.
        for w in comps.windows(2) {
            prop_assert!(w[0].len() >= w[1].len());
        }
    }

    #[test]
    fn graph_edit_roundtrip(edges in prop::collection::vec((0usize..20, 0usize..20), 0..60)) {
        let pts = uniform_points(20, 50.0, 99);
        let mut g = Graph::new(pts);
        let mut reference = std::collections::HashSet::new();
        for (u, v) in edges {
            if u != v {
                let added = g.add_edge(u, v);
                let fresh = reference.insert((u.min(v), u.max(v)));
                prop_assert_eq!(added, fresh);
            }
        }
        prop_assert_eq!(g.edge_count(), reference.len());
        for &(u, v) in &reference {
            prop_assert!(g.has_edge(u, v));
            prop_assert!(g.remove_edge(v, u));
        }
        prop_assert_eq!(g.edge_count(), 0);
    }
}
