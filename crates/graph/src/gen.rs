//! Deployment generators and the unit-disk edge builder.
//!
//! The paper's experiments place `n` nodes uniformly at random in a square
//! and keep only connected instances ("we then generate the UDG, and test
//! the connectivity"). [`uniform_points`] + [`UnitDiskBuilder`] +
//! [`connected_unit_disk`] reproduce exactly that workflow; the perturbed
//! grid and clustered generators cover additional deployment shapes used
//! by the extended test suite.

use geospan_geometry::Point;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::Graph;

/// `n` points uniform in the `side × side` square, deterministic in
/// `seed`.
///
/// Bit-identical duplicate positions (probability ~0, but possible) are
/// resampled so the points are always distinct.
///
/// # Example
/// ```
/// use geospan_graph::gen::uniform_points;
/// let a = uniform_points(50, 200.0, 7);
/// let b = uniform_points(50, 200.0, 7);
/// assert_eq!(a, b); // deterministic
/// ```
pub fn uniform_points(n: usize, side: f64, seed: u64) -> Vec<Point> {
    assert!(side > 0.0, "square side must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pts: Vec<Point> = Vec::with_capacity(n);
    let mut seen = std::collections::HashSet::with_capacity(n);
    while pts.len() < n {
        let p = Point::new(rng.random_range(0.0..side), rng.random_range(0.0..side));
        if seen.insert((p.x.to_bits(), p.y.to_bits())) {
            pts.push(p);
        }
    }
    pts
}

/// A `nx × ny` grid with spacing `spacing`, each point perturbed uniformly
/// by up to `jitter` in both coordinates. Deterministic in `seed`.
pub fn perturbed_grid(nx: usize, ny: usize, spacing: f64, jitter: f64, seed: u64) -> Vec<Point> {
    assert!(spacing > 0.0, "grid spacing must be positive");
    assert!(jitter >= 0.0, "jitter must be non-negative");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pts = Vec::with_capacity(nx * ny);
    for i in 0..nx {
        for j in 0..ny {
            let dx = if jitter > 0.0 {
                rng.random_range(-jitter..jitter)
            } else {
                0.0
            };
            let dy = if jitter > 0.0 {
                rng.random_range(-jitter..jitter)
            } else {
                0.0
            };
            pts.push(Point::new(i as f64 * spacing + dx, j as f64 * spacing + dy));
        }
    }
    pts
}

/// `n` points in `k` Gaussian clusters whose centers are uniform in the
/// `side × side` square; cluster spread is `sigma`. Deterministic in
/// `seed`. Points are clamped to the square.
pub fn gaussian_clusters(n: usize, side: f64, k: usize, sigma: f64, seed: u64) -> Vec<Point> {
    assert!(k > 0, "need at least one cluster");
    assert!(side > 0.0 && sigma >= 0.0);
    let mut rng = StdRng::seed_from_u64(seed);
    let centers: Vec<Point> = (0..k)
        .map(|_| Point::new(rng.random_range(0.0..side), rng.random_range(0.0..side)))
        .collect();
    let mut pts = Vec::with_capacity(n);
    let mut seen = std::collections::HashSet::with_capacity(n);
    while pts.len() < n {
        let c = centers[rng.random_range(0..k)];
        // Box–Muller.
        let u1: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.random_range(0.0..std::f64::consts::TAU);
        let r = sigma * (-2.0 * u1.ln()).sqrt();
        let p = Point::new(
            (c.x + r * u2.cos()).clamp(0.0, side),
            (c.y + r * u2.sin()).clamp(0.0, side),
        );
        if seen.insert((p.x.to_bits(), p.y.to_bits())) {
            pts.push(p);
        }
    }
    pts
}

/// `n` points jittered around a circle of radius `ring_radius` centered
/// in its bounding square — the "hole in the middle" deployment that
/// stresses face routing (every route must go the long way around).
/// Deterministic in `seed`.
pub fn ring_points(n: usize, ring_radius: f64, jitter: f64, seed: u64) -> Vec<Point> {
    assert!(ring_radius > 0.0 && jitter >= 0.0);
    let mut rng = StdRng::seed_from_u64(seed);
    let c = ring_radius + jitter;
    let mut pts = Vec::with_capacity(n);
    let mut seen = std::collections::HashSet::with_capacity(n);
    while pts.len() < n {
        let a = rng.random_range(0.0..std::f64::consts::TAU);
        let r = ring_radius
            + if jitter > 0.0 {
                rng.random_range(-jitter..jitter)
            } else {
                0.0
            };
        let p = Point::new(c + r * a.cos(), c + r * a.sin());
        if seen.insert((p.x.to_bits(), p.y.to_bits())) {
            pts.push(p);
        }
    }
    pts
}

/// A dumbbell: two dense square clusters of `n_per_side` nodes joined by
/// a `bridge`-node chain — the worst case for backbone robustness (the
/// bridge nodes are unavoidable cut vertices). Deterministic in `seed`.
pub fn dumbbell_points(n_per_side: usize, bridge: usize, spacing: f64, seed: u64) -> Vec<Point> {
    assert!(spacing > 0.0 && bridge >= 1);
    let side = (n_per_side as f64).sqrt().ceil() * spacing * 1.2;
    let gap = spacing * (bridge + 1) as f64;
    let mut pts = uniform_points(n_per_side, side, seed);
    // Bridge chain along y = side / 2.
    for k in 1..=bridge {
        pts.push(Point::new(side + k as f64 * spacing, side / 2.0));
    }
    // Right cluster, shifted past the bridge.
    for p in uniform_points(n_per_side, side, seed.wrapping_add(1)) {
        pts.push(Point::new(p.x + side + gap, p.y));
    }
    pts
}

/// Builds unit disk graphs: an edge between every pair at distance at most
/// the transmission radius.
///
/// Uses a uniform cell grid sized to the radius, so construction is
/// `O(n + m)` in expectation for uniformly distributed inputs rather than
/// `O(n²)`.
///
/// # Example
/// ```
/// use geospan_graph::gen::{uniform_points, UnitDiskBuilder};
/// let pts = uniform_points(100, 200.0, 1);
/// let udg = UnitDiskBuilder::new(60.0).build(&pts);
/// // Every edge respects the radius.
/// assert!(udg.edges().all(|(u, v)| udg.edge_length(u, v) <= 60.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UnitDiskBuilder {
    radius: f64,
}

impl UnitDiskBuilder {
    /// A builder for the given transmission radius.
    ///
    /// # Panics
    /// Panics unless `radius` is positive and finite.
    pub fn new(radius: f64) -> Self {
        assert!(
            radius > 0.0 && radius.is_finite(),
            "transmission radius must be positive and finite"
        );
        UnitDiskBuilder { radius }
    }

    /// The transmission radius.
    pub fn radius(&self) -> f64 {
        self.radius
    }

    /// Builds the unit disk graph over `points`.
    ///
    /// Edges connect pairs with Euclidean distance `<= radius`
    /// (boundary inclusive, matching the paper's "at most one unit").
    /// The edge set is collected in bulk and assembled with
    /// [`Graph::from_sorted_edges`], so construction never pays the
    /// `O(degree)` sorted-insert shifting of per-edge `add_edge`.
    pub fn build(&self, points: &[Point]) -> Graph {
        if points.is_empty() {
            return Graph::new(Vec::new());
        }
        let r = self.radius;
        let r2 = r * r;
        let min_x = points.iter().map(|p| p.x).fold(f64::INFINITY, f64::min);
        let min_y = points.iter().map(|p| p.y).fold(f64::INFINITY, f64::min);
        let cell = |p: Point| -> (i64, i64) {
            (
                ((p.x - min_x) / r).floor() as i64,
                ((p.y - min_y) / r).floor() as i64,
            )
        };
        let mut buckets: std::collections::HashMap<(i64, i64), Vec<usize>> =
            std::collections::HashMap::new();
        for (i, &p) in points.iter().enumerate() {
            buckets.entry(cell(p)).or_default().push(i);
        }
        let mut edges: Vec<(usize, usize)> = Vec::new();
        for (i, &p) in points.iter().enumerate() {
            let (cx, cy) = cell(p);
            for dx in -1..=1 {
                for dy in -1..=1 {
                    if let Some(cands) = buckets.get(&(cx + dx, cy + dy)) {
                        for &j in cands {
                            if j > i && p.distance_sq(points[j]) <= r2 {
                                edges.push((i, j));
                            }
                        }
                    }
                }
            }
        }
        Graph::from_sorted_edges(points.to_vec(), edges)
    }
}

/// A connected random deployment: tries seeds `seed, seed+1, …` until the
/// uniform deployment's UDG is connected, exactly as the paper discards
/// disconnected instances.
///
/// Returns the accepted points, their UDG, and the seed that produced
/// them.
///
/// # Panics
/// Panics after 10 000 failed attempts — the parameters are then below
/// the connectivity regime and the experiment configuration is wrong.
pub fn connected_unit_disk(
    n: usize,
    side: f64,
    radius: f64,
    seed: u64,
) -> (Vec<Point>, Graph, u64) {
    let builder = UnitDiskBuilder::new(radius);
    for s in seed..seed + 10_000 {
        let pts = uniform_points(n, side, s);
        let g = builder.build(&pts);
        if g.is_connected() {
            return (pts, g, s);
        }
    }
    // geospan-analyze: allow(D11, documented connectivity-threshold panic: scenario parameters are author errors caught at generation time)
    panic!(
        "no connected deployment found for n={n}, side={side}, radius={radius} \
         after 10000 attempts: parameters are below the connectivity threshold"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_points_in_bounds_and_distinct() {
        let pts = uniform_points(500, 100.0, 3);
        assert_eq!(pts.len(), 500);
        for p in &pts {
            assert!(p.x >= 0.0 && p.x < 100.0 && p.y >= 0.0 && p.y < 100.0);
        }
        let mut seen = std::collections::HashSet::new();
        for p in &pts {
            assert!(seen.insert((p.x.to_bits(), p.y.to_bits())));
        }
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(uniform_points(10, 100.0, 1), uniform_points(10, 100.0, 2));
    }

    #[test]
    fn udg_matches_brute_force() {
        let pts = uniform_points(150, 120.0, 11);
        let r = 25.0;
        let g = UnitDiskBuilder::new(r).build(&pts);
        for i in 0..pts.len() {
            for j in i + 1..pts.len() {
                let expect = pts[i].distance(pts[j]) <= r;
                assert_eq!(g.has_edge(i, j), expect, "pair ({i}, {j})");
            }
        }
    }

    #[test]
    fn udg_boundary_edge_included() {
        let pts = vec![Point::new(0.0, 0.0), Point::new(10.0, 0.0)];
        let g = UnitDiskBuilder::new(10.0).build(&pts);
        assert!(g.has_edge(0, 1));
        let g = UnitDiskBuilder::new(9.999999).build(&pts);
        assert!(!g.has_edge(0, 1));
    }

    #[test]
    fn perturbed_grid_shape() {
        let pts = perturbed_grid(4, 5, 10.0, 0.0, 0);
        assert_eq!(pts.len(), 20);
        assert_eq!(pts[0], Point::new(0.0, 0.0));
        assert_eq!(pts[19], Point::new(30.0, 40.0));
        let jittered = perturbed_grid(4, 5, 10.0, 2.0, 0);
        for (a, b) in pts.iter().zip(&jittered) {
            assert!((a.x - b.x).abs() < 2.0 && (a.y - b.y).abs() < 2.0);
        }
    }

    #[test]
    fn clusters_stay_in_square() {
        let pts = gaussian_clusters(300, 50.0, 4, 5.0, 9);
        assert_eq!(pts.len(), 300);
        for p in &pts {
            assert!(p.x >= 0.0 && p.x <= 50.0 && p.y >= 0.0 && p.y <= 50.0);
        }
    }

    #[test]
    fn ring_points_surround_a_hole() {
        let pts = ring_points(100, 40.0, 4.0, 3);
        assert_eq!(pts.len(), 100);
        let center = Point::new(44.0, 44.0);
        for p in &pts {
            let d = p.distance(center);
            assert!((36.0..=44.0).contains(&d), "radius {d}");
        }
    }

    #[test]
    fn dumbbell_shape() {
        let pts = dumbbell_points(30, 3, 10.0, 5);
        assert_eq!(pts.len(), 63);
        let g = UnitDiskBuilder::new(14.0).build(&pts);
        // The bridge nodes (indices 30..33) are cut vertices: removing
        // the middle one disconnects the clusters.
        if g.is_connected() {
            let cut = g.filter_edges(|u, v| u != 31 && v != 31);
            assert!(!cut.is_connected());
        }
    }

    #[test]
    fn connected_unit_disk_is_connected() {
        let (pts, g, used) = connected_unit_disk(40, 100.0, 40.0, 0);
        assert_eq!(pts.len(), 40);
        assert!(g.is_connected());
        assert!(used < 10_000);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_radius_rejected() {
        let _ = UnitDiskBuilder::new(0.0);
    }

    #[test]
    fn empty_input() {
        let g = UnitDiskBuilder::new(1.0).build(&[]);
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
    }
}
