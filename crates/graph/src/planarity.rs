//! Exact planarity checking for embedded graphs.
//!
//! The paper's backbone must be a *plane* graph — no two links cross —
//! because face-routing algorithms (GPSR and relatives) traverse the faces
//! of the embedding. For an embedded graph the right question is not
//! abstract graph planarity but whether this particular straight-line
//! embedding is crossing-free; that is what [`is_plane_embedding`]
//! decides, using the exact segment predicates.
//!
//! All entry points share one sub-quadratic pipeline: the edges go into a
//! [`UniformGrid`] keyed by their bounding boxes (cell size ≈ the longest
//! edge, i.e. the transmission radius for UDG-derived topologies), the
//! grid enumerates each potentially-crossing pair once, and only those
//! candidates reach the exact crossing predicate. The seed's `O(m²)`
//! pairwise loop survives as a `#[cfg(test)]` oracle.

use geospan_geometry::{segments_properly_cross, Point, UniformGrid};

use crate::Graph;

/// True when no two edges of the embedded graph properly cross.
///
/// Edges sharing an endpoint never count as crossing. The check is exact
/// (built on exact orientation tests) and grid-indexed, so it is fast for
/// the sparse, short-edged graphs it is meant for.
///
/// # Example
/// ```
/// use geospan_graph::{Graph, Point};
/// use geospan_graph::planarity::is_plane_embedding;
/// let pts = vec![
///     Point::new(0.,0.), Point::new(2.,2.), Point::new(0.,2.), Point::new(2.,0.),
/// ];
/// let crossing = Graph::with_edges(pts.clone(), [(0,1),(2,3)]);
/// assert!(!is_plane_embedding(&crossing));
/// let planar = Graph::with_edges(pts, [(0,2),(2,1),(1,3),(3,0)]);
/// assert!(is_plane_embedding(&planar));
/// ```
pub fn is_plane_embedding(g: &Graph) -> bool {
    first_crossing(g).is_none()
}

/// The edges (as index pairs and as segments, in the graph's sorted edge
/// order) plus the grid over the segment boxes.
struct EdgeGrid {
    edges: Vec<(usize, usize)>,
    segs: Vec<(Point, Point)>,
    grid: UniformGrid,
}

fn edge_grid(g: &Graph) -> EdgeGrid {
    let edges: Vec<(usize, usize)> = g.edges().collect();
    let segs: Vec<(Point, Point)> = edges
        .iter()
        .map(|&(u, v)| (g.position(u), g.position(v)))
        .collect();
    let grid = UniformGrid::from_segments(&segs, None);
    EdgeGrid { edges, segs, grid }
}

/// Do candidate edges `i` and `j` properly cross (sharing an endpoint
/// never counts)?
fn edges_cross(edges: &[(usize, usize)], segs: &[(Point, Point)], i: usize, j: usize) -> bool {
    let (u1, v1) = edges[i];
    let (u2, v2) = edges[j];
    if u1 == u2 || u1 == v2 || v1 == u2 || v1 == v2 {
        return false;
    }
    segments_properly_cross(segs[i].0, segs[i].1, segs[j].0, segs[j].1)
}

/// The crossing pair of edges that is smallest in edge order, or `None`
/// when the embedding is plane. Useful in test failure messages.
pub fn first_crossing(g: &Graph) -> Option<((usize, usize), (usize, usize))> {
    let eg = edge_grid(g);
    // Candidate pairs come back sorted, so the first hit is the smallest.
    eg.grid
        .candidate_pairs()
        .into_iter()
        .find(|&(i, j)| edges_cross(&eg.edges, &eg.segs, i, j))
        .map(|(i, j)| (eg.edges[i], eg.edges[j]))
}

/// Counts all properly crossing edge pairs (diagnostic; `0` for plane
/// embeddings).
///
/// A count is order-independent, so this streams the grid's candidate
/// pairs instead of materializing and sorting them — at 10⁵–10⁶ edges
/// the pair vector would dominate both the time and the memory of the
/// exact crossing tests.
pub fn crossing_count(g: &Graph) -> usize {
    let eg = edge_grid(g);
    let mut count = 0usize;
    eg.grid.for_each_candidate_pair(|i, j| {
        if edges_cross(&eg.edges, &eg.segs, i, j) {
            count += 1;
        }
    });
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use geospan_geometry::Point;

    /// The seed's `O(m²)` pairwise loop, kept as the oracle the grid
    /// pipeline is tested against.
    fn crossing_count_naive(g: &Graph) -> usize {
        let edges: Vec<(usize, usize)> = g.edges().collect();
        let mut count = 0;
        for (i, &(u1, v1)) in edges.iter().enumerate() {
            for &(u2, v2) in &edges[i + 1..] {
                if u1 == u2 || u1 == v2 || v1 == u2 || v1 == v2 {
                    continue;
                }
                if segments_properly_cross(
                    g.position(u1),
                    g.position(v1),
                    g.position(u2),
                    g.position(v2),
                ) {
                    count += 1;
                }
            }
        }
        count
    }

    #[test]
    fn x_shape_crosses() {
        let g = Graph::with_edges(
            vec![
                Point::new(0.0, 0.0),
                Point::new(2.0, 2.0),
                Point::new(0.0, 2.0),
                Point::new(2.0, 0.0),
            ],
            [(0, 1), (2, 3)],
        );
        assert!(!is_plane_embedding(&g));
        assert_eq!(crossing_count(&g), 1);
        let ((a, b), (c, d)) = first_crossing(&g).unwrap();
        assert_eq!(((a, b), (c, d)), ((0, 1), (2, 3)));
    }

    #[test]
    fn shared_endpoints_do_not_cross() {
        let g = Graph::with_edges(
            vec![
                Point::new(0.0, 0.0),
                Point::new(2.0, 0.0),
                Point::new(1.0, 2.0),
            ],
            [(0, 1), (1, 2), (2, 0)],
        );
        assert!(is_plane_embedding(&g));
        assert_eq!(crossing_count(&g), 0);
    }

    #[test]
    fn t_junction_without_shared_vertex_is_not_proper() {
        // Edge (2,3) ends exactly on the interior of edge (0,1): touching,
        // not a proper crossing — a plane embedding in the GPSR sense
        // still fails geometrically, but properly-crossing is the
        // criterion the planarization algorithms guarantee.
        let g = Graph::with_edges(
            vec![
                Point::new(0.0, 0.0),
                Point::new(2.0, 0.0),
                Point::new(1.0, 0.0), // exactly on the interior of (0,1)
                Point::new(1.0, 2.0),
            ],
            [(0, 1), (2, 3)],
        );
        assert!(is_plane_embedding(&g));
    }

    #[test]
    fn larger_planar_vs_nonplanar() {
        // A 3x3 grid graph (planar)...
        let mut pts = Vec::new();
        for i in 0..3 {
            for j in 0..3 {
                pts.push(Point::new(i as f64, j as f64));
            }
        }
        let idx = |i: usize, j: usize| i * 3 + j;
        let mut g = Graph::new(pts);
        for i in 0..3 {
            for j in 0..3 {
                if i + 1 < 3 {
                    g.add_edge(idx(i, j), idx(i + 1, j));
                }
                if j + 1 < 3 {
                    g.add_edge(idx(i, j), idx(i, j + 1));
                }
            }
        }
        assert!(is_plane_embedding(&g));
        // ...plus both diagonals of one cell: one crossing.
        g.add_edge(idx(0, 0), idx(1, 1));
        g.add_edge(idx(1, 0), idx(0, 1));
        assert!(!is_plane_embedding(&g));
        assert_eq!(crossing_count(&g), 1);
        assert!(first_crossing(&g).is_some());
    }

    #[test]
    fn empty_graph_is_plane() {
        assert!(is_plane_embedding(&Graph::new(vec![])));
        assert_eq!(crossing_count(&Graph::new(vec![])), 0);
        assert_eq!(first_crossing(&Graph::new(vec![])), None);
    }

    #[test]
    fn grid_index_matches_naive_on_random_unit_disk_graphs() {
        for seed in 0..8 {
            let pts = crate::gen::uniform_points(60, 100.0, seed);
            let g = crate::gen::UnitDiskBuilder::new(30.0).build(&pts);
            let fast = crossing_count(&g);
            let slow = crossing_count_naive(&g);
            assert_eq!(fast, slow, "seed {seed}: grid {fast} vs naive {slow}");
            assert_eq!(is_plane_embedding(&g), slow == 0, "seed {seed}");
            if slow == 0 {
                assert_eq!(first_crossing(&g), None, "seed {seed}");
            } else {
                assert!(first_crossing(&g).is_some(), "seed {seed}");
            }
        }
    }

    #[test]
    fn grid_index_matches_naive_on_degenerate_layouts() {
        // Exact grid deployment: massive collinearity and cocircularity.
        let grid_pts = crate::gen::perturbed_grid(7, 7, 10.0, 0.0, 1);
        let g = crate::gen::UnitDiskBuilder::new(15.0).build(&grid_pts);
        assert_eq!(crossing_count(&g), crossing_count_naive(&g));

        // All nodes on one line: only collinear overlaps, no crossings.
        let line: Vec<Point> = (0..20).map(|i| Point::new(i as f64, 0.0)).collect();
        let g = crate::gen::UnitDiskBuilder::new(3.5).build(&line);
        assert_eq!(crossing_count(&g), 0);
        assert_eq!(crossing_count_naive(&g), 0);
        assert!(is_plane_embedding(&g));

        // A star with many long chords through nearly one point.
        let mut pts = vec![Point::new(0.0, 0.0)];
        for k in 0..12 {
            let a = k as f64 * std::f64::consts::TAU / 12.0;
            pts.push(Point::new(a.cos() * 10.0, a.sin() * 10.0));
        }
        let mut g = Graph::new(pts);
        for i in 1..=12 {
            for j in i + 1..=12 {
                g.add_edge(i, j);
            }
        }
        assert_eq!(crossing_count(&g), crossing_count_naive(&g));
    }

    #[test]
    fn first_crossing_returns_smallest_pair_in_edge_order() {
        // Two independent crossings; the (0,1)×(2,3) one is smallest in
        // the sorted edge order.
        let g = Graph::with_edges(
            vec![
                Point::new(0.0, 0.0),
                Point::new(2.0, 2.0),
                Point::new(0.0, 2.0),
                Point::new(2.0, 0.0),
                Point::new(10.0, 0.0),
                Point::new(12.0, 2.0),
                Point::new(10.0, 2.0),
                Point::new(12.0, 0.0),
            ],
            [(0, 1), (2, 3), (4, 5), (6, 7)],
        );
        assert_eq!(crossing_count(&g), 2);
        assert_eq!(first_crossing(&g), Some(((0, 1), (2, 3))));
    }
}
