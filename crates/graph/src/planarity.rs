//! Exact planarity checking for embedded graphs.
//!
//! The paper's backbone must be a *plane* graph — no two links cross —
//! because face-routing algorithms (GPSR and relatives) traverse the faces
//! of the embedding. For an embedded graph the right question is not
//! abstract graph planarity but whether this particular straight-line
//! embedding is crossing-free; that is what [`is_plane_embedding`]
//! decides, using the exact segment predicates.

use geospan_geometry::segments_properly_cross;

use crate::Graph;

/// True when no two edges of the embedded graph properly cross.
///
/// Edges sharing an endpoint never count as crossing. The check is exact
/// (built on exact orientation tests) and uses an interval sweep over the
/// x-extents of the edges, so it is fast for the sparse graphs it is
/// meant for.
///
/// # Example
/// ```
/// use geospan_graph::{Graph, Point};
/// use geospan_graph::planarity::is_plane_embedding;
/// let pts = vec![
///     Point::new(0.,0.), Point::new(2.,2.), Point::new(0.,2.), Point::new(2.,0.),
/// ];
/// let crossing = Graph::with_edges(pts.clone(), [(0,1),(2,3)]);
/// assert!(!is_plane_embedding(&crossing));
/// let planar = Graph::with_edges(pts, [(0,2),(2,1),(1,3),(3,0)]);
/// assert!(is_plane_embedding(&planar));
/// ```
pub fn is_plane_embedding(g: &Graph) -> bool {
    first_crossing(g).is_none()
}

/// The first pair of properly crossing edges found, or `None` when the
/// embedding is plane. Useful in test failure messages.
pub fn first_crossing(g: &Graph) -> Option<((usize, usize), (usize, usize))> {
    // Collect edges with their x-intervals and sweep.
    let mut edges: Vec<(f64, f64, usize, usize)> = g
        .edges()
        .map(|(u, v)| {
            let (a, b) = (g.position(u), g.position(v));
            (a.x.min(b.x), a.x.max(b.x), u, v)
        })
        .collect();
    edges.sort_by(|p, q| p.0.partial_cmp(&q.0).expect("finite coordinates"));
    for i in 0..edges.len() {
        let (_, max_x, u1, v1) = edges[i];
        for &(min_x2, _, u2, v2) in edges[i + 1..].iter() {
            if min_x2 > max_x {
                break; // no later edge can overlap in x
            }
            if u1 == u2 || u1 == v2 || v1 == u2 || v1 == v2 {
                continue;
            }
            if segments_properly_cross(
                g.position(u1),
                g.position(v1),
                g.position(u2),
                g.position(v2),
            ) {
                return Some(((u1, v1), (u2, v2)));
            }
        }
    }
    None
}

/// Counts all properly crossing edge pairs (diagnostic; `0` for plane
/// embeddings).
pub fn crossing_count(g: &Graph) -> usize {
    let edges: Vec<(usize, usize)> = g.edges().collect();
    let mut count = 0;
    for (i, &(u1, v1)) in edges.iter().enumerate() {
        for &(u2, v2) in &edges[i + 1..] {
            if u1 == u2 || u1 == v2 || v1 == u2 || v1 == v2 {
                continue;
            }
            if segments_properly_cross(
                g.position(u1),
                g.position(v1),
                g.position(u2),
                g.position(v2),
            ) {
                count += 1;
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use geospan_geometry::Point;

    #[test]
    fn x_shape_crosses() {
        let g = Graph::with_edges(
            vec![
                Point::new(0.0, 0.0),
                Point::new(2.0, 2.0),
                Point::new(0.0, 2.0),
                Point::new(2.0, 0.0),
            ],
            [(0, 1), (2, 3)],
        );
        assert!(!is_plane_embedding(&g));
        assert_eq!(crossing_count(&g), 1);
        let ((a, b), (c, d)) = first_crossing(&g).unwrap();
        assert_eq!(((a, b), (c, d)), ((0, 1), (2, 3)));
    }

    #[test]
    fn shared_endpoints_do_not_cross() {
        let g = Graph::with_edges(
            vec![
                Point::new(0.0, 0.0),
                Point::new(2.0, 0.0),
                Point::new(1.0, 2.0),
            ],
            [(0, 1), (1, 2), (2, 0)],
        );
        assert!(is_plane_embedding(&g));
        assert_eq!(crossing_count(&g), 0);
    }

    #[test]
    fn t_junction_without_shared_vertex_is_not_proper() {
        // Edge (2,3) ends exactly on the interior of edge (0,1): touching,
        // not a proper crossing — a plane embedding in the GPSR sense
        // still fails geometrically, but properly-crossing is the
        // criterion the planarization algorithms guarantee.
        let g = Graph::with_edges(
            vec![
                Point::new(0.0, 0.0),
                Point::new(2.0, 0.0),
                Point::new(1.0, 0.0) + Point::new(0.0, 0.0), // exactly on (0,1)
                Point::new(1.0, 2.0),
            ],
            [(0, 1), (2, 3)],
        );
        assert!(is_plane_embedding(&g));
    }

    #[test]
    fn larger_planar_vs_nonplanar() {
        // A 3x3 grid graph (planar)...
        let mut pts = Vec::new();
        for i in 0..3 {
            for j in 0..3 {
                pts.push(Point::new(i as f64, j as f64));
            }
        }
        let idx = |i: usize, j: usize| i * 3 + j;
        let mut g = Graph::new(pts);
        for i in 0..3 {
            for j in 0..3 {
                if i + 1 < 3 {
                    g.add_edge(idx(i, j), idx(i + 1, j));
                }
                if j + 1 < 3 {
                    g.add_edge(idx(i, j), idx(i, j + 1));
                }
            }
        }
        assert!(is_plane_embedding(&g));
        // ...plus both diagonals of one cell: one crossing.
        g.add_edge(idx(0, 0), idx(1, 1));
        g.add_edge(idx(1, 0), idx(0, 1));
        assert!(!is_plane_embedding(&g));
        assert_eq!(crossing_count(&g), 1);
        assert!(first_crossing(&g).is_some());
    }

    #[test]
    fn empty_graph_is_plane() {
        assert!(is_plane_embedding(&Graph::new(vec![])));
        assert_eq!(crossing_count(&Graph::new(vec![])), 0);
        assert_eq!(first_crossing(&Graph::new(vec![])), None);
    }
}
