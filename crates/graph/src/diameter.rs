//! Graph diameter utilities.
//!
//! The paper studies how spanning ratios and message costs vary with the
//! diameter of the unit disk graph (varied through the transmission
//! radius); these helpers report it.

use rayon::prelude::*;

use crate::Graph;

/// The hop diameter: the largest finite hop distance between any pair.
///
/// Returns `None` for graphs with fewer than 2 nodes. Disconnected pairs
/// are ignored (the diameter of the largest distances that exist). The
/// graph is frozen to CSR ([`Graph::freeze`]) for the `n` independent
/// searches; they run in parallel and their maxima are folded serially
/// in source order.
pub fn hop_diameter(g: &Graph) -> Option<u32> {
    let n = g.node_count();
    if n < 2 {
        return None;
    }
    let c = g.freeze();
    let per_source: Vec<Option<u32>> = (0..n)
        .into_par_iter()
        .map(|u| c.bfs_hops(u).into_iter().flatten().max())
        .collect();
    per_source.into_iter().flatten().max()
}

/// The Euclidean-length diameter: the largest finite shortest-path length
/// between any pair.
///
/// Returns `None` for graphs with fewer than 2 nodes. Parallelized like
/// [`hop_diameter`].
pub fn length_diameter(g: &Graph) -> Option<f64> {
    let n = g.node_count();
    if n < 2 {
        return None;
    }
    let c = g.freeze();
    let per_source: Vec<Option<f64>> = (0..n)
        .into_par_iter()
        .map(|u| {
            let mut best: Option<f64> = None;
            for d in c.dijkstra_lengths(u).into_iter().flatten() {
                if best.is_none_or(|b| d > b) {
                    best = Some(d);
                }
            }
            best
        })
        .collect();
    let mut best: Option<f64> = None;
    for d in per_source.into_iter().flatten() {
        if best.is_none_or(|b| d > b) {
            best = Some(d);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use geospan_geometry::Point;

    fn chain(n: usize) -> Graph {
        let pts = (0..n).map(|i| Point::new(i as f64, 0.0)).collect();
        Graph::with_edges(pts, (0..n - 1).map(|i| (i, i + 1)))
    }

    #[test]
    fn chain_diameters() {
        let g = chain(6);
        assert_eq!(hop_diameter(&g), Some(5));
        assert_eq!(length_diameter(&g), Some(5.0));
    }

    #[test]
    fn tiny_graphs() {
        assert_eq!(hop_diameter(&Graph::new(vec![])), None);
        assert_eq!(hop_diameter(&Graph::new(vec![Point::ORIGIN])), None);
        assert_eq!(length_diameter(&Graph::new(vec![Point::ORIGIN])), None);
    }

    #[test]
    fn disconnected_uses_finite_pairs() {
        let mut g = chain(4);
        g.remove_edge(1, 2);
        // Components {0,1} and {2,3}: largest finite hop distance is 1.
        assert_eq!(hop_diameter(&g), Some(1));
    }
}
