//! Degree and size statistics of topologies.

use crate::Graph;

/// Degree summary of a graph (or of a node subset).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DegreeStats {
    /// Maximum degree.
    pub max: usize,
    /// Mean degree.
    pub avg: f64,
}

/// Degree statistics over all nodes of `g`.
///
/// # Example
/// ```
/// use geospan_graph::{Graph, Point};
/// use geospan_graph::stats::degree_stats;
/// let g = Graph::with_edges(
///     vec![Point::new(0.,0.), Point::new(1.,0.), Point::new(2.,0.)],
///     [(0,1),(1,2)]);
/// let s = degree_stats(&g);
/// assert_eq!(s.max, 2);
/// assert!((s.avg - 4.0/3.0).abs() < 1e-12);
/// ```
pub fn degree_stats(g: &Graph) -> DegreeStats {
    degree_stats_over(g, 0..g.node_count())
}

/// Degree statistics restricted to the nodes yielded by `nodes`.
///
/// Used for backbone graphs, where only dominators and connectors carry
/// edges and averaging over all deployed nodes would dilute the numbers.
///
/// # Panics
/// Panics if any yielded node is out of bounds.
pub fn degree_stats_over(g: &Graph, nodes: impl IntoIterator<Item = usize>) -> DegreeStats {
    let mut max = 0usize;
    let mut sum = 0usize;
    let mut count = 0usize;
    for v in nodes {
        let d = g.degree(v);
        max = max.max(d);
        sum += d;
        count += 1;
    }
    DegreeStats {
        max,
        avg: if count == 0 {
            0.0
        } else {
            sum as f64 / count as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geospan_geometry::Point;

    fn star() -> Graph {
        // Node 0 at the center of 4 leaves.
        Graph::with_edges(
            vec![
                Point::new(0.0, 0.0),
                Point::new(1.0, 0.0),
                Point::new(0.0, 1.0),
                Point::new(-1.0, 0.0),
                Point::new(0.0, -1.0),
            ],
            [(0, 1), (0, 2), (0, 3), (0, 4)],
        )
    }

    #[test]
    fn star_stats() {
        let s = degree_stats(&star());
        assert_eq!(s.max, 4);
        assert!((s.avg - 8.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn subset_stats() {
        let s = degree_stats_over(&star(), [1, 2, 3, 4]);
        assert_eq!(s.max, 1);
        assert_eq!(s.avg, 1.0);
    }

    #[test]
    fn empty_cases() {
        let g = Graph::new(vec![]);
        let s = degree_stats(&g);
        assert_eq!(s.max, 0);
        assert_eq!(s.avg, 0.0);
        let s = degree_stats_over(&star(), std::iter::empty());
        assert_eq!(s.avg, 0.0);
    }
}
