//! Geometric graph substrate for the geospan project.
//!
//! The wireless network model of Wang & Li (ICDCS 2002) is the **unit disk
//! graph**: nodes are points in the plane with a common transmission
//! radius, and two nodes are linked exactly when their distance is at most
//! that radius. Every topology the paper studies (RNG, Gabriel, localized
//! Delaunay, CDS backbones, …) is a subgraph of the UDG over the *same*
//! vertex set; this crate provides that shared representation plus the
//! measurement machinery the paper's evaluation section uses:
//!
//! * [`Graph`] — an embedded graph: point positions + adjacency lists,
//! * [`gen`] — workload generators (uniform, perturbed grid, clustered)
//!   and the unit-disk edge builder with grid-bucket neighbor search,
//! * [`paths`] — BFS hop distances and Dijkstra length distances,
//! * [`stretch`] — hop and length stretch factors of a subgraph relative
//!   to the full UDG (the paper's "spanning ratios"),
//! * [`planarity`] — exact "do any two edges cross?" checking,
//! * [`stats`] — degree and edge-count summaries,
//! * [`svg`] — simple SVG rendering for topology galleries (Figures 6–7).
//!
//! # Example
//!
//! ```
//! use geospan_graph::gen::{uniform_points, UnitDiskBuilder};
//! use geospan_graph::stats::degree_stats;
//!
//! let pts = uniform_points(80, 200.0, 42);
//! let udg = UnitDiskBuilder::new(60.0).build(&pts);
//! let stats = degree_stats(&udg);
//! assert!(stats.max as f64 >= stats.avg);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod collections;
mod csr;
pub mod diameter;
pub mod gen;
mod graph;
pub mod paths;
pub mod planarity;
pub mod power;
pub mod stats;
pub mod stretch;
pub mod svg;

pub use csr::{CsrGraph, ShardCut};
pub use geospan_geometry::Point;
pub use graph::Graph;
