//! Frozen CSR (compressed sparse row) adjacency for the query phase.
//!
//! Construction mutates a [`Graph`] (`Vec<Vec<usize>>` behind
//! `add_edge`/`remove_edge`); the measurement phase — stretch factors,
//! diameters, crossing counts — only *reads* the adjacency, over and
//! over, from every source node. [`Graph::freeze`] compacts the
//! adjacency into two flat arrays (`offsets`, `targets`) with `u32` node
//! ids: one allocation each, half the bytes per directed edge, and
//! cache-line-friendly sequential neighbor scans.
//!
//! The freeze/thaw lifecycle is one-way per phase: build on `Graph`,
//! [`Graph::freeze`] for queries, [`CsrGraph::thaw`] back to a mutable
//! `Graph` only when a topology change forces a rebuild. Neighbor order
//! is preserved exactly (ascending), so any traversal is bit-identical
//! on either representation.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::collections::VecDeque;

use geospan_geometry::Point;

use crate::Graph;

/// A read-only graph in CSR layout: `neighbors(v)` is the slice
/// `targets[offsets[v]..offsets[v+1]]`, ascending.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrGraph {
    points: Vec<Point>,
    offsets: Vec<u32>,
    targets: Vec<u32>,
    edge_count: usize,
}

impl Graph {
    /// Freezes this graph into a [`CsrGraph`] for the read-mostly query
    /// phase. Neighbor order (ascending) is preserved exactly.
    ///
    /// # Panics
    /// Panics if the graph has ≥ 2³² nodes or directed edges — beyond
    /// the `u32` id space the arena layout is built on.
    pub fn freeze(&self) -> CsrGraph {
        let n = self.node_count();
        let m2 = 2 * self.edge_count();
        assert!(
            n < u32::MAX as usize && m2 <= u32::MAX as usize,
            "graph exceeds the u32 id space ({n} nodes, {m2} directed edges)"
        );
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::with_capacity(m2);
        offsets.push(0u32);
        for v in 0..n {
            targets.extend(self.neighbors(v).iter().map(|&w| w as u32));
            offsets.push(targets.len() as u32);
        }
        CsrGraph {
            points: self.points().to_vec(),
            offsets,
            targets,
            edge_count: self.edge_count(),
        }
    }
}

impl CsrGraph {
    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.points.len()
    }

    /// Number of (undirected) edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// The node positions, indexable by node id.
    #[inline]
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// Position of node `v`.
    ///
    /// # Panics
    /// Panics if `v` is out of bounds.
    #[inline]
    pub fn position(&self, v: usize) -> Point {
        self.points[v]
    }

    /// Sorted (ascending) neighbor ids of node `v`.
    ///
    /// # Panics
    /// Panics if `v` is out of bounds.
    #[inline]
    pub fn neighbors(&self, v: usize) -> &[u32] {
        &self.targets[self.offsets[v] as usize..self.offsets[v + 1] as usize]
    }

    /// Degree of node `v`.
    ///
    /// # Panics
    /// Panics if `v` is out of bounds.
    #[inline]
    pub fn degree(&self, v: usize) -> usize {
        (self.offsets[v + 1] - self.offsets[v]) as usize
    }

    /// True when the undirected edge `{u, v}` is present.
    #[inline]
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.neighbors(u).binary_search(&(v as u32)).is_ok()
    }

    /// Euclidean length of the edge (or non-edge) `{u, v}`.
    ///
    /// # Panics
    /// Panics on out-of-bounds endpoints.
    #[inline]
    pub fn edge_length(&self, u: usize, v: usize) -> f64 {
        self.points[u].distance(self.points[v])
    }

    /// All edges as `(u, v)` pairs with `u < v`, in sorted order.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        (0..self.node_count()).flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .filter(move |&&v| u < v as usize)
                .map(move |&v| (u, v as usize))
        })
    }

    /// Heap bytes held by this structure (points + offsets + targets):
    /// the bytes-per-node accounting the scale benchmark reports.
    pub fn memory_bytes(&self) -> usize {
        self.points.len() * std::mem::size_of::<Point>()
            + self.offsets.len() * std::mem::size_of::<u32>()
            + self.targets.len() * std::mem::size_of::<u32>()
    }

    /// Decomposition statistics of this adjacency under a node→shard
    /// assignment: how many nodes and internal edges each shard owns,
    /// and how many edges cross shard boundaries. The cut edges are
    /// exactly the links over which a sharded traffic engine must
    /// exchange boundary messages, so `cut_fraction` bounds its
    /// communication-to-computation ratio.
    ///
    /// # Panics
    /// Panics if `shard_of` does not cover every node or names a shard
    /// `>= shards`.
    pub fn shard_cut(&self, shard_of: &[u32], shards: usize) -> ShardCut {
        let n = self.node_count();
        assert_eq!(shard_of.len(), n, "shard_of must assign every node");
        let mut per_shard_nodes = vec![0usize; shards];
        let mut per_shard_edges = vec![0usize; shards];
        let mut cut_edges = 0usize;
        for (v, &shard) in shard_of.iter().enumerate() {
            let s = shard as usize;
            assert!(s < shards, "node {v} assigned to shard {s} >= {shards}");
            per_shard_nodes[s] += 1;
        }
        for (u, v) in self.edges() {
            if shard_of[u] == shard_of[v] {
                per_shard_edges[shard_of[u] as usize] += 1;
            } else {
                cut_edges += 1;
            }
        }
        ShardCut {
            per_shard_nodes,
            per_shard_edges,
            cut_edges,
            total_edges: self.edge_count,
        }
    }

    /// Thaws back into a mutable [`Graph`] (exact inverse of
    /// [`Graph::freeze`]).
    pub fn thaw(&self) -> Graph {
        let edges: Vec<(usize, usize)> = self.edges().collect();
        Graph::from_sorted_edges(self.points.clone(), edges)
    }

    /// Hop distance from `src` to every node (`None` for unreachable
    /// nodes). Identical output to [`crate::paths::bfs_hops`] on the
    /// thawed graph.
    ///
    /// # Panics
    /// Panics if `src` is out of bounds.
    pub fn bfs_hops(&self, src: usize) -> Vec<Option<u32>> {
        let n = self.node_count();
        assert!(src < n, "source {src} out of bounds for {n} nodes");
        let mut dist = vec![None; n];
        dist[src] = Some(0);
        let mut q = VecDeque::with_capacity(n);
        q.push_back(src);
        while let Some(u) = q.pop_front() {
            let du = dist[u].expect("queued nodes have distances");
            for &v in self.neighbors(u) {
                let v = v as usize;
                if dist[v].is_none() {
                    dist[v] = Some(du + 1);
                    q.push_back(v);
                }
            }
        }
        dist
    }

    /// Euclidean-length distance from `src` to every node (`None` for
    /// unreachable nodes). Identical output to
    /// [`crate::paths::dijkstra_lengths`] on the thawed graph.
    ///
    /// # Panics
    /// Panics if `src` is out of bounds.
    pub fn dijkstra_lengths(&self, src: usize) -> Vec<Option<f64>> {
        let n = self.node_count();
        assert!(src < n, "source {src} out of bounds for {n} nodes");
        let mut dist: Vec<Option<f64>> = vec![None; n];
        let mut done = vec![false; n];
        let mut heap = BinaryHeap::with_capacity(n);
        dist[src] = Some(0.0);
        heap.push(CsrHeapEntry {
            dist: 0.0,
            node: src,
        });
        while let Some(CsrHeapEntry { dist: du, node: u }) = heap.pop() {
            if done[u] {
                continue;
            }
            done[u] = true;
            for &v in self.neighbors(u) {
                let v = v as usize;
                if done[v] {
                    continue;
                }
                let cand = du + self.edge_length(u, v);
                if dist[v].is_none_or(|dv| cand < dv) {
                    dist[v] = Some(cand);
                    heap.push(CsrHeapEntry {
                        dist: cand,
                        node: v,
                    });
                }
            }
        }
        dist
    }
}

/// What a node→shard assignment does to this graph's edges — see
/// [`CsrGraph::shard_cut`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardCut {
    per_shard_nodes: Vec<usize>,
    per_shard_edges: Vec<usize>,
    cut_edges: usize,
    total_edges: usize,
}

impl ShardCut {
    /// Nodes owned by each shard.
    pub fn per_shard_nodes(&self) -> &[usize] {
        &self.per_shard_nodes
    }

    /// Edges internal to each shard (both endpoints owned by it).
    pub fn per_shard_edges(&self) -> &[usize] {
        &self.per_shard_edges
    }

    /// Edges whose endpoints live on different shards.
    pub fn cut_edges(&self) -> usize {
        self.cut_edges
    }

    /// Fraction of all edges crossing a shard boundary (`0.0` on an
    /// edgeless graph).
    pub fn cut_fraction(&self) -> f64 {
        if self.total_edges == 0 {
            0.0
        } else {
            self.cut_edges as f64 / self.total_edges as f64
        }
    }
}

/// Max-heap entry ordered by *smallest* distance first (same tie rule as
/// `paths::HeapEntry`, so traversal order matches the unfrozen path).
#[derive(PartialEq)]
struct CsrHeapEntry {
    dist: f64,
    node: usize,
}

impl Eq for CsrHeapEntry {}

impl Ord for CsrHeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .dist
            .total_cmp(&self.dist)
            .then_with(|| other.node.cmp(&self.node))
    }
}

impl PartialOrd for CsrHeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{uniform_points, UnitDiskBuilder};
    use crate::paths::{bfs_hops, dijkstra_lengths};

    #[test]
    fn freeze_preserves_structure() {
        let pts = uniform_points(120, 150.0, 5);
        let g = UnitDiskBuilder::new(40.0).build(&pts);
        let c = g.freeze();
        assert_eq!(c.node_count(), g.node_count());
        assert_eq!(c.edge_count(), g.edge_count());
        for v in 0..g.node_count() {
            assert_eq!(c.degree(v), g.degree(v));
            let nbrs: Vec<usize> = c.neighbors(v).iter().map(|&w| w as usize).collect();
            assert_eq!(nbrs, g.neighbors(v));
        }
        let ge: Vec<_> = g.edges().collect();
        let ce: Vec<_> = c.edges().collect();
        assert_eq!(ge, ce);
    }

    #[test]
    fn thaw_round_trips() {
        let pts = uniform_points(80, 120.0, 9);
        let g = UnitDiskBuilder::new(35.0).build(&pts);
        assert_eq!(g.freeze().thaw(), g);
    }

    #[test]
    fn csr_searches_match_graph_searches() {
        let pts = uniform_points(100, 160.0, 3);
        let g = UnitDiskBuilder::new(45.0).build(&pts);
        let c = g.freeze();
        for src in [0, 17, 99] {
            assert_eq!(c.bfs_hops(src), bfs_hops(&g, src));
            assert_eq!(c.dijkstra_lengths(src), dijkstra_lengths(&g, src));
        }
    }

    #[test]
    fn has_edge_and_lengths() {
        let g = Graph::with_edges(
            vec![
                Point::new(0.0, 0.0),
                Point::new(3.0, 4.0),
                Point::new(9.0, 9.0),
            ],
            [(0, 1)],
        );
        let c = g.freeze();
        assert!(c.has_edge(0, 1) && c.has_edge(1, 0));
        assert!(!c.has_edge(0, 2));
        assert_eq!(c.edge_length(0, 1), 5.0);
        assert!(c.memory_bytes() > 0);
    }

    #[test]
    fn shard_cut_accounts_for_every_edge() {
        let pts = uniform_points(90, 150.0, 7);
        let g = UnitDiskBuilder::new(40.0).build(&pts);
        let c = g.freeze();
        // Split by x coordinate into two halves.
        let shard_of: Vec<u32> = pts.iter().map(|p| u32::from(p.x > 75.0)).collect();
        let cut = c.shard_cut(&shard_of, 2);
        assert_eq!(cut.per_shard_nodes().iter().sum::<usize>(), 90);
        assert_eq!(
            cut.per_shard_edges().iter().sum::<usize>() + cut.cut_edges(),
            c.edge_count()
        );
        assert!(cut.cut_edges() > 0, "a geometric split cuts something");
        assert!(cut.cut_fraction() > 0.0 && cut.cut_fraction() < 1.0);
        // One shard owns everything: nothing is cut.
        let all = c.shard_cut(&vec![0u32; 90], 1);
        assert_eq!(all.cut_edges(), 0);
        assert_eq!(all.per_shard_edges()[0], c.edge_count());
        assert_eq!(all.cut_fraction(), 0.0);
    }

    #[test]
    #[should_panic(expected = "assigned to shard")]
    fn shard_cut_rejects_out_of_range_shards() {
        let g = Graph::with_edges(vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0)], [(0, 1)]);
        let _ = g.freeze().shard_cut(&[0, 5], 2);
    }

    #[test]
    fn empty_graph_freezes() {
        let c = Graph::new(vec![]).freeze();
        assert_eq!(c.node_count(), 0);
        assert_eq!(c.edges().count(), 0);
    }
}
