//! Minimal SVG rendering of embedded graphs.
//!
//! Regenerates the paper's Figure 6/7-style topology galleries. The
//! renderer is intentionally small: edges, nodes, optional per-node
//! classes with distinct colors and shapes (dominators as squares,
//! connectors as diamonds, dominatees as circles, mirroring Figure 3).

use std::fmt::Write as _;

use crate::Graph;

/// Visual role of a node in a rendering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum NodeRole {
    /// Plain node: small gray circle.
    #[default]
    Plain,
    /// Dominator / cluster-head: red square.
    Dominator,
    /// Connector / gateway: blue diamond.
    Connector,
    /// Dominatee / ordinary node: small green circle.
    Dominatee,
}

/// Renderer configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SvgOptions {
    /// Output canvas size in pixels (the graph is scaled to fit).
    pub canvas: f64,
    /// Margin around the drawing, in pixels.
    pub margin: f64,
    /// Node radius in pixels.
    pub node_radius: f64,
    /// Edge stroke width in pixels.
    pub stroke_width: f64,
    /// Figure title rendered at the top; empty for none.
    pub title: String,
}

impl Default for SvgOptions {
    fn default() -> Self {
        SvgOptions {
            canvas: 640.0,
            margin: 20.0,
            node_radius: 3.0,
            stroke_width: 1.0,
            title: String::new(),
        }
    }
}

/// Renders the graph to an SVG document string.
///
/// `roles` assigns a visual role per node; pass `&[]` to draw all nodes
/// plain.
///
/// # Panics
/// Panics when `roles` is non-empty but shorter than the node count.
///
/// # Example
/// ```
/// use geospan_graph::{Graph, Point};
/// use geospan_graph::svg::{render_svg, SvgOptions};
/// let g = Graph::with_edges(
///     vec![Point::new(0.,0.), Point::new(10.,10.)], [(0,1)]);
/// let svg = render_svg(&g, &[], &SvgOptions::default());
/// assert!(svg.starts_with("<svg"));
/// assert!(svg.contains("<line"));
/// ```
pub fn render_svg(g: &Graph, roles: &[NodeRole], opts: &SvgOptions) -> String {
    assert!(
        roles.is_empty() || roles.len() >= g.node_count(),
        "roles slice shorter than node count"
    );
    let n = g.node_count();
    let (min_x, max_x, min_y, max_y) = if n == 0 {
        (0.0, 1.0, 0.0, 1.0)
    } else {
        let xs = g.points().iter().map(|p| p.x);
        let ys = g.points().iter().map(|p| p.y);
        (
            xs.clone().fold(f64::INFINITY, f64::min),
            xs.fold(f64::NEG_INFINITY, f64::max),
            ys.clone().fold(f64::INFINITY, f64::min),
            ys.fold(f64::NEG_INFINITY, f64::max),
        )
    };
    let span = (max_x - min_x).max(max_y - min_y).max(1e-9);
    let inner = opts.canvas - 2.0 * opts.margin;
    let scale = inner / span;
    let tx = |x: f64| opts.margin + (x - min_x) * scale;
    // SVG y grows downward; flip so the figure matches the plane.
    let ty = |y: f64| opts.canvas - opts.margin - (y - min_y) * scale;

    let mut out = String::with_capacity(64 * (n + g.edge_count()) + 256);
    let _ = write!(
        out,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{c}" height="{c}" viewBox="0 0 {c} {c}">"#,
        c = opts.canvas
    );
    out.push('\n');
    let _ = writeln!(out, r#"<rect width="100%" height="100%" fill="white"/>"#);
    if !opts.title.is_empty() {
        let _ = writeln!(
            out,
            r#"<text x="{x}" y="14" font-family="sans-serif" font-size="12" text-anchor="middle">{t}</text>"#,
            x = opts.canvas / 2.0,
            t = xml_escape(&opts.title)
        );
    }
    for (u, v) in g.edges() {
        let a = g.position(u);
        let b = g.position(v);
        let _ = writeln!(
            out,
            r##"<line x1="{:.2}" y1="{:.2}" x2="{:.2}" y2="{:.2}" stroke="#555" stroke-width="{}"/>"##,
            tx(a.x),
            ty(a.y),
            tx(b.x),
            ty(b.y),
            opts.stroke_width
        );
    }
    for v in 0..n {
        let p = g.position(v);
        let (x, y) = (tx(p.x), ty(p.y));
        let r = opts.node_radius;
        match roles.get(v).copied().unwrap_or_default() {
            NodeRole::Plain => {
                let _ = writeln!(
                    out,
                    r##"<circle cx="{x:.2}" cy="{y:.2}" r="{r}" fill="#888"/>"##
                );
            }
            NodeRole::Dominatee => {
                let _ = writeln!(
                    out,
                    r##"<circle cx="{x:.2}" cy="{y:.2}" r="{r}" fill="#2a2" stroke="black" stroke-width="0.5"/>"##
                );
            }
            NodeRole::Dominator => {
                let s = r * 1.6;
                let _ = writeln!(
                    out,
                    r##"<rect x="{:.2}" y="{:.2}" width="{w:.2}" height="{w:.2}" fill="#c22" stroke="black" stroke-width="0.5"/>"##,
                    x - s,
                    y - s,
                    w = 2.0 * s
                );
            }
            NodeRole::Connector => {
                let s = r * 1.8;
                let _ = writeln!(
                    out,
                    r##"<polygon points="{:.2},{:.2} {:.2},{:.2} {:.2},{:.2} {:.2},{:.2}" fill="#22c" stroke="black" stroke-width="0.5"/>"##,
                    x,
                    y - s,
                    x + s,
                    y,
                    x,
                    y + s,
                    x - s,
                    y
                );
            }
        }
    }
    out.push_str("</svg>\n");
    out
}

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;
    use geospan_geometry::Point;

    fn tiny() -> Graph {
        Graph::with_edges(
            vec![
                Point::new(0.0, 0.0),
                Point::new(5.0, 0.0),
                Point::new(0.0, 5.0),
            ],
            [(0, 1), (0, 2)],
        )
    }

    #[test]
    fn renders_all_elements() {
        let svg = render_svg(&tiny(), &[], &SvgOptions::default());
        assert_eq!(svg.matches("<line").count(), 2);
        assert_eq!(svg.matches("<circle").count(), 3);
        assert!(svg.ends_with("</svg>\n"));
    }

    #[test]
    fn roles_change_shapes() {
        let roles = [
            NodeRole::Dominator,
            NodeRole::Connector,
            NodeRole::Dominatee,
        ];
        let svg = render_svg(&tiny(), &roles, &SvgOptions::default());
        assert_eq!(svg.matches("<rect").count(), 2); // background + dominator
        assert_eq!(svg.matches("<polygon").count(), 1);
        assert_eq!(svg.matches("<circle").count(), 1);
    }

    #[test]
    fn title_is_escaped() {
        let opts = SvgOptions {
            title: "n<100 & R>60".into(),
            ..SvgOptions::default()
        };
        let svg = render_svg(&tiny(), &[], &opts);
        assert!(svg.contains("n&lt;100 &amp; R&gt;60"));
    }

    #[test]
    #[should_panic(expected = "roles slice")]
    fn short_roles_rejected() {
        let _ = render_svg(&tiny(), &[NodeRole::Plain], &SvgOptions::default());
    }

    #[test]
    fn empty_graph_renders() {
        let svg = render_svg(&Graph::new(vec![]), &[], &SvgOptions::default());
        assert!(svg.starts_with("<svg"));
    }
}
