//! Power-aware path metrics.
//!
//! In the paper's power-attenuation model, transmitting over distance `d`
//! costs `d^β` with `2 <= β <= 5` depending on the environment (§I). A
//! subgraph is a *power spanner* when, for every pair, the minimum-energy
//! path in the subgraph costs at most a constant times the minimum-energy
//! path in the UDG. Because `x^β` is convex, many short hops beat one
//! long hop, so power spanners reward exactly the kind of subdivision the
//! backbone performs; the paper cites the power stretch factor of
//! Li-Wan-Wang-Frieder as the third yardstick next to length and hops.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::stretch::StretchOptions;
use crate::Graph;

/// Max-heap entry ordered by smallest cost first.
#[derive(PartialEq)]
struct Entry {
    cost: f64,
    node: usize,
}

impl Eq for Entry {}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .cost
            .total_cmp(&self.cost)
            .then_with(|| other.node.cmp(&self.node))
    }
}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Minimum transmission energy from `src` to every node, with per-link
/// cost `length^beta` (`None` for unreachable nodes).
///
/// # Panics
/// Panics if `src` is out of bounds or `beta` is not in `[1, 10]`
/// (values outside the physical range usually indicate swapped
/// arguments).
pub fn dijkstra_power(g: &Graph, src: usize, beta: f64) -> Vec<Option<f64>> {
    let n = g.node_count();
    assert!(src < n, "source {src} out of bounds for {n} nodes");
    assert!(
        (1.0..=10.0).contains(&beta),
        "implausible path-loss exponent {beta}"
    );
    let mut dist: Vec<Option<f64>> = vec![None; n];
    let mut done = vec![false; n];
    let mut heap = BinaryHeap::with_capacity(n);
    dist[src] = Some(0.0);
    heap.push(Entry {
        cost: 0.0,
        node: src,
    });
    while let Some(Entry { cost, node: u }) = heap.pop() {
        if done[u] {
            continue;
        }
        done[u] = true;
        for &v in g.neighbors(u) {
            if done[v] {
                continue;
            }
            let cand = cost + g.edge_length(u, v).powf(beta);
            if dist[v].is_none_or(|dv| cand < dv) {
                dist[v] = Some(cand);
                heap.push(Entry {
                    cost: cand,
                    node: v,
                });
            }
        }
    }
    dist
}

/// Average and maximum power stretch of `sub` relative to `base`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PowerStretchReport {
    /// Mean power stretch over measured pairs.
    pub power_avg: f64,
    /// Maximum power stretch over measured pairs.
    pub power_max: f64,
    /// Number of measured pairs.
    pub pairs: usize,
    /// Pairs connected in the base graph but not in the subgraph.
    pub disconnected_pairs: usize,
}

/// Computes the power stretch factor of `sub` relative to `base` with
/// path-loss exponent `beta`.
///
/// Pair selection follows the same rules as
/// [`stretch_factors`](crate::stretch::stretch_factors) (the
/// `min_euclidean_separation` option applies).
///
/// # Panics
/// Panics if the graphs have different node counts or `beta` is outside
/// `[1, 10]`.
pub fn power_stretch(
    base: &Graph,
    sub: &Graph,
    beta: f64,
    opts: StretchOptions,
) -> PowerStretchReport {
    assert_eq!(
        base.node_count(),
        sub.node_count(),
        "power stretch requires a shared vertex set"
    );
    let n = base.node_count();
    let mut report = PowerStretchReport::default();
    let mut sum = 0.0;
    for u in 0..n {
        let b = dijkstra_power(base, u, beta);
        let s = dijkstra_power(sub, u, beta);
        for v in u + 1..n {
            let Some(bp) = b[v] else { continue };
            let Some(sp) = s[v] else {
                report.disconnected_pairs += 1;
                continue;
            };
            if base.position(u).distance(base.position(v)) <= opts.min_euclidean_separation {
                continue;
            }
            // bp == 0 only when u and v coincide, which distinct
            // deployments exclude.
            let ratio = sp / bp;
            sum += ratio;
            report.pairs += 1;
            if ratio > report.power_max {
                report.power_max = ratio;
            }
        }
    }
    if report.pairs > 0 {
        report.power_avg = sum / report.pairs as f64;
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use geospan_geometry::Point;

    /// Chain 0-1-2 plus the direct long link 0-2.
    fn triangle_chain() -> Graph {
        Graph::with_edges(
            vec![
                Point::new(0.0, 0.0),
                Point::new(1.0, 0.0),
                Point::new(2.0, 0.0),
            ],
            [(0, 1), (1, 2), (0, 2)],
        )
    }

    #[test]
    fn power_prefers_many_short_hops() {
        let g = triangle_chain();
        // beta = 2: two hops of length 1 cost 2; the direct hop costs 4.
        let d = dijkstra_power(&g, 0, 2.0);
        assert_eq!(d[2], Some(2.0));
        // beta = 1 degenerates to length: direct hop wins.
        let d = dijkstra_power(&g, 0, 1.0);
        assert_eq!(d[2], Some(2.0)); // both routes cost 2; equal
    }

    #[test]
    fn removing_long_links_can_even_help() {
        let g = triangle_chain();
        let sub = g.filter_edges(|u, v| !(u == 0 && v == 2));
        let r = power_stretch(&g, &sub, 2.0, StretchOptions::default());
        // The subgraph still achieves the optimal power for every pair.
        assert_eq!(r.disconnected_pairs, 0);
        assert_eq!(r.power_max, 1.0);
        assert_eq!(r.pairs, 3);
    }

    #[test]
    fn stretch_detects_worse_paths() {
        // Square without a diagonal: the diagonal pair pays the detour.
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(0.0, 1.0),
        ];
        let base = Graph::with_edges(pts.clone(), [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]);
        let sub = Graph::with_edges(pts, [(0, 1), (1, 2), (2, 3), (3, 0)]);
        let r = power_stretch(&base, &sub, 2.0, StretchOptions::default());
        // Optimal 0-2 power: diagonal (sqrt 2)^2 = 2; detour: 1 + 1 = 2.
        // Equal! Convexity makes the square detour free at beta = 2.
        assert!((r.power_max - 1.0).abs() < 1e-12);
        // At beta = 1 (length), the detour costs 2 vs sqrt(2).
        let r = power_stretch(&base, &sub, 1.0, StretchOptions::default());
        assert!(r.power_max > 1.2);
    }

    #[test]
    fn disconnection_counted() {
        let g = triangle_chain();
        let sub = g.filter_edges(|u, _| u != 0);
        let r = power_stretch(&g, &sub, 2.0, StretchOptions::default());
        assert_eq!(r.disconnected_pairs, 2);
        assert_eq!(r.pairs, 1);
    }

    #[test]
    fn separation_filter_applies() {
        let g = triangle_chain();
        let r = power_stretch(
            &g,
            &g,
            2.0,
            StretchOptions {
                min_euclidean_separation: 1.5,
            },
        );
        assert_eq!(r.pairs, 1); // only the pair (0, 2) is far enough
        assert_eq!(r.power_max, 1.0);
    }

    #[test]
    #[should_panic(expected = "implausible")]
    fn silly_beta_rejected() {
        let g = triangle_chain();
        let _ = dijkstra_power(&g, 0, 42.0);
    }
}
