//! Shortest paths: BFS for hop counts, Dijkstra for Euclidean lengths.
//!
//! The paper's spanner definitions compare, for every node pair, the
//! shortest *hop* path and the shortest *length* path in a topology
//! against the same quantities in the full unit disk graph. These are the
//! single-source primitives behind those comparisons.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::collections::VecDeque;

use crate::Graph;

/// Hop distance from `src` to every node (`None` for unreachable nodes).
///
/// # Panics
/// Panics if `src` is out of bounds.
///
/// # Example
/// ```
/// use geospan_graph::{Graph, Point};
/// use geospan_graph::paths::bfs_hops;
/// let mut g = Graph::new(vec![Point::new(0.0, 0.0); 0]);
/// # let mut g = Graph::with_edges(
/// #   vec![Point::new(0.,0.), Point::new(1.,0.), Point::new(2.,0.)],
/// #   [(0,1),(1,2)]);
/// let d = bfs_hops(&g, 0);
/// assert_eq!(d, vec![Some(0), Some(1), Some(2)]);
/// ```
pub fn bfs_hops(g: &Graph, src: usize) -> Vec<Option<u32>> {
    let n = g.node_count();
    assert!(src < n, "source {src} out of bounds for {n} nodes");
    let mut dist = vec![None; n];
    dist[src] = Some(0);
    let mut q = VecDeque::with_capacity(n);
    q.push_back(src);
    while let Some(u) = q.pop_front() {
        let du = dist[u].expect("queued nodes have distances");
        for &v in g.neighbors(u) {
            if dist[v].is_none() {
                dist[v] = Some(du + 1);
                q.push_back(v);
            }
        }
    }
    dist
}

/// Max-heap entry ordered by *smallest* distance first.
#[derive(PartialEq)]
struct HeapEntry {
    dist: f64,
    node: usize,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want the nearest node.
        other
            .dist
            .total_cmp(&self.dist)
            .then_with(|| other.node.cmp(&self.node))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Euclidean-length distance from `src` to every node (`None` for
/// unreachable nodes). Edge weights are the embedded edge lengths.
///
/// # Panics
/// Panics if `src` is out of bounds.
pub fn dijkstra_lengths(g: &Graph, src: usize) -> Vec<Option<f64>> {
    let n = g.node_count();
    assert!(src < n, "source {src} out of bounds for {n} nodes");
    let mut dist: Vec<Option<f64>> = vec![None; n];
    let mut done = vec![false; n];
    let mut heap = BinaryHeap::with_capacity(n);
    dist[src] = Some(0.0);
    heap.push(HeapEntry {
        dist: 0.0,
        node: src,
    });
    while let Some(HeapEntry { dist: du, node: u }) = heap.pop() {
        if done[u] {
            continue;
        }
        done[u] = true;
        for &v in g.neighbors(u) {
            if done[v] {
                continue;
            }
            let cand = du + g.edge_length(u, v);
            if dist[v].is_none_or(|dv| cand < dv) {
                dist[v] = Some(cand);
                heap.push(HeapEntry {
                    dist: cand,
                    node: v,
                });
            }
        }
    }
    dist
}

/// A shortest hop path from `src` to `dst` as a node sequence (inclusive
/// of both endpoints), or `None` when unreachable.
///
/// # Panics
/// Panics if either endpoint is out of bounds.
pub fn shortest_hop_path(g: &Graph, src: usize, dst: usize) -> Option<Vec<usize>> {
    let n = g.node_count();
    assert!(src < n && dst < n, "endpoints out of bounds");
    if src == dst {
        return Some(vec![src]);
    }
    let mut parent = vec![usize::MAX; n];
    let mut seen = vec![false; n];
    seen[src] = true;
    let mut q = VecDeque::new();
    q.push_back(src);
    while let Some(u) = q.pop_front() {
        for &v in g.neighbors(u) {
            if !seen[v] {
                seen[v] = true;
                parent[v] = u;
                if v == dst {
                    let mut path = vec![dst];
                    let mut cur = dst;
                    while cur != src {
                        cur = parent[cur];
                        path.push(cur);
                    }
                    path.reverse();
                    return Some(path);
                }
                q.push_back(v);
            }
        }
    }
    None
}

/// A shortest Euclidean-length path from `src` to `dst` as a node
/// sequence, or `None` when unreachable.
///
/// # Panics
/// Panics if either endpoint is out of bounds.
pub fn shortest_length_path(g: &Graph, src: usize, dst: usize) -> Option<Vec<usize>> {
    let n = g.node_count();
    assert!(src < n && dst < n, "endpoints out of bounds");
    if src == dst {
        return Some(vec![src]);
    }
    let mut dist: Vec<Option<f64>> = vec![None; n];
    let mut parent = vec![usize::MAX; n];
    let mut done = vec![false; n];
    let mut heap = BinaryHeap::new();
    dist[src] = Some(0.0);
    heap.push(HeapEntry {
        dist: 0.0,
        node: src,
    });
    while let Some(HeapEntry { dist: du, node: u }) = heap.pop() {
        if done[u] {
            continue;
        }
        done[u] = true;
        if u == dst {
            break;
        }
        for &v in g.neighbors(u) {
            if done[v] {
                continue;
            }
            let cand = du + g.edge_length(u, v);
            if dist[v].is_none_or(|dv| cand < dv) {
                dist[v] = Some(cand);
                parent[v] = u;
                heap.push(HeapEntry {
                    dist: cand,
                    node: v,
                });
            }
        }
    }
    dist[dst]?;
    let mut path = vec![dst];
    let mut cur = dst;
    while cur != src {
        cur = parent[cur];
        path.push(cur);
    }
    path.reverse();
    Some(path)
}

/// Total Euclidean length of a node path.
///
/// # Panics
/// Panics if any node is out of bounds.
pub fn path_length(g: &Graph, path: &[usize]) -> f64 {
    path.windows(2).map(|w| g.edge_length(w[0], w[1])).sum()
}

/// A lazy shortest-path oracle over one graph.
///
/// Per-source BFS hop rows and Dijkstra length rows are computed on
/// first use and cached, so measuring many packets against the same few
/// sources — the traffic engine's per-packet stretch accounting — costs
/// one single-source run per distinct source instead of one per query.
///
/// # Example
/// ```
/// use geospan_graph::{Graph, Point};
/// use geospan_graph::paths::DistanceOracle;
/// let g = Graph::with_edges(
///     vec![Point::new(0.,0.), Point::new(1.,0.), Point::new(2.,0.)],
///     [(0,1),(1,2)]);
/// let mut oracle = DistanceOracle::new(&g);
/// assert_eq!(oracle.hops(0, 2), Some(2));
/// assert!((oracle.length(0, 2).unwrap() - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug)]
pub struct DistanceOracle<'a> {
    g: &'a Graph,
    hops: Vec<Option<Vec<Option<u32>>>>,
    lengths: Vec<Option<Vec<Option<f64>>>>,
}

impl<'a> DistanceOracle<'a> {
    /// An oracle over `g` with no rows computed yet.
    pub fn new(g: &'a Graph) -> Self {
        let n = g.node_count();
        DistanceOracle {
            g,
            hops: vec![None; n],
            lengths: vec![None; n],
        }
    }

    /// Hop distance from `src` to `dst` (`None` when unreachable).
    ///
    /// # Panics
    /// Panics if either endpoint is out of bounds.
    pub fn hops(&mut self, src: usize, dst: usize) -> Option<u32> {
        self.hops[src].get_or_insert_with(|| bfs_hops(self.g, src))[dst]
    }

    /// Euclidean shortest-path length from `src` to `dst` (`None` when
    /// unreachable).
    ///
    /// # Panics
    /// Panics if either endpoint is out of bounds.
    pub fn length(&mut self, src: usize, dst: usize) -> Option<f64> {
        self.lengths[src].get_or_insert_with(|| dijkstra_lengths(self.g, src))[dst]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geospan_geometry::Point;

    /// A 5-node graph: a straight chain 0-1-2-3 plus a long chord 0-4-3.
    fn diamond() -> Graph {
        Graph::with_edges(
            vec![
                Point::new(0.0, 0.0),
                Point::new(1.0, 0.0),
                Point::new(2.0, 0.0),
                Point::new(3.0, 0.0),
                Point::new(1.5, 4.0),
            ],
            [(0, 1), (1, 2), (2, 3), (0, 4), (4, 3)],
        )
    }

    #[test]
    fn bfs_hop_counts() {
        let g = diamond();
        let d = bfs_hops(&g, 0);
        assert_eq!(d, vec![Some(0), Some(1), Some(2), Some(2), Some(1)]);
    }

    #[test]
    fn bfs_unreachable() {
        let mut g = diamond();
        g.remove_edge(0, 4);
        g.remove_edge(4, 3);
        let d = bfs_hops(&g, 0);
        assert_eq!(d[4], None);
        assert_eq!(d[3], Some(3));
    }

    #[test]
    fn dijkstra_prefers_short_detour() {
        let g = diamond();
        let d = dijkstra_lengths(&g, 0);
        // Straight chain is length 3; the chord through node 4 is ~8.5.
        assert!((d[3].unwrap() - 3.0).abs() < 1e-12);
        assert_eq!(d[0], Some(0.0));
    }

    #[test]
    fn hop_path_differs_from_length_path() {
        let g = diamond();
        // Fewest hops: 0-4-3 (2 hops). Shortest length: 0-1-2-3 (3 units).
        let hop = shortest_hop_path(&g, 0, 3).unwrap();
        assert_eq!(hop.len(), 3);
        let len = shortest_length_path(&g, 0, 3).unwrap();
        assert_eq!(len, vec![0, 1, 2, 3]);
        assert!((path_length(&g, &len) - 3.0).abs() < 1e-12);
        assert!(path_length(&g, &hop) > 8.0);
    }

    #[test]
    fn paths_to_self_and_unreachable() {
        let mut g = diamond();
        assert_eq!(shortest_hop_path(&g, 2, 2), Some(vec![2]));
        assert_eq!(shortest_length_path(&g, 2, 2), Some(vec![2]));
        g.remove_edge(0, 1);
        g.remove_edge(0, 4);
        assert_eq!(shortest_hop_path(&g, 0, 3), None);
        assert_eq!(shortest_length_path(&g, 0, 3), None);
    }

    #[test]
    fn oracle_matches_single_source_runs() {
        let g = diamond();
        let mut oracle = DistanceOracle::new(&g);
        for src in 0..g.node_count() {
            let hops = bfs_hops(&g, src);
            let lens = dijkstra_lengths(&g, src);
            for dst in 0..g.node_count() {
                assert_eq!(oracle.hops(src, dst), hops[dst]);
                assert_eq!(oracle.length(src, dst), lens[dst]);
                // Cached second query agrees.
                assert_eq!(oracle.hops(src, dst), hops[dst]);
            }
        }
    }

    #[test]
    fn dijkstra_agrees_with_bfs_on_unit_edges() {
        // All edges the same length: hop counts and lengths coincide.
        let g = Graph::with_edges(
            vec![
                Point::new(0.0, 0.0),
                Point::new(1.0, 0.0),
                Point::new(2.0, 0.0),
                Point::new(3.0, 0.0),
            ],
            [(0, 1), (1, 2), (2, 3)],
        );
        let hops = bfs_hops(&g, 0);
        let lens = dijkstra_lengths(&g, 0);
        for v in 0..4 {
            assert!((lens[v].unwrap() - hops[v].unwrap() as f64).abs() < 1e-12);
        }
    }
}
