//! Sorted-vec set and map: the arena-friendly replacements for the
//! node-id-keyed `BTreeSet<usize>` / `BTreeMap<usize, _>` that used to
//! hold per-node protocol state.
//!
//! Both containers keep their entries in ascending key order at all
//! times, so iteration visits keys in exactly the order the BTree
//! versions did — message emission driven by `for` loops over these is
//! bit-identical to the pre-refactor path. What changes is the memory
//! shape: one contiguous allocation per container instead of one tree
//! node per entry, `O(log n)` binary-search membership with no pointer
//! chasing, and cheap `clear`/reuse across protocol rounds.
//!
//! Inserts are `O(n)` worst-case (a `Vec::insert` shift), which is the
//! right trade for the protocol workloads here: neighbor sets are
//! bounded by the node degree (tens of entries), and most inserts land
//! near the end. For bulk loads use [`VecSet::from_sorted_iter`] /
//! `extend` + [`VecSet::sort_dedup`]-style construction via `From`.

/// A set of `usize` keys stored as a sorted `Vec`.
///
/// Iteration order is ascending, matching `BTreeSet<usize>`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VecSet {
    items: Vec<usize>,
}

impl VecSet {
    /// Creates an empty set.
    #[inline]
    pub fn new() -> Self {
        VecSet { items: Vec::new() }
    }

    /// Creates an empty set with room for `cap` keys.
    #[inline]
    pub fn with_capacity(cap: usize) -> Self {
        VecSet {
            items: Vec::with_capacity(cap),
        }
    }

    /// Builds a set from keys that are **already sorted ascending and
    /// unique** (a topology neighbor list, say) without re-sorting.
    ///
    /// # Panics
    /// Debug-asserts the precondition.
    pub fn from_sorted_iter(keys: impl IntoIterator<Item = usize>) -> Self {
        let items: Vec<usize> = keys.into_iter().collect();
        debug_assert!(items.windows(2).all(|w| w[0] < w[1]));
        VecSet { items }
    }

    /// Number of keys.
    #[inline]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when the set has no keys.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Membership test (`O(log n)`).
    #[inline]
    pub fn contains(&self, key: usize) -> bool {
        self.items.binary_search(&key).is_ok()
    }

    /// Inserts `key`; returns `false` if it was already present.
    pub fn insert(&mut self, key: usize) -> bool {
        match self.items.binary_search(&key) {
            Ok(_) => false,
            Err(at) => {
                self.items.insert(at, key);
                true
            }
        }
    }

    /// Removes `key`; returns `false` if it was absent.
    pub fn remove(&mut self, key: usize) -> bool {
        match self.items.binary_search(&key) {
            Ok(at) => {
                self.items.remove(at);
                true
            }
            Err(_) => false,
        }
    }

    /// Removes all keys, keeping the allocation for reuse.
    #[inline]
    pub fn clear(&mut self) {
        self.items.clear();
    }

    /// Ascending iteration over the keys (same order as `BTreeSet`).
    #[inline]
    pub fn iter(&self) -> std::iter::Copied<std::slice::Iter<'_, usize>> {
        self.items.iter().copied()
    }

    /// The keys as a sorted slice.
    #[inline]
    pub fn as_slice(&self) -> &[usize] {
        &self.items
    }

    /// Smallest key, if any.
    #[inline]
    pub fn first(&self) -> Option<usize> {
        self.items.first().copied()
    }

    /// True when `self` and `other` share at least one key (linear merge
    /// scan — both sets are sorted).
    pub fn intersects(&self, other: &VecSet) -> bool {
        let (mut i, mut j) = (0, 0);
        while i < self.items.len() && j < other.items.len() {
            match self.items[i].cmp(&other.items[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => return true,
            }
        }
        false
    }
}

impl FromIterator<usize> for VecSet {
    /// Collects arbitrary (unsorted, possibly duplicated) keys.
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let mut items: Vec<usize> = iter.into_iter().collect();
        items.sort_unstable();
        items.dedup();
        VecSet { items }
    }
}

impl<'a> IntoIterator for &'a VecSet {
    type Item = usize;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, usize>>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// A map from `usize` keys to `V`, stored as a `Vec` sorted by key.
///
/// Iteration order is ascending by key, matching `BTreeMap<usize, V>`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VecMap<V> {
    items: Vec<(usize, V)>,
}

impl<V> Default for VecMap<V> {
    fn default() -> Self {
        VecMap { items: Vec::new() }
    }
}

impl<V> VecMap<V> {
    /// Creates an empty map.
    #[inline]
    pub fn new() -> Self {
        VecMap { items: Vec::new() }
    }

    /// Creates an empty map with room for `cap` entries.
    #[inline]
    pub fn with_capacity(cap: usize) -> Self {
        VecMap {
            items: Vec::with_capacity(cap),
        }
    }

    /// Number of entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when the map has no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    #[inline]
    fn index_of(&self, key: usize) -> Result<usize, usize> {
        self.items.binary_search_by(|(k, _)| k.cmp(&key))
    }

    /// True when `key` has an entry.
    #[inline]
    pub fn contains_key(&self, key: usize) -> bool {
        self.index_of(key).is_ok()
    }

    /// The value stored under `key`, if any.
    #[inline]
    pub fn get(&self, key: usize) -> Option<&V> {
        self.index_of(key).ok().map(|at| &self.items[at].1)
    }

    /// Mutable access to the value stored under `key`, if any.
    #[inline]
    pub fn get_mut(&mut self, key: usize) -> Option<&mut V> {
        match self.index_of(key) {
            Ok(at) => Some(&mut self.items[at].1),
            Err(_) => None,
        }
    }

    /// Inserts or replaces the value under `key`, returning the previous
    /// value if one existed.
    pub fn insert(&mut self, key: usize, value: V) -> Option<V> {
        match self.index_of(key) {
            Ok(at) => Some(std::mem::replace(&mut self.items[at].1, value)),
            Err(at) => {
                self.items.insert(at, (key, value));
                None
            }
        }
    }

    /// Removes the entry under `key`, returning its value if it existed.
    pub fn remove(&mut self, key: usize) -> Option<V> {
        match self.index_of(key) {
            Ok(at) => Some(self.items.remove(at).1),
            Err(_) => None,
        }
    }

    /// The value under `key`, inserting `default()` first if absent.
    pub fn entry_or_insert_with(&mut self, key: usize, default: impl FnOnce() -> V) -> &mut V {
        let at = match self.index_of(key) {
            Ok(at) => at,
            Err(at) => {
                self.items.insert(at, (key, default()));
                at
            }
        };
        &mut self.items[at].1
    }

    /// Removes all entries, keeping the allocation for reuse.
    #[inline]
    pub fn clear(&mut self) {
        self.items.clear();
    }

    /// Ascending-by-key iteration (same order as `BTreeMap`).
    #[inline]
    pub fn iter(&self) -> impl Iterator<Item = (usize, &V)> {
        self.items.iter().map(|(k, v)| (*k, v))
    }

    /// Ascending-by-key iteration with mutable values.
    #[inline]
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (usize, &mut V)> {
        self.items.iter_mut().map(|(k, v)| (*k, v))
    }

    /// Ascending key iteration.
    #[inline]
    pub fn keys(&self) -> impl Iterator<Item = usize> + '_ {
        self.items.iter().map(|(k, _)| *k)
    }

    /// Values in ascending key order.
    #[inline]
    pub fn values(&self) -> impl Iterator<Item = &V> {
        self.items.iter().map(|(_, v)| v)
    }
}

impl<V> FromIterator<(usize, V)> for VecMap<V> {
    /// Collects entries; on duplicate keys the **last** value wins, as
    /// with `BTreeMap::from_iter`.
    fn from_iter<I: IntoIterator<Item = (usize, V)>>(iter: I) -> Self {
        let mut m = VecMap::new();
        for (k, v) in iter {
            m.insert(k, v);
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::{BTreeMap, BTreeSet};

    fn lcg(seed: u64) -> impl FnMut() -> u64 {
        let mut x = seed | 1;
        move || {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            x >> 11
        }
    }

    #[test]
    fn vecset_matches_btreeset_under_random_ops() {
        let mut next = lcg(42);
        let mut vs = VecSet::new();
        let mut bs = BTreeSet::new();
        for _ in 0..2000 {
            let key = (next() % 64) as usize;
            match next() % 3 {
                0 => assert_eq!(vs.insert(key), bs.insert(key)),
                1 => assert_eq!(vs.remove(key), bs.remove(&key)),
                _ => assert_eq!(vs.contains(key), bs.contains(&key)),
            }
            assert_eq!(vs.len(), bs.len());
        }
        let via_vs: Vec<usize> = vs.iter().collect();
        let via_bs: Vec<usize> = bs.iter().copied().collect();
        assert_eq!(via_vs, via_bs, "iteration order must match BTreeSet");
        assert_eq!(vs.first(), bs.first().copied());
    }

    #[test]
    fn vecmap_matches_btreemap_under_random_ops() {
        let mut next = lcg(7);
        let mut vm = VecMap::new();
        let mut bm = BTreeMap::new();
        for _ in 0..2000 {
            let key = (next() % 48) as usize;
            let val = next();
            match next() % 4 {
                0 => assert_eq!(vm.insert(key, val), bm.insert(key, val)),
                1 => assert_eq!(vm.remove(key), bm.remove(&key)),
                2 => assert_eq!(vm.get(key), bm.get(&key)),
                _ => {
                    *vm.entry_or_insert_with(key, || 0) += 1;
                    *bm.entry(key).or_insert(0) += 1;
                }
            }
            assert_eq!(vm.len(), bm.len());
        }
        let via_vm: Vec<(usize, u64)> = vm.iter().map(|(k, v)| (k, *v)).collect();
        let via_bm: Vec<(usize, u64)> = bm.iter().map(|(k, v)| (*k, *v)).collect();
        assert_eq!(via_vm, via_bm, "iteration order must match BTreeMap");
    }

    #[test]
    fn vecset_bulk_and_intersection() {
        let a: VecSet = [5, 1, 3, 1, 5].into_iter().collect();
        assert_eq!(a.as_slice(), &[1, 3, 5]);
        let b = VecSet::from_sorted_iter([2, 4, 5]);
        assert!(a.intersects(&b));
        let c = VecSet::from_sorted_iter([0, 2, 4]);
        assert!(!a.intersects(&c));
        assert!(!VecSet::new().intersects(&a));
    }

    #[test]
    fn vecmap_from_iter_last_value_wins() {
        let m: VecMap<&str> = [(2, "a"), (1, "b"), (2, "c")].into_iter().collect();
        assert_eq!(m.get(2), Some(&"c"));
        assert_eq!(m.keys().collect::<Vec<_>>(), vec![1, 2]);
    }

    #[test]
    fn reuse_after_clear() {
        let mut s = VecSet::with_capacity(8);
        s.insert(3);
        s.clear();
        assert!(s.is_empty());
        s.insert(1);
        assert_eq!(s.as_slice(), &[1]);
        let mut m: VecMap<u8> = VecMap::with_capacity(8);
        m.insert(3, 1);
        m.clear();
        assert!(m.get(3).is_none());
        assert!(m.is_empty());
    }
}
