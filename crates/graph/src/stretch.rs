//! Hop and length stretch factors ("spanning ratios").
//!
//! A subgraph `H ⊆ G` is a *length spanner* when for all node pairs the
//! shortest-path length in `H` is at most a constant times the one in `G`,
//! and a *hop spanner* when the same holds for hop counts. The paper's
//! Table I and Figures 9/11 report the average and maximum of these ratios
//! over node pairs; this module computes them.

use rayon::prelude::*;

use crate::Graph;

/// Options controlling which node pairs enter the stretch statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StretchOptions {
    /// Only count pairs whose *Euclidean* separation exceeds this value.
    ///
    /// The paper measures the length stretch of the CDS-family graphs only
    /// for pairs more than one transmission radius apart ("we are only
    /// interested in nodes u and v with |uv| > 1"), because a backbone
    /// detour between two nearly-coincident dominatees has unbounded
    /// length ratio while remaining a perfectly good route. `0.0` means
    /// all pairs.
    pub min_euclidean_separation: f64,
}

impl Default for StretchOptions {
    fn default() -> Self {
        StretchOptions {
            min_euclidean_separation: 0.0,
        }
    }
}

/// Average and maximum stretch factors of a subgraph relative to a base
/// graph.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StretchReport {
    /// Mean length stretch over measured pairs.
    pub length_avg: f64,
    /// Maximum length stretch over measured pairs.
    pub length_max: f64,
    /// Mean hop stretch over measured pairs.
    pub hop_avg: f64,
    /// Maximum hop stretch over measured pairs.
    pub hop_max: f64,
    /// Number of pairs entering the length statistics.
    pub length_pairs: usize,
    /// Number of pairs entering the hop statistics.
    pub hop_pairs: usize,
    /// Pairs connected in the base graph but not in the subgraph. A true
    /// spanner has zero.
    pub disconnected_pairs: usize,
}

/// Computes hop and length stretch factors of `sub` relative to `base`.
///
/// Both graphs must share the vertex set (same node count and positions).
/// Pairs unreachable in `base` are skipped; pairs reachable in `base` but
/// not in `sub` are counted in
/// [`disconnected_pairs`](StretchReport::disconnected_pairs) and excluded
/// from the ratios.
///
/// Runs one BFS and one Dijkstra per node and graph: `O(n · m log n)`.
/// Both graphs are first frozen to CSR ([`Graph::freeze`]) so the `2n`
/// independent searches scan flat `u32` adjacency instead of chasing
/// `Vec<Vec<usize>>`; freezing preserves neighbor order exactly, so the
/// report is bit-identical to the unfrozen computation. Sources are
/// processed in parallel; the per-source partial statistics are folded
/// serially in source order, so the report is also bit-identical for
/// every thread count, including `RAYON_NUM_THREADS=1`.
///
/// # Panics
/// Panics if the graphs have different node counts.
///
/// # Example
/// ```
/// use geospan_graph::{Graph, Point};
/// use geospan_graph::stretch::{stretch_factors, StretchOptions};
///
/// let pts = vec![Point::new(0.,0.), Point::new(1.,0.), Point::new(1.,1.)];
/// let base = Graph::with_edges(pts.clone(), [(0,1),(1,2),(0,2)]);
/// let sub = Graph::with_edges(pts, [(0,1),(1,2)]); // drop the diagonal
/// let r = stretch_factors(&base, &sub, StretchOptions::default());
/// assert_eq!(r.disconnected_pairs, 0);
/// assert!(r.length_max > 1.0 && r.length_max < 1.5);
/// assert_eq!(r.hop_max, 2.0);
/// ```
pub fn stretch_factors(base: &Graph, sub: &Graph, opts: StretchOptions) -> StretchReport {
    assert_eq!(
        base.node_count(),
        sub.node_count(),
        "stretch factors require a shared vertex set"
    );
    let n = base.node_count();

    /// The statistics contributed by one source node's pairs `(u, v>u)`.
    #[derive(Default)]
    struct SourcePartial {
        length_sum: f64,
        length_max: f64,
        length_pairs: usize,
        hop_sum: f64,
        hop_max: f64,
        hop_pairs: usize,
        disconnected_pairs: usize,
    }

    let cbase = base.freeze();
    let csub = sub.freeze();
    let partials: Vec<SourcePartial> = (0..n)
        .into_par_iter()
        .map(|u| {
            let base_len = cbase.dijkstra_lengths(u);
            let base_hop = cbase.bfs_hops(u);
            let sub_len = csub.dijkstra_lengths(u);
            let sub_hop = csub.bfs_hops(u);
            let mut p = SourcePartial::default();
            for v in u + 1..n {
                let Some(bl) = base_len[v] else { continue };
                let bh = base_hop[v].expect("hop- and length-reachability agree");
                let (Some(sl), Some(sh)) = (sub_len[v], sub_hop[v]) else {
                    p.disconnected_pairs += 1;
                    continue;
                };
                // Hop stretch: all base-connected pairs.
                let hs = sh as f64 / bh as f64;
                p.hop_sum += hs;
                p.hop_pairs += 1;
                if hs > p.hop_max {
                    p.hop_max = hs;
                }
                // Length stretch: optionally restricted to separated pairs.
                if base.position(u).distance(base.position(v)) > opts.min_euclidean_separation {
                    let ls = sl / bl;
                    p.length_sum += ls;
                    p.length_pairs += 1;
                    if ls > p.length_max {
                        p.length_max = ls;
                    }
                }
            }
            p
        })
        .collect();

    // Serial fold in source order: deterministic regardless of thread count.
    let mut report = StretchReport::default();
    let mut length_sum = 0.0;
    let mut hop_sum = 0.0;
    for p in partials {
        length_sum += p.length_sum;
        hop_sum += p.hop_sum;
        report.length_pairs += p.length_pairs;
        report.hop_pairs += p.hop_pairs;
        report.disconnected_pairs += p.disconnected_pairs;
        report.length_max = report.length_max.max(p.length_max);
        report.hop_max = report.hop_max.max(p.hop_max);
    }
    if report.length_pairs > 0 {
        report.length_avg = length_sum / report.length_pairs as f64;
    }
    if report.hop_pairs > 0 {
        report.hop_avg = hop_sum / report.hop_pairs as f64;
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use geospan_geometry::Point;

    fn chain_and_shortcut() -> (Graph, Graph) {
        // Base: square with both diagonals; sub: the square only.
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(0.0, 1.0),
        ];
        let base = Graph::with_edges(
            pts.clone(),
            [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2), (1, 3)],
        );
        let sub = Graph::with_edges(pts, [(0, 1), (1, 2), (2, 3), (3, 0)]);
        (base, sub)
    }

    #[test]
    fn identical_graphs_have_unit_stretch() {
        let (base, _) = chain_and_shortcut();
        let r = stretch_factors(&base, &base, StretchOptions::default());
        assert_eq!(r.length_avg, 1.0);
        assert_eq!(r.length_max, 1.0);
        assert_eq!(r.hop_avg, 1.0);
        assert_eq!(r.hop_max, 1.0);
        assert_eq!(r.disconnected_pairs, 0);
    }

    #[test]
    fn square_without_diagonals() {
        let (base, sub) = chain_and_shortcut();
        let r = stretch_factors(&base, &sub, StretchOptions::default());
        // Diagonal pairs: length 2 instead of sqrt(2); hops 2 instead of 1.
        assert!((r.length_max - 2.0 / 2f64.sqrt()).abs() < 1e-12);
        assert_eq!(r.hop_max, 2.0);
        assert_eq!(r.length_pairs, 6);
        assert_eq!(r.disconnected_pairs, 0);
    }

    #[test]
    fn disconnected_pairs_counted() {
        let (base, mut sub) = chain_and_shortcut();
        sub.remove_edge(0, 1);
        sub.remove_edge(3, 0);
        let r = stretch_factors(&base, &sub, StretchOptions::default());
        // Node 0 is isolated in sub: pairs (0,1), (0,2), (0,3) lost.
        assert_eq!(r.disconnected_pairs, 3);
        assert_eq!(r.hop_pairs, 3);
    }

    #[test]
    fn separation_filter_drops_close_pairs() {
        let (base, sub) = chain_and_shortcut();
        let r = stretch_factors(
            &base,
            &sub,
            StretchOptions {
                min_euclidean_separation: 1.2,
            },
        );
        // Only the two diagonal pairs are farther than 1.2 apart.
        assert_eq!(r.length_pairs, 2);
        // Hop statistics are unaffected by the separation filter.
        assert_eq!(r.hop_pairs, 6);
    }

    #[test]
    #[should_panic(expected = "shared vertex set")]
    fn mismatched_vertex_sets_rejected() {
        let (base, _) = chain_and_shortcut();
        let other = Graph::new(vec![Point::ORIGIN]);
        let _ = stretch_factors(&base, &other, StretchOptions::default());
    }
}
