//! The embedded-graph representation shared by all topologies.

use geospan_geometry::Point;

/// An undirected graph embedded in the plane.
///
/// Nodes are identified by their index into the position slice; all
/// topologies derived from one deployment share the same vertex set (and
/// hence the same indices), differing only in their edge sets. This makes
/// comparisons — stretch factors, degree statistics — direct.
///
/// Neighbor lists are kept sorted, so [`Graph::has_edge`] is
/// `O(log degree)` and iteration order is deterministic.
///
/// # Example
/// ```
/// use geospan_graph::{Graph, Point};
///
/// let mut g = Graph::new(vec![
///     Point::new(0.0, 0.0),
///     Point::new(1.0, 0.0),
///     Point::new(0.0, 1.0),
/// ]);
/// g.add_edge(0, 1);
/// g.add_edge(1, 2);
/// assert_eq!(g.edge_count(), 2);
/// assert!(g.has_edge(0, 1));
/// assert!(!g.has_edge(0, 2));
/// assert_eq!(g.neighbors(1), &[0, 2]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Graph {
    points: Vec<Point>,
    adjacency: Vec<Vec<usize>>,
    edge_count: usize,
}

impl Graph {
    /// Creates an edgeless graph on the given node positions.
    pub fn new(points: Vec<Point>) -> Self {
        let n = points.len();
        Graph {
            points,
            adjacency: vec![Vec::new(); n],
            edge_count: 0,
        }
    }

    /// Creates a graph with the given positions and edges.
    ///
    /// Duplicate edges are ignored.
    ///
    /// # Panics
    /// Panics on out-of-bounds endpoints or self-loops.
    pub fn with_edges(points: Vec<Point>, edges: impl IntoIterator<Item = (usize, usize)>) -> Self {
        let mut g = Graph::new(points);
        for (u, v) in edges {
            g.add_edge(u, v);
        }
        g
    }

    /// Creates a graph from a bulk edge list in one pass: canonicalize,
    /// sort, dedup, then fill exact-capacity adjacency rows.
    ///
    /// This is the fast path for topology builders that already hold
    /// their full edge set: `with_edges` pays `O(degree)` per insertion
    /// for the sorted-insert shifting in [`Graph::add_edge`], while this
    /// constructor pays one `O(m log m)` sort total and never moves an
    /// adjacency entry twice. The edges may arrive in any order and
    /// orientation; duplicates are ignored.
    ///
    /// # Panics
    /// Panics on out-of-bounds endpoints or self-loops.
    pub fn from_sorted_edges(points: Vec<Point>, edges: Vec<(usize, usize)>) -> Self {
        let n = points.len();
        let mut edges: Vec<(usize, usize)> = edges
            .into_iter()
            .map(|(u, v)| {
                assert!(u != v, "self-loop {u} is not a wireless link");
                assert!(
                    u < n && v < n,
                    "edge ({u}, {v}) out of bounds for {n} nodes"
                );
                (u.min(v), u.max(v))
            })
            .collect();
        edges.sort_unstable();
        edges.dedup();
        let mut degree = vec![0usize; n];
        for &(u, v) in &edges {
            degree[u] += 1;
            degree[v] += 1;
        }
        let mut adjacency: Vec<Vec<usize>> =
            degree.iter().map(|&d| Vec::with_capacity(d)).collect();
        // With edges sorted by (min, max), a forward pass over second
        // components fills each row's smaller-than-self neighbors in
        // ascending order, and a second forward pass appends the
        // larger-than-self neighbors, also ascending — every row comes
        // out sorted without a single shift or per-row sort.
        for &(u, v) in &edges {
            adjacency[v].push(u);
        }
        for &(u, v) in &edges {
            adjacency[u].push(v);
        }
        Graph {
            points,
            edge_count: edges.len(),
            adjacency,
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.points.len()
    }

    /// Number of (undirected) edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// The node positions, indexable by node id.
    #[inline]
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// Position of node `v`.
    ///
    /// # Panics
    /// Panics if `v` is out of bounds.
    #[inline]
    pub fn position(&self, v: usize) -> Point {
        self.points[v]
    }

    /// Sorted neighbor list of node `v`.
    ///
    /// # Panics
    /// Panics if `v` is out of bounds.
    #[inline]
    pub fn neighbors(&self, v: usize) -> &[usize] {
        &self.adjacency[v]
    }

    /// Degree of node `v`.
    ///
    /// # Panics
    /// Panics if `v` is out of bounds.
    #[inline]
    pub fn degree(&self, v: usize) -> usize {
        self.adjacency[v].len()
    }

    /// True when the undirected edge `{u, v}` is present.
    #[inline]
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.adjacency[u].binary_search(&v).is_ok()
    }

    /// Appends a new isolated node at `p`, returning its index.
    ///
    /// Supports incremental maintenance (a node powering up); existing
    /// indices are unaffected.
    pub fn push_node(&mut self, p: Point) -> usize {
        self.points.push(p);
        self.adjacency.push(Vec::new());
        self.points.len() - 1
    }

    /// Inserts the undirected edge `{u, v}`; returns `false` if it was
    /// already present.
    ///
    /// # Panics
    /// Panics on out-of-bounds endpoints or when `u == v`.
    pub fn add_edge(&mut self, u: usize, v: usize) -> bool {
        assert!(u != v, "self-loop {u} is not a wireless link");
        assert!(
            u < self.points.len() && v < self.points.len(),
            "edge ({u}, {v}) out of bounds for {} nodes",
            self.points.len()
        );
        match self.adjacency[u].binary_search(&v) {
            Ok(_) => false,
            Err(iu) => {
                self.adjacency[u].insert(iu, v);
                let iv = self.adjacency[v].binary_search(&u).unwrap_err();
                self.adjacency[v].insert(iv, u);
                self.edge_count += 1;
                true
            }
        }
    }

    /// Removes the undirected edge `{u, v}`; returns `false` if it was
    /// absent.
    ///
    /// # Panics
    /// Panics on out-of-bounds endpoints.
    pub fn remove_edge(&mut self, u: usize, v: usize) -> bool {
        match self.adjacency[u].binary_search(&v) {
            Err(_) => false,
            Ok(iu) => {
                self.adjacency[u].remove(iu);
                let iv = self.adjacency[v]
                    .binary_search(&u)
                    .expect("adjacency lists mirror each other");
                self.adjacency[v].remove(iv);
                self.edge_count -= 1;
                true
            }
        }
    }

    /// Euclidean length of the edge (or non-edge) `{u, v}`.
    ///
    /// # Panics
    /// Panics on out-of-bounds endpoints.
    #[inline]
    pub fn edge_length(&self, u: usize, v: usize) -> f64 {
        self.points[u].distance(self.points[v])
    }

    /// All edges as `(u, v)` pairs with `u < v`, in sorted order.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.adjacency
            .iter()
            .enumerate()
            .flat_map(|(u, nbrs)| nbrs.iter().filter(move |&&v| u < v).map(move |&v| (u, v)))
    }

    /// An edgeless copy sharing this graph's vertex set.
    pub fn same_vertices(&self) -> Graph {
        Graph::new(self.points.clone())
    }

    /// The subgraph keeping only edges whose two endpoints satisfy `keep`.
    ///
    /// The vertex set (and so the node indices) is unchanged.
    pub fn filter_edges(&self, mut keep: impl FnMut(usize, usize) -> bool) -> Graph {
        let mut g = self.same_vertices();
        for (u, v) in self.edges() {
            if keep(u, v) {
                g.add_edge(u, v);
            }
        }
        g
    }

    /// The union of this graph's edges with `other`'s (same vertex set).
    ///
    /// # Panics
    /// Panics if the two graphs have different node counts.
    pub fn union(&self, other: &Graph) -> Graph {
        assert_eq!(
            self.node_count(),
            other.node_count(),
            "graph union requires a shared vertex set"
        );
        let mut g = self.clone();
        for (u, v) in other.edges() {
            g.add_edge(u, v);
        }
        g
    }

    /// True when every node is reachable from every other.
    ///
    /// The empty graph and the single-node graph are connected.
    pub fn is_connected(&self) -> bool {
        let n = self.node_count();
        if n <= 1 {
            return true;
        }
        let mut seen = vec![false; n];
        let mut stack = vec![0];
        seen[0] = true;
        let mut count = 1;
        while let Some(u) = stack.pop() {
            for &v in self.neighbors(u) {
                if !seen[v] {
                    seen[v] = true;
                    count += 1;
                    stack.push(v);
                }
            }
        }
        count == n
    }

    /// Connected components as sorted lists of node indices, largest
    /// first (ties broken by smallest member).
    pub fn components(&self) -> Vec<Vec<usize>> {
        let n = self.node_count();
        let mut comp = vec![usize::MAX; n];
        let mut comps: Vec<Vec<usize>> = Vec::new();
        for s in 0..n {
            if comp[s] != usize::MAX {
                continue;
            }
            let id = comps.len();
            let mut members = vec![s];
            comp[s] = id;
            let mut stack = vec![s];
            while let Some(u) = stack.pop() {
                for &v in self.neighbors(u) {
                    if comp[v] == usize::MAX {
                        comp[v] = id;
                        members.push(v);
                        stack.push(v);
                    }
                }
            }
            members.sort_unstable();
            comps.push(members);
        }
        comps.sort_by(|a, b| b.len().cmp(&a.len()).then(a[0].cmp(&b[0])));
        comps
    }

    /// Total Euclidean length of all edges.
    pub fn total_edge_length(&self) -> f64 {
        self.edges().map(|(u, v)| self.edge_length(u, v)).sum()
    }

    /// Heap bytes held by this structure (points + adjacency capacity),
    /// comparable with [`crate::CsrGraph::memory_bytes`].
    pub fn memory_bytes(&self) -> usize {
        self.points.len() * std::mem::size_of::<Point>()
            + self.adjacency.capacity() * std::mem::size_of::<Vec<usize>>()
            + self
                .adjacency
                .iter()
                .map(|row| row.capacity() * std::mem::size_of::<usize>())
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square() -> Graph {
        Graph::new(vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(0.0, 1.0),
        ])
    }

    #[test]
    fn add_and_remove_edges() {
        let mut g = square();
        assert!(g.add_edge(0, 1));
        assert!(!g.add_edge(1, 0)); // duplicate, either orientation
        assert_eq!(g.edge_count(), 1);
        assert!(g.has_edge(1, 0));
        assert!(g.remove_edge(0, 1));
        assert!(!g.remove_edge(0, 1));
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loops_rejected() {
        square().add_edge(2, 2);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_rejected() {
        square().add_edge(0, 9);
    }

    #[test]
    fn neighbors_stay_sorted() {
        let mut g = square();
        g.add_edge(2, 3);
        g.add_edge(2, 0);
        g.add_edge(2, 1);
        assert_eq!(g.neighbors(2), &[0, 1, 3]);
        assert_eq!(g.degree(2), 3);
    }

    #[test]
    fn edges_iterator_is_sorted_and_unique() {
        let mut g = square();
        g.add_edge(3, 1);
        g.add_edge(0, 2);
        g.add_edge(0, 1);
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 3)]);
    }

    #[test]
    fn connectivity_and_components() {
        let mut g = square();
        assert!(!g.is_connected());
        assert_eq!(g.components().len(), 4);
        g.add_edge(0, 1);
        g.add_edge(2, 3);
        let comps = g.components();
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0], vec![0, 1]); // tie broken by smallest member
        g.add_edge(1, 2);
        assert!(g.is_connected());
        assert_eq!(g.components().len(), 1);
    }

    #[test]
    fn trivial_graphs_are_connected() {
        assert!(Graph::new(vec![]).is_connected());
        assert!(Graph::new(vec![Point::ORIGIN]).is_connected());
    }

    #[test]
    fn filter_and_union() {
        let mut g = square();
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 3);
        let sub = g.filter_edges(|u, v| u != 0 && v != 0);
        assert_eq!(sub.edge_count(), 2);
        assert_eq!(sub.node_count(), 4);
        let back = sub.union(&g);
        assert_eq!(back.edge_count(), 3);
    }

    #[test]
    fn from_sorted_edges_matches_incremental_build() {
        let pts: Vec<Point> = (0..40)
            .map(|i| Point::new((i * 7 % 40) as f64, (i * 13 % 40) as f64))
            .collect();
        // Deterministic pseudo-random edge soup with duplicates and both
        // orientations.
        let mut edges = Vec::new();
        let mut x = 0x2545_f491u64;
        for _ in 0..200 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let u = (x >> 33) as usize % 40;
            let v = (x >> 13) as usize % 40;
            if u != v {
                edges.push((u, v));
                edges.push((v, u));
            }
        }
        let bulk = Graph::from_sorted_edges(pts.clone(), edges.clone());
        let incremental = Graph::with_edges(pts, edges);
        assert_eq!(bulk, incremental);
        for v in 0..bulk.node_count() {
            assert!(bulk.neighbors(v).windows(2).all(|w| w[0] < w[1]));
        }
        assert!(bulk.memory_bytes() > 0);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn from_sorted_edges_rejects_self_loops() {
        Graph::from_sorted_edges(vec![Point::ORIGIN, Point::new(1.0, 0.0)], vec![(1, 1)]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn from_sorted_edges_rejects_out_of_bounds() {
        Graph::from_sorted_edges(vec![Point::ORIGIN], vec![(0, 3)]);
    }

    #[test]
    fn lengths() {
        let mut g = square();
        g.add_edge(0, 1);
        g.add_edge(0, 2);
        assert_eq!(g.edge_length(0, 1), 1.0);
        assert!((g.total_edge_length() - (1.0 + 2f64.sqrt())).abs() < 1e-12);
    }
}
