//! Arena-vs-BTree oracle equivalence for the distributed LDel protocols.
//!
//! The arena refactor replaced node-id-keyed `BTreeMap`/`BTreeSet`
//! protocol state with sorted-vec containers (`VecMap`/`VecSet`). The
//! modules under `oracle/` are verbatim pre-refactor copies of
//! `distributed.rs` and `distributed2.rs`; these tests pin the live
//! protocols against them — identical edge sets, triangles, Gabriel
//! edges, and per-node / per-kind message counts — on random
//! deployments.

#[path = "oracle/ldel1.rs"]
#[allow(dead_code)]
mod oracle_ldel1;
#[path = "oracle/ldel2.rs"]
#[allow(dead_code)]
mod oracle_ldel2;

use geospan_graph::gen::{uniform_points, UnitDiskBuilder};
use geospan_graph::Graph;
use geospan_topology::{distributed, distributed2};
use proptest::prelude::*;

fn deployment() -> impl Strategy<Value = (Graph, f64)> {
    (8usize..60, 25.0f64..60.0, any::<u64>()).prop_map(|(n, radius, seed)| {
        let pts = uniform_points(n, 120.0, seed);
        (UnitDiskBuilder::new(radius).build(&pts), radius)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn ldel1_matches_btree_oracle((udg, r) in deployment()) {
        let new = distributed::run_ldel(&udg, r).expect("arena protocol converges");
        let old = oracle_ldel1::run_ldel(&udg, r).expect("oracle protocol converges");
        prop_assert_eq!(
            new.ldel.graph.edges().collect::<Vec<_>>(),
            old.ldel.graph.edges().collect::<Vec<_>>()
        );
        prop_assert_eq!(new.ldel.triangles, old.ldel.triangles);
        prop_assert_eq!(new.ldel.gabriel_edges, old.ldel.gabriel_edges);
        prop_assert_eq!(new.stats, old.stats);
    }

    #[test]
    fn ldel2_matches_btree_oracle((udg, r) in deployment()) {
        let (new, new_stats) =
            distributed2::run_ldel2(&udg, r).expect("arena protocol converges");
        let (old, old_stats) =
            oracle_ldel2::run_ldel2(&udg, r).expect("oracle protocol converges");
        prop_assert_eq!(new, old);
        prop_assert_eq!(new_stats, old_stats);
    }
}
