//! Algorithms 2 & 3 of the paper as message-passing protocols.
//!
//! [`run_ldel`] executes the *Localized Delaunay Triangulation* algorithm
//! (Algorithm 2: `proposal` / `accept` / `reject` handshakes over the
//! local Delaunay triangulations) followed by the planarization
//! (Algorithm 3: 1-hop exchange of accepted triangles, local removal of
//! crossing triangles, survivor confirmation) on the deterministic
//! simulator, and returns both the constructed structure and the measured
//! per-node message counts.
//!
//! The protocol phases are:
//!
//! | phase | paper step | messages |
//! |-------|-----------|----------|
//! | 0 | Alg. 2 step 1: announce position | `Hello` |
//! | 1 | Alg. 2 steps 2–6: propose & vote on local Delaunay triangles | `Proposal`, `Accept`, `Reject` |
//! | 2 | Alg. 3 step 1: share accepted triangles & Gabriel edges | `Triangles` |
//! | 3 | Alg. 3 steps 2–3: remove crossing triangles, announce survivors | `Survivors` |
//! | 4 | Alg. 3 step 4: keep triangles surviving at all three corners | — |
//!
//! Every node sends `O(degree)` messages in total (constant on the
//! bounded-degree backbone), which the experiments of Figures 10 and 12
//! measure.

use std::collections::{BTreeMap, BTreeSet};

use geospan_geometry::{
    gabriel_test, in_circumcircle, segments_properly_cross, CirclePosition, Point, Triangulation,
};
use geospan_graph::Graph;
use geospan_sim::{
    Context, FaultPlan, FaultReport, MessageKind, MessageStats, Network, Protocol,
    QuiescenceTimeout, ReliabilityConfig,
};

use geospan_topology::ldel::LocalDelaunay;

/// Messages of the localized Delaunay protocol.
#[derive(Debug, Clone, PartialEq)]
pub enum LdelMsg {
    /// A node announcing its position to its 1-hop neighbors.
    Hello {
        /// Sender position.
        pos: Point,
    },
    /// Propose forming the 1-local Delaunay triangle `{u, v, w}`
    /// (Algorithm 2 step 4). Sent by `u`.
    Proposal {
        /// Proposing node.
        u: usize,
        /// Second triangle vertex.
        v: usize,
        /// Third triangle vertex.
        w: usize,
    },
    /// Accept a proposed triangle (Algorithm 2 step 5).
    Accept {
        /// The triangle, as an ascending index triple.
        tri: [usize; 3],
    },
    /// Reject a proposed triangle (Algorithm 2 step 5).
    Reject {
        /// The triangle, as an ascending index triple.
        tri: [usize; 3],
    },
    /// Share accepted incident triangles and Gabriel edges with vertex
    /// coordinates (Algorithm 3 step 1).
    Triangles {
        /// Accepted triangles incident on the sender, with positions.
        tris: Vec<([usize; 3], [Point; 3])>,
    },
    /// Announce the triangles that survived local crossing removal
    /// (Algorithm 3 step 3).
    Survivors {
        /// Surviving triangles incident on the sender.
        tris: Vec<[usize; 3]>,
    },
}

impl MessageKind for LdelMsg {
    fn kind(&self) -> &'static str {
        match self {
            LdelMsg::Hello { .. } => "Hello",
            LdelMsg::Proposal { .. } => "Proposal",
            LdelMsg::Accept { .. } => "Accept",
            LdelMsg::Reject { .. } => "Reject",
            LdelMsg::Triangles { .. } => "Triangles",
            LdelMsg::Survivors { .. } => "Survivors",
        }
    }
}

/// Per-node state of the localized Delaunay protocol.
#[derive(Debug)]
pub struct LdelNode {
    id: usize,
    pos: Point,
    radius: f64,
    /// Inactive nodes (isolated in the communication graph — e.g.
    /// dominatees when the protocol runs over the backbone) send nothing.
    active: bool,
    /// Positions learned from `Hello` messages (1-hop knowledge only).
    known: BTreeMap<usize, Point>,
    /// Triangles of `Del(N₁(self))`, as ascending global triples.
    local_tris: BTreeSet<[usize; 3]>,
    /// Confirmations per triangle: which *other* vertices vouched for it
    /// (by proposing it or accepting it).
    confirmations: BTreeMap<[usize; 3], BTreeSet<usize>>,
    /// Triangles rejected by some vertex.
    dead: BTreeSet<[usize; 3]>,
    /// Triples this node already responded to (proposal dedup).
    responded: BTreeSet<[usize; 3]>,
    /// Gabriel edges incident on this node.
    gabriel: Vec<(usize, usize)>,
    /// Triangles accepted after Algorithm 2 (incident on this node).
    accepted: BTreeSet<[usize; 3]>,
    /// Triangles (with coordinates) known from phase-2 exchange.
    known_tris: BTreeMap<[usize; 3], [Point; 3]>,
    /// Triangles surviving the local removal at this node.
    survived: BTreeSet<[usize; 3]>,
    /// Survivor confirmations from other vertices.
    survivor_votes: BTreeMap<[usize; 3], BTreeSet<usize>>,
    /// Final triangles after Algorithm 3 step 4.
    final_tris: BTreeSet<[usize; 3]>,
}

impl LdelNode {
    fn new(id: usize, pos: Point, radius: f64, active: bool) -> Self {
        LdelNode {
            id,
            pos,
            radius,
            active,
            known: BTreeMap::new(),
            local_tris: BTreeSet::new(),
            confirmations: BTreeMap::new(),
            dead: BTreeSet::new(),
            responded: BTreeSet::new(),
            gabriel: Vec::new(),
            accepted: BTreeSet::new(),
            known_tris: BTreeMap::new(),
            survived: BTreeSet::new(),
            survivor_votes: BTreeMap::new(),
            final_tris: BTreeSet::new(),
        }
    }

    fn position_of(&self, v: usize) -> Point {
        if v == self.id {
            self.pos
        } else {
            self.known[&v]
        }
    }

    /// Computes `Del(N₁(self))` and the incident Gabriel edges from the
    /// heard `Hello`s: the node's `O(d log d)` local computation.
    fn compute_local_structures(&mut self) {
        let mut ids: Vec<usize> = Vec::with_capacity(self.known.len() + 1);
        ids.push(self.id);
        ids.extend(self.known.keys().copied());
        ids.sort_unstable();
        // Gabriel edges incident on self: the only possible witnesses are
        // common neighbors, and every node in the diametral disk of a
        // radius-bounded edge is a neighbor of both endpoints.
        for (&v, &pv) in &self.known {
            let blocked = self.known.iter().any(|(&w, &pw)| {
                w != v && pw.distance(pv) <= self.radius && gabriel_test(self.pos, pv, pw)
            });
            if !blocked {
                let key = (self.id.min(v), self.id.max(v));
                self.gabriel.push(key);
            }
        }
        self.gabriel.sort_unstable();
        if ids.len() < 3 {
            return;
        }
        let pts: Vec<Point> = ids.iter().map(|&i| self.position_of(i)).collect();
        let Ok(tri) = Triangulation::build(&pts) else {
            // Duplicate positions among neighbors: no local triangles.
            return;
        };
        for t in tri.triangles() {
            let [a, b, c] = t.indices();
            let mut key = [ids[a], ids[b], ids[c]];
            key.sort_unstable();
            self.local_tris.insert(key);
        }
    }

    /// Proposal set: local Delaunay triangles incident on `self` with all
    /// edges within the radius and an apex angle of at least π/3
    /// (Algorithm 2 step 4 — guarantees every valid triangle is proposed
    /// by at least one of its corners while keeping proposals sparse).
    fn proposals(&self) -> Vec<[usize; 3]> {
        let mut out = Vec::new();
        for &tri in &self.local_tris {
            if !tri.contains(&self.id) || !self.edges_short(tri) {
                continue;
            }
            let others: Vec<usize> = tri.iter().copied().filter(|&x| x != self.id).collect();
            let pv = self.position_of(others[0]);
            let pw = self.position_of(others[1]);
            let a = (pv - self.pos).dot(pw - self.pos)
                / (pv.distance(self.pos) * pw.distance(self.pos));
            // angle >= 60°  <=>  cos(angle) <= 1/2. The small slack keeps
            // the "every triangle has a >= 60° corner" guarantee intact
            // under floating-point rounding (duplicate proposals are
            // deduplicated by the responders).
            if a <= 0.5 + 1e-9 {
                out.push(tri);
            }
        }
        out.sort_unstable();
        out
    }

    fn edges_short(&self, tri: [usize; 3]) -> bool {
        let p: Vec<Point> = tri.iter().map(|&x| self.position_of(x)).collect();
        p[0].distance(p[1]) <= self.radius
            && p[1].distance(p[2]) <= self.radius
            && p[0].distance(p[2]) <= self.radius
    }

    fn confirm(&mut self, tri: [usize; 3], from: usize) {
        self.confirmations.entry(tri).or_default().insert(from);
    }

    /// Triangle acceptance at the end of Algorithm 2: the triangle is in
    /// this node's local Delaunay triangulation, not rejected, and both
    /// other corners vouched for it.
    fn finalize_accepted(&mut self) {
        for (&tri, votes) in &self.confirmations {
            if !tri.contains(&self.id)
                || self.dead.contains(&tri)
                || !self.local_tris.contains(&tri)
            {
                continue;
            }
            if tri
                .iter()
                .filter(|&&x| x != self.id)
                .all(|x| votes.contains(x))
            {
                self.accepted.insert(tri);
            }
        }
    }

    /// Local crossing removal (Algorithm 3 step 2): drop an own triangle
    /// when it intersects a known triangle whose vertex lies strictly
    /// inside the own triangle's circumcircle.
    fn remove_crossing(&mut self) {
        'outer: for &tri in &self.accepted {
            let tp = self.known_tris[&tri];
            for (&other, op) in &self.known_tris {
                if other == tri {
                    continue;
                }
                if !triangles_cross_pts(&tp, op) {
                    continue;
                }
                // Boundary counts as contained, matching the centralized
                // planarizer's tie handling.
                let contains = op.iter().zip(other.iter()).any(|(&p, v)| {
                    !tri.contains(v)
                        && in_circumcircle(tp[0], tp[1], tp[2], p) != CirclePosition::Outside
                });
                if contains {
                    continue 'outer; // removed: not a survivor
                }
            }
            self.survived.insert(tri);
        }
    }

    /// Final keep rule (Algorithm 3 step 4): a triangle stays when it
    /// survived here and at both other corners.
    fn finalize_survivors(&mut self) {
        for &tri in &self.survived {
            let votes = self.survivor_votes.get(&tri);
            let ok = tri
                .iter()
                .filter(|&&x| x != self.id)
                .all(|x| votes.is_some_and(|v| v.contains(x)));
            if ok {
                self.final_tris.insert(tri);
            }
        }
    }
}

fn triangles_cross_pts(a: &[Point], b: &[Point]) -> bool {
    const E: [(usize, usize); 3] = [(0, 1), (1, 2), (0, 2)];
    E.iter().any(|&(i, j)| {
        E.iter()
            .any(|&(p, q)| segments_properly_cross(a[i], a[j], b[p], b[q]))
    })
}

impl Protocol for LdelNode {
    type Message = LdelMsg;

    fn on_phase(&mut self, ctx: &mut Context<'_, LdelMsg>, phase: usize) {
        if !self.active {
            return;
        }
        match phase {
            0 => {
                ctx.broadcast(LdelMsg::Hello { pos: self.pos });
            }
            1 => {
                self.compute_local_structures();
                for tri in self.proposals() {
                    let others: Vec<usize> =
                        tri.iter().copied().filter(|&x| x != self.id).collect();
                    // Proposing counts as vouching for the triangle.
                    ctx.broadcast(LdelMsg::Proposal {
                        u: self.id,
                        v: others[0],
                        w: others[1],
                    });
                }
            }
            2 => {
                self.finalize_accepted();
                if !self.accepted.is_empty() {
                    let tris: Vec<([usize; 3], [Point; 3])> = {
                        let mut v: Vec<_> = self
                            .accepted
                            .iter()
                            .map(|&t| {
                                (
                                    t,
                                    [
                                        self.position_of(t[0]),
                                        self.position_of(t[1]),
                                        self.position_of(t[2]),
                                    ],
                                )
                            })
                            .collect();
                        v.sort_by_key(|(t, _)| *t);
                        v
                    };
                    // Record own triangles for the removal step.
                    for (t, p) in &tris {
                        self.known_tris.insert(*t, *p);
                    }
                    ctx.broadcast(LdelMsg::Triangles { tris });
                }
            }
            3 => {
                self.remove_crossing();
                if !self.survived.is_empty() {
                    let mut tris: Vec<[usize; 3]> = self.survived.iter().copied().collect();
                    tris.sort_unstable();
                    ctx.broadcast(LdelMsg::Survivors { tris });
                }
            }
            4 => {
                self.finalize_survivors();
            }
            _ => {}
        }
    }

    fn on_message(&mut self, ctx: &mut Context<'_, LdelMsg>, from: usize, msg: &LdelMsg) {
        match msg {
            LdelMsg::Hello { pos } => {
                self.known.insert(from, *pos);
            }
            LdelMsg::Proposal { u, v, w } => {
                let mut tri = [*u, *v, *w];
                tri.sort_unstable();
                if !tri.contains(&self.id) {
                    return;
                }
                // The proposer vouches for the triangle.
                self.confirm(tri, *u);
                if self.responded.insert(tri) {
                    if self.local_tris.contains(&tri) {
                        ctx.broadcast(LdelMsg::Accept { tri });
                        self.confirm(tri, self.id);
                    } else {
                        ctx.broadcast(LdelMsg::Reject { tri });
                        self.dead.insert(tri);
                    }
                }
            }
            LdelMsg::Accept { tri } => {
                self.confirm(*tri, from);
            }
            LdelMsg::Reject { tri } => {
                self.dead.insert(*tri);
            }
            LdelMsg::Triangles { tris } => {
                for (t, p) in tris {
                    self.known_tris.insert(*t, *p);
                }
            }
            LdelMsg::Survivors { tris } => {
                for t in tris {
                    self.survivor_votes.entry(*t).or_default().insert(from);
                }
            }
        }
    }
}

/// The outcome of a distributed construction run.
#[derive(Debug, Clone)]
pub struct DistributedOutcome {
    /// The constructed structure.
    pub ldel: LocalDelaunay,
    /// Measured per-node / per-kind message counts.
    pub stats: MessageStats,
}

/// Runs Algorithms 2 & 3 on the communication graph `g` (which must be
/// distance-closed for radius `radius`) and assembles the resulting
/// planar localized Delaunay graph.
///
/// # Errors
/// Returns [`QuiescenceTimeout`] if any phase fails to converge (a
/// protocol bug, not an input condition).
pub fn run_ldel(g: &Graph, radius: f64) -> Result<DistributedOutcome, QuiescenceTimeout> {
    run_ldel_inner(g, radius, None)
}

/// Runs Algorithms 2 & 3 under asynchronous delivery (per-message delays
/// in `1..=max_delay`, deterministic in `seed`).
///
/// Like the CDS protocol, the triangulation handshake only acts on
/// stabilized facts, so the result is identical to the synchronous run.
///
/// # Errors
/// Returns [`QuiescenceTimeout`] if a phase fails to converge.
///
/// # Panics
/// Panics if `max_delay == 0`.
pub fn run_ldel_jittered(
    g: &Graph,
    radius: f64,
    max_delay: usize,
    seed: u64,
) -> Result<DistributedOutcome, QuiescenceTimeout> {
    run_ldel_inner(g, radius, Some((max_delay, seed)))
}

fn run_ldel_inner(
    g: &Graph,
    radius: f64,
    jitter: Option<(usize, u64)>,
) -> Result<DistributedOutcome, QuiescenceTimeout> {
    let mut net = Network::new(g, |id| {
        LdelNode::new(id, g.position(id), radius, g.degree(id) > 0)
    });
    let mut budget = g.node_count() + 16;
    if let Some((max_delay, seed)) = jitter {
        net = net.with_jitter(max_delay, seed);
        budget *= max_delay;
    }
    net.run_phases(5, budget)?;
    let (nodes, stats) = net.into_parts();
    Ok(assemble_ldel(g, &nodes, stats, &BTreeSet::new()))
}

/// Runs Algorithms 2 & 3 under injected faults with the link-layer
/// ack/retransmit scheme.
///
/// The handshake design degrades gracefully: a corner that missed a
/// message simply withholds its vote, so affected triangles drop out
/// instead of corrupting the structure. Crashed nodes contribute nothing
/// — their partial state and any edge or triangle touching them are
/// filtered from the assembly.
///
/// A [`FaultPlan::is_zero`] plan takes the exact [`run_ldel`] code path,
/// so outputs and message statistics are bit-identical.
///
/// # Errors
/// Returns [`QuiescenceTimeout`] if a phase fails to converge within the
/// (reliability-extended) round budget.
pub fn run_ldel_faulty(
    g: &Graph,
    radius: f64,
    plan: &FaultPlan,
    reliability: ReliabilityConfig,
) -> Result<(DistributedOutcome, FaultReport), QuiescenceTimeout> {
    if plan.is_zero() {
        return Ok((run_ldel(g, radius)?, FaultReport::default()));
    }
    let mut net = Network::new(g, |id| {
        LdelNode::new(id, g.position(id), radius, g.degree(id) > 0)
    })
    .with_faults(plan.clone())
    .with_reliability(reliability);
    let per_hop = (reliability.max_retries as usize + 2) * (reliability.ack_timeout + 1);
    net.run_phases(5, (g.node_count() + 16) * per_hop)?;
    let report = net.fault_report();
    let (nodes, stats) = net.into_parts();
    let crashed: BTreeSet<usize> = report.crashed.iter().copied().collect();
    Ok((assemble_ldel(g, &nodes, stats, &crashed), report))
}

/// Unions the per-node Gabriel edges and confirmed triangles into the
/// final structure, excluding anything touching a crashed node.
fn assemble_ldel(
    g: &Graph,
    nodes: &[LdelNode],
    stats: MessageStats,
    crashed: &BTreeSet<usize>,
) -> DistributedOutcome {
    let mut graph = g.same_vertices();
    let mut gabriel: BTreeSet<(usize, usize)> = BTreeSet::new();
    let mut triangles: BTreeSet<[usize; 3]> = BTreeSet::new();
    for node in nodes {
        if crashed.contains(&node.id) {
            continue;
        }
        for &(a, b) in &node.gabriel {
            if !crashed.contains(&a) && !crashed.contains(&b) {
                gabriel.insert((a, b));
            }
        }
        for &t in &node.final_tris {
            if t.iter().all(|v| !crashed.contains(v)) {
                triangles.insert(t);
            }
        }
    }
    for &(u, v) in &gabriel {
        graph.add_edge(u, v);
    }
    for &[a, b, c] in &triangles {
        graph.add_edge(a, b);
        graph.add_edge(b, c);
        graph.add_edge(a, c);
    }
    let mut gabriel_edges: Vec<(usize, usize)> = gabriel.into_iter().collect();
    gabriel_edges.sort_unstable();
    let mut triangles: Vec<[usize; 3]> = triangles.into_iter().collect();
    triangles.sort_unstable();
    DistributedOutcome {
        ldel: LocalDelaunay {
            graph,
            triangles,
            gabriel_edges,
        },
        stats,
    }
}
