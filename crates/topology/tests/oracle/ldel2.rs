//! The 2-localized Delaunay graph `LDel²` as a distributed protocol.
//!
//! For `k >= 2` the `k`-localized Delaunay graph is planar **without** a
//! planarization pass (Li–Calinescu–Wan) — the price is one extra round
//! of neighborhood exchange so that every node knows its 2-hop positions.
//! The paper builds on `LDel¹` + Algorithm 3 precisely to avoid that
//! extra exchange; implementing both makes the trade measurable:
//!
//! | | `LDel¹` + planarize | `LDel²` |
//! |---|---|---|
//! | knowledge | 1-hop | 2-hop |
//! | extra phases | crossing removal (2) | neighbor-table exchange (1) |
//! | planar | after removal | immediately |
//!
//! Phases: `Hello` (positions) → `NeighborTable` (2-hop knowledge) →
//! `Proposal`/`Accept`/`Reject` on triangles whose circumcircles are
//! empty of the proposer's 2-hop neighborhood → local finalization.

use std::collections::{BTreeMap, BTreeSet};

use geospan_geometry::{in_circumcircle, CirclePosition, Point};
use geospan_graph::Graph;
use geospan_sim::{
    Context, FaultPlan, FaultReport, MessageKind, MessageStats, Network, Protocol,
    QuiescenceTimeout, ReliabilityConfig,
};

use geospan_topology::ldel::LocalDelaunay;

/// Messages of the `LDel²` protocol.
#[derive(Debug, Clone, PartialEq)]
pub enum Ldel2Msg {
    /// Position announcement.
    Hello {
        /// Sender position.
        pos: Point,
    },
    /// The sender's 1-hop neighbor table (id + position), giving
    /// receivers their 2-hop knowledge.
    NeighborTable {
        /// `(neighbor id, neighbor position)` entries.
        entries: Vec<(usize, Point)>,
    },
    /// Propose the triangle `{u, v, w}`; sent by `u`.
    Proposal {
        /// The triangle, ascending.
        tri: [usize; 3],
    },
    /// Accept a proposed triangle.
    Accept {
        /// The triangle, ascending.
        tri: [usize; 3],
    },
    /// Reject a proposed triangle.
    Reject {
        /// The triangle, ascending.
        tri: [usize; 3],
    },
}

impl MessageKind for Ldel2Msg {
    fn kind(&self) -> &'static str {
        match self {
            Ldel2Msg::Hello { .. } => "Hello",
            Ldel2Msg::NeighborTable { .. } => "NeighborTable",
            Ldel2Msg::Proposal { .. } => "Proposal",
            Ldel2Msg::Accept { .. } => "Accept",
            Ldel2Msg::Reject { .. } => "Reject",
        }
    }
}

/// Per-node state of the `LDel²` protocol.
#[derive(Debug)]
pub struct Ldel2Node {
    id: usize,
    pos: Point,
    radius: f64,
    active: bool,
    /// 1-hop neighbors (from `Hello`).
    neighbors: BTreeMap<usize, Point>,
    /// 2-hop knowledge (from `NeighborTable`), including the 1-hop ring.
    known2: BTreeMap<usize, Point>,
    confirmations: BTreeMap<[usize; 3], BTreeSet<usize>>,
    dead: BTreeSet<[usize; 3]>,
    responded: BTreeSet<[usize; 3]>,
    gabriel: Vec<(usize, usize)>,
    final_tris: BTreeSet<[usize; 3]>,
}

impl Ldel2Node {
    fn position_of(&self, v: usize) -> Point {
        if v == self.id {
            self.pos
        } else {
            self.known2[&v]
        }
    }

    /// Is the circumcircle of `tri` empty of this node's 2-hop
    /// neighborhood (the `k = 2` localized Delaunay condition)?
    fn locally_empty(&self, tri: [usize; 3]) -> bool {
        let (a, b, c) = (
            self.position_of(tri[0]),
            self.position_of(tri[1]),
            self.position_of(tri[2]),
        );
        self.known2.iter().all(|(&x, &p)| {
            tri.contains(&x) || in_circumcircle(a, b, c, p) != CirclePosition::Inside
        }) && {
            // The node itself is also a witness.
            tri.contains(&self.id) || in_circumcircle(a, b, c, self.pos) != CirclePosition::Inside
        }
    }

    fn edges_short(&self, tri: [usize; 3]) -> bool {
        let p: Vec<Point> = tri.iter().map(|&x| self.position_of(x)).collect();
        p[0].distance(p[1]) <= self.radius
            && p[1].distance(p[2]) <= self.radius
            && p[0].distance(p[2]) <= self.radius
    }

    fn confirm(&mut self, tri: [usize; 3], from: usize) {
        self.confirmations.entry(tri).or_default().insert(from);
    }
}

impl Protocol for Ldel2Node {
    type Message = Ldel2Msg;

    fn on_phase(&mut self, ctx: &mut Context<'_, Ldel2Msg>, phase: usize) {
        if !self.active {
            return;
        }
        match phase {
            0 => ctx.broadcast(Ldel2Msg::Hello { pos: self.pos }),
            1 => {
                let mut entries: Vec<(usize, Point)> =
                    self.neighbors.iter().map(|(&v, &p)| (v, p)).collect();
                entries.sort_by_key(|(v, _)| *v);
                ctx.broadcast(Ldel2Msg::NeighborTable { entries });
            }
            2 => {
                // Gabriel edges (1-hop decidable) and triangle proposals.
                let nbrs: Vec<(usize, Point)> =
                    self.neighbors.iter().map(|(&v, &p)| (v, p)).collect();
                for &(v, pv) in &nbrs {
                    let blocked = nbrs.iter().any(|&(w, pw)| {
                        w != v
                            && pw.distance(pv) <= self.radius
                            && geospan_geometry::gabriel_test(self.pos, pv, pw)
                    });
                    if !blocked {
                        self.gabriel.push((self.id.min(v), self.id.max(v)));
                    }
                }
                self.gabriel.sort_unstable();
                // Propose triangles over neighbor pairs with the
                // 2-localized empty-circle property at this corner.
                for (i, &(v, pv)) in nbrs.iter().enumerate() {
                    for &(w, pw) in &nbrs[i + 1..] {
                        if pv.distance(pw) > self.radius {
                            continue;
                        }
                        let mut tri = [self.id, v, w];
                        tri.sort_unstable();
                        if geospan_geometry::orient2d(self.pos, pv, pw)
                            == geospan_geometry::Orientation::Collinear
                        {
                            continue;
                        }
                        if self.locally_empty(tri) {
                            self.confirm(tri, self.id);
                            ctx.broadcast(Ldel2Msg::Proposal { tri });
                        }
                    }
                }
            }
            3 => {
                // Finalize: a triangle stands when all three corners
                // vouched for it (proposed or accepted).
                for (&tri, votes) in &self.confirmations {
                    if !tri.contains(&self.id) || self.dead.contains(&tri) {
                        continue;
                    }
                    if tri.iter().all(|x| votes.contains(x)) {
                        self.final_tris.insert(tri);
                    }
                }
            }
            _ => {}
        }
    }

    fn on_message(&mut self, ctx: &mut Context<'_, Ldel2Msg>, from: usize, msg: &Ldel2Msg) {
        match msg {
            Ldel2Msg::Hello { pos } => {
                self.neighbors.insert(from, *pos);
                self.known2.insert(from, *pos);
            }
            Ldel2Msg::NeighborTable { entries } => {
                for &(v, p) in entries {
                    if v != self.id {
                        self.known2.insert(v, p);
                    }
                }
            }
            Ldel2Msg::Proposal { tri } => {
                if !tri.contains(&self.id) {
                    return;
                }
                self.confirm(*tri, from);
                if self.responded.insert(*tri) {
                    // Under message loss a corner's position may be
                    // unknown (missed `Hello`/`NeighborTable`); the
                    // triangle can't be vetted, so reject it — dropping a
                    // triangle is always safe, keeping one never is. In
                    // fault-free runs every corner of a proposed triangle
                    // is in the proposer's table, hence known here.
                    let knows_all = tri
                        .iter()
                        .all(|&x| x == self.id || self.known2.contains_key(&x));
                    if knows_all && self.edges_short(*tri) && self.locally_empty(*tri) {
                        self.confirm(*tri, self.id);
                        ctx.broadcast(Ldel2Msg::Accept { tri: *tri });
                    } else {
                        self.dead.insert(*tri);
                        ctx.broadcast(Ldel2Msg::Reject { tri: *tri });
                    }
                }
            }
            Ldel2Msg::Accept { tri } => {
                if tri.contains(&self.id) {
                    self.confirm(*tri, from);
                }
            }
            Ldel2Msg::Reject { tri } => {
                if tri.contains(&self.id) {
                    self.dead.insert(*tri);
                }
            }
        }
    }
}

/// Runs the `LDel²` protocol on a distance-closed communication graph.
///
/// # Errors
/// Returns [`QuiescenceTimeout`] if a phase fails to converge.
pub fn run_ldel2(
    g: &Graph,
    radius: f64,
) -> Result<(LocalDelaunay, MessageStats), QuiescenceTimeout> {
    let mut net = Network::new(g, |id| new_node(g, id, radius));
    net.run_phases(4, g.node_count() + 16)?;
    let (nodes, stats) = net.into_parts();
    Ok(assemble_ldel2(g, &nodes, stats, &BTreeSet::new()))
}

/// Runs the `LDel²` protocol under injected faults with the link-layer
/// ack/retransmit scheme.
///
/// Triangles whose corners can't be vetted (a missed `Hello` or
/// `NeighborTable`) are rejected rather than guessed at, so loss degrades
/// the triangle set instead of corrupting it. Crashed nodes and anything
/// touching them are filtered from the assembly.
///
/// A [`FaultPlan::is_zero`] plan takes the exact [`run_ldel2`] code path,
/// so outputs and message statistics are bit-identical.
///
/// # Errors
/// Returns [`QuiescenceTimeout`] if a phase fails to converge within the
/// (reliability-extended) round budget.
pub fn run_ldel2_faulty(
    g: &Graph,
    radius: f64,
    plan: &FaultPlan,
    reliability: ReliabilityConfig,
) -> Result<(LocalDelaunay, MessageStats, FaultReport), QuiescenceTimeout> {
    if plan.is_zero() {
        let (ldel, stats) = run_ldel2(g, radius)?;
        return Ok((ldel, stats, FaultReport::default()));
    }
    let mut net = Network::new(g, |id| new_node(g, id, radius))
        .with_faults(plan.clone())
        .with_reliability(reliability);
    let per_hop = (reliability.max_retries as usize + 2) * (reliability.ack_timeout + 1);
    net.run_phases(4, (g.node_count() + 16) * per_hop)?;
    let report = net.fault_report();
    let (nodes, stats) = net.into_parts();
    let crashed: BTreeSet<usize> = report.crashed.iter().copied().collect();
    let (ldel, stats) = assemble_ldel2(g, &nodes, stats, &crashed);
    Ok((ldel, stats, report))
}

fn new_node(g: &Graph, id: usize, radius: f64) -> Ldel2Node {
    Ldel2Node {
        id,
        pos: g.position(id),
        radius,
        active: g.degree(id) > 0,
        neighbors: BTreeMap::new(),
        known2: BTreeMap::new(),
        confirmations: BTreeMap::new(),
        dead: BTreeSet::new(),
        responded: BTreeSet::new(),
        gabriel: Vec::new(),
        final_tris: BTreeSet::new(),
    }
}

fn assemble_ldel2(
    g: &Graph,
    nodes: &[Ldel2Node],
    stats: MessageStats,
    crashed: &BTreeSet<usize>,
) -> (LocalDelaunay, MessageStats) {
    let mut graph = g.same_vertices();
    let mut gabriel: BTreeSet<(usize, usize)> = BTreeSet::new();
    let mut triangles: BTreeSet<[usize; 3]> = BTreeSet::new();
    for node in nodes {
        if crashed.contains(&node.id) {
            continue;
        }
        for &(a, b) in &node.gabriel {
            if !crashed.contains(&a) && !crashed.contains(&b) {
                gabriel.insert((a, b));
            }
        }
        for &t in &node.final_tris {
            if t.iter().all(|v| !crashed.contains(v)) {
                triangles.insert(t);
            }
        }
    }
    for &(u, v) in &gabriel {
        graph.add_edge(u, v);
    }
    for &[a, b, c] in &triangles {
        graph.add_edge(a, b);
        graph.add_edge(b, c);
        graph.add_edge(a, c);
    }
    let mut gabriel_edges: Vec<(usize, usize)> = gabriel.into_iter().collect();
    gabriel_edges.sort_unstable();
    let mut triangles: Vec<[usize; 3]> = triangles.into_iter().collect();
    triangles.sort_unstable();
    #[cfg(feature = "invariant-checks")]
    assert!(
        geospan_graph::planarity::is_plane_embedding(&graph),
        "assembled LDel(2) output is not a plane embedding"
    );
    (
        LocalDelaunay {
            graph,
            triangles,
            gabriel_edges,
        },
        stats,
    )
}
