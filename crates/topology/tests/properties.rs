//! Property tests for the proximity topologies.

use geospan_graph::gen::{uniform_points, UnitDiskBuilder};
use geospan_graph::planarity::is_plane_embedding;
use geospan_graph::Graph;
use geospan_topology::{
    distributed, gabriel, ldel, relative_neighborhood, unit_delaunay, yao, yao_yao,
};
use proptest::prelude::*;

fn deployment() -> impl Strategy<Value = (Graph, f64)> {
    (8usize..50, 25.0f64..60.0, any::<u64>()).prop_map(|(n, radius, seed)| {
        let pts = uniform_points(n, 110.0, seed);
        (UnitDiskBuilder::new(radius).build(&pts), radius)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn containments((udg, _r) in deployment()) {
        let rng = relative_neighborhood(&udg);
        let gg = gabriel(&udg);
        let pl = ldel::planarized(&udg);
        let udel = unit_delaunay(&udg);
        for (u, v) in rng.edges() {
            prop_assert!(gg.has_edge(u, v), "RNG ⊄ GG");
        }
        for (u, v) in gg.edges() {
            prop_assert!(pl.graph.has_edge(u, v), "GG ⊄ PLDel");
        }
        for (u, v) in udel.edges() {
            prop_assert!(pl.graph.has_edge(u, v), "UDel ⊄ PLDel");
        }
        for (u, v) in pl.graph.edges() {
            prop_assert!(udg.has_edge(u, v), "PLDel ⊄ UDG");
        }
    }

    #[test]
    fn planarity_and_connectivity((udg, _r) in deployment()) {
        for g in [relative_neighborhood(&udg), gabriel(&udg), ldel::planarized(&udg).graph] {
            prop_assert!(is_plane_embedding(&g));
            prop_assert_eq!(g.components().len(), udg.components().len());
        }
    }

    #[test]
    fn sparse_edge_counts((udg, _r) in deployment()) {
        let n = udg.node_count();
        prop_assert!(relative_neighborhood(&udg).edge_count() <= 3 * n);
        prop_assert!(gabriel(&udg).edge_count() <= 3 * n);
        // Thickness 2 for raw LDel¹; planar bound for PLDel.
        prop_assert!(ldel::ldel1(&udg).graph.edge_count() <= 6 * n);
        prop_assert!(ldel::planarized(&udg).graph.edge_count() <= 3 * n);
    }

    #[test]
    fn yao_bounds((udg, _r) in deployment(), k in 4usize..10) {
        let y = yao(&udg, k);
        prop_assert_eq!(y.components().len(), udg.components().len());
        let yy = yao_yao(&udg, k);
        for v in 0..yy.node_count() {
            prop_assert!(yy.degree(v) <= 2 * k);
        }
        for (u, v) in yy.edges() {
            prop_assert!(y.has_edge(u, v), "YY ⊄ Yao");
        }
        for (u, v) in y.edges() {
            prop_assert!(udg.has_edge(u, v), "Yao ⊄ UDG");
        }
    }

    #[test]
    fn distributed_ldel_equals_centralized((udg, r) in deployment()) {
        let central = ldel::planarized(&udg);
        let dist = distributed::run_ldel(&udg, r).expect("protocol converges");
        prop_assert_eq!(
            dist.ldel.graph.edges().collect::<Vec<_>>(),
            central.graph.edges().collect::<Vec<_>>()
        );
        prop_assert_eq!(dist.ldel.triangles, central.triangles);
        prop_assert_eq!(dist.ldel.gabriel_edges, central.gabriel_edges);
    }

    #[test]
    fn ldel1_triangles_are_mutual((udg, _r) in deployment()) {
        // Every accepted triangle's edges exist and belong to the graph;
        // every Gabriel edge is present.
        let ld = ldel::ldel1(&udg);
        for &[a, b, c] in &ld.triangles {
            prop_assert!(udg.has_edge(a, b) && udg.has_edge(b, c) && udg.has_edge(a, c));
            prop_assert!(ld.graph.has_edge(a, b) && ld.graph.has_edge(b, c) && ld.graph.has_edge(a, c));
        }
        for &(u, v) in &ld.gabriel_edges {
            prop_assert!(ld.graph.has_edge(u, v));
        }
    }
}
