//! The relative neighborhood graph.

use geospan_graph::Graph;

/// The relative neighborhood graph of the unit disk graph.
///
/// An UDG edge `uv` survives unless some node `w` lies strictly inside the
/// *lune* of `u` and `v`: `max(|uw|, |wv|) < |uv|`. Such a witness is
/// necessarily a common UDG neighbor of `u` and `v`, so the construction
/// is 1-localized.
///
/// Exact ties (`max(|uw|, |wv|) == |uv|`) keep the edge, matching the open
/// lune of the standard definition; distances are compared as squared
/// values, which is exact for the comparison outcomes needed on typical
/// coordinates and deterministic always.
///
/// The RNG is connected whenever the UDG is, planar, and has at most `3n`
/// edges — but its length stretch factor is Θ(n) (Bose et al.), which is
/// why the paper rejects it as a routing topology.
///
/// # Example
/// ```
/// use geospan_graph::{Graph, Point};
/// use geospan_topology::relative_neighborhood;
/// // Equilateral-ish triangle: all edges stay (no witness in any lune).
/// let udg = Graph::with_edges(
///     vec![Point::new(0.,0.), Point::new(1.,0.), Point::new(0.5, 0.9)],
///     [(0,1),(1,2),(0,2)]);
/// assert_eq!(relative_neighborhood(&udg).edge_count(), 3);
/// ```
pub fn relative_neighborhood(udg: &Graph) -> Graph {
    udg.filter_edges(|u, v| {
        let pu = udg.position(u);
        let pv = udg.position(v);
        let d_uv = pu.distance_sq(pv);
        // Witnesses can only be common neighbors (anything in the lune is
        // within |uv| <= radius of both endpoints).
        !common_neighbors(udg, u, v).any(|w| {
            let pw = udg.position(w);
            pu.distance_sq(pw) < d_uv && pv.distance_sq(pw) < d_uv
        })
    })
}

/// Iterator over common neighbors of `u` and `v` (both lists are sorted).
pub(crate) fn common_neighbors<'a>(
    g: &'a Graph,
    u: usize,
    v: usize,
) -> impl Iterator<Item = usize> + 'a {
    let a = g.neighbors(u);
    let b = g.neighbors(v);
    MergeCommon { a, b, i: 0, j: 0 }
}

struct MergeCommon<'a> {
    a: &'a [usize],
    b: &'a [usize],
    i: usize,
    j: usize,
}

impl Iterator for MergeCommon<'_> {
    type Item = usize;
    fn next(&mut self) -> Option<usize> {
        while self.i < self.a.len() && self.j < self.b.len() {
            match self.a[self.i].cmp(&self.b[self.j]) {
                std::cmp::Ordering::Less => self.i += 1,
                std::cmp::Ordering::Greater => self.j += 1,
                std::cmp::Ordering::Equal => {
                    let v = self.a[self.i];
                    self.i += 1;
                    self.j += 1;
                    return Some(v);
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geospan_graph::gen::{uniform_points, UnitDiskBuilder};
    use geospan_graph::planarity::is_plane_embedding;
    use geospan_graph::Point;

    #[test]
    fn lune_witness_removes_edge() {
        // w sits in the lune of u, v.
        let udg = Graph::with_edges(
            vec![
                Point::new(0.0, 0.0),
                Point::new(2.0, 0.0),
                Point::new(1.0, 0.2),
            ],
            [(0, 1), (0, 2), (1, 2)],
        );
        let rng = relative_neighborhood(&udg);
        assert!(!rng.has_edge(0, 1));
        assert!(rng.has_edge(0, 2));
        assert!(rng.has_edge(1, 2));
    }

    #[test]
    fn boundary_tie_keeps_edge() {
        // w exactly on the lune boundary (equilateral): open lune empty.
        let h = 3f64.sqrt() / 2.0;
        let udg = Graph::with_edges(
            vec![
                Point::new(0.0, 0.0),
                Point::new(1.0, 0.0),
                Point::new(0.5, h),
            ],
            [(0, 1), (0, 2), (1, 2)],
        );
        // |uw| = |wv| = |uv| = 1 up to rounding; squared-distance compare
        // keeps all three edges unless rounding makes one strictly closer.
        let rng = relative_neighborhood(&udg);
        assert!(rng.edge_count() >= 2);
    }

    #[test]
    fn rng_preserves_connectivity_and_planarity() {
        for seed in 0..5 {
            let pts = uniform_points(70, 100.0, seed);
            let udg = UnitDiskBuilder::new(35.0).build(&pts);
            let rng = relative_neighborhood(&udg);
            assert_eq!(udg.is_connected(), rng.is_connected(), "seed {seed}");
            assert!(is_plane_embedding(&rng), "seed {seed}");
            assert!(rng.edge_count() <= udg.edge_count());
        }
    }

    #[test]
    fn common_neighbors_merge() {
        let udg = Graph::with_edges(
            [Point::new(0.0, 0.0); 5]
                .iter()
                .enumerate()
                .map(|(i, _)| Point::new(i as f64, 0.0))
                .collect(),
            [(0, 2), (0, 3), (1, 2), (1, 3), (1, 4)],
        );
        let c: Vec<usize> = common_neighbors(&udg, 0, 1).collect();
        assert_eq!(c, vec![2, 3]);
    }
}
