//! The localized Delaunay graph `LDel¹` and its planarization `PLDel`.
//!
//! Following Li, Calinescu & Wan (INFOCOM 2002), which the paper builds
//! on:
//!
//! * a triangle `△uvw` with all three edges in the unit disk graph is a
//!   **1-localized Delaunay triangle** when its circumcircle contains no
//!   vertex of `N₁(u) ∪ N₁(v) ∪ N₁(w)`; equivalently (in general
//!   position), when `△uvw` appears in all three local Delaunay
//!   triangulations `Del(N₁(u))`, `Del(N₁(v))`, `Del(N₁(w))` — which is
//!   how [`ldel1`] computes it, in `O(d log d)` per node;
//! * an UDG edge `uv` is a **Gabriel edge** when the open disk with
//!   diameter `uv` is empty of vertices;
//! * `LDel¹` consists of all Gabriel edges plus all edges of 1-localized
//!   Delaunay triangles. It has thickness 2 (at most two planar layers);
//!   [`planarized`] removes the crossings — Algorithm 3 of the paper —
//!   producing the planar spanner `PLDel` with length stretch at most
//!   `4√3/9 · π ≈ 2.42` times that of the Delaunay triangulation.
//!
//! These functions operate on any *distance-closed* embedded graph: a
//! graph that contains **every** edge between its participating nodes
//! whose length is within the transmission radius (the UDG itself, or the
//! UDG induced on the backbone nodes — `ICDS`). Under that assumption all
//! witnesses to the Gabriel/Delaunay conditions are common neighbors, and
//! the construction is genuinely 1-localized.

use geospan_geometry::{
    gabriel_test, in_circumcircle, incircle, orient2d, segments_properly_cross, CirclePosition,
    DelaunayScratch, Orientation, Point, Triangle, UniformGrid,
};
use geospan_graph::Graph;
use rayon::prelude::*;

use crate::rng::common_neighbors;

/// The output of a localized-Delaunay construction: the graph plus the
/// certifying structure (triangles and Gabriel edges).
#[derive(Debug, Clone, PartialEq)]
pub struct LocalDelaunay {
    /// The resulting topology (same vertex set as the input graph).
    pub graph: Graph,
    /// Accepted 1-localized Delaunay triangles, as ascending index
    /// triples, sorted.
    pub triangles: Vec<[usize; 3]>,
    /// Gabriel edges, `(u, v)` with `u < v`, sorted.
    pub gabriel_edges: Vec<(usize, usize)>,
}

/// Computes the (unplanarized) 1-localized Delaunay graph `LDel¹`.
///
/// `g` must be distance-closed (see the module docs); node positions must
/// be distinct.
///
/// # Panics
/// Panics if two participating nodes share a position.
///
/// # Example
/// ```
/// use geospan_graph::gen::{uniform_points, UnitDiskBuilder};
/// use geospan_topology::ldel::ldel1;
/// let pts = uniform_points(50, 100.0, 3);
/// let udg = UnitDiskBuilder::new(40.0).build(&pts);
/// let ld = ldel1(&udg);
/// // LDel¹ is a subgraph of the UDG.
/// assert!(ld.graph.edges().all(|(u, v)| udg.has_edge(u, v)));
/// ```
pub fn ldel1(g: &Graph) -> LocalDelaunay {
    let (triangles, gabriel_edges) = ldel1_parts(g);
    let graph = assemble_graph(g, &triangles, &gabriel_edges);
    LocalDelaunay {
        graph,
        triangles,
        gabriel_edges,
    }
}

/// The accepted `LDel¹` triangles (ascending triples, sorted) and Gabriel
/// edges of `g`, without assembling the result graph — [`planarized`]
/// discards triangles before ever needing one.
fn ldel1_parts(g: &Graph) -> (Vec<[usize; 3]>, Vec<(usize, usize)>) {
    let n = g.node_count();
    assert_distinct_positions(g);

    // Per node u, the triangles of Del(N1(u) ∪ {u}) *incident to u*, as
    // sorted global index triples. A triangle △abc is a 1-localized
    // Delaunay triangle exactly when all three vertices emit it:
    // membership of the key [a,b,c] in node x's local triangulation is
    // always witnessed by a triangle incident to x (the key contains x),
    // and mutual emission implies every side is a graph edge (b, c ∈
    // N1(a) whenever a emits). So the three-way membership + edge test
    // of the definition reduces to "global multiplicity == 3", computed
    // by one sort over ~6 emitted keys per node instead of per-node key
    // sorting plus binary searches into neighbors' full key lists.
    //
    // Each node's triangulation is independent — the paper's
    // `O(d log d)`-work-per-node locality — so the node range is split
    // into one contiguous chunk per worker (deterministic regardless of
    // thread count), each worker reusing one Bowyer–Watson scratch and
    // one id/point/triangle buffer set across its nodes.
    let workers = rayon::current_num_threads().max(1);
    let chunk = n.div_ceil(workers).max(1);
    let starts: Vec<usize> = (0..n.div_ceil(chunk)).map(|w| w * chunk).collect();
    // Per-chunk output: packed triangle keys + Gabriel candidate half-edges.
    type ChunkEmission = (Vec<u128>, Vec<(usize, usize)>);
    let emitted: Vec<ChunkEmission> = starts
        .into_par_iter()
        .map(|lo| {
            let hi = (lo + chunk).min(n);
            let mut scratch = DelaunayScratch::new();
            let mut ids: Vec<usize> = Vec::new();
            let mut pts: Vec<Point> = Vec::new();
            let mut tris: Vec<Triangle> = Vec::new();
            let mut out: Vec<u128> = Vec::new();
            // Gabriel candidate half-edges (see gabriel_from_candidates).
            let mut cand: Vec<(usize, usize)> = Vec::new();
            let mut local_edges: Vec<(usize, usize)> = Vec::new();
            for u in lo..hi {
                if g.degree(u) < 2 {
                    // Degenerate neighborhood: every incident edge is a
                    // Gabriel candidate, emitted twice so the two-sided
                    // count rule below cannot drop it.
                    for &v in g.neighbors(u) {
                        let e = if u < v { (u, v) } else { (v, u) };
                        cand.push(e);
                        cand.push(e);
                    }
                    continue;
                }
                ids.clear();
                ids.push(u);
                ids.extend_from_slice(g.neighbors(u));
                pts.clear();
                pts.extend(ids.iter().map(|&i| g.position(i)));
                scratch.triangles_into_assuming_distinct(&pts, &mut tris);
                if tris.is_empty() {
                    // Entirely collinear neighborhood: the triangulation
                    // carries no triangles, so fall back to candidate
                    // status for every incident edge (double emission,
                    // as above).
                    for &v in g.neighbors(u) {
                        let e = if u < v { (u, v) } else { (v, u) };
                        cand.push(e);
                        cand.push(e);
                    }
                    continue;
                }
                local_edges.clear();
                for t in &tris {
                    let [a, b, c] = t.indices();
                    // u is local index 0.
                    if a == 0 || b == 0 || c == 0 {
                        let mut key = [ids[a], ids[b], ids[c]];
                        key.sort_unstable();
                        out.push(pack_key(key));
                        // The two triangle sides incident to u are local
                        // Delaunay edges of u: Gabriel candidates.
                        let (x, y) = if a == 0 {
                            (ids[b], ids[c])
                        } else if b == 0 {
                            (ids[a], ids[c])
                        } else {
                            (ids[a], ids[b])
                        };
                        local_edges.push(if u < x { (u, x) } else { (x, u) });
                        local_edges.push(if u < y { (u, y) } else { (y, u) });
                    }
                }
                // An edge sits in up to two incident triangles; dedup so
                // each endpoint contributes at most one emission.
                local_edges.sort_unstable();
                local_edges.dedup();
                cand.extend_from_slice(&local_edges);
            }
            (out, cand)
        })
        .collect();
    let mut keys: Vec<u128> = Vec::new();
    let mut cand: Vec<(usize, usize)> = Vec::new();
    for (k, c) in emitted {
        keys.extend_from_slice(&k);
        cand.extend_from_slice(&c);
    }
    keys.sort_unstable();

    // Accept keys emitted by all three vertices (each vertex emits a
    // given key at most once, so runs have length ≤ 3). `keys` is
    // sorted, and the packing is order-preserving, so the accepted list
    // comes out sorted.
    let mut triangles: Vec<[usize; 3]> = Vec::new();
    let mut i = 0;
    while i < keys.len() {
        let mut j = i + 1;
        while j < keys.len() && keys[j] == keys[i] {
            j += 1;
        }
        if j - i == 3 {
            triangles.push(unpack_key(keys[i]));
        }
        i = j;
    }
    debug_assert!(triangles.is_sorted());

    (triangles, gabriel_from_candidates(g, cand))
}

/// Filters Gabriel candidate half-edges down to the actual Gabriel edges.
///
/// Correctness of the candidate restriction: on a distance-closed graph
/// every blocker of an edge `uv` lies within the transmission radius of
/// both endpoints, so `uv` is Gabriel iff its diameter disk is empty of
/// `N₁(u)` (equivalently `N₁(v)`) — and then `uv` is a Gabriel edge, hence
/// a Delaunay edge, of *both* local triangulations. Every Delaunay edge
/// incident to `u` lies in a triangle incident to `u`, so non-degenerate
/// nodes emit all their Gabriel edges via `ldel1_parts`' incident
/// triangles; degenerate (collinear or degree < 2) neighborhoods emit all
/// incident edges twice instead. An edge emitted by fewer than two
/// one-sided passes is therefore provably non-Gabriel and is never
/// tested, which cuts the per-edge common-neighbor scans to the local
/// Delaunay edge set instead of the whole graph.
///
/// Produces exactly the sorted edge list the full per-edge scan would.
fn gabriel_from_candidates(g: &Graph, mut cand: Vec<(usize, usize)>) -> Vec<(usize, usize)> {
    cand.sort_unstable();
    let mut edges: Vec<(usize, usize)> = Vec::new();
    let mut i = 0;
    while i < cand.len() {
        let mut j = i + 1;
        while j < cand.len() && cand[j] == cand[i] {
            j += 1;
        }
        if j - i >= 2 {
            edges.push(cand[i]);
        }
        i = j;
    }
    let keep: Vec<bool> = edges
        .par_iter()
        .map(|&(u, v)| {
            let pu = g.position(u);
            let pv = g.position(v);
            !common_neighbors(g, u, v).any(|w| gabriel_test(pu, pv, g.position(w)))
        })
        .collect();
    edges
        .into_iter()
        .zip(keep)
        .filter_map(|(e, k)| k.then_some(e))
        .collect()
}

/// Packs an ascending index triple into one integer whose natural order
/// matches the lexicographic triple order, so the global acceptance sort
/// compares single `u128`s instead of `[usize; 3]`s element by element.
/// Node ids are bounded by the `u32` arena id space.
#[inline]
fn pack_key([a, b, c]: [usize; 3]) -> u128 {
    debug_assert!(c <= u32::MAX as usize);
    ((a as u128) << 64) | ((b as u128) << 32) | (c as u128)
}

/// Inverse of [`pack_key`].
#[inline]
fn unpack_key(k: u128) -> [usize; 3] {
    [
        (k >> 64) as usize,
        ((k >> 32) & 0xFFFF_FFFF) as usize,
        (k & 0xFFFF_FFFF) as usize,
    ]
}

/// Builds the result graph from triangle sides plus Gabriel edges in one
/// bulk pass (no per-edge sorted inserts).
fn assemble_graph(g: &Graph, triangles: &[[usize; 3]], gabriel_edges: &[(usize, usize)]) -> Graph {
    let mut edges: Vec<(usize, usize)> =
        Vec::with_capacity(gabriel_edges.len() + 3 * triangles.len());
    edges.extend_from_slice(gabriel_edges);
    for &[a, b, c] in triangles {
        edges.push((a, b));
        edges.push((b, c));
        edges.push((a, c));
    }
    Graph::from_sorted_edges(g.points().to_vec(), edges)
}

/// Panics unless all node positions are pairwise distinct (the local
/// triangulations assume it; checking once globally is `O(n log n)`
/// instead of `O(deg²)` per node).
fn assert_distinct_positions(g: &Graph) {
    let mut bits: Vec<(u64, u64)> = g
        .points()
        .iter()
        .map(|p| {
            assert!(p.is_finite(), "node positions must be finite");
            (p.x.to_bits(), p.y.to_bits())
        })
        .collect();
    bits.sort_unstable();
    assert!(
        bits.windows(2).all(|w| w[0] != w[1]),
        "distinct node positions required"
    );
}

/// The planarized localized Delaunay graph `PLDel` (Algorithm 3 of the
/// paper, centralized reference implementation).
///
/// Starting from [`ldel1`], a triangle is discarded when it intersects
/// another accepted triangle **and** its circumcircle contains a vertex of
/// that other triangle; the Gabriel edges and the edges of the surviving
/// triangles form a plane graph.
///
/// # Panics
/// Panics if two participating nodes share a position.
pub fn planarized(g: &Graph) -> LocalDelaunay {
    let (triangles, gabriel_edges) = ldel1_parts(g);
    planarize_parts(g, triangles, gabriel_edges)
}

/// Planarizes an already-computed `LDel¹` (useful when the caller needs
/// both the raw and the planar structure).
pub fn planarize(g: &Graph, raw: LocalDelaunay) -> LocalDelaunay {
    planarize_parts(g, raw.triangles, raw.gabriel_edges)
}

fn planarize_parts(
    g: &Graph,
    tris: Vec<[usize; 3]>,
    gabriel_edges: Vec<(usize, usize)>,
) -> LocalDelaunay {
    let m = tris.len();

    // Vertex positions fetched once per triangle (the pair sweep below
    // revisits each triangle many times), plus a CCW-oriented copy so the
    // circumcircle test is a single `incircle` call instead of re-deriving
    // the orientation pair by pair.
    let tpts: Vec<[Point; 3]> = tris
        .iter()
        .map(|t| [g.position(t[0]), g.position(t[1]), g.position(t[2])])
        .collect();
    let ccw: Vec<[Point; 3]> = tpts
        .iter()
        .map(|&[a, b, c]| match orient2d(a, b, c) {
            Orientation::CounterClockwise => [a, b, c],
            Orientation::Clockwise => [a, c, b],
            // geospan-analyze: allow(D11, accepted triangles passed the exact in-circle test which rejects degenerates)
            Orientation::Collinear => unreachable!("accepted Delaunay triangle is degenerate"),
        })
        .collect();

    // Per-edge bounding boxes (edges (0,1), (1,2), (0,2)): a proper
    // crossing implies overlapping closed boxes, so most of the 9 exact
    // segment tests per candidate pair are rejected by four comparisons.
    let eboxes: Vec<[EdgeBox; 3]> = tpts
        .iter()
        .map(|&[p0, p1, p2]| [edge_box(p0, p1), edge_box(p1, p2), edge_box(p0, p2)])
        .collect();

    // Every LDel¹ triangle has sides within the transmission radius, so a
    // uniform grid over the triangle bounding boxes (cell ≈ that radius,
    // derived from the largest box) yields each potentially-crossing pair
    // exactly once, in near-linear total time.
    let boxes: Vec<(Point, Point)> = tpts
        .iter()
        .map(|&[p0, p1, p2]| {
            (
                Point::new(p0.x.min(p1.x).min(p2.x), p0.y.min(p1.y).min(p2.y)),
                Point::new(p0.x.max(p1.x).max(p2.x), p0.y.max(p1.y).max(p2.y)),
            )
        })
        .collect();

    // Stream the candidate pairs straight into the removal flags: the
    // removal condition is a monotone OR over pairs, so visit order
    // cannot affect the outcome, and skipping the geometry once both
    // flags are set (or when the boxes don't even intersect — a proper
    // crossing implies overlapping bounding boxes) is output-preserving.
    // Streaming keeps the planarize sweep allocation-free per pair where
    // materializing + sorting the pair list dominated the old running
    // time at scale.
    let mut removed = vec![false; m];
    UniformGrid::from_boxes(&boxes, None).for_each_candidate_pair(|i, j| {
        if removed[i] && removed[j] {
            return;
        }
        let (ilo, ihi) = boxes[i];
        let (jlo, jhi) = boxes[j];
        if ilo.x > jhi.x || jlo.x > ihi.x || ilo.y > jhi.y || jlo.y > ihi.y {
            return;
        }
        if triangles_cross(&tpts[i], &tpts[j], &eboxes[i], &eboxes[j]) {
            if !removed[i] && circum_contains_any(&ccw[i], tris[i], tris[j], &tpts[j]) {
                removed[i] = true;
            }
            if !removed[j] && circum_contains_any(&ccw[j], tris[j], tris[i], &tpts[i]) {
                removed[j] = true;
            }
        }
    });

    let triangles: Vec<[usize; 3]> = tris
        .iter()
        .zip(&removed)
        .filter(|(_, &r)| !r)
        .map(|(&t, _)| t)
        .collect();
    let graph = assemble_graph(g, &triangles, &gabriel_edges);
    #[cfg(feature = "invariant-checks")]
    assert!(
        geospan_graph::planarity::is_plane_embedding(&graph),
        "PLDel output is not a plane embedding"
    );
    LocalDelaunay {
        graph,
        triangles,
        gabriel_edges,
    }
}

/// The `k`-localized Delaunay graph by direct definition: Gabriel edges
/// plus triangles with mutually adjacent vertices whose circumcircle is
/// empty of `N_k(u) ∪ N_k(v) ∪ N_k(w)`.
///
/// This is the reference oracle for tests (`LDel^k` is planar for
/// `k >= 2`); it enumerates all UDG triangles and costs `O(n · Δ³)` — use
/// [`ldel1`]/[`planarized`] for real workloads.
///
/// # Panics
/// Panics if `k == 0`.
pub fn ldel_k(g: &Graph, k: usize) -> LocalDelaunay {
    assert!(k >= 1, "LDel^k needs k >= 1");
    let n = g.node_count();
    // k-hop neighborhoods.
    let hoods: Vec<Vec<usize>> = (0..n).map(|u| k_hop_neighborhood(g, u, k)).collect();

    let mut triangles = Vec::new();
    for u in 0..n {
        let nu = g.neighbors(u);
        for (i, &v) in nu.iter().enumerate() {
            if v < u {
                continue;
            }
            for &w in &nu[i + 1..] {
                if w < u || !g.has_edge(v, w) {
                    continue;
                }
                // Union of the three k-neighborhoods.
                let mut witnesses: Vec<usize> = hoods[u]
                    .iter()
                    .chain(&hoods[v])
                    .chain(&hoods[w])
                    .copied()
                    .collect();
                witnesses.sort_unstable();
                witnesses.dedup();
                let (pu, pv, pw) = (g.position(u), g.position(v), g.position(w));
                let empty = witnesses.iter().all(|&x| {
                    x == u
                        || x == v
                        || x == w
                        || in_circumcircle(pu, pv, pw, g.position(x)) != CirclePosition::Inside
                });
                if empty {
                    triangles.push([u, v, w]);
                }
            }
        }
    }
    triangles.sort_unstable();

    let gabriel_edges = gabriel_edge_list(g);
    let graph = assemble_graph(g, &triangles, &gabriel_edges);
    LocalDelaunay {
        graph,
        triangles,
        gabriel_edges,
    }
}

/// All Gabriel edges of a distance-closed graph, `(u, v)` with `u < v`.
///
/// The per-edge emptiness test only reads shared state, so the edges are
/// tested in parallel; the keep-mask preserves the sorted edge order.
fn gabriel_edge_list(g: &Graph) -> Vec<(usize, usize)> {
    let edges: Vec<(usize, usize)> = g.edges().collect();
    let keep: Vec<bool> = edges
        .par_iter()
        .map(|&(u, v)| {
            let pu = g.position(u);
            let pv = g.position(v);
            !common_neighbors(g, u, v).any(|w| gabriel_test(pu, pv, g.position(w)))
        })
        .collect();
    edges
        .into_iter()
        .zip(keep)
        .filter_map(|(e, k)| k.then_some(e))
        .collect()
}

/// Closed bounding box of a segment: `(min x, max x, min y, max y)`.
type EdgeBox = (f64, f64, f64, f64);

#[inline]
fn edge_box(a: Point, b: Point) -> EdgeBox {
    (a.x.min(b.x), a.x.max(b.x), a.y.min(b.y), a.y.max(b.y))
}

/// Do two triangles (given by cached vertex positions and per-edge
/// bounding boxes) properly cross (some edge of one crosses some edge of
/// the other)?
fn triangles_cross(t1: &[Point; 3], t2: &[Point; 3], b1: &[EdgeBox; 3], b2: &[EdgeBox; 3]) -> bool {
    const E: [(usize, usize); 3] = [(0, 1), (1, 2), (0, 2)];
    for (ei, &(i, j)) in E.iter().enumerate() {
        let (ix0, ix1, iy0, iy1) = b1[ei];
        for (ej, &(p, q)) in E.iter().enumerate() {
            let (jx0, jx1, jy0, jy1) = b2[ej];
            // A proper crossing is a common point of both closed
            // segments, so disjoint boxes cannot cross.
            if ix0 > jx1 || jx0 > ix1 || iy0 > jy1 || jy0 > iy1 {
                continue;
            }
            if segments_properly_cross(t1[i], t1[j], t2[p], t2[q]) {
                return true;
            }
        }
    }
    false
}

/// Is any vertex of `other` inside or on the circumcircle of the triangle
/// whose CCW-oriented positions are `ccw_t` (vertex ids `t`)?
///
/// Boundary points count as contained so that exactly-cocircular crossing
/// pairs (possible on degenerate deployments such as perfect grids)
/// remove each other and the planarity guarantee survives ties.
fn circum_contains_any(
    ccw_t: &[Point; 3],
    t: [usize; 3],
    other: [usize; 3],
    other_pts: &[Point; 3],
) -> bool {
    (0..3).any(|k| {
        !t.contains(&other[k])
            && incircle(ccw_t[0], ccw_t[1], ccw_t[2], other_pts[k]) != CirclePosition::Outside
    })
}

/// Nodes within `k` hops of `u`, including `u`.
fn k_hop_neighborhood(g: &Graph, u: usize, k: usize) -> Vec<usize> {
    let mut dist = vec![usize::MAX; g.node_count()];
    dist[u] = 0;
    let mut frontier = vec![u];
    let mut all = vec![u];
    for d in 1..=k {
        let mut next = Vec::new();
        for &x in &frontier {
            for &y in g.neighbors(x) {
                if dist[y] == usize::MAX {
                    dist[y] = d;
                    next.push(y);
                    all.push(y);
                }
            }
        }
        frontier = next;
    }
    all.sort_unstable();
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{gabriel, unit_delaunay};
    use geospan_graph::gen::{connected_unit_disk, uniform_points, UnitDiskBuilder};
    use geospan_graph::planarity::{crossing_count, is_plane_embedding};
    use geospan_graph::stretch::{stretch_factors, StretchOptions};

    fn udg(seed: u64) -> Graph {
        let pts = uniform_points(70, 100.0, seed);
        UnitDiskBuilder::new(35.0).build(&pts)
    }

    #[test]
    fn gabriel_subset_of_ldel1() {
        for seed in 0..4 {
            let g = udg(seed);
            let gg = gabriel(&g);
            let ld = ldel1(&g);
            for (u, v) in gg.edges() {
                assert!(ld.graph.has_edge(u, v), "seed {seed}: GG edge ({u},{v})");
            }
        }
    }

    #[test]
    fn ldel1_subgraph_of_udg() {
        for seed in 0..4 {
            let g = udg(seed + 4);
            let ld = ldel1(&g);
            for (u, v) in ld.graph.edges() {
                assert!(g.has_edge(u, v));
            }
            // And each accepted triangle has all edges in the result.
            for &[a, b, c] in &ld.triangles {
                assert!(ld.graph.has_edge(a, b));
                assert!(ld.graph.has_edge(b, c));
                assert!(ld.graph.has_edge(a, c));
            }
        }
    }

    #[test]
    fn planarized_is_plane_and_connected() {
        for seed in 0..6 {
            let (_pts, g, _s) = connected_unit_disk(60, 100.0, 35.0, seed * 100);
            let pl = planarized(&g);
            assert!(
                is_plane_embedding(&pl.graph),
                "seed {seed}: {} crossings",
                crossing_count(&pl.graph)
            );
            assert!(pl.graph.is_connected(), "seed {seed}");
        }
    }

    #[test]
    fn planarized_contains_unit_delaunay() {
        // PLDel ⊇ UDel is the key containment behind the spanner proof.
        for seed in 0..4 {
            let (_pts, g, _s) = connected_unit_disk(50, 100.0, 35.0, seed * 7 + 1);
            let udel = unit_delaunay(&g);
            let pl = planarized(&g);
            for (u, v) in udel.edges() {
                assert!(
                    pl.graph.has_edge(u, v),
                    "seed {seed}: UDel edge ({u},{v}) missing from PLDel"
                );
            }
        }
    }

    #[test]
    fn planarized_length_stretch_is_small() {
        let (_pts, g, _s) = connected_unit_disk(80, 100.0, 30.0, 12);
        let pl = planarized(&g);
        let r = stretch_factors(&g, &pl.graph, StretchOptions::default());
        assert_eq!(r.disconnected_pairs, 0);
        // Theory: <= 2.42 relative to UDel; empirically well under 2.5
        // relative to the UDG itself on random instances.
        assert!(r.length_max < 2.5, "length stretch {}", r.length_max);
    }

    #[test]
    fn ldel2_is_planar_without_planarization() {
        // LDel^k is planar for k >= 2 (Li-Calinescu-Wan theorem).
        for seed in 0..3 {
            let (_pts, g, _s) = connected_unit_disk(40, 100.0, 35.0, seed * 13 + 5);
            let ld2 = ldel_k(&g, 2);
            assert!(is_plane_embedding(&ld2.graph), "seed {seed}");
        }
    }

    #[test]
    fn ldel1_by_definition_matches_local_triangulation_route() {
        // The membership-based fast path equals the direct definition.
        for seed in 0..3 {
            let (_pts, g, _s) = connected_unit_disk(35, 100.0, 40.0, seed * 31 + 2);
            let fast = ldel1(&g);
            let slow = ldel_k(&g, 1);
            assert_eq!(fast.triangles, slow.triangles, "seed {seed}");
            assert_eq!(fast.gabriel_edges, slow.gabriel_edges);
            let fe: Vec<_> = fast.graph.edges().collect();
            let se: Vec<_> = slow.graph.edges().collect();
            assert_eq!(fe, se, "seed {seed}");
        }
    }

    #[test]
    fn planarization_only_removes_triangles() {
        let g = udg(9);
        let raw = ldel1(&g);
        let pl = planarize(&g, raw.clone());
        assert!(pl.triangles.len() <= raw.triangles.len());
        for t in &pl.triangles {
            assert!(raw.triangles.contains(t));
        }
        assert_eq!(pl.gabriel_edges, raw.gabriel_edges);
    }

    #[test]
    fn degenerate_inputs() {
        // Two nodes: a single Gabriel edge, no triangles.
        let g = UnitDiskBuilder::new(2.0).build(&[
            geospan_graph::Point::new(0.0, 0.0),
            geospan_graph::Point::new(1.0, 0.0),
        ]);
        let ld = planarized(&g);
        assert_eq!(ld.graph.edge_count(), 1);
        assert!(ld.triangles.is_empty());
        // Empty graph.
        let g = Graph::new(vec![]);
        let ld = planarized(&g);
        assert_eq!(ld.graph.edge_count(), 0);
    }
}
