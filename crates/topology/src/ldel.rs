//! The localized Delaunay graph `LDel¹` and its planarization `PLDel`.
//!
//! Following Li, Calinescu & Wan (INFOCOM 2002), which the paper builds
//! on:
//!
//! * a triangle `△uvw` with all three edges in the unit disk graph is a
//!   **1-localized Delaunay triangle** when its circumcircle contains no
//!   vertex of `N₁(u) ∪ N₁(v) ∪ N₁(w)`; equivalently (in general
//!   position), when `△uvw` appears in all three local Delaunay
//!   triangulations `Del(N₁(u))`, `Del(N₁(v))`, `Del(N₁(w))` — which is
//!   how [`ldel1`] computes it, in `O(d log d)` per node;
//! * an UDG edge `uv` is a **Gabriel edge** when the open disk with
//!   diameter `uv` is empty of vertices;
//! * `LDel¹` consists of all Gabriel edges plus all edges of 1-localized
//!   Delaunay triangles. It has thickness 2 (at most two planar layers);
//!   [`planarized`] removes the crossings — Algorithm 3 of the paper —
//!   producing the planar spanner `PLDel` with length stretch at most
//!   `4√3/9 · π ≈ 2.42` times that of the Delaunay triangulation.
//!
//! These functions operate on any *distance-closed* embedded graph: a
//! graph that contains **every** edge between its participating nodes
//! whose length is within the transmission radius (the UDG itself, or the
//! UDG induced on the backbone nodes — `ICDS`). Under that assumption all
//! witnesses to the Gabriel/Delaunay conditions are common neighbors, and
//! the construction is genuinely 1-localized.

use geospan_geometry::{
    delaunay_triangles, gabriel_test, in_circumcircle, segments_properly_cross, CirclePosition,
    Point, UniformGrid,
};
use geospan_graph::Graph;
use rayon::prelude::*;

use crate::rng::common_neighbors;

/// The output of a localized-Delaunay construction: the graph plus the
/// certifying structure (triangles and Gabriel edges).
#[derive(Debug, Clone, PartialEq)]
pub struct LocalDelaunay {
    /// The resulting topology (same vertex set as the input graph).
    pub graph: Graph,
    /// Accepted 1-localized Delaunay triangles, as ascending index
    /// triples, sorted.
    pub triangles: Vec<[usize; 3]>,
    /// Gabriel edges, `(u, v)` with `u < v`, sorted.
    pub gabriel_edges: Vec<(usize, usize)>,
}

/// Computes the (unplanarized) 1-localized Delaunay graph `LDel¹`.
///
/// `g` must be distance-closed (see the module docs); node positions must
/// be distinct.
///
/// # Panics
/// Panics if two participating nodes share a position.
///
/// # Example
/// ```
/// use geospan_graph::gen::{uniform_points, UnitDiskBuilder};
/// use geospan_topology::ldel::ldel1;
/// let pts = uniform_points(50, 100.0, 3);
/// let udg = UnitDiskBuilder::new(40.0).build(&pts);
/// let ld = ldel1(&udg);
/// // LDel¹ is a subgraph of the UDG.
/// assert!(ld.graph.edges().all(|(u, v)| udg.has_edge(u, v)));
/// ```
pub fn ldel1(g: &Graph) -> LocalDelaunay {
    let n = g.node_count();
    // Local Delaunay triangulation of N1(u) (including u) per node, kept
    // as sorted global index triples for the three-way membership test.
    // Each node's triangulation is independent — the paper's
    // `O(d log d)`-work-per-node locality — so the loop is data-parallel;
    // contiguous-chunk splitting keeps the result order deterministic.
    let local_tris: Vec<Vec<[usize; 3]>> = (0..n)
        .into_par_iter()
        .map(|u| {
            if g.degree(u) < 2 {
                return Vec::new();
            }
            let mut ids: Vec<usize> = Vec::with_capacity(g.degree(u) + 1);
            ids.push(u);
            ids.extend_from_slice(g.neighbors(u));
            let pts: Vec<_> = ids.iter().map(|&i| g.position(i)).collect();
            let mut keys: Vec<[usize; 3]> = delaunay_triangles(&pts)
                .expect("distinct node positions")
                .iter()
                .map(|t| {
                    let [a, b, c] = t.indices();
                    let mut key = [ids[a], ids[b], ids[c]];
                    key.sort_unstable();
                    key
                })
                .collect();
            keys.sort_unstable();
            keys
        })
        .collect();

    // A triangle is accepted when it is a triangle of all three local
    // triangulations and all three sides are graph edges. Each triple is
    // considered once, at its least vertex, so concatenating the per-node
    // accepted lists in node order yields a globally sorted list.
    let accepted: Vec<Vec<[usize; 3]>> = (0..n)
        .into_par_iter()
        .map(|u| {
            local_tris[u]
                .iter()
                .copied()
                .filter(|&key| {
                    let [a, b, c] = key;
                    a == u
                        && g.has_edge(a, b)
                        && g.has_edge(b, c)
                        && g.has_edge(a, c)
                        && local_tris[b].binary_search(&key).is_ok()
                        && local_tris[c].binary_search(&key).is_ok()
                })
                .collect()
        })
        .collect();
    let triangles: Vec<[usize; 3]> = accepted.into_iter().flatten().collect();
    debug_assert!(triangles.is_sorted());

    let gabriel_edges = gabriel_edge_list(g);
    let mut graph = g.same_vertices();
    for &(u, v) in &gabriel_edges {
        graph.add_edge(u, v);
    }
    for &[a, b, c] in &triangles {
        graph.add_edge(a, b);
        graph.add_edge(b, c);
        graph.add_edge(a, c);
    }
    LocalDelaunay {
        graph,
        triangles,
        gabriel_edges,
    }
}

/// The planarized localized Delaunay graph `PLDel` (Algorithm 3 of the
/// paper, centralized reference implementation).
///
/// Starting from [`ldel1`], a triangle is discarded when it intersects
/// another accepted triangle **and** its circumcircle contains a vertex of
/// that other triangle; the Gabriel edges and the edges of the surviving
/// triangles form a plane graph.
///
/// # Panics
/// Panics if two participating nodes share a position.
pub fn planarized(g: &Graph) -> LocalDelaunay {
    planarize(g, ldel1(g))
}

/// Planarizes an already-computed `LDel¹` (useful when the caller needs
/// both the raw and the planar structure).
pub fn planarize(g: &Graph, raw: LocalDelaunay) -> LocalDelaunay {
    let tris = &raw.triangles;
    let m = tris.len();

    // Every LDel¹ triangle has sides within the transmission radius, so a
    // uniform grid over the triangle bounding boxes (cell ≈ that radius,
    // derived from the largest box) yields each potentially-crossing pair
    // exactly once, in near-linear total time.
    let boxes: Vec<(Point, Point)> = tris
        .iter()
        .map(|t| {
            let p0 = g.position(t[0]);
            let (mut lo, mut hi) = (p0, p0);
            for &v in &t[1..] {
                let p = g.position(v);
                lo = Point::new(lo.x.min(p.x), lo.y.min(p.y));
                hi = Point::new(hi.x.max(p.x), hi.y.max(p.y));
            }
            (lo, hi)
        })
        .collect();
    let pairs = UniformGrid::from_boxes(&boxes, None).candidate_pairs();

    // The removal test for a pair depends only on geometry, never on the
    // other removal flags, so candidate pairs can be judged in parallel
    // and the flags merged afterwards in any order.
    let flags: Vec<(bool, bool)> = pairs
        .par_iter()
        .map(|&(i, j)| {
            if triangles_cross(g, tris[i], tris[j]) {
                (
                    circum_contains_any(g, tris[i], tris[j]),
                    circum_contains_any(g, tris[j], tris[i]),
                )
            } else {
                (false, false)
            }
        })
        .collect();
    let mut removed = vec![false; m];
    for (&(i, j), &(ri, rj)) in pairs.iter().zip(&flags) {
        removed[i] |= ri;
        removed[j] |= rj;
    }

    let triangles: Vec<[usize; 3]> = tris
        .iter()
        .zip(&removed)
        .filter(|(_, &r)| !r)
        .map(|(&t, _)| t)
        .collect();
    let mut graph = g.same_vertices();
    for &(u, v) in &raw.gabriel_edges {
        graph.add_edge(u, v);
    }
    for &[a, b, c] in &triangles {
        graph.add_edge(a, b);
        graph.add_edge(b, c);
        graph.add_edge(a, c);
    }
    #[cfg(feature = "invariant-checks")]
    assert!(
        geospan_graph::planarity::is_plane_embedding(&graph),
        "PLDel output is not a plane embedding"
    );
    LocalDelaunay {
        graph,
        triangles,
        gabriel_edges: raw.gabriel_edges,
    }
}

/// The `k`-localized Delaunay graph by direct definition: Gabriel edges
/// plus triangles with mutually adjacent vertices whose circumcircle is
/// empty of `N_k(u) ∪ N_k(v) ∪ N_k(w)`.
///
/// This is the reference oracle for tests (`LDel^k` is planar for
/// `k >= 2`); it enumerates all UDG triangles and costs `O(n · Δ³)` — use
/// [`ldel1`]/[`planarized`] for real workloads.
///
/// # Panics
/// Panics if `k == 0`.
pub fn ldel_k(g: &Graph, k: usize) -> LocalDelaunay {
    assert!(k >= 1, "LDel^k needs k >= 1");
    let n = g.node_count();
    // k-hop neighborhoods.
    let hoods: Vec<Vec<usize>> = (0..n).map(|u| k_hop_neighborhood(g, u, k)).collect();

    let mut triangles = Vec::new();
    for u in 0..n {
        let nu = g.neighbors(u);
        for (i, &v) in nu.iter().enumerate() {
            if v < u {
                continue;
            }
            for &w in &nu[i + 1..] {
                if w < u || !g.has_edge(v, w) {
                    continue;
                }
                // Union of the three k-neighborhoods.
                let mut witnesses: Vec<usize> = hoods[u]
                    .iter()
                    .chain(&hoods[v])
                    .chain(&hoods[w])
                    .copied()
                    .collect();
                witnesses.sort_unstable();
                witnesses.dedup();
                let (pu, pv, pw) = (g.position(u), g.position(v), g.position(w));
                let empty = witnesses.iter().all(|&x| {
                    x == u
                        || x == v
                        || x == w
                        || in_circumcircle(pu, pv, pw, g.position(x)) != CirclePosition::Inside
                });
                if empty {
                    triangles.push([u, v, w]);
                }
            }
        }
    }
    triangles.sort_unstable();

    let gabriel_edges = gabriel_edge_list(g);
    let mut graph = g.same_vertices();
    for &(u, v) in &gabriel_edges {
        graph.add_edge(u, v);
    }
    for &[a, b, c] in &triangles {
        graph.add_edge(a, b);
        graph.add_edge(b, c);
        graph.add_edge(a, c);
    }
    LocalDelaunay {
        graph,
        triangles,
        gabriel_edges,
    }
}

/// All Gabriel edges of a distance-closed graph, `(u, v)` with `u < v`.
///
/// The per-edge emptiness test only reads shared state, so the edges are
/// tested in parallel; the keep-mask preserves the sorted edge order.
fn gabriel_edge_list(g: &Graph) -> Vec<(usize, usize)> {
    let edges: Vec<(usize, usize)> = g.edges().collect();
    let keep: Vec<bool> = edges
        .par_iter()
        .map(|&(u, v)| {
            let pu = g.position(u);
            let pv = g.position(v);
            !common_neighbors(g, u, v).any(|w| gabriel_test(pu, pv, g.position(w)))
        })
        .collect();
    edges
        .into_iter()
        .zip(keep)
        .filter_map(|(e, k)| k.then_some(e))
        .collect()
}

/// Do two triangles properly cross (some edge of one crosses some edge of
/// the other)?
fn triangles_cross(g: &Graph, t1: [usize; 3], t2: [usize; 3]) -> bool {
    const E: [(usize, usize); 3] = [(0, 1), (1, 2), (0, 2)];
    for &(i, j) in &E {
        for &(p, q) in &E {
            if segments_properly_cross(
                g.position(t1[i]),
                g.position(t1[j]),
                g.position(t2[p]),
                g.position(t2[q]),
            ) {
                return true;
            }
        }
    }
    false
}

/// Is any vertex of `other` inside or on the circumcircle of `t`?
///
/// Boundary points count as contained so that exactly-cocircular crossing
/// pairs (possible on degenerate deployments such as perfect grids)
/// remove each other and the planarity guarantee survives ties.
fn circum_contains_any(g: &Graph, t: [usize; 3], other: [usize; 3]) -> bool {
    other.iter().any(|&x| {
        !t.contains(&x)
            && in_circumcircle(
                g.position(t[0]),
                g.position(t[1]),
                g.position(t[2]),
                g.position(x),
            ) != CirclePosition::Outside
    })
}

/// Nodes within `k` hops of `u`, including `u`.
fn k_hop_neighborhood(g: &Graph, u: usize, k: usize) -> Vec<usize> {
    let mut dist = vec![usize::MAX; g.node_count()];
    dist[u] = 0;
    let mut frontier = vec![u];
    let mut all = vec![u];
    for d in 1..=k {
        let mut next = Vec::new();
        for &x in &frontier {
            for &y in g.neighbors(x) {
                if dist[y] == usize::MAX {
                    dist[y] = d;
                    next.push(y);
                    all.push(y);
                }
            }
        }
        frontier = next;
    }
    all.sort_unstable();
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{gabriel, unit_delaunay};
    use geospan_graph::gen::{connected_unit_disk, uniform_points, UnitDiskBuilder};
    use geospan_graph::planarity::{crossing_count, is_plane_embedding};
    use geospan_graph::stretch::{stretch_factors, StretchOptions};

    fn udg(seed: u64) -> Graph {
        let pts = uniform_points(70, 100.0, seed);
        UnitDiskBuilder::new(35.0).build(&pts)
    }

    #[test]
    fn gabriel_subset_of_ldel1() {
        for seed in 0..4 {
            let g = udg(seed);
            let gg = gabriel(&g);
            let ld = ldel1(&g);
            for (u, v) in gg.edges() {
                assert!(ld.graph.has_edge(u, v), "seed {seed}: GG edge ({u},{v})");
            }
        }
    }

    #[test]
    fn ldel1_subgraph_of_udg() {
        for seed in 0..4 {
            let g = udg(seed + 4);
            let ld = ldel1(&g);
            for (u, v) in ld.graph.edges() {
                assert!(g.has_edge(u, v));
            }
            // And each accepted triangle has all edges in the result.
            for &[a, b, c] in &ld.triangles {
                assert!(ld.graph.has_edge(a, b));
                assert!(ld.graph.has_edge(b, c));
                assert!(ld.graph.has_edge(a, c));
            }
        }
    }

    #[test]
    fn planarized_is_plane_and_connected() {
        for seed in 0..6 {
            let (_pts, g, _s) = connected_unit_disk(60, 100.0, 35.0, seed * 100);
            let pl = planarized(&g);
            assert!(
                is_plane_embedding(&pl.graph),
                "seed {seed}: {} crossings",
                crossing_count(&pl.graph)
            );
            assert!(pl.graph.is_connected(), "seed {seed}");
        }
    }

    #[test]
    fn planarized_contains_unit_delaunay() {
        // PLDel ⊇ UDel is the key containment behind the spanner proof.
        for seed in 0..4 {
            let (_pts, g, _s) = connected_unit_disk(50, 100.0, 35.0, seed * 7 + 1);
            let udel = unit_delaunay(&g);
            let pl = planarized(&g);
            for (u, v) in udel.edges() {
                assert!(
                    pl.graph.has_edge(u, v),
                    "seed {seed}: UDel edge ({u},{v}) missing from PLDel"
                );
            }
        }
    }

    #[test]
    fn planarized_length_stretch_is_small() {
        let (_pts, g, _s) = connected_unit_disk(80, 100.0, 30.0, 12);
        let pl = planarized(&g);
        let r = stretch_factors(&g, &pl.graph, StretchOptions::default());
        assert_eq!(r.disconnected_pairs, 0);
        // Theory: <= 2.42 relative to UDel; empirically well under 2.5
        // relative to the UDG itself on random instances.
        assert!(r.length_max < 2.5, "length stretch {}", r.length_max);
    }

    #[test]
    fn ldel2_is_planar_without_planarization() {
        // LDel^k is planar for k >= 2 (Li-Calinescu-Wan theorem).
        for seed in 0..3 {
            let (_pts, g, _s) = connected_unit_disk(40, 100.0, 35.0, seed * 13 + 5);
            let ld2 = ldel_k(&g, 2);
            assert!(is_plane_embedding(&ld2.graph), "seed {seed}");
        }
    }

    #[test]
    fn ldel1_by_definition_matches_local_triangulation_route() {
        // The membership-based fast path equals the direct definition.
        for seed in 0..3 {
            let (_pts, g, _s) = connected_unit_disk(35, 100.0, 40.0, seed * 31 + 2);
            let fast = ldel1(&g);
            let slow = ldel_k(&g, 1);
            assert_eq!(fast.triangles, slow.triangles, "seed {seed}");
            assert_eq!(fast.gabriel_edges, slow.gabriel_edges);
            let fe: Vec<_> = fast.graph.edges().collect();
            let se: Vec<_> = slow.graph.edges().collect();
            assert_eq!(fe, se, "seed {seed}");
        }
    }

    #[test]
    fn planarization_only_removes_triangles() {
        let g = udg(9);
        let raw = ldel1(&g);
        let pl = planarize(&g, raw.clone());
        assert!(pl.triangles.len() <= raw.triangles.len());
        for t in &pl.triangles {
            assert!(raw.triangles.contains(t));
        }
        assert_eq!(pl.gabriel_edges, raw.gabriel_edges);
    }

    #[test]
    fn degenerate_inputs() {
        // Two nodes: a single Gabriel edge, no triangles.
        let g = UnitDiskBuilder::new(2.0).build(&[
            geospan_graph::Point::new(0.0, 0.0),
            geospan_graph::Point::new(1.0, 0.0),
        ]);
        let ld = planarized(&g);
        assert_eq!(ld.graph.edge_count(), 1);
        assert!(ld.triangles.is_empty());
        // Empty graph.
        let g = Graph::new(vec![]);
        let ld = planarized(&g);
        assert_eq!(ld.graph.edge_count(), 0);
    }
}
