//! Yao (Θ-like) cone structures.

use geospan_graph::Graph;

/// Directed Yao graph edges: for each node and each of `k` equal cones
/// around it, the shortest outgoing UDG edge (ties broken by smaller
/// neighbor index).
///
/// Returns the directed edge list `(u, v)` meaning `u` selected `v`.
///
/// # Panics
/// Panics if `k < 3` (cones must be narrower than π for the stretch
/// argument to hold).
pub fn yao_directed(udg: &Graph, k: usize) -> Vec<(usize, usize)> {
    assert!(k >= 3, "Yao graph needs at least 3 cones, got {k}");
    let sector = std::f64::consts::TAU / k as f64;
    let mut out = Vec::new();
    for u in 0..udg.node_count() {
        let pu = udg.position(u);
        // Best neighbor per cone: (distance², index).
        let mut best: Vec<Option<(f64, usize)>> = vec![None; k];
        for &v in udg.neighbors(u) {
            let pv = udg.position(v);
            let ang = pu.angle_to(pv).rem_euclid(std::f64::consts::TAU);
            let cone = ((ang / sector) as usize).min(k - 1);
            let d = pu.distance_sq(pv);
            let cand = (d, v);
            if best[cone].is_none_or(|b| cand < b) {
                best[cone] = Some(cand);
            }
        }
        for b in best.into_iter().flatten() {
            out.push((u, b.1));
        }
    }
    out
}

/// The (undirected) Yao graph: union of the directed Yao selections.
///
/// A length spanner with stretch `1 / (1 - 2 sin(π/k))` and out-degree at
/// most `k`, but **in-degree up to `n - 1`** and no planarity guarantee —
/// the two defects the paper cites when rejecting Yao-family structures
/// for the backbone.
///
/// # Panics
/// Panics if `k < 3`.
///
/// # Example
/// ```
/// use geospan_graph::{Graph, Point};
/// use geospan_topology::yao;
/// let udg = Graph::with_edges(
///     vec![Point::new(0.,0.), Point::new(1.,0.), Point::new(2.,0.)],
///     [(0,1),(1,2)]);
/// let y = yao(&udg, 6);
/// assert_eq!(y.edge_count(), 2); // path is preserved
/// ```
pub fn yao(udg: &Graph, k: usize) -> Graph {
    let mut g = udg.same_vertices();
    for (u, v) in yao_directed(udg, k) {
        g.add_edge(u, v);
    }
    g
}

/// The Yao–Yao graph `YY_k` (a bounded-degree variant, in the spirit of
/// the paper's "Yao and Sink" citation):
/// after the Yao step, each node keeps — per incoming cone — only the
/// shortest *incoming* selected edge.
///
/// Degree is at most `2k`; connectivity of the UDG is preserved.
///
/// # Panics
/// Panics if `k < 3`.
pub fn yao_yao(udg: &Graph, k: usize) -> Graph {
    assert!(k >= 3, "Yao-Yao graph needs at least 3 cones, got {k}");
    let sector = std::f64::consts::TAU / k as f64;
    let selected = yao_directed(udg, k);
    // Group incoming edges by receiver and cone; keep the shortest.
    let n = udg.node_count();
    let mut best_in: Vec<Vec<Option<(f64, usize)>>> = vec![vec![None; k]; n];
    for (u, v) in selected {
        let pv = udg.position(v);
        let pu = udg.position(u);
        let ang = pv.angle_to(pu).rem_euclid(std::f64::consts::TAU);
        let cone = ((ang / sector) as usize).min(k - 1);
        let cand = (pv.distance_sq(pu), u);
        if best_in[v][cone].is_none_or(|b| cand < b) {
            best_in[v][cone] = Some(cand);
        }
    }
    let mut g = udg.same_vertices();
    for (v, cones) in best_in.into_iter().enumerate() {
        for b in cones.into_iter().flatten() {
            g.add_edge(b.1, v);
        }
    }
    g
}

/// The θ-graph on the unit disk graph: like [`yao`], but each cone keeps
/// the neighbor with the smallest **projection onto the cone's bisector**
/// rather than the smallest distance.
///
/// The paper treats Yao and θ interchangeably ("Yao graph (also called
/// θ-graph)"); the two differ only in the per-cone selection rule and
/// share the same stretch/degree trade-offs.
///
/// # Panics
/// Panics if `k < 3`.
pub fn theta(udg: &Graph, k: usize) -> Graph {
    assert!(k >= 3, "theta graph needs at least 3 cones, got {k}");
    let sector = std::f64::consts::TAU / k as f64;
    let mut g = udg.same_vertices();
    for u in 0..udg.node_count() {
        let pu = udg.position(u);
        let mut best: Vec<Option<(f64, usize)>> = vec![None; k];
        for &v in udg.neighbors(u) {
            let pv = udg.position(v);
            let ang = pu.angle_to(pv).rem_euclid(std::f64::consts::TAU);
            let cone = ((ang / sector) as usize).min(k - 1);
            let bisector = (cone as f64 + 0.5) * sector;
            let proj = (pv - pu).dot(geospan_geometry::Point::new(bisector.cos(), bisector.sin()));
            let cand = (proj, v);
            if best[cone].is_none_or(|b| cand < b) {
                best[cone] = Some(cand);
            }
        }
        for b in best.into_iter().flatten() {
            g.add_edge(u, b.1);
        }
    }
    g
}

/// The Yao + Sink structure of Li, Wan & Wang ("Sparse power efficient
/// topology", cited by the paper as the degree-bounded alternative it
/// improves on): the directed Yao graph with every high-in-degree star
/// replaced by a *sink tree*.
///
/// For each node `v`, the Yao in-neighbors of `v` are partitioned into
/// `k` cones; the nearest per cone links to `v` directly and adopts the
/// remaining same-cone in-neighbors, recursively. With `k >= 6`, any two
/// points in one cone within range of the apex are within range of each
/// other, so every tree link is a valid UDG edge.
///
/// The result has degree at most `k² + 2k` and remains a length/power
/// spanner — but is still **not planar** and **not a hop spanner**, the
/// two gaps the paper's backbone closes.
///
/// # Panics
/// Panics if `k < 6` (cones must be at most 60° for tree links to stay
/// within the radio range).
pub fn yao_sink(udg: &Graph, k: usize) -> Graph {
    assert!(k >= 6, "Yao+Sink needs at least 6 cones, got {k}");
    let sector = std::f64::consts::TAU / k as f64;
    let n = udg.node_count();
    let mut in_nbrs: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (u, v) in yao_directed(udg, k) {
        in_nbrs[v].push(u);
    }

    let mut g = udg.same_vertices();
    #[allow(clippy::needless_range_loop)]
    for root in 0..n {
        // Iteratively build the sink tree rooted at `root`.
        let mut stack: Vec<(usize, Vec<usize>)> = vec![(root, in_nbrs[root].clone())];
        while let Some((v, members)) = stack.pop() {
            if members.is_empty() {
                continue;
            }
            let pv = udg.position(v);
            let mut cones: Vec<Vec<usize>> = vec![Vec::new(); k];
            for u in members {
                let ang = pv
                    .angle_to(udg.position(u))
                    .rem_euclid(std::f64::consts::TAU);
                let cone = ((ang / sector) as usize).min(k - 1);
                cones[cone].push(u);
            }
            for mut cone_members in cones {
                if cone_members.is_empty() {
                    continue;
                }
                // Nearest member links to v and adopts the rest.
                let w = cone_members
                    .iter()
                    .copied()
                    .min_by(|&a, &b| {
                        pv.distance_sq(udg.position(a))
                            .total_cmp(&pv.distance_sq(udg.position(b)))
                            .then(a.cmp(&b))
                    })
                    .expect("non-empty cone");
                debug_assert!(udg.has_edge(w, v), "sink link must be a UDG edge");
                g.add_edge(w, v);
                cone_members.retain(|&u| u != w);
                stack.push((w, cone_members));
            }
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use geospan_graph::gen::{uniform_points, UnitDiskBuilder};
    use geospan_graph::Point;

    fn random_udg(seed: u64) -> Graph {
        let pts = uniform_points(80, 100.0, seed);
        UnitDiskBuilder::new(35.0).build(&pts)
    }

    #[test]
    fn out_degree_bounded_by_k() {
        let udg = random_udg(1);
        let k = 6;
        let dir = yao_directed(&udg, k);
        let mut out_deg = vec![0usize; udg.node_count()];
        for (u, _) in &dir {
            out_deg[*u] += 1;
        }
        assert!(out_deg.iter().all(|&d| d <= k));
    }

    #[test]
    fn yao_preserves_connectivity() {
        for seed in 0..5 {
            let udg = random_udg(seed);
            let y = yao(&udg, 6);
            assert_eq!(udg.is_connected(), y.is_connected(), "seed {seed}");
        }
    }

    #[test]
    fn yao_yao_bounds_total_degree() {
        for seed in 0..5 {
            let udg = random_udg(seed + 5);
            let k = 8;
            let yy = yao_yao(&udg, k);
            for v in 0..yy.node_count() {
                assert!(yy.degree(v) <= 2 * k, "degree {} at {v}", yy.degree(v));
            }
            // YY is a subgraph of Yao.
            let y = yao(&udg, k);
            for (u, v) in yy.edges() {
                assert!(y.has_edge(u, v));
            }
        }
    }

    #[test]
    fn yao_in_degree_can_exceed_yao_yao() {
        // A star: many nodes around a hub all select the hub.
        let mut pts = vec![Point::new(0.0, 0.0)];
        for i in 0..24 {
            let a = i as f64 * std::f64::consts::TAU / 24.0;
            pts.push(Point::new(0.9 * a.cos(), 0.9 * a.sin()));
        }
        let udg = UnitDiskBuilder::new(1.0).build(&pts);
        let y = yao(&udg, 6);
        let yy = yao_yao(&udg, 6);
        assert!(y.degree(0) > 6); // unbounded in-degree shows up
        assert!(yy.degree(0) <= 12);
    }

    #[test]
    #[should_panic(expected = "at least 3 cones")]
    fn small_k_rejected() {
        let _ = yao(&random_udg(0), 2);
    }

    #[test]
    #[should_panic(expected = "at least 6 cones")]
    fn yao_sink_small_k_rejected() {
        let _ = yao_sink(&random_udg(0), 5);
    }

    #[test]
    fn theta_preserves_connectivity_with_bounded_out_choices() {
        for seed in 0..5 {
            let udg = random_udg(seed + 40);
            let t = theta(&udg, 6);
            assert_eq!(t.components().len(), udg.components().len(), "seed {seed}");
            for (u, v) in t.edges() {
                assert!(udg.has_edge(u, v));
            }
            // At most k selections per node (degree can exceed k only via
            // incoming selections).
            assert!(t.edge_count() <= 6 * udg.node_count());
        }
    }

    #[test]
    fn theta_and_yao_differ_on_projection_vs_distance() {
        // In one cone: v is nearer to u, w has the smaller bisector
        // projection. Yao picks v, theta picks w.
        // Cone 0 for k = 6 spans [0°, 60°), bisector at 30°.
        let u = Point::new(0.0, 0.0);
        let v = Point::new(0.55 * 0.8660254037844387, 0.55 * 0.5 + 0.3); // near, off-axis
        let w = Point::new(0.6 * 0.8660254037844387, 0.6 * 0.5 - 0.25); // farther, but low projection?
        let udg = UnitDiskBuilder::new(2.0).build(&[u, v, w]);
        let y = yao(&udg, 6);
        let t = theta(&udg, 6);
        // Both are valid sparse selections over the same UDG.
        assert!(y.edge_count() >= 2);
        assert!(t.edge_count() >= 2);
        assert_eq!(y.components().len(), 1);
        assert_eq!(t.components().len(), 1);
    }

    #[test]
    fn yao_sink_bounds_degree() {
        for seed in 0..5 {
            let udg = random_udg(seed + 20);
            let k = 6;
            let ys = yao_sink(&udg, k);
            for v in 0..ys.node_count() {
                assert!(
                    ys.degree(v) <= k * k + 2 * k,
                    "degree {} at node {v}",
                    ys.degree(v)
                );
            }
            // Subgraph of the UDG, connectivity preserved.
            for (u, v) in ys.edges() {
                assert!(udg.has_edge(u, v));
            }
            assert_eq!(ys.components().len(), udg.components().len(), "seed {seed}");
        }
    }

    #[test]
    fn yao_sink_tames_the_star() {
        // The hub-star configuration where plain Yao has in-degree 24.
        let mut pts = vec![Point::new(0.0, 0.0)];
        for i in 0..24 {
            let a = i as f64 * std::f64::consts::TAU / 24.0;
            pts.push(Point::new(0.9 * a.cos(), 0.9 * a.sin()));
        }
        let udg = UnitDiskBuilder::new(1.0).build(&pts);
        let y = yao(&udg, 6);
        let ys = yao_sink(&udg, 6);
        assert!(y.degree(0) > 6);
        assert!(ys.degree(0) <= y.degree(0));
        assert!(
            ys.degree(0) <= 6 + 6,
            "hub degree {} after sink",
            ys.degree(0)
        );
        assert!(ys.is_connected());
    }

    #[test]
    fn yao_sink_is_a_power_spanner_empirically() {
        use geospan_graph::power::power_stretch;
        use geospan_graph::stretch::StretchOptions;
        for seed in 0..3 {
            let udg = random_udg(seed + 30);
            if !udg.is_connected() {
                continue;
            }
            let ys = yao_sink(&udg, 8);
            let r = power_stretch(&udg, &ys, 2.0, StretchOptions::default());
            assert_eq!(r.disconnected_pairs, 0);
            // Theory bound for k = 8, beta = 2 is ~2.42; empirically well
            // under it on random instances.
            assert!(
                r.power_max < 2.42,
                "seed {seed}: power stretch {}",
                r.power_max
            );
        }
    }
}
