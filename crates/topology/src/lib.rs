//! Proximity topologies for wireless ad hoc networks.
//!
//! Every structure here is a subgraph of the unit disk graph over the same
//! vertex set, computable from 1-hop (or k-hop) neighborhood information
//! only — the property that makes them usable as *localized* topology
//! control in the sense of Wang & Li (ICDCS 2002):
//!
//! * [`relative_neighborhood`] — the RNG (Toussaint); planar, sparse, but
//!   length stretch Θ(n),
//! * [`gabriel`] — the Gabriel graph; planar, length stretch Θ(√n),
//! * [`yao`] / [`yao_yao`] — cone-based structures; constant length
//!   stretch, unbounded (resp. bounded) degree, not planar,
//! * [`delaunay`] / [`unit_delaunay`] — the global Delaunay triangulation
//!   and its unit-disk restriction `UDel = Del ∩ UDG` (not locally
//!   computable; the quality yardstick),
//! * [`ldel`] — the **1-localized Delaunay graph** `LDel¹` and its
//!   planarization `PLDel` (Li, Calinescu & Wan), the planar spanner the
//!   paper erects on top of the CDS backbone,
//! * [`restricted_delaunay`] — Gao et al.'s Restricted Delaunay Graph,
//!   the construction the paper positions itself against,
//! * [`theta`] / [`yao_sink`] — further cone-based variants from the
//!   paper's related-work discussion,
//! * [`distributed`] / [`distributed2`] — Algorithms 2 & 3 of the paper
//!   (and the 2-hop `LDel²` variant) as real message-passing protocols
//!   over [`geospan_sim`], with measured communication costs.
//!
//! # Example
//!
//! ```
//! use geospan_graph::gen::connected_unit_disk;
//! use geospan_graph::planarity::is_plane_embedding;
//! use geospan_topology::{gabriel, ldel, relative_neighborhood};
//!
//! let (_pts, udg, _seed) = connected_unit_disk(60, 200.0, 60.0, 1);
//! let rng = relative_neighborhood(&udg);
//! let gg = gabriel(&udg);
//! let pldel = ldel::planarized(&udg);
//! // RNG ⊆ GG ⊆ PLDel ⊆ UDG, and all three are planar.
//! assert!(rng.edges().all(|(u, v)| gg.has_edge(u, v)));
//! assert!(gg.edges().all(|(u, v)| pldel.graph.has_edge(u, v)));
//! assert!(is_plane_embedding(&pldel.graph));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod distributed;
pub mod distributed2;
mod gabriel;
pub mod ldel;
pub mod rdg;
mod rng;
mod yao;

pub use gabriel::gabriel;
pub use rdg::restricted_delaunay;
pub use rng::relative_neighborhood;
pub use yao::{theta, yao, yao_directed, yao_sink, yao_yao};

use geospan_geometry::Triangulation;
use geospan_graph::Graph;

/// The (global) Delaunay triangulation of the node positions, as a graph
/// over the same vertex set.
///
/// Not restricted to the unit disk: edges may be arbitrarily long. This is
/// the centralized yardstick the localized structures approximate.
///
/// # Panics
/// Panics if two nodes share a position (the deployment generators never
/// produce this).
pub fn delaunay(g: &Graph) -> Graph {
    let tri = Triangulation::build(g.points()).expect("distinct node positions");
    Graph::with_edges(g.points().to_vec(), tri.edges().iter().copied())
}

/// The unit Delaunay graph `UDel = Del(V) ∩ UDG`: Delaunay edges no longer
/// than the transmission radius.
///
/// # Panics
/// Panics if two nodes share a position.
pub fn unit_delaunay(udg: &Graph) -> Graph {
    let tri = Triangulation::build(udg.points()).expect("distinct node positions");
    let mut g = udg.same_vertices();
    for &(u, v) in tri.edges() {
        if udg.has_edge(u, v) {
            g.add_edge(u, v);
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use geospan_graph::gen::{uniform_points, UnitDiskBuilder};

    #[test]
    fn udel_is_subgraph_of_both() {
        let pts = uniform_points(80, 100.0, 5);
        let udg = UnitDiskBuilder::new(30.0).build(&pts);
        let del = delaunay(&udg);
        let udel = unit_delaunay(&udg);
        for (u, v) in udel.edges() {
            assert!(del.has_edge(u, v));
            assert!(udg.has_edge(u, v));
        }
        // Every short Delaunay edge is in UDel.
        for (u, v) in del.edges() {
            if udg.has_edge(u, v) {
                assert!(udel.has_edge(u, v));
            }
        }
    }

    #[test]
    fn delaunay_of_triangle() {
        let g = UnitDiskBuilder::new(10.0).build(&[
            geospan_graph::Point::new(0.0, 0.0),
            geospan_graph::Point::new(1.0, 0.0),
            geospan_graph::Point::new(0.0, 1.0),
        ]);
        assert_eq!(delaunay(&g).edge_count(), 3);
        assert_eq!(unit_delaunay(&g).edge_count(), 3);
    }
}
