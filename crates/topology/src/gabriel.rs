//! The Gabriel graph.

use geospan_geometry::gabriel_test;
use geospan_graph::Graph;
use rayon::prelude::*;

use crate::rng::common_neighbors;

/// The Gabriel graph of the unit disk graph.
///
/// An UDG edge `uv` survives exactly when the open disk with diameter `uv`
/// contains no other node. Any node in that disk is a common UDG neighbor
/// of `u` and `v`, so only common neighbors must be examined and the
/// construction is 1-localized. The emptiness test is **exact** (see
/// [`gabriel_test`]), so planarity holds even on adversarial inputs.
///
/// Properties: planar, `RNG ⊆ GG`, contains the minimum spanning tree, but
/// length stretch factor Θ(√n) (Bose et al.) — good enough for guaranteed-
/// delivery face routing (GPSR uses it), not good enough for short routes.
///
/// # Example
/// ```
/// use geospan_graph::{Graph, Point};
/// use geospan_topology::gabriel;
/// // w inside the diametral disk of (u, v) kills the edge uv.
/// let udg = Graph::with_edges(
///     vec![Point::new(0.,0.), Point::new(2.,0.), Point::new(1.0, 0.3)],
///     [(0,1),(0,2),(1,2)]);
/// let gg = gabriel(&udg);
/// assert!(!gg.has_edge(0, 1));
/// assert!(gg.has_edge(0, 2) && gg.has_edge(1, 2));
/// ```
pub fn gabriel(udg: &Graph) -> Graph {
    // Each edge's emptiness test is independent, so the edges are tested
    // in parallel; the keep-mask preserves the sorted edge order, keeping
    // the result identical to the serial filter.
    let edges: Vec<(usize, usize)> = udg.edges().collect();
    let keep: Vec<bool> = edges
        .par_iter()
        .map(|&(u, v)| {
            let pu = udg.position(u);
            let pv = udg.position(v);
            !common_neighbors(udg, u, v).any(|w| gabriel_test(pu, pv, udg.position(w)))
        })
        .collect();
    let mut g = udg.same_vertices();
    for ((u, v), k) in edges.into_iter().zip(keep) {
        if k {
            g.add_edge(u, v);
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relative_neighborhood;
    use geospan_graph::gen::{uniform_points, UnitDiskBuilder};
    use geospan_graph::planarity::is_plane_embedding;
    use geospan_graph::Point;

    #[test]
    fn boundary_point_blocks_edge() {
        // w exactly on the diametral circle blocks the edge (closed-disk
        // convention; see `gabriel_test`), so degenerate cocircular
        // deployments can never produce two crossing Gabriel edges.
        let udg = Graph::with_edges(
            vec![
                Point::new(0.0, 0.0),
                Point::new(2.0, 0.0),
                Point::new(1.0, 1.0),
            ],
            [(0, 1), (0, 2), (1, 2)],
        );
        let gg = gabriel(&udg);
        assert!(!gg.has_edge(0, 1));
        // Connectivity survives through the blocking node.
        assert!(gg.has_edge(0, 2) && gg.has_edge(1, 2));
    }

    #[test]
    fn rng_is_subgraph_of_gabriel() {
        for seed in 0..5 {
            let pts = uniform_points(70, 100.0, seed + 10);
            let udg = UnitDiskBuilder::new(35.0).build(&pts);
            let gg = gabriel(&udg);
            let rng = relative_neighborhood(&udg);
            for (u, v) in rng.edges() {
                assert!(gg.has_edge(u, v), "RNG edge ({u},{v}) missing from GG");
            }
        }
    }

    #[test]
    fn gabriel_preserves_connectivity_and_planarity() {
        for seed in 0..5 {
            let pts = uniform_points(70, 100.0, seed + 20);
            let udg = UnitDiskBuilder::new(35.0).build(&pts);
            let gg = gabriel(&udg);
            assert_eq!(udg.is_connected(), gg.is_connected(), "seed {}", seed);
            assert!(is_plane_embedding(&gg), "seed {}", seed);
        }
    }
}
