//! The Restricted Delaunay Graph of Gao, Guibas, Hershberger, Zhang & Zhu
//! (MobiHoc 2001) — the construction the paper positions itself against.
//!
//! Gao et al. call any planar supergraph of `UDel = Del(V) ∩ UDG` a
//! *restricted Delaunay graph* and build one by mutual filtering: every
//! node computes the Delaunay triangulation of its 1-hop neighborhood and
//! proposes its incident short edges; an edge survives only if **no
//! witness who can see both endpoints rejects it** (i.e. it appears in
//! the local Delaunay triangulation of every common neighbor and of both
//! endpoints).
//!
//! This is planar and contains `UDel`, so it is a length spanner like
//! `PLDel` — but, as the paper stresses, the natural distributed
//! implementation exchanges whole neighborhood triangulations (a node's
//! messages grow with the *sum of its neighbors' degrees*), whereas the
//! LDel proposal/accept handshake keeps per-node communication constant
//! on bounded-degree graphs. We implement the centralized structure for
//! the comparison experiments.

use std::collections::{BTreeMap, BTreeSet};

use geospan_graph::collections::{VecMap, VecSet};

use geospan_geometry::Triangulation;
use geospan_graph::Graph;

use crate::rng::common_neighbors;

/// The Restricted Delaunay Graph over a distance-closed graph `g` (see
/// [`crate::ldel`] for the distance-closed requirement).
///
/// # Panics
/// Panics if two participating nodes share a position.
///
/// # Example
/// ```
/// use geospan_graph::gen::connected_unit_disk;
/// use geospan_graph::planarity::is_plane_embedding;
/// use geospan_topology::{restricted_delaunay, unit_delaunay};
///
/// let (_pts, udg, _s) = connected_unit_disk(50, 120.0, 40.0, 4);
/// let rdg = restricted_delaunay(&udg);
/// assert!(is_plane_embedding(&rdg));
/// // Contains the unit Delaunay graph.
/// let udel = unit_delaunay(&udg);
/// assert!(udel.edges().all(|(u, v)| rdg.has_edge(u, v)));
/// ```
pub fn restricted_delaunay(g: &Graph) -> Graph {
    let n = g.node_count();
    // Edge sets of each node's local Delaunay triangulation, as global
    // index pairs (u < v).
    let mut local_edges: Vec<BTreeSet<(usize, usize)>> = vec![BTreeSet::new(); n];
    #[allow(clippy::needless_range_loop)]
    for u in 0..n {
        if g.degree(u) == 0 {
            continue;
        }
        let mut ids: Vec<usize> = Vec::with_capacity(g.degree(u) + 1);
        ids.push(u);
        ids.extend_from_slice(g.neighbors(u));
        let pts: Vec<_> = ids.iter().map(|&i| g.position(i)).collect();
        let tri = Triangulation::build(&pts).expect("distinct node positions");
        for &(a, b) in tri.edges() {
            let (x, y) = (ids[a], ids[b]);
            local_edges[u].insert((x.min(y), x.max(y)));
        }
    }

    // An edge survives when both endpoints and every common neighbor
    // agree it is locally Delaunay.
    g.filter_edges(|u, v| {
        let key = (u.min(v), u.max(v));
        local_edges[u].contains(&key)
            && local_edges[v].contains(&key)
            && common_neighbors(g, u, v).all(|w| local_edges[w].contains(&key))
    })
}

/// Messages of the distributed RDG protocol.
#[derive(Debug, Clone, PartialEq)]
pub enum RdgMsg {
    /// Position announcement.
    Hello {
        /// Sender position.
        pos: geospan_geometry::Point,
    },
    /// "Edge `(x, y)` is in my local Delaunay triangulation."
    ///
    /// Unlike the LDel handshake, a node must publish its opinion about
    /// **every** edge of its local triangulation — including edges not
    /// incident on itself — because it may be the filtering witness for
    /// its neighbors. This is exactly why the per-node message count
    /// grows with the neighborhood size.
    Opinion {
        /// Edge endpoint (smaller index).
        x: usize,
        /// Edge endpoint (larger index).
        y: usize,
    },
}

impl geospan_sim::MessageKind for RdgMsg {
    fn kind(&self) -> &'static str {
        match self {
            RdgMsg::Hello { .. } => "Hello",
            RdgMsg::Opinion { .. } => "Opinion",
        }
    }
}

/// Per-node state of the distributed RDG construction.
#[derive(Debug)]
pub struct RdgNode {
    id: usize,
    pos: geospan_geometry::Point,
    radius: f64,
    /// Sorted-vec map: ascending-by-id iteration, exactly like the
    /// `BTreeMap` it replaced.
    known: VecMap<geospan_geometry::Point>,
    local_edges: BTreeSet<(usize, usize)>,
    /// Edge-pair-keyed, so the outer `BTreeMap` stays (D06 targets
    /// node-id keys); the per-edge voter sets are arenas.
    approvals: BTreeMap<(usize, usize), VecSet>,
    surviving: Vec<(usize, usize)>,
    /// Communication-graph degree; isolated nodes stay silent.
    degree: usize,
}

impl geospan_sim::Protocol for RdgNode {
    type Message = RdgMsg;

    fn on_phase(&mut self, ctx: &mut geospan_sim::Context<'_, RdgMsg>, phase: usize) {
        match phase {
            0 if self.active() => {
                ctx.broadcast(RdgMsg::Hello { pos: self.pos });
            }
            1 => {
                if !self.active() {
                    return;
                }
                // Local computation + one Opinion per local Delaunay edge.
                let mut ids: Vec<usize> = Vec::with_capacity(self.known.len() + 1);
                ids.push(self.id);
                ids.extend(self.known.keys());
                ids.sort_unstable();
                let pts: Vec<_> = ids
                    .iter()
                    .map(|&i| {
                        if i == self.id {
                            self.pos
                        } else {
                            *self.known.get(i).expect("position learned from Hello")
                        }
                    })
                    .collect();
                if let Ok(tri) = Triangulation::build(&pts) {
                    for &(a, b) in tri.edges() {
                        let (x, y) = (ids[a].min(ids[b]), ids[a].max(ids[b]));
                        self.local_edges.insert((x, y));
                        self.approvals.entry((x, y)).or_default().insert(self.id);
                        ctx.broadcast(RdgMsg::Opinion { x, y });
                    }
                }
            }
            2 => {
                // Decide survival of incident edges.
                for &(x, y) in &self.local_edges {
                    if x != self.id && y != self.id {
                        continue;
                    }
                    let other = if x == self.id { y } else { x };
                    let Some(&opos) = self.known.get(other) else {
                        continue;
                    };
                    let votes = &self.approvals[&(x, y)];
                    if !votes.contains(other) {
                        continue;
                    }
                    // Witnesses: my neighbors within range of the other
                    // endpoint (distance-closedness makes this the full
                    // common neighborhood).
                    let ok = self.known.iter().all(|(w, &wpos)| {
                        w == other || wpos.distance(opos) > self.radius || votes.contains(w)
                    });
                    if ok {
                        self.surviving.push((x, y));
                    }
                }
                self.surviving.sort_unstable();
            }
            _ => {}
        }
    }

    fn on_message(
        &mut self,
        _ctx: &mut geospan_sim::Context<'_, RdgMsg>,
        from: usize,
        msg: &RdgMsg,
    ) {
        match msg {
            RdgMsg::Hello { pos } => {
                self.known.insert(from, *pos);
            }
            RdgMsg::Opinion { x, y } => {
                self.approvals.entry((*x, *y)).or_default().insert(from);
            }
        }
    }
}

impl RdgNode {
    fn active(&self) -> bool {
        self.degree > 0
    }
}

/// Runs the distributed RDG construction, returning the structure and
/// the measured message statistics.
///
/// # Errors
/// Returns [`geospan_sim::QuiescenceTimeout`] if a phase fails to
/// converge.
pub fn run_rdg(
    g: &Graph,
    radius: f64,
) -> Result<(Graph, geospan_sim::MessageStats), geospan_sim::QuiescenceTimeout> {
    let mut net = geospan_sim::Network::new(g, |id| RdgNode {
        id,
        pos: g.position(id),
        radius,
        known: VecMap::new(),
        local_edges: BTreeSet::new(),
        approvals: BTreeMap::new(),
        surviving: Vec::new(),
        degree: g.degree(id),
    });
    net.run_phases(3, g.node_count() + 16)?;
    let (nodes, stats) = net.into_parts();
    let mut out = g.same_vertices();
    for node in &nodes {
        for &(x, y) in &node.surviving {
            out.add_edge(x, y);
        }
    }
    Ok((out, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{gabriel, ldel, unit_delaunay};
    use geospan_graph::gen::connected_unit_disk;
    use geospan_graph::planarity::is_plane_embedding;
    use geospan_graph::stretch::{stretch_factors, StretchOptions};

    #[test]
    fn rdg_is_planar_and_contains_udel() {
        for seed in 0..5 {
            let (_pts, g, _s) = connected_unit_disk(60, 120.0, 35.0, seed * 43 + 1);
            let rdg = restricted_delaunay(&g);
            assert!(is_plane_embedding(&rdg), "seed {seed}");
            let udel = unit_delaunay(&g);
            for (u, v) in udel.edges() {
                assert!(
                    rdg.has_edge(u, v),
                    "seed {seed}: UDel edge ({u},{v}) missing"
                );
            }
            assert!(rdg.is_connected(), "seed {seed}");
        }
    }

    #[test]
    fn rdg_is_a_length_spanner() {
        let (_pts, g, _s) = connected_unit_disk(70, 120.0, 35.0, 77);
        let rdg = restricted_delaunay(&g);
        let r = stretch_factors(&g, &rdg, StretchOptions::default());
        assert_eq!(r.disconnected_pairs, 0);
        assert!(r.length_max < 2.6, "length stretch {}", r.length_max);
    }

    #[test]
    fn rdg_and_pldel_are_close_cousins() {
        // Both are planar supergraphs of UDel; they typically agree on
        // most edges, and the Gabriel graph sits inside both.
        for seed in 0..3 {
            let (_pts, g, _s) = connected_unit_disk(50, 120.0, 35.0, seed * 57 + 2);
            let rdg = restricted_delaunay(&g);
            let pl = ldel::planarized(&g);
            let gg = gabriel(&g);
            for (u, v) in gg.edges() {
                assert!(rdg.has_edge(u, v), "seed {seed}: GG ⊄ RDG");
                assert!(pl.graph.has_edge(u, v), "seed {seed}: GG ⊄ PLDel");
            }
            let rdg_edges: std::collections::HashSet<_> = rdg.edges().collect();
            let pl_edges: std::collections::HashSet<_> = pl.graph.edges().collect();
            let common = rdg_edges.intersection(&pl_edges).count();
            assert!(
                common * 10 >= rdg_edges.len().max(pl_edges.len()) * 8,
                "seed {seed}: structures unexpectedly divergent"
            );
        }
    }

    #[test]
    fn degenerate_inputs() {
        let g = Graph::new(vec![]);
        assert_eq!(restricted_delaunay(&g).edge_count(), 0);
        let g = Graph::new(vec![geospan_graph::Point::new(0.0, 0.0)]);
        assert_eq!(restricted_delaunay(&g).edge_count(), 0);
    }

    #[test]
    fn distributed_rdg_matches_centralized() {
        for seed in 0..4 {
            let (_pts, g, _s) = connected_unit_disk(45, 120.0, 35.0, seed * 61 + 3);
            let central = restricted_delaunay(&g);
            let (dist, _stats) = run_rdg(&g, 35.0).expect("protocol converges");
            assert_eq!(
                dist.edges().collect::<Vec<_>>(),
                central.edges().collect::<Vec<_>>(),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn rdg_message_cost_grows_with_degree_unlike_ldel() {
        // The paper's §II criticism, measured: the RDG protocol's
        // per-node message count scales with the local Delaunay size of
        // the neighborhood, while the LDel handshake stays close to the
        // node's own incident-triangle count.
        let (_pts, g, _s) = connected_unit_disk(80, 120.0, 45.0, 5);
        let (_rdg, rdg_stats) = run_rdg(&g, 45.0).unwrap();
        let ldel_out = crate::distributed::run_ldel(&g, 45.0).unwrap();
        assert!(
            rdg_stats.max_sent() > ldel_out.stats.max_sent(),
            "RDG max {} vs LDel max {}",
            rdg_stats.max_sent(),
            ldel_out.stats.max_sent()
        );
    }
}
