//! Larger-scale and adversarial stress tests for the Delaunay
//! triangulation and the exact predicates.

use geospan_geometry::{incircle, orient2d, CirclePosition, Orientation, Point, Triangulation};

/// Deterministic pseudo-random points (SplitMix-ish).
fn random_points(n: usize, scale: f64, mut seed: u64) -> Vec<Point> {
    let mut out = Vec::with_capacity(n);
    let mut next = move || {
        seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((seed >> 11) as f64) / ((1u64 << 53) as f64)
    };
    for _ in 0..n {
        out.push(Point::new(next() * scale, next() * scale));
    }
    out
}

fn check_euler(t: &Triangulation, n: usize) {
    let h = t.hull().len();
    assert_eq!(t.triangles().len(), 2 * n - h - 2);
    assert_eq!(t.edges().len(), 3 * n - h - 3);
}

#[test]
fn two_thousand_random_points() {
    let pts = random_points(2000, 1000.0, 42);
    let t = Triangulation::build(&pts).unwrap();
    check_euler(&t, pts.len());
    assert!(t.is_delaunay());
}

#[test]
fn large_exact_grid() {
    // 40 x 30 grid: every interior quadruple is exactly cocircular.
    let mut pts = Vec::new();
    for i in 0..40 {
        for j in 0..30 {
            pts.push(Point::new(i as f64, j as f64));
        }
    }
    let t = Triangulation::build(&pts).unwrap();
    check_euler(&t, pts.len());
    assert!(t.is_delaunay());
}

#[test]
fn many_cocircular_points() {
    // 180 points exactly on a circle... well, as exactly as f64 allows;
    // use a rational circle (scaled Pythagorean angles are hard, so take
    // the symmetric octagon family instead plus interior points).
    let mut pts = Vec::new();
    for i in 0..180 {
        let a = i as f64 * std::f64::consts::TAU / 180.0;
        pts.push(Point::new(512.0 * a.cos(), 512.0 * a.sin()));
    }
    pts.push(Point::ORIGIN);
    let t = Triangulation::build(&pts).unwrap();
    check_euler(&t, pts.len());
    assert!(t.is_delaunay());
}

#[test]
fn thin_strip() {
    // Nearly-collinear strip: slivers everywhere.
    let mut pts = Vec::new();
    for i in 0..400 {
        let x = i as f64;
        let y = if i % 2 == 0 { 0.0 } else { 1e-7 * (i as f64) };
        pts.push(Point::new(x, y));
    }
    let t = Triangulation::build(&pts).unwrap();
    assert!(t.is_delaunay());
    // Connected even in pathological shape.
    let mut seen = vec![false; pts.len()];
    let mut stack = vec![0usize];
    seen[0] = true;
    while let Some(u) = stack.pop() {
        for &v in t.neighbors(u) {
            if !seen[v] {
                seen[v] = true;
                stack.push(v);
            }
        }
    }
    assert!(seen.into_iter().all(|s| s));
}

#[test]
fn clustered_at_microscopic_spacing() {
    // Three clusters of points 1e-3 apart, clusters 1e9 apart: a 1e12
    // dynamic range (finer offsets would fall below the ulp at 1e9 and
    // produce genuine duplicates).
    let mut pts = Vec::new();
    for c in 0..3 {
        let base = Point::new(c as f64 * 1e9, (c % 2) as f64 * 1e9);
        for i in 0..40 {
            let dx = (i % 7) as f64 * 1e-3;
            let dy = (i / 7) as f64 * 1e-3;
            pts.push(base + Point::new(dx, dy));
        }
    }
    let t = Triangulation::build(&pts).unwrap();
    check_euler(&t, pts.len());
    assert!(t.is_delaunay());
}

#[test]
fn predicate_consistency_under_scaling() {
    // Predicates commute with (exact power-of-two) scaling.
    let pts = random_points(64, 1.0, 7);
    for w in pts.windows(4) {
        let (a, b, c, d) = (w[0], w[1], w[2], w[3]);
        let s = 2f64.powi(40);
        let scale = |p: Point| Point::new(p.x * s, p.y * s);
        assert_eq!(orient2d(a, b, c), orient2d(scale(a), scale(b), scale(c)));
        assert_eq!(
            incircle(a, b, c, d),
            incircle(scale(a), scale(b), scale(c), scale(d))
        );
    }
}

#[test]
fn incircle_agrees_with_triangulation_membership() {
    // For every triangulation triangle, flipping a shared edge must not
    // produce a strictly better (empty-circle-violating) configuration.
    let pts = random_points(300, 100.0, 99);
    let t = Triangulation::build(&pts).unwrap();
    for tri in t.triangles() {
        let [a, b, c] = tri.indices();
        assert_eq!(
            orient2d(pts[a], pts[b], pts[c]),
            Orientation::CounterClockwise
        );
        for (x, y) in [(a, b), (b, c), (c, a)] {
            // Common neighbors across each edge must be outside or on the
            // circumcircle.
            for &w in t.neighbors(x) {
                if w == a || w == b || w == c || !t.neighbors(y).contains(&w) {
                    continue;
                }
                assert_ne!(
                    incircle(pts[a], pts[b], pts[c], pts[w]),
                    CirclePosition::Inside,
                    "neighbor {w} violates the empty circle of {tri}"
                );
            }
        }
    }
}
