//! Property-based tests for the geometry substrate.

use geospan_geometry::{
    convex_hull, gabriel_test, in_circumcircle, incircle, orient2d, segments_properly_cross,
    CirclePosition, Orientation, Point, Triangulation,
};
use proptest::prelude::*;

/// A coordinate range wide enough to exercise interesting magnitudes but
/// keeping products finite.
fn coord() -> impl Strategy<Value = f64> {
    prop_oneof![
        -1.0e3..1.0e3,
        -1.0..1.0,
        // Values with long mantissas to stress the exact fallback.
        (any::<i32>(), any::<u8>())
            .prop_map(|(m, e)| { (m as f64 / 65536.0) * 2f64.powi((e % 16) as i32 - 8) }),
    ]
}

fn point() -> impl Strategy<Value = Point> {
    (coord(), coord()).prop_map(|(x, y)| Point::new(x, y))
}

fn distinct_points(n: usize) -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec(point(), n).prop_map(|mut v| {
        v.sort_by(|a, b| a.lex_cmp(*b));
        v.dedup();
        v
    })
}

proptest! {
    #[test]
    fn orient2d_antisymmetric(a in point(), b in point(), c in point()) {
        prop_assert_eq!(orient2d(a, b, c).sign(), -orient2d(b, a, c).sign());
        prop_assert_eq!(orient2d(a, b, c).sign(), -orient2d(a, c, b).sign());
    }

    #[test]
    fn orient2d_cyclic(a in point(), b in point(), c in point()) {
        let o = orient2d(a, b, c).sign();
        prop_assert_eq!(o, orient2d(b, c, a).sign());
        prop_assert_eq!(o, orient2d(c, a, b).sign());
    }

    #[test]
    fn orient2d_degenerate_pairs(a in point(), b in point()) {
        prop_assert_eq!(orient2d(a, a, b), Orientation::Collinear);
        prop_assert_eq!(orient2d(a, b, b), Orientation::Collinear);
        prop_assert_eq!(orient2d(a, b, a), Orientation::Collinear);
    }

    #[test]
    fn incircle_even_permutations_agree(a in point(), b in point(), c in point(), d in point()) {
        prop_assert_eq!(incircle(a, b, c, d), incircle(b, c, a, d));
        prop_assert_eq!(incircle(a, b, c, d), incircle(c, a, b, d));
    }

    #[test]
    fn incircle_odd_permutation_flips(a in point(), b in point(), c in point(), d in point()) {
        let fwd = incircle(a, b, c, d);
        let rev = incircle(a, c, b, d);
        let flipped = match fwd {
            CirclePosition::Inside => CirclePosition::Outside,
            CirclePosition::On => CirclePosition::On,
            CirclePosition::Outside => CirclePosition::Inside,
        };
        prop_assert_eq!(rev, flipped);
    }

    #[test]
    fn incircle_vertex_is_on(a in point(), b in point(), c in point()) {
        if orient2d(a, b, c) != Orientation::Collinear {
            prop_assert_eq!(in_circumcircle(a, b, c, a), CirclePosition::On);
            prop_assert_eq!(in_circumcircle(a, b, c, b), CirclePosition::On);
            prop_assert_eq!(in_circumcircle(a, b, c, c), CirclePosition::On);
        }
    }

    #[test]
    fn gabriel_disk_midpoint_inside(u in point(), v in point()) {
        if u != v {
            prop_assert!(gabriel_test(u, v, u.midpoint(v)));
            prop_assert!(!gabriel_test(u, v, u));
            prop_assert!(!gabriel_test(u, v, v));
        }
    }

    #[test]
    fn hull_contains_all_points(pts in distinct_points(40)) {
        let hull = convex_hull(&pts);
        if hull.len() >= 3 {
            // Every point is left of (or on) every CCW hull edge.
            for k in 0..hull.len() {
                let a = pts[hull[k]];
                let b = pts[hull[(k + 1) % hull.len()]];
                for &p in &pts {
                    prop_assert_ne!(orient2d(a, b, p), Orientation::Clockwise);
                }
            }
        }
    }

    #[test]
    fn hull_vertices_are_extreme(pts in distinct_points(30)) {
        let hull = convex_hull(&pts);
        // No hull vertex is a convex combination of its neighbors:
        // consecutive triples turn strictly left.
        if hull.len() >= 3 {
            for k in 0..hull.len() {
                let a = pts[hull[k]];
                let b = pts[hull[(k + 1) % hull.len()]];
                let c = pts[hull[(k + 2) % hull.len()]];
                prop_assert_eq!(orient2d(a, b, c), Orientation::CounterClockwise);
            }
        }
    }

    #[test]
    fn delaunay_invariants(pts in distinct_points(25)) {
        let tri = Triangulation::build(&pts).unwrap();
        // Empty circumcircle property, exhaustively.
        prop_assert!(tri.is_delaunay());
        // All triangles are CCW.
        for t in tri.triangles() {
            let [a, b, c] = t.indices();
            prop_assert_eq!(orient2d(pts[a], pts[b], pts[c]), Orientation::CounterClockwise);
        }
        // Adjacency is symmetric and consistent with the edge list.
        for &(u, v) in tri.edges() {
            prop_assert!(tri.neighbors(u).contains(&v));
            prop_assert!(tri.neighbors(v).contains(&u));
            prop_assert!(tri.contains_edge(u, v));
            prop_assert!(tri.contains_edge(v, u));
        }
    }

    #[test]
    fn delaunay_euler_formula(pts in distinct_points(30)) {
        let tri = Triangulation::build(&pts).unwrap();
        let n = pts.len();
        let h = tri.hull().len();
        if !tri.triangles().is_empty() {
            prop_assert_eq!(tri.triangles().len(), 2 * n - h - 2);
            prop_assert_eq!(tri.edges().len(), 3 * n - h - 3);
        }
    }

    #[test]
    fn delaunay_is_planar(pts in distinct_points(15)) {
        let tri = Triangulation::build(&pts).unwrap();
        let edges = tri.edges();
        for (i, &(a, b)) in edges.iter().enumerate() {
            for &(c, d) in &edges[i + 1..] {
                if a == c || a == d || b == c || b == d {
                    continue;
                }
                prop_assert!(
                    !segments_properly_cross(pts[a], pts[b], pts[c], pts[d]),
                    "edges ({a},{b}) and ({c},{d}) cross"
                );
            }
        }
    }

    #[test]
    fn segment_cross_is_symmetric(a in point(), b in point(), c in point(), d in point()) {
        use geospan_geometry::segments_cross;
        let r = segments_cross(a, b, c, d);
        // Order of the two segments does not matter...
        prop_assert_eq!(r, segments_cross(c, d, a, b));
        // ...nor does the orientation of either segment.
        prop_assert_eq!(r, segments_cross(b, a, c, d));
        prop_assert_eq!(r, segments_cross(a, b, d, c));
        prop_assert_eq!(r, segments_cross(b, a, d, c));
    }

    #[test]
    fn proper_crossing_matches_orientation_criterion(
        a in point(), b in point(), c in point(), d in point()
    ) {
        // For segments in general position, a proper crossing is exactly
        // "each segment's endpoints straddle the other's line".
        use geospan_geometry::segments_properly_cross;
        let os = [
            orient2d(a, b, c),
            orient2d(a, b, d),
            orient2d(c, d, a),
            orient2d(c, d, b),
        ];
        if os.iter().all(|&o| o != Orientation::Collinear) {
            let straddle = os[0] != os[1] && os[2] != os[3];
            prop_assert_eq!(segments_properly_cross(a, b, c, d), straddle);
        }
    }

    #[test]
    fn circumcenter_is_equidistant(a in point(), b in point(), c in point()) {
        use geospan_geometry::circumcenter;
        match circumcenter(a, b, c) {
            None => prop_assert_eq!(orient2d(a, b, c), Orientation::Collinear),
            Some(o) => {
                prop_assert_ne!(orient2d(a, b, c), Orientation::Collinear);
                // Only check equidistance for well-conditioned triangles:
                // the floating-point center of a sliver is legitimately
                // imprecise.
                let area2 = ((b - a).cross(c - a)).abs();
                let longest = a.distance(b).max(b.distance(c)).max(a.distance(c));
                if area2 > 1e-3 * longest * longest {
                    let (ra, rb, rc) = (o.distance(a), o.distance(b), o.distance(c));
                    let spread = (ra - rb).abs().max((ra - rc).abs());
                    prop_assert!(spread <= 1e-6 * ra.max(1.0), "spread {spread}");
                }
            }
        }
    }

    #[test]
    fn gabriel_blocking_is_symmetric(u in point(), v in point(), p in point()) {
        prop_assert_eq!(gabriel_test(u, v, p), gabriel_test(v, u, p));
    }

    #[test]
    fn delaunay_connects_everything(pts in distinct_points(20)) {
        // The Delaunay triangulation of >= 2 points is connected.
        let tri = Triangulation::build(&pts).unwrap();
        let n = pts.len();
        if n >= 2 {
            let mut seen = vec![false; n];
            let mut stack = vec![0usize];
            seen[0] = true;
            while let Some(u) = stack.pop() {
                for &v in tri.neighbors(u) {
                    if !seen[v] {
                        seen[v] = true;
                        stack.push(v);
                    }
                }
            }
            prop_assert!(seen.into_iter().all(|s| s), "triangulation disconnected");
        }
    }
}
