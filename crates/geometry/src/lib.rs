//! Computational-geometry substrate for the geospan project.
//!
//! This crate provides everything the spanner constructions of
//! Wang & Li (ICDCS 2002) need from planar geometry:
//!
//! * [`Point`] — a 2-D point with the usual vector operations,
//! * robust geometric predicates ([`orient2d`], [`incircle`],
//!   [`gabriel_test`], …) that are **exact**: a fast floating-point filter
//!   with a proven error bound, falling back to arbitrary-length
//!   floating-point *expansions* (Shewchuk-style) when the filter is
//!   inconclusive,
//! * circumcircles, segment intersection tests, convex hulls,
//! * a [`Triangulation`] type implementing the Delaunay triangulation via
//!   incremental Bowyer–Watson insertion with ghost triangles.
//!
//! The exactness of the predicates is what makes the planarity guarantees
//! of the localized Delaunay graph hold in practice and not just in the
//! real-RAM model of the paper.
//!
//! # Example
//!
//! ```
//! use geospan_geometry::{Point, Triangulation};
//!
//! # fn main() -> Result<(), geospan_geometry::TriangulationError> {
//! let pts = vec![
//!     Point::new(0.0, 0.0),
//!     Point::new(1.0, 0.0),
//!     Point::new(0.5, 1.0),
//!     Point::new(0.5, 0.3),
//! ];
//! let tri = Triangulation::build(&pts)?;
//! assert_eq!(tri.triangles().len(), 3);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod circle;
mod expansion;
mod grid;
mod hull;
mod point;
mod predicates;
mod segment;
mod triangulation;

pub use circle::{circumcenter, circumradius, Circle};
pub use grid::UniformGrid;
pub use hull::convex_hull;
pub use point::Point;
pub use predicates::{
    gabriel_test, in_circumcircle, incircle, orient2d, CirclePosition, Orientation,
};
pub use segment::{segments_cross, segments_properly_cross, SegmentIntersection};
pub use triangulation::{
    delaunay_triangles, DelaunayScratch, Triangle, Triangulation, TriangulationError,
};

/// Pseudo-angle of the vector `(dx, dy)`: a monotone surrogate for
/// `atan2(dy, dx)` that maps the full turn to `[0, 4)` without
/// trigonometry.
///
/// Two vectors compare the same under pseudo-angle as under true angle,
/// which is all that angular sweeps and planar-embedding sorts need.
///
/// # Example
/// ```
/// use geospan_geometry::pseudo_angle;
/// assert!(pseudo_angle(1.0, 0.0) < pseudo_angle(0.0, 1.0));
/// assert!(pseudo_angle(0.0, 1.0) < pseudo_angle(-1.0, 0.0));
/// assert!(pseudo_angle(-1.0, 0.0) < pseudo_angle(0.0, -1.0));
/// ```
pub fn pseudo_angle(dx: f64, dy: f64) -> f64 {
    let ax = dx.abs();
    let ay = dy.abs();
    let s = if ax + ay == 0.0 { 0.0 } else { dy / (ax + ay) };
    // `s` is in [-1, 1]; fold the four quadrants onto [0, 4).
    if dx >= 0.0 {
        if dy >= 0.0 {
            s // quadrant I: [0, 1)
        } else {
            4.0 + s // quadrant IV: [3, 4)
        }
    } else {
        2.0 - s // quadrants II & III: [1, 3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pseudo_angle_orders_like_atan2() {
        let dirs: Vec<(f64, f64)> = (0..64)
            .map(|i| {
                let a = (i as f64) * std::f64::consts::TAU / 64.0 + 0.013;
                (a.cos(), a.sin())
            })
            .collect();
        for &(x1, y1) in &dirs {
            for &(x2, y2) in &dirs {
                let t1 = y1.atan2(x1).rem_euclid(std::f64::consts::TAU);
                let t2 = y2.atan2(x2).rem_euclid(std::f64::consts::TAU);
                let p1 = pseudo_angle(x1, y1);
                let p2 = pseudo_angle(x2, y2);
                assert_eq!(t1 < t2, p1 < p2, "mismatch for {x1},{y1} vs {x2},{y2}");
            }
        }
    }

    #[test]
    fn pseudo_angle_zero_vector_is_zero() {
        assert_eq!(pseudo_angle(0.0, 0.0), 0.0);
    }
}
