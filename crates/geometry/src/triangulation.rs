//! Delaunay triangulation via incremental Bowyer–Watson insertion.
//!
//! The implementation uses the *ghost triangle* convention: the outside of
//! the convex hull is covered by fictitious triangles sharing a symbolic
//! vertex at infinity, so point insertion (inside the hull, on its
//! boundary, or outside it) is one uniform cavity-retriangulation step.
//! All conflict decisions go through the exact predicates of
//! [`crate::predicates`], so the result is a true Delaunay triangulation
//! of the input (ties among cocircular points broken arbitrarily).

use std::collections::HashMap;
use std::fmt;

use crate::{incircle, orient2d, CirclePosition, Orientation, Point};

/// Symbolic vertex "at infinity" used by ghost triangles.
const GHOST: usize = usize::MAX;

/// A triangle of a [`Triangulation`], as three indices into the input
/// point slice, in counterclockwise order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Triangle(pub [usize; 3]);

impl Triangle {
    /// The three vertex indices, counterclockwise.
    #[inline]
    pub fn indices(&self) -> [usize; 3] {
        self.0
    }

    /// The vertex indices sorted ascending: a canonical key for
    /// order-insensitive comparisons.
    #[inline]
    pub fn sorted(&self) -> [usize; 3] {
        let mut s = self.0;
        s.sort_unstable();
        s
    }

    /// True when `v` is one of the triangle's vertices.
    #[inline]
    pub fn contains(&self, v: usize) -> bool {
        self.0.contains(&v)
    }
}

impl fmt::Display for Triangle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "△({}, {}, {})", self.0[0], self.0[1], self.0[2])
    }
}

/// Error building a [`Triangulation`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TriangulationError {
    /// Two input points are bit-identical; a triangulation needs distinct
    /// sites. The payload holds the indices of the first such pair.
    DuplicatePoint {
        /// Index of the first occurrence.
        first: usize,
        /// Index of the duplicate.
        second: usize,
    },
    /// An input coordinate is NaN or infinite; the payload is the point's
    /// index.
    NonFinitePoint(usize),
}

impl fmt::Display for TriangulationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TriangulationError::DuplicatePoint { first, second } => {
                write!(f, "duplicate input points at indices {first} and {second}")
            }
            TriangulationError::NonFinitePoint(i) => {
                write!(f, "non-finite coordinate in input point at index {i}")
            }
        }
    }
}

impl std::error::Error for TriangulationError {}

/// Internal triangle record: vertices (CCW; may contain [`GHOST`]) and the
/// neighbor across the edge opposite each vertex. Vertex positions are
/// cached inline (`p[ghost]` is a dummy for ghost triangles) so the hot
/// predicates never chase the input slice, and `ghost` caches the ghost
/// vertex's index (3 when the triangle is real) so conflict checks skip
/// the vertex scan.
#[derive(Debug, Clone, Copy)]
struct Tri {
    v: [usize; 3],
    p: [Point; 3],
    n: [usize; 3],
    ghost: u8,
    alive: bool,
}

/// `ghost` value marking a real (non-ghost) triangle.
const NOT_GHOST: u8 = 3;

const NO_TRI: usize = usize::MAX;

/// A Delaunay triangulation of a set of distinct points.
///
/// Degenerate inputs are handled gracefully: fewer than three points, or
/// an entirely collinear point set, yield a triangulation with no
/// triangles whose [`edges`](Triangulation::edges) form the Delaunay
/// "chain" along the line.
///
/// # Example
/// ```
/// use geospan_geometry::{Point, Triangulation};
/// # fn main() -> Result<(), geospan_geometry::TriangulationError> {
/// let pts = vec![
///     Point::new(0.0, 0.0),
///     Point::new(4.0, 0.0),
///     Point::new(4.0, 4.0),
///     Point::new(0.0, 4.0),
///     Point::new(2.0, 2.1),
/// ];
/// let tri = Triangulation::build(&pts)?;
/// assert_eq!(tri.triangles().len(), 4);
/// assert!(tri.contains_edge(0, 4));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Triangulation {
    points: Vec<Point>,
    triangles: Vec<Triangle>,
    edges: Vec<(usize, usize)>,
    adjacency: Vec<Vec<usize>>,
    hull: Vec<usize>,
    tri_keys: std::collections::HashSet<[usize; 3]>,
}

impl Triangulation {
    /// Builds the Delaunay triangulation of `points`.
    ///
    /// # Errors
    /// Returns [`TriangulationError::DuplicatePoint`] if two points are
    /// identical and [`TriangulationError::NonFinitePoint`] for NaN or
    /// infinite coordinates.
    pub fn build(points: &[Point]) -> Result<Self, TriangulationError> {
        check_distinct_finite(points)?;
        let mut scratch = DelaunayScratch::new();
        let core = Core::run(points, &mut scratch);
        Ok(core.finish(points))
    }

    /// The input points, in their original order.
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// The Delaunay triangles, each counterclockwise.
    pub fn triangles(&self) -> &[Triangle] {
        &self.triangles
    }

    /// All edges as `(u, v)` pairs with `u < v`, sorted.
    pub fn edges(&self) -> &[(usize, usize)] {
        &self.edges
    }

    /// Indices of points adjacent to `v` in the triangulation.
    ///
    /// # Panics
    /// Panics if `v` is out of bounds.
    pub fn neighbors(&self, v: usize) -> &[usize] {
        &self.adjacency[v]
    }

    /// Indices of the convex-hull vertices in counterclockwise order.
    ///
    /// Points lying on the interior of hull edges are included (they are
    /// vertices of the triangulation boundary). Empty for inputs with
    /// fewer than 3 points or entirely collinear inputs.
    pub fn hull(&self) -> &[usize] {
        &self.hull
    }

    /// True when the edge `{u, v}` is in the triangulation.
    pub fn contains_edge(&self, u: usize, v: usize) -> bool {
        let (a, b) = if u < v { (u, v) } else { (v, u) };
        self.edges.binary_search(&(a, b)).is_ok()
    }

    /// True when the triangle `{a, b, c}` (any vertex order) is in the
    /// triangulation.
    pub fn contains_triangle(&self, a: usize, b: usize, c: usize) -> bool {
        let mut k = [a, b, c];
        k.sort_unstable();
        self.tri_keys.contains(&k)
    }

    /// The triangles incident on vertex `v`.
    pub fn triangles_of(&self, v: usize) -> impl Iterator<Item = Triangle> + '_ {
        self.triangles
            .iter()
            .copied()
            .filter(move |t| t.contains(v))
    }

    /// Exhaustively verifies the Delaunay empty-circumcircle property:
    /// no input point lies strictly inside any triangle's circumcircle.
    ///
    /// Intended for tests and debugging; runs in `O(#triangles · n)`.
    pub fn is_delaunay(&self) -> bool {
        for t in &self.triangles {
            let [a, b, c] = t.indices();
            for (i, &p) in self.points.iter().enumerate() {
                if i == a || i == b || i == c {
                    continue;
                }
                if incircle(self.points[a], self.points[b], self.points[c], p)
                    == CirclePosition::Inside
                {
                    return false;
                }
            }
        }
        true
    }
}

/// Validates triangulation input: every coordinate finite, all points
/// pairwise distinct.
fn check_distinct_finite(points: &[Point]) -> Result<(), TriangulationError> {
    for (i, p) in points.iter().enumerate() {
        if !p.is_finite() {
            return Err(TriangulationError::NonFinitePoint(i));
        }
    }
    // Small inputs (the per-node neighborhoods of `ldel1`) are cheaper to
    // scan pairwise than to hash.
    if points.len() <= 48 {
        for (i, p) in points.iter().enumerate() {
            for (j, q) in points[..i].iter().enumerate() {
                if p.x.to_bits() == q.x.to_bits() && p.y.to_bits() == q.y.to_bits() {
                    return Err(TriangulationError::DuplicatePoint {
                        first: j,
                        second: i,
                    });
                }
            }
        }
        return Ok(());
    }
    let mut seen: HashMap<(u64, u64), usize> = HashMap::with_capacity(points.len());
    for (i, p) in points.iter().enumerate() {
        if let Some(&j) = seen.get(&(p.x.to_bits(), p.y.to_bits())) {
            return Err(TriangulationError::DuplicatePoint {
                first: j,
                second: i,
            });
        }
        seen.insert((p.x.to_bits(), p.y.to_bits()), i);
    }
    Ok(())
}

/// The Delaunay triangles of `points`, skipping the assembly of the full
/// [`Triangulation`] structure (edge list, adjacency, hull, triangle
/// keys).
///
/// This is the fast path for callers — `ldel1` above all — that build
/// thousands of small local triangulations and consume only the triangle
/// list; it produces exactly the triangles [`Triangulation::build`]
/// would.
///
/// # Errors
/// Same contract as [`Triangulation::build`].
pub fn delaunay_triangles(points: &[Point]) -> Result<Vec<Triangle>, TriangulationError> {
    let mut scratch = DelaunayScratch::new();
    let mut out = Vec::new();
    scratch.triangles_into(points, &mut out)?;
    Ok(out)
}

/// Reusable Bowyer–Watson working memory.
///
/// One `DelaunayScratch` amortizes every internal buffer — the triangle
/// arena, the epoch-stamped cavity marks, the flood-fill stack, the
/// boundary fan — across an arbitrary number of triangulations, so a
/// caller computing thousands of small local triangulations (the `ldel1`
/// workload: one per node) allocates O(1) per insertion at steady state
/// instead of rebuilding every buffer per call.
///
/// The mark epochs deliberately survive across calls: epochs only ever
/// increase, so a stale mark from a previous triangulation can never
/// equal the current epoch and clearing between calls is free.
///
/// # Example
/// ```
/// use geospan_geometry::{DelaunayScratch, Point};
/// let mut scratch = DelaunayScratch::new();
/// let mut tris = Vec::new();
/// for dy in [0.5, 1.0, 2.0] {
///     let pts = [
///         Point::new(0.0, 0.0),
///         Point::new(4.0, 0.0),
///         Point::new(4.0, 4.0),
///         Point::new(0.0, dy),
///     ];
///     scratch.triangles_into(&pts, &mut tris).unwrap();
///     assert_eq!(tris.len(), 2);
/// }
/// ```
#[derive(Debug, Default)]
pub struct DelaunayScratch {
    tris: Vec<Tri>,
    /// Per-triangle cavity mark, epoch-stamped so clearing is free:
    /// `(epoch, in_conflict)`.
    mark: Vec<(u32, bool)>,
    /// Current mark epoch; strictly increasing across calls.
    epoch: u32,
    cavity: Vec<usize>,
    stack: Vec<usize>,
    boundary: Vec<BoundaryEdge>,
}

impl DelaunayScratch {
    /// Creates an empty scratch; buffers grow to fit the largest input
    /// seen and stay allocated.
    pub fn new() -> Self {
        DelaunayScratch::default()
    }

    /// Computes the Delaunay triangles of `points` into `out` (cleared
    /// first), reusing this scratch's buffers.
    ///
    /// Produces exactly the triangles [`delaunay_triangles`] would — the
    /// insertion order, and hence every cocircular tie-break, is
    /// identical.
    ///
    /// # Errors
    /// Same contract as [`Triangulation::build`].
    pub fn triangles_into(
        &mut self,
        points: &[Point],
        out: &mut Vec<Triangle>,
    ) -> Result<(), TriangulationError> {
        check_distinct_finite(points)?;
        self.triangles_into_assuming_distinct(points, out);
        Ok(())
    }

    /// [`DelaunayScratch::triangles_into`] minus the input validation,
    /// for callers that have already established the points are finite
    /// and pairwise distinct (e.g. once for a whole deployment rather
    /// than once per local neighborhood).
    ///
    /// Feeding duplicate or non-finite points is a logic error; the
    /// precondition is debug-asserted.
    pub fn triangles_into_assuming_distinct(&mut self, points: &[Point], out: &mut Vec<Triangle>) {
        debug_assert!(check_distinct_finite(points).is_ok());
        out.clear();
        let collinear = Core::run(points, self).collinear_chain.is_some();
        if collinear {
            return;
        }
        out.extend(
            self.tris
                .iter()
                .filter(|t| t.alive && t.ghost == NOT_GHOST)
                .map(|t| Triangle(t.v)),
        );
    }
}

/// A boundary edge of an insertion cavity, in the retired triangle's
/// cyclic orientation, with the surviving neighbor across it. Endpoint
/// positions are carried over from the retired triangle's cache.
#[derive(Debug)]
struct BoundaryEdge {
    u: usize,
    w: usize,
    pu: Point,
    pw: Point,
    outside: usize,
}

/// The mutable Bowyer–Watson state; all growable buffers live in the
/// borrowed [`DelaunayScratch`] so they survive across builds.
struct Core<'a, 's> {
    pts: &'a [Point],
    buf: &'s mut DelaunayScratch,
    /// Hint: a recently alive triangle to start walks from.
    last: usize,
    /// Indices inserted into the structure so far.
    inserted: usize,
    /// Entirely-collinear fallback: when `Some`, holds the chain order.
    collinear_chain: Option<Vec<usize>>,
}

impl<'a, 's> Core<'a, 's> {
    fn run(points: &'a [Point], buf: &'s mut DelaunayScratch) -> Core<'a, 's> {
        let n = points.len();
        buf.tris.clear();
        // Epochs must stay strictly increasing within this run; if a
        // long-lived scratch is anywhere near wrap-around, pay one full
        // mark reset now.
        if buf.epoch as u64 + n as u64 + 16 > u32::MAX as u64 {
            buf.mark.clear();
            buf.epoch = 0;
        }
        let mut core = Core {
            pts: points,
            buf,
            last: NO_TRI,
            inserted: 0,
            collinear_chain: None,
        };
        if n < 3 {
            core.collinear_chain = Some(Self::chain_order(points));
            return core;
        }
        // Find the first point not collinear with points 0 and 1.
        let mut apex = None;
        for k in 2..n {
            if orient2d(points[0], points[1], points[k]) != Orientation::Collinear {
                apex = Some(k);
                break;
            }
        }
        let Some(apex) = apex else {
            core.collinear_chain = Some(Self::chain_order(points));
            return core;
        };
        core.init_triangle(0, 1, apex);
        for i in 2..n {
            if i == apex {
                continue;
            }
            core.insert(i);
        }
        core
    }

    /// Lexicographic order along the common line for degenerate inputs.
    fn chain_order(points: &[Point]) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..points.len()).collect();
        idx.sort_by(|&i, &j| points[i].lex_cmp(points[j]));
        idx
    }

    /// Seeds the structure with one real triangle and its three ghosts.
    fn init_triangle(&mut self, i: usize, j: usize, k: usize) {
        let (a, b, c) = match orient2d(self.pts[i], self.pts[j], self.pts[k]) {
            Orientation::CounterClockwise => (i, j, k),
            Orientation::Clockwise => (i, k, j),
            // geospan-analyze: allow(D11, the seed triangle is pre-screened by the caller for non-collinearity)
            Orientation::Collinear => unreachable!("seed triangle is non-degenerate"),
        };
        let (pa, pb, pc) = (self.pts[a], self.pts[b], self.pts[c]);
        let dummy = Point::new(0.0, 0.0);
        // Triangle 0: (a, b, c). Ghosts: 1 across ab, 2 across bc, 3 across ca.
        self.buf.tris.push(Tri {
            v: [a, b, c],
            p: [pa, pb, pc],
            n: [2, 3, 1],
            ghost: NOT_GHOST,
            alive: true,
        });
        self.buf.tris.push(Tri {
            v: [b, a, GHOST],
            p: [pb, pa, dummy],
            n: [3, 2, 0],
            ghost: 2,
            alive: true,
        });
        self.buf.tris.push(Tri {
            v: [c, b, GHOST],
            p: [pc, pb, dummy],
            n: [1, 3, 0],
            ghost: 2,
            alive: true,
        });
        self.buf.tris.push(Tri {
            v: [a, c, GHOST],
            p: [pa, pc, dummy],
            n: [2, 1, 0],
            ghost: 2,
            alive: true,
        });
        self.last = 0;
        self.inserted = 3;
    }

    /// Does triangle `t` conflict with (require removal upon inserting) `p`?
    #[inline]
    fn in_conflict(&self, t: usize, p: Point) -> bool {
        let tri = &self.buf.tris[t];
        if tri.ghost != NOT_GHOST {
            let k = tri.ghost as usize;
            let pu = tri.p[(k + 1) % 3];
            let pw = tri.p[(k + 2) % 3];
            // Stored edge (u, w) is the reversal of the CCW hull edge
            // w -> u; p conflicts when strictly outside that hull edge...
            match orient2d(pu, pw, p) {
                Orientation::CounterClockwise => true,
                Orientation::Clockwise => false,
                // ...or exactly on the open hull edge segment.
                Orientation::Collinear => strictly_between(pu, pw, p),
            }
        } else {
            incircle(tri.p[0], tri.p[1], tri.p[2], p) == CirclePosition::Inside
        }
    }

    /// Finds some triangle in conflict with `p`, walking from the hint.
    fn locate(&self, p: Point) -> usize {
        let mut t = self.last;
        if t == NO_TRI || !self.buf.tris[t].alive {
            t = self
                .buf
                .tris
                .iter()
                .position(|t| t.alive)
                .expect("no alive triangle");
        }
        // If the hint is a ghost, step into its real neighbor.
        if self.buf.tris[t].ghost != NOT_GHOST {
            t = self.buf.tris[t].n[self.buf.tris[t].ghost as usize];
        }
        let limit = 4 * self.buf.tris.len() + 16;
        let mut steps = 0;
        'walk: while steps < limit {
            steps += 1;
            let tri = &self.buf.tris[t];
            if tri.ghost != NOT_GHOST {
                // Reached the hull: p is outside. Walk the ghost ring
                // until a conflicting ghost is found.
                let mut g = t;
                for _ in 0..self.buf.tris.len() + 1 {
                    if self.in_conflict(g, p) {
                        return g;
                    }
                    let k = self.buf.tris[g].ghost as usize;
                    g = self.buf.tris[g].n[(k + 1) % 3]; // next ghost around the hull
                }
                break 'walk;
            }
            // Step across the first edge that strictly separates p.
            for i in 0..3 {
                let pu = tri.p[(i + 1) % 3];
                let pw = tri.p[(i + 2) % 3];
                if orient2d(pu, pw, p) == Orientation::Clockwise {
                    t = tri.n[i];
                    continue 'walk;
                }
            }
            // p is inside or on this triangle: it conflicts.
            return t;
        }
        // Exceedingly rare fallback (degenerate walk cycles): scan.
        (0..self.buf.tris.len())
            .find(|&t| self.buf.tris[t].alive && self.in_conflict(t, p))
            .expect("insertion point conflicts with no triangle")
    }

    /// Inserts point index `pi` by cavity retriangulation.
    ///
    /// All bookkeeping runs on reused scratch buffers and epoch-stamped
    /// marks — no per-insert allocation or hashing — which is what makes
    /// thousands of small local triangulations (the `ldel1` workload)
    /// cheap.
    fn insert(&mut self, pi: usize) {
        let p = self.pts[pi];
        let seed = self.locate(p);
        debug_assert!(self.in_conflict(seed, p));

        // Flood-fill the conflict cavity.
        self.buf.epoch += 1;
        let epoch = self.buf.epoch;
        if self.buf.mark.len() < self.buf.tris.len() {
            let len = self.buf.tris.len();
            self.buf.mark.resize(len, (0, false));
        }
        let mut cavity = std::mem::take(&mut self.buf.cavity);
        cavity.clear();
        cavity.push(seed);
        self.buf.mark[seed] = (epoch, true);
        self.buf.stack.clear();
        self.buf.stack.push(seed);
        while let Some(t) = self.buf.stack.pop() {
            let ns = self.buf.tris[t].n;
            for &nb in &ns {
                if nb == NO_TRI || self.buf.mark[nb].0 == epoch {
                    continue;
                }
                let c = self.in_conflict(nb, p);
                self.buf.mark[nb] = (epoch, c);
                if c {
                    cavity.push(nb);
                    self.buf.stack.push(nb);
                }
            }
        }

        // Collect the boundary fan: edges of cavity triangles whose
        // neighbor lies outside the cavity, in the cavity triangle's
        // own cyclic orientation.
        let mut boundary = std::mem::take(&mut self.buf.boundary);
        boundary.clear();
        for &t in &cavity {
            let tri = self.buf.tris[t];
            for i in 0..3 {
                let nb = tri.n[i];
                let nb_in = nb != NO_TRI && self.buf.mark[nb] == (epoch, true);
                if !nb_in {
                    boundary.push(BoundaryEdge {
                        u: tri.v[(i + 1) % 3],
                        w: tri.v[(i + 2) % 3],
                        pu: tri.p[(i + 1) % 3],
                        pw: tri.p[(i + 2) % 3],
                        outside: nb,
                    });
                }
            }
        }
        debug_assert!(boundary.len() >= 3);

        // Retire the cavity and fan new triangles (pi, u, w).
        for &t in &cavity {
            self.buf.tris[t].alive = false;
        }
        let base = self.buf.tris.len();
        for (off, e) in boundary.iter().enumerate() {
            let idx = base + off;
            // `pi` is always a real vertex, so a ghost can only sit at
            // fan slot 1 (from `e.u`) or 2 (from `e.w`).
            let ghost = if e.u == GHOST {
                1
            } else if e.w == GHOST {
                2
            } else {
                NOT_GHOST
            };
            self.buf.tris.push(Tri {
                v: [pi, e.u, e.w],
                p: [p, e.pu, e.pw],
                n: [e.outside, NO_TRI, NO_TRI],
                ghost,
                alive: true,
            });
            // Point the outside neighbor back at the new triangle.
            if e.outside != NO_TRI {
                let out = &mut self.buf.tris[e.outside];
                for j in 0..3 {
                    let a = out.v[(j + 1) % 3];
                    let b = out.v[(j + 2) % 3];
                    if (a == e.u && b == e.w) || (a == e.w && b == e.u) {
                        out.n[j] = idx;
                        break;
                    }
                }
            }
        }
        // Stitch fan-internal adjacency: triangle (p,u,w) meets (p,w,x)
        // along edge (w,p) and (p,t,u) along edge (p,u). The fan is a
        // handful of triangles, so a linear scan beats a hash map.
        for (off, e) in boundary.iter().enumerate() {
            let idx = base + off;
            let across_wp = boundary
                .iter()
                .position(|e2| e2.u == e.w)
                .expect("cavity boundary is a closed fan");
            let across_pu = boundary
                .iter()
                .position(|e2| e2.w == e.u)
                .expect("cavity boundary is a closed fan");
            self.buf.tris[idx].n[1] = base + across_wp; // across edge (w, p)
            self.buf.tris[idx].n[2] = base + across_pu; // across edge (p, u)
        }
        self.last = base;
        self.inserted += 1;
        self.buf.cavity = cavity;
        self.buf.boundary = boundary;
    }

    /// Converts the working state into the public structure.
    fn finish(self, points: &[Point]) -> Triangulation {
        let n = points.len();
        let mut triangles = Vec::new();
        let mut edge_set: std::collections::BTreeSet<(usize, usize)> =
            std::collections::BTreeSet::new();
        let mut tri_keys = std::collections::HashSet::new();
        let mut hull = Vec::new();

        if let Some(chain) = &self.collinear_chain {
            for w in chain.windows(2) {
                edge_set.insert(ordered(w[0], w[1]));
            }
        } else {
            for t in self.buf.tris.iter().filter(|t| t.alive) {
                if t.ghost != NOT_GHOST {
                    continue;
                }
                triangles.push(Triangle(t.v));
                tri_keys.insert(Triangle(t.v).sorted());
                edge_set.insert(ordered(t.v[0], t.v[1]));
                edge_set.insert(ordered(t.v[1], t.v[2]));
                edge_set.insert(ordered(t.v[2], t.v[0]));
            }
            // Walk the ghost ring to recover the hull in CCW order.
            if let Some(start) = self
                .buf
                .tris
                .iter()
                .position(|t| t.alive && t.ghost != NOT_GHOST)
            {
                let mut g = start;
                loop {
                    let k = self.buf.tris[g].ghost as usize;
                    // Stored edge (u, w) reverses hull edge w -> u: emit w.
                    hull.push(self.buf.tris[g].v[(k + 2) % 3]);
                    g = self.buf.tris[g].n[(k + 1) % 3];
                    if g == start {
                        break;
                    }
                }
                hull.reverse(); // ghost ring visits the hull clockwise
                                // Deterministic representation: start at the smallest index.
                if let Some(k) = hull
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, &v)| v)
                    .map(|(k, _)| k)
                {
                    hull.rotate_left(k);
                }
            }
        }

        let mut edges: Vec<(usize, usize)> = edge_set.into_iter().collect();
        edges.sort_unstable();
        let mut adjacency = vec![Vec::new(); n];
        for &(u, v) in &edges {
            adjacency[u].push(v);
            adjacency[v].push(u);
        }
        for a in &mut adjacency {
            a.sort_unstable();
        }
        Triangulation {
            points: points.to_vec(),
            triangles,
            edges,
            adjacency,
            hull,
            tri_keys,
        }
    }
}

#[inline]
fn ordered(u: usize, v: usize) -> (usize, usize) {
    if u < v {
        (u, v)
    } else {
        (v, u)
    }
}

/// Is `p` strictly inside the closed segment `ab` (given collinearity)?
fn strictly_between(a: Point, b: Point, p: Point) -> bool {
    if p == a || p == b {
        return false;
    }
    p.x >= a.x.min(b.x) && p.x <= a.x.max(b.x) && p.y >= a.y.min(b.y) && p.y <= a.y.max(b.y)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(coords: &[(f64, f64)]) -> Vec<Point> {
        coords.iter().map(|&(x, y)| Point::new(x, y)).collect()
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let t = Triangulation::build(&[]).unwrap();
        assert!(t.triangles().is_empty());
        assert!(t.edges().is_empty());

        let t = Triangulation::build(&pts(&[(1.0, 1.0)])).unwrap();
        assert!(t.edges().is_empty());

        let t = Triangulation::build(&pts(&[(0.0, 0.0), (1.0, 0.0)])).unwrap();
        assert_eq!(t.edges(), &[(0, 1)]);
        assert!(t.triangles().is_empty());
    }

    #[test]
    fn single_triangle() {
        let t = Triangulation::build(&pts(&[(0.0, 0.0), (1.0, 0.0), (0.0, 1.0)])).unwrap();
        assert_eq!(t.triangles().len(), 1);
        assert_eq!(t.edges().len(), 3);
        assert_eq!(t.hull().len(), 3);
        assert!(t.contains_triangle(2, 0, 1));
        assert!(t.is_delaunay());
    }

    #[test]
    fn duplicate_points_rejected() {
        let e = Triangulation::build(&pts(&[(0.0, 0.0), (1.0, 0.0), (0.0, 0.0)])).unwrap_err();
        assert_eq!(
            e,
            TriangulationError::DuplicatePoint {
                first: 0,
                second: 2
            }
        );
    }

    #[test]
    fn non_finite_rejected() {
        let e = Triangulation::build(&[Point::new(f64::NAN, 0.0)]).unwrap_err();
        assert_eq!(e, TriangulationError::NonFinitePoint(0));
    }

    #[test]
    fn collinear_input_yields_chain() {
        let t =
            Triangulation::build(&pts(&[(2.0, 2.0), (0.0, 0.0), (3.0, 3.0), (1.0, 1.0)])).unwrap();
        assert!(t.triangles().is_empty());
        // Chain 1 - 3 - 0 - 2 along the line.
        assert_eq!(t.edges(), &[(0, 2), (0, 3), (1, 3)]);
        assert_eq!(t.neighbors(0), &[2, 3]);
    }

    #[test]
    fn square_diagonal_follows_delaunay() {
        // The diagonal must connect the points whose opposite angles are
        // obtuse; with the fifth point nudged up, edges 0-4..3-4 appear.
        let t = Triangulation::build(&pts(&[
            (0.0, 0.0),
            (4.0, 0.0),
            (4.0, 4.0),
            (0.0, 4.0),
            (2.0, 2.1),
        ]))
        .unwrap();
        assert_eq!(t.triangles().len(), 4);
        assert!(t.is_delaunay());
        for v in 0..4 {
            assert!(t.contains_edge(v, 4));
        }
    }

    #[test]
    fn insert_point_on_hull_edge() {
        let t = Triangulation::build(&pts(&[
            (0.0, 0.0),
            (4.0, 0.0),
            (2.0, 3.0),
            (2.0, 0.0), // on the hull edge (0, 1)
        ]))
        .unwrap();
        assert_eq!(t.triangles().len(), 2);
        assert!(t.is_delaunay());
        assert!(t.contains_edge(3, 2));
        assert!(!t.contains_edge(0, 1)); // split by vertex 3
        assert_eq!(t.hull(), &[0, 3, 1, 2]);
    }

    #[test]
    fn insert_point_outside_hull_collinear_extension() {
        // Point 3 extends the bottom edge beyond vertex 1.
        let t =
            Triangulation::build(&pts(&[(0.0, 0.0), (2.0, 0.0), (1.0, 1.0), (4.0, 0.0)])).unwrap();
        assert_eq!(t.triangles().len(), 2);
        assert!(t.is_delaunay());
        assert!(t.contains_edge(1, 3));
        assert!(t.contains_edge(2, 3));
        assert!(!t.contains_edge(0, 3));
    }

    #[test]
    fn grid_with_many_collinear_and_cocircular_points() {
        let mut coords = Vec::new();
        for i in 0..6 {
            for j in 0..6 {
                coords.push((i as f64, j as f64));
            }
        }
        let t = Triangulation::build(&pts(&coords)).unwrap();
        // Euler: for n points with h on the hull: T = 2n - h - 2.
        let n = 36;
        let h = 20; // 6x6 grid boundary
        assert_eq!(t.triangles().len(), 2 * n - h - 2);
        assert!(t.is_delaunay());
    }

    #[test]
    fn random_points_are_delaunay_and_euler_consistent() {
        // Deterministic pseudo-random points (no rand dependency needed).
        let mut coords = Vec::new();
        let mut s: u64 = 0x9E3779B97F4A7C15;
        for _ in 0..200 {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let x = ((s >> 11) as f64) / ((1u64 << 53) as f64);
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let y = ((s >> 11) as f64) / ((1u64 << 53) as f64);
            coords.push((x * 100.0, y * 100.0));
        }
        let t = Triangulation::build(&pts(&coords)).unwrap();
        assert!(t.is_delaunay());
        let n = coords.len();
        let h = t.hull().len();
        assert_eq!(t.triangles().len(), 2 * n - h - 2);
        assert_eq!(t.edges().len(), 3 * n - h - 3);
        // Adjacency is symmetric and matches the edge list.
        for &(u, v) in t.edges() {
            assert!(t.neighbors(u).contains(&v));
            assert!(t.neighbors(v).contains(&u));
        }
    }

    #[test]
    fn cocircular_points_still_triangulate() {
        // 8 points exactly on a circle (via Pythagorean-like symmetry).
        let coords = [
            (1.0, 0.0),
            (0.0, 1.0),
            (-1.0, 0.0),
            (0.0, -1.0),
            (0.6, 0.8),
            (-0.6, 0.8),
            (-0.6, -0.8),
            (0.6, -0.8),
        ];
        let t = Triangulation::build(&pts(&coords)).unwrap();
        let n = 8;
        let h = 8;
        assert_eq!(t.triangles().len(), 2 * n - h - 2);
        assert!(t.is_delaunay()); // no point strictly inside any circle
    }

    #[test]
    fn hull_matches_convex_hull_module() {
        let coords = [
            (0.0, 0.0),
            (10.0, 1.0),
            (9.0, 9.0),
            (1.0, 10.0),
            (5.0, 5.0),
            (3.0, 4.0),
            (7.0, 2.0),
        ];
        let p = pts(&coords);
        let t = Triangulation::build(&p).unwrap();
        let mut hull = t.hull().to_vec();
        let mut expect = crate::convex_hull(&p);
        // Rotate both to start at the smallest index for comparison.
        let rot = |v: &mut Vec<usize>| {
            let k = v.iter().enumerate().min_by_key(|(_, &x)| x).unwrap().0;
            v.rotate_left(k);
        };
        rot(&mut hull);
        rot(&mut expect);
        assert_eq!(hull, expect);
    }

    #[test]
    fn triangles_of_vertex() {
        let t = Triangulation::build(&pts(&[
            (0.0, 0.0),
            (4.0, 0.0),
            (4.0, 4.0),
            (0.0, 4.0),
            (2.0, 2.1),
        ]))
        .unwrap();
        assert_eq!(t.triangles_of(4).count(), 4);
        assert_eq!(t.triangles_of(0).count(), 2);
    }
}
