//! Circles and circumcircles.

use crate::{orient2d, Orientation, Point};

/// A circle given by center and radius.
///
/// Produced by [`Circle::circumscribing`] and used for visualization and
/// approximate queries. Exact containment questions should go through the
/// predicates ([`crate::in_circumcircle`], [`crate::gabriel_test`]) instead
/// of comparing floating-point distances against `radius`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Circle {
    /// Center of the circle.
    pub center: Point,
    /// Radius of the circle (non-negative).
    pub radius: f64,
}

impl Circle {
    /// Creates a circle from center and radius.
    ///
    /// # Panics
    /// Panics if `radius` is negative or NaN.
    pub fn new(center: Point, radius: f64) -> Self {
        assert!(radius >= 0.0, "circle radius must be non-negative");
        Circle { center, radius }
    }

    /// The circle through three non-collinear points.
    ///
    /// Returns `None` when the points are (exactly) collinear.
    ///
    /// # Example
    /// ```
    /// use geospan_geometry::{Circle, Point};
    /// let c = Circle::circumscribing(
    ///     Point::new(0.0, 0.0),
    ///     Point::new(2.0, 0.0),
    ///     Point::new(0.0, 2.0),
    /// ).unwrap();
    /// assert_eq!(c.center, Point::new(1.0, 1.0));
    /// assert!((c.radius - 2f64.sqrt()).abs() < 1e-12);
    /// ```
    pub fn circumscribing(a: Point, b: Point, c: Point) -> Option<Self> {
        let center = circumcenter(a, b, c)?;
        Some(Circle {
            center,
            radius: center.distance(a),
        })
    }

    /// The disk with the segment `uv` as diameter (the *Gabriel disk*).
    pub fn gabriel_disk(u: Point, v: Point) -> Self {
        Circle {
            center: u.midpoint(v),
            radius: u.distance(v) / 2.0,
        }
    }

    /// Approximate containment: is `p` inside or on the circle, up to
    /// floating-point evaluation of distances?
    pub fn contains_approx(&self, p: Point) -> bool {
        self.center.distance_sq(p) <= self.radius * self.radius
    }
}

/// Circumcenter of the triangle `(a, b, c)`, or `None` when the points are
/// exactly collinear.
///
/// The computation is relative to `a` for numerical stability; the
/// collinearity decision is exact (via [`orient2d`]), while the returned
/// coordinates are ordinary floating point.
pub fn circumcenter(a: Point, b: Point, c: Point) -> Option<Point> {
    if orient2d(a, b, c) == Orientation::Collinear {
        return None;
    }
    let bx = b.x - a.x;
    let by = b.y - a.y;
    let cx = c.x - a.x;
    let cy = c.y - a.y;
    let d = 2.0 * (bx * cy - by * cx);
    let b2 = bx * bx + by * by;
    let c2 = cx * cx + cy * cy;
    let ux = (cy * b2 - by * c2) / d;
    let uy = (bx * c2 - cx * b2) / d;
    Some(Point::new(a.x + ux, a.y + uy))
}

/// Circumradius of the triangle `(a, b, c)`, or `None` when collinear.
pub fn circumradius(a: Point, b: Point, c: Point) -> Option<f64> {
    circumcenter(a, b, c).map(|o| o.distance(a))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn circumcenter_equidistant() {
        let a = Point::new(0.3, 1.7);
        let b = Point::new(4.1, -0.2);
        let c = Point::new(2.2, 3.9);
        let o = circumcenter(a, b, c).unwrap();
        let ra = o.distance(a);
        let rb = o.distance(b);
        let rc = o.distance(c);
        assert!((ra - rb).abs() < 1e-12 * ra.max(1.0));
        assert!((ra - rc).abs() < 1e-12 * ra.max(1.0));
        assert!((circumradius(a, b, c).unwrap() - ra).abs() < 1e-12);
    }

    #[test]
    fn circumcenter_collinear_is_none() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(1.0, 1.0);
        let c = Point::new(2.0, 2.0);
        assert_eq!(circumcenter(a, b, c), None);
        assert_eq!(circumradius(a, b, c), None);
        assert_eq!(Circle::circumscribing(a, b, c), None);
    }

    #[test]
    fn gabriel_disk_geometry() {
        let d = Circle::gabriel_disk(Point::new(0.0, 0.0), Point::new(4.0, 0.0));
        assert_eq!(d.center, Point::new(2.0, 0.0));
        assert_eq!(d.radius, 2.0);
        assert!(d.contains_approx(Point::new(2.0, 1.9)));
        assert!(!d.contains_approx(Point::new(2.0, 2.1)));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_radius_rejected() {
        let _ = Circle::new(Point::ORIGIN, -1.0);
    }

    #[test]
    fn circumcenter_far_from_origin_is_stable() {
        // Translation invariance: the relative computation keeps precision
        // even when coordinates are large.
        let off = Point::new(1.0e8, -3.0e8);
        let a = Point::new(0.0, 0.0) + off;
        let b = Point::new(2.0, 0.0) + off;
        let c = Point::new(0.0, 2.0) + off;
        let o = circumcenter(a, b, c).unwrap();
        assert!((o.x - (1.0 + off.x)).abs() < 1e-6);
        assert!((o.y - (1.0 + off.y)).abs() < 1e-6);
    }
}
