//! Convex hulls.

use crate::{orient2d, Orientation, Point};

/// Indices of the convex hull of `points`, in counterclockwise order,
/// starting from the lexicographically smallest point.
///
/// Uses Andrew's monotone chain with exact orientation tests. Collinear
/// points on the hull boundary are **excluded** (only extreme points are
/// returned). Duplicate points are tolerated.
///
/// Returns the two extreme points when the input is entirely collinear,
/// and fewer than 3 indices for degenerate inputs.
///
/// # Example
/// ```
/// use geospan_geometry::{convex_hull, Point};
/// let pts = vec![
///     Point::new(0.0, 0.0),
///     Point::new(2.0, 0.0),
///     Point::new(1.0, 1.0),
///     Point::new(1.0, 0.2), // interior
///     Point::new(1.0, 0.0), // on the boundary, not extreme
/// ];
/// let hull = convex_hull(&pts);
/// assert_eq!(hull, vec![0, 1, 2]);
/// ```
pub fn convex_hull(points: &[Point]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..points.len()).collect();
    idx.sort_by(|&i, &j| points[i].lex_cmp(points[j]));
    idx.dedup_by(|&mut i, &mut j| points[i] == points[j]);
    let n = idx.len();
    if n <= 2 {
        return idx;
    }

    let mut hull: Vec<usize> = Vec::with_capacity(2 * n);
    // Lower hull.
    for &i in &idx {
        while hull.len() >= 2 {
            let a = points[hull[hull.len() - 2]];
            let b = points[hull[hull.len() - 1]];
            if orient2d(a, b, points[i]) == Orientation::CounterClockwise {
                break;
            }
            hull.pop();
        }
        hull.push(i);
    }
    // Upper hull.
    let lower_len = hull.len() + 1;
    for &i in idx.iter().rev().skip(1) {
        while hull.len() >= lower_len {
            let a = points[hull[hull.len() - 2]];
            let b = points[hull[hull.len() - 1]];
            if orient2d(a, b, points[i]) == Orientation::CounterClockwise {
                break;
            }
            hull.pop();
        }
        hull.push(i);
    }
    hull.pop(); // the starting point is repeated
    if hull.len() == 2 && points[hull[0]] == points[hull[1]] {
        hull.pop();
    }
    hull
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    #[test]
    fn square_with_interior_points() {
        let pts = vec![
            p(0., 0.),
            p(1., 0.),
            p(1., 1.),
            p(0., 1.),
            p(0.5, 0.5),
            p(0.25, 0.75),
        ];
        let h = convex_hull(&pts);
        assert_eq!(h.len(), 4);
        // CCW starting from lexicographic minimum (0,0).
        assert_eq!(h, vec![0, 1, 2, 3]);
    }

    #[test]
    fn collinear_input() {
        let pts = vec![p(0., 0.), p(2., 2.), p(1., 1.), p(3., 3.)];
        let h = convex_hull(&pts);
        // Only the two extreme points remain; no turns exist.
        assert_eq!(h, vec![0, 3]);
    }

    #[test]
    fn boundary_collinear_points_excluded() {
        let pts = vec![p(0., 0.), p(4., 0.), p(2., 0.), p(2., 2.)];
        let h = convex_hull(&pts);
        assert_eq!(h, vec![0, 1, 3]);
    }

    #[test]
    fn duplicates_and_small_inputs() {
        assert_eq!(convex_hull(&[]), Vec::<usize>::new());
        assert_eq!(convex_hull(&[p(1., 1.)]), vec![0]);
        assert_eq!(convex_hull(&[p(1., 1.), p(1., 1.)]), vec![0]);
        let h = convex_hull(&[p(0., 0.), p(1., 0.), p(0., 0.)]);
        assert_eq!(h, vec![0, 1]);
    }

    #[test]
    fn hull_is_ccw_and_convex() {
        // A rough ring of points plus noise points inside.
        let mut pts = Vec::new();
        for i in 0..24 {
            let a = i as f64 * std::f64::consts::TAU / 24.0;
            pts.push(p(10.0 * a.cos(), 10.0 * a.sin()));
        }
        for i in 0..50 {
            let a = (i as f64) * 2.399963; // golden-angle scatter
            let r = 5.0 * ((i as f64 * 0.17).sin().abs());
            pts.push(p(r * a.cos(), r * a.sin()));
        }
        let h = convex_hull(&pts);
        assert_eq!(h.len(), 24);
        for k in 0..h.len() {
            let a = pts[h[k]];
            let b = pts[h[(k + 1) % h.len()]];
            let c = pts[h[(k + 2) % h.len()]];
            assert_eq!(orient2d(a, b, c), Orientation::CounterClockwise);
        }
    }
}
