//! 2-D points and elementary vector operations.

use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// A point (or free vector) in the Euclidean plane.
///
/// Coordinates are `f64`. All *predicates* that consume points
/// ([`crate::orient2d`], [`crate::incircle`], …) are exact regardless of
/// the coordinate values; all *measures* (distances, angles) are ordinary
/// floating-point computations.
///
/// # Example
/// ```
/// use geospan_geometry::Point;
/// let a = Point::new(0.0, 0.0);
/// let b = Point::new(3.0, 4.0);
/// assert_eq!(a.distance(b), 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Point {
    /// Horizontal coordinate.
    pub x: f64,
    /// Vertical coordinate.
    pub y: f64,
}

impl Point {
    /// The origin, `(0, 0)`.
    pub const ORIGIN: Point = Point { x: 0.0, y: 0.0 };

    /// Creates a point from its coordinates.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to `other`.
    #[inline]
    pub fn distance(self, other: Point) -> f64 {
        self.distance_sq(other).sqrt()
    }

    /// Squared Euclidean distance to `other`.
    ///
    /// Prefer this over [`Point::distance`] for comparisons: it avoids the
    /// square root and is monotone in the true distance.
    #[inline]
    pub fn distance_sq(self, other: Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Euclidean norm of this point interpreted as a vector.
    #[inline]
    pub fn norm(self) -> f64 {
        self.x.hypot(self.y)
    }

    /// Squared Euclidean norm.
    #[inline]
    pub fn norm_sq(self) -> f64 {
        self.x * self.x + self.y * self.y
    }

    /// Dot product with `other` (both interpreted as vectors).
    #[inline]
    pub fn dot(self, other: Point) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// The z-component of the cross product with `other`.
    ///
    /// Positive when `other` lies counterclockwise of `self`. This is a
    /// plain floating-point evaluation; use [`crate::orient2d`] when the
    /// *sign* must be exact.
    #[inline]
    pub fn cross(self, other: Point) -> f64 {
        self.x * other.y - self.y * other.x
    }

    /// Midpoint of the segment from `self` to `other`.
    #[inline]
    pub fn midpoint(self, other: Point) -> Point {
        Point::new((self.x + other.x) / 2.0, (self.y + other.y) / 2.0)
    }

    /// Linear interpolation: `self` at `t == 0`, `other` at `t == 1`.
    #[inline]
    pub fn lerp(self, other: Point, t: f64) -> Point {
        Point::new(
            self.x + (other.x - self.x) * t,
            self.y + (other.y - self.y) * t,
        )
    }

    /// Angle of the vector from `self` to `other`, in `(-π, π]`.
    #[inline]
    pub fn angle_to(self, other: Point) -> f64 {
        (other.y - self.y).atan2(other.x - self.x)
    }

    /// True when both coordinates are finite (not NaN, not infinite).
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }

    /// Lexicographic comparison by `(x, y)`.
    ///
    /// Useful for canonical orderings of point sets. Total over all
    /// float values (including NaN) via IEEE 754 `totalOrder`.
    #[inline]
    pub fn lex_cmp(self, other: Point) -> std::cmp::Ordering {
        self.x.total_cmp(&other.x).then(self.y.total_cmp(&other.y))
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

impl Add for Point {
    type Output = Point;
    #[inline]
    fn add(self, rhs: Point) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for Point {
    type Output = Point;
    #[inline]
    fn sub(self, rhs: Point) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Mul<f64> for Point {
    type Output = Point;
    #[inline]
    fn mul(self, rhs: f64) -> Point {
        Point::new(self.x * rhs, self.y * rhs)
    }
}

impl Div<f64> for Point {
    type Output = Point;
    #[inline]
    fn div(self, rhs: f64) -> Point {
        Point::new(self.x / rhs, self.y / rhs)
    }
}

impl Neg for Point {
    type Output = Point;
    #[inline]
    fn neg(self) -> Point {
        Point::new(-self.x, -self.y)
    }
}

impl From<(f64, f64)> for Point {
    #[inline]
    fn from((x, y): (f64, f64)) -> Self {
        Point::new(x, y)
    }
}

impl From<Point> for (f64, f64) {
    #[inline]
    fn from(p: Point) -> Self {
        (p.x, p.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(3.0, -1.0);
        assert_eq!(a + b, Point::new(4.0, 1.0));
        assert_eq!(a - b, Point::new(-2.0, 3.0));
        assert_eq!(a * 2.0, Point::new(2.0, 4.0));
        assert_eq!(b / 2.0, Point::new(1.5, -0.5));
        assert_eq!(-a, Point::new(-1.0, -2.0));
    }

    #[test]
    fn distances_and_products() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.distance_sq(b), 25.0);
        assert_eq!(a.distance(b), 5.0);
        assert_eq!(b.norm(), 5.0);
        assert_eq!(b.norm_sq(), 25.0);
        assert_eq!(Point::new(1.0, 0.0).dot(Point::new(0.0, 1.0)), 0.0);
        assert_eq!(Point::new(1.0, 0.0).cross(Point::new(0.0, 1.0)), 1.0);
    }

    #[test]
    fn midpoint_and_lerp() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(2.0, 4.0);
        assert_eq!(a.midpoint(b), Point::new(1.0, 2.0));
        assert_eq!(a.lerp(b, 0.25), Point::new(0.5, 1.0));
        assert_eq!(a.lerp(b, 1.0), b);
    }

    #[test]
    fn angle_to_cardinal_directions() {
        let o = Point::ORIGIN;
        assert_eq!(o.angle_to(Point::new(1.0, 0.0)), 0.0);
        assert!((o.angle_to(Point::new(0.0, 1.0)) - std::f64::consts::FRAC_PI_2).abs() < 1e-15);
    }

    #[test]
    fn lex_cmp_total_order() {
        use std::cmp::Ordering::*;
        let a = Point::new(0.0, 1.0);
        let b = Point::new(0.0, 2.0);
        let c = Point::new(1.0, 0.0);
        assert_eq!(a.lex_cmp(b), Less);
        assert_eq!(b.lex_cmp(a), Greater);
        assert_eq!(a.lex_cmp(c), Less);
        assert_eq!(a.lex_cmp(a), Equal);
    }

    #[test]
    fn conversions() {
        let p: Point = (1.5, 2.5).into();
        assert_eq!(p, Point::new(1.5, 2.5));
        let t: (f64, f64) = p.into();
        assert_eq!(t, (1.5, 2.5));
    }

    #[test]
    fn is_finite_detects_bad_values() {
        assert!(Point::new(1.0, 2.0).is_finite());
        assert!(!Point::new(f64::NAN, 0.0).is_finite());
        assert!(!Point::new(0.0, f64::INFINITY).is_finite());
    }
}
