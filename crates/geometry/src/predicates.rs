//! Exact geometric predicates.
//!
//! Each predicate first evaluates a straightforward floating-point formula
//! together with a forward error bound (Shewchuk's static filter
//! constants). When the magnitude of the approximate result exceeds the
//! bound, its sign is provably correct and is returned directly; otherwise
//! the predicate is re-evaluated exactly with floating-point expansions.
//!
//! The exact fallback is what lets the planarity and empty-circle
//! invariants of the Delaunay structures hold verbatim on `f64` inputs.

use crate::expansion::Expansion;
use crate::Point;

/// Orientation of an ordered point triple.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Orientation {
    /// The triple makes a left turn (counterclockwise).
    CounterClockwise,
    /// The points are collinear.
    Collinear,
    /// The triple makes a right turn (clockwise).
    Clockwise,
}

impl Orientation {
    /// Converts the sign of a determinant into an [`Orientation`].
    #[inline]
    fn from_sign(s: i32) -> Self {
        match s.cmp(&0) {
            std::cmp::Ordering::Greater => Orientation::CounterClockwise,
            std::cmp::Ordering::Equal => Orientation::Collinear,
            std::cmp::Ordering::Less => Orientation::Clockwise,
        }
    }

    /// `1`, `0` or `-1` for CCW, collinear and CW respectively.
    #[inline]
    pub fn sign(self) -> i32 {
        match self {
            Orientation::CounterClockwise => 1,
            Orientation::Collinear => 0,
            Orientation::Clockwise => -1,
        }
    }
}

/// Position of a query point relative to a circle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CirclePosition {
    /// Strictly inside the circle.
    Inside,
    /// Exactly on the circle.
    On,
    /// Strictly outside the circle.
    Outside,
}

// Error-bound coefficients from Shewchuk (1997). `EPS` is the machine
// epsilon for rounding (2^-53), i.e. half of `f64::EPSILON`.
const EPS: f64 = f64::EPSILON / 2.0;
const CCW_ERR_BOUND: f64 = (3.0 + 16.0 * EPS) * EPS;
const ICC_ERR_BOUND: f64 = (10.0 + 96.0 * EPS) * EPS;

/// Exact orientation test: does the path `a -> b -> c` turn left, go
/// straight, or turn right?
///
/// Equivalent to the sign of the determinant
/// `| b.x-a.x  b.y-a.y ; c.x-a.x  c.y-a.y |`, evaluated exactly.
///
/// # Example
/// ```
/// use geospan_geometry::{orient2d, Orientation, Point};
/// let a = Point::new(0.0, 0.0);
/// let b = Point::new(1.0, 0.0);
/// assert_eq!(orient2d(a, b, Point::new(0.0, 1.0)), Orientation::CounterClockwise);
/// assert_eq!(orient2d(a, b, Point::new(2.0, 0.0)), Orientation::Collinear);
/// assert_eq!(orient2d(a, b, Point::new(0.0, -1.0)), Orientation::Clockwise);
/// ```
#[inline]
pub fn orient2d(a: Point, b: Point, c: Point) -> Orientation {
    let detleft = (a.x - c.x) * (b.y - c.y);
    let detright = (a.y - c.y) * (b.x - c.x);
    let det = detleft - detright;

    let detsum = if detleft > 0.0 {
        if detright <= 0.0 {
            return Orientation::from_sign(sign_of(det));
        }
        detleft + detright
    } else if detleft < 0.0 {
        if detright >= 0.0 {
            return Orientation::from_sign(sign_of(det));
        }
        -(detleft + detright)
    } else {
        return Orientation::from_sign(sign_of(det));
    };

    if det.abs() >= CCW_ERR_BOUND * detsum {
        return Orientation::from_sign(sign_of(det));
    }
    Orientation::from_sign(orient2d_exact(a, b, c))
}

#[inline]
fn sign_of(v: f64) -> i32 {
    if v > 0.0 {
        1
    } else if v < 0.0 {
        -1
    } else {
        0
    }
}

/// Exact evaluation of the orientation determinant via expansions.
///
/// Out-of-line and cold: the static filter above resolves almost every
/// call, so keeping the expansion arithmetic out of the inlined fast
/// path is what makes `orient2d` cheap at its (hot) call sites.
#[cold]
#[inline(never)]
fn orient2d_exact(a: Point, b: Point, c: Point) -> i32 {
    let acx = Expansion::from_diff(a.x, c.x);
    let acy = Expansion::from_diff(a.y, c.y);
    let bcx = Expansion::from_diff(b.x, c.x);
    let bcy = Expansion::from_diff(b.y, c.y);
    let left = acx.mul(&bcy);
    let right = acy.mul(&bcx);
    left.sub(&right).sign()
}

/// Exact in-circle test.
///
/// For a **counterclockwise** triangle `(a, b, c)`, reports whether `d`
/// lies inside, on, or outside the circumcircle of the triangle. For a
/// clockwise triangle the inside/outside answers are swapped (use
/// [`in_circumcircle`] for an orientation-independent test).
///
/// # Example
/// ```
/// use geospan_geometry::{incircle, CirclePosition, Point};
/// let a = Point::new(0.0, 0.0);
/// let b = Point::new(2.0, 0.0);
/// let c = Point::new(0.0, 2.0); // CCW triangle, circumcircle centered (1,1), r = √2
/// assert_eq!(incircle(a, b, c, Point::new(1.0, 1.0)), CirclePosition::Inside);
/// assert_eq!(incircle(a, b, c, Point::new(2.0, 2.0)), CirclePosition::On);
/// assert_eq!(incircle(a, b, c, Point::new(3.0, 3.0)), CirclePosition::Outside);
/// ```
#[inline]
pub fn incircle(a: Point, b: Point, c: Point, d: Point) -> CirclePosition {
    let adx = a.x - d.x;
    let ady = a.y - d.y;
    let bdx = b.x - d.x;
    let bdy = b.y - d.y;
    let cdx = c.x - d.x;
    let cdy = c.y - d.y;

    let bdxcdy = bdx * cdy;
    let cdxbdy = cdx * bdy;
    let alift = adx * adx + ady * ady;

    let cdxady = cdx * ady;
    let adxcdy = adx * cdy;
    let blift = bdx * bdx + bdy * bdy;

    let adxbdy = adx * bdy;
    let bdxady = bdx * ady;
    let clift = cdx * cdx + cdy * cdy;

    let det = alift * (bdxcdy - cdxbdy) + blift * (cdxady - adxcdy) + clift * (adxbdy - bdxady);

    let permanent = (bdxcdy.abs() + cdxbdy.abs()) * alift
        + (cdxady.abs() + adxcdy.abs()) * blift
        + (adxbdy.abs() + bdxady.abs()) * clift;

    let sign = if det.abs() > ICC_ERR_BOUND * permanent {
        sign_of(det)
    } else {
        incircle_exact(a, b, c, d)
    };
    match sign.cmp(&0) {
        std::cmp::Ordering::Greater => CirclePosition::Inside,
        std::cmp::Ordering::Equal => CirclePosition::On,
        std::cmp::Ordering::Less => CirclePosition::Outside,
    }
}

/// Exact evaluation of the in-circle determinant via expansions.
///
/// Out-of-line and cold for the same reason as [`orient2d_exact`].
#[cold]
#[inline(never)]
fn incircle_exact(a: Point, b: Point, c: Point, d: Point) -> i32 {
    let adx = Expansion::from_diff(a.x, d.x);
    let ady = Expansion::from_diff(a.y, d.y);
    let bdx = Expansion::from_diff(b.x, d.x);
    let bdy = Expansion::from_diff(b.y, d.y);
    let cdx = Expansion::from_diff(c.x, d.x);
    let cdy = Expansion::from_diff(c.y, d.y);

    let alift = adx.mul(&adx).add(&ady.mul(&ady));
    let blift = bdx.mul(&bdx).add(&bdy.mul(&bdy));
    let clift = cdx.mul(&cdx).add(&cdy.mul(&cdy));

    let bcdet = bdx.mul(&cdy).sub(&cdx.mul(&bdy));
    let cadet = cdx.mul(&ady).sub(&adx.mul(&cdy));
    let abdet = adx.mul(&bdy).sub(&bdx.mul(&ady));

    alift
        .mul(&bcdet)
        .add(&blift.mul(&cadet))
        .add(&clift.mul(&abdet))
        .sign()
}

/// Orientation-independent circumcircle membership test.
///
/// Reports the position of `p` relative to the circumcircle of the
/// (non-degenerate) triangle `{a, b, c}` given in **any** vertex order.
///
/// # Panics
/// Panics if `a`, `b`, `c` are collinear (no circumcircle exists).
///
/// # Example
/// ```
/// use geospan_geometry::{in_circumcircle, CirclePosition, Point};
/// let (a, b, c) = (Point::new(0.0, 0.0), Point::new(0.0, 2.0), Point::new(2.0, 0.0));
/// assert_eq!(in_circumcircle(a, b, c, Point::new(1.0, 1.0)), CirclePosition::Inside);
/// ```
pub fn in_circumcircle(a: Point, b: Point, c: Point, p: Point) -> CirclePosition {
    match orient2d(a, b, c) {
        Orientation::CounterClockwise => incircle(a, b, c, p),
        Orientation::Clockwise => incircle(a, c, b, p),
        Orientation::Collinear => {
            // geospan-analyze: allow(D11, documented precondition panic: the docs above require a non-degenerate triangle)
            panic!("in_circumcircle: degenerate (collinear) triangle {a}, {b}, {c}")
        }
    }
}

/// Exact Gabriel-disk test: does `p` *block* the Gabriel edge `uv`, i.e.
/// does `p` lie in the **closed** disk with diameter segment `uv`
/// (excluding the endpoints themselves)?
///
/// `p` is in that closed disk exactly when the angle `∠ u p v` is at
/// least a right angle, i.e. when `(u - p) · (v - p) <= 0`; the dot
/// product's sign is evaluated exactly.
///
/// The closed disk (rather than the open one) is used so that boundary
/// ties — four cocircular nodes on a perfect grid, say — cannot leave two
/// crossing edges both classified as Gabriel edges: planarity of the
/// Gabriel graph then holds unconditionally, while the minimum spanning
/// tree containment (and hence connectivity) is unaffected.
///
/// # Example
/// ```
/// use geospan_geometry::{gabriel_test, Point};
/// let u = Point::new(0.0, 0.0);
/// let v = Point::new(2.0, 0.0);
/// assert!(gabriel_test(u, v, Point::new(1.0, 0.5)));
/// assert!(gabriel_test(u, v, Point::new(1.0, 1.0))); // boundary blocks
/// assert!(!gabriel_test(u, v, Point::new(1.0, 1.5)));
/// assert!(!gabriel_test(u, v, u)); // endpoints never block
/// ```
#[inline]
pub fn gabriel_test(u: Point, v: Point, p: Point) -> bool {
    if p == u || p == v {
        return false;
    }
    // Filtered evaluation of dot = (u-p)·(v-p).
    let ux = u.x - p.x;
    let uy = u.y - p.y;
    let vx = v.x - p.x;
    let vy = v.y - p.y;
    let t1 = ux * vx;
    let t2 = uy * vy;
    let dot = t1 + t2;
    let permanent = t1.abs() + t2.abs();
    // Same error structure as a 2-term determinant.
    if dot.abs() > CCW_ERR_BOUND * permanent {
        return dot < 0.0;
    }
    gabriel_exact(u, v, p)
}

/// Exact evaluation of the Gabriel dot-product sign via expansions.
///
/// Out-of-line and cold for the same reason as [`orient2d_exact`].
#[cold]
#[inline(never)]
fn gabriel_exact(u: Point, v: Point, p: Point) -> bool {
    let ex = Expansion::from_diff(u.x, p.x);
    let ey = Expansion::from_diff(u.y, p.y);
    let fx = Expansion::from_diff(v.x, p.x);
    let fy = Expansion::from_diff(v.y, p.y);
    ex.mul(&fx).add(&ey.mul(&fy)).sign() <= 0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    #[test]
    fn orient2d_basic() {
        assert_eq!(
            orient2d(p(0.0, 0.0), p(1.0, 0.0), p(1.0, 1.0)),
            Orientation::CounterClockwise
        );
        assert_eq!(
            orient2d(p(0.0, 0.0), p(1.0, 0.0), p(1.0, -1.0)),
            Orientation::Clockwise
        );
        assert_eq!(
            orient2d(p(0.0, 0.0), p(1.0, 0.0), p(2.0, 0.0)),
            Orientation::Collinear
        );
    }

    #[test]
    fn orient2d_is_antisymmetric() {
        let a = p(0.1, 0.2);
        let b = p(0.9, 0.3);
        let c = p(0.4, 0.8);
        assert_eq!(orient2d(a, b, c).sign(), -orient2d(b, a, c).sign());
        assert_eq!(orient2d(a, b, c).sign(), orient2d(b, c, a).sign());
        assert_eq!(orient2d(a, b, c).sign(), orient2d(c, a, b).sign());
    }

    #[test]
    fn orient2d_nearly_collinear_is_exact() {
        // Classic robustness torture: points on a line y = x with tiny
        // perturbations at the limit of double precision.
        let a = p(0.5, 0.5);
        let b = p(12.0, 12.0);
        for i in 0..64 {
            let x = 0.5 + (i as f64) * f64::EPSILON;
            for j in 0..64 {
                let y = 0.5 + (j as f64) * f64::EPSILON;
                let o = orient2d(a, b, p(x, y));
                // Ground truth from exact rational reasoning: sign of
                // (b-a) × (c-a) = 11.5*(y-0.5) - 11.5*(x-0.5), i.e. the
                // sign of j - i (the epsilon steps are exact here).
                let expected = match j.cmp(&i) {
                    std::cmp::Ordering::Greater => Orientation::CounterClockwise,
                    std::cmp::Ordering::Equal => Orientation::Collinear,
                    std::cmp::Ordering::Less => Orientation::Clockwise,
                };
                assert_eq!(o, expected, "i={i} j={j}");
            }
        }
    }

    #[test]
    fn incircle_basic() {
        let a = p(0.0, 0.0);
        let b = p(1.0, 0.0);
        let c = p(0.0, 1.0); // CCW
        assert_eq!(incircle(a, b, c, p(0.5, 0.5)), CirclePosition::Inside);
        assert_eq!(incircle(a, b, c, p(1.0, 1.0)), CirclePosition::On);
        assert_eq!(incircle(a, b, c, p(5.0, 5.0)), CirclePosition::Outside);
    }

    #[test]
    fn incircle_orientation_dependence() {
        let a = p(0.0, 0.0);
        let b = p(1.0, 0.0);
        let c = p(0.0, 1.0);
        let q = p(0.5, 0.5);
        // Swapping two vertices flips the answer.
        assert_eq!(incircle(a, c, b, q), CirclePosition::Outside);
        // in_circumcircle normalizes.
        assert_eq!(in_circumcircle(a, c, b, q), CirclePosition::Inside);
        assert_eq!(in_circumcircle(a, b, c, q), CirclePosition::Inside);
    }

    #[test]
    fn incircle_cocircular_points_are_on() {
        // Four points of a unit circle centered at an exactly
        // representable (dyadic) offset, so the input is exactly
        // cocircular.
        let cx = 0.5;
        let cy = 0.25;
        let a = p(cx + 1.0, cy);
        let b = p(cx, cy + 1.0);
        let c = p(cx - 1.0, cy);
        let d = p(cx, cy - 1.0);
        assert_eq!(in_circumcircle(a, b, c, d), CirclePosition::On);
    }

    #[test]
    fn incircle_tiny_perturbation_is_detected() {
        let a = p(1.0, 0.0);
        let b = p(0.0, 1.0);
        let c = p(-1.0, 0.0);
        let just_in = p(0.0, -1.0 + f64::EPSILON);
        let just_out = p(0.0, -1.0 - 2.0 * f64::EPSILON);
        assert_eq!(in_circumcircle(a, b, c, just_in), CirclePosition::Inside);
        assert_eq!(in_circumcircle(a, b, c, just_out), CirclePosition::Outside);
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn in_circumcircle_rejects_collinear() {
        in_circumcircle(p(0.0, 0.0), p(1.0, 0.0), p(2.0, 0.0), p(0.0, 1.0));
    }

    #[test]
    fn gabriel_test_boundary_cases() {
        let u = p(0.0, 0.0);
        let v = p(2.0, 0.0);
        assert!(gabriel_test(u, v, p(1.0, 0.0))); // center of the disk
        assert!(!gabriel_test(u, v, u)); // endpoints never block
        assert!(!gabriel_test(u, v, v));
        assert!(!gabriel_test(u, v, p(0.0, 2.0)));
        // Exactly on the circle of diameter uv: blocks (closed disk).
        assert!(gabriel_test(u, v, p(1.0, 1.0)));
        // Just outside the boundary circle: free.
        assert!(!gabriel_test(u, v, p(1.0, 1.0 + 1e-9)));
    }
}
