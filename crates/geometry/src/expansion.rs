//! Floating-point expansion arithmetic.
//!
//! An *expansion* represents a real number exactly as a sum of
//! non-overlapping `f64` components, ordered from smallest to largest
//! magnitude. The operations here follow Shewchuk, *Adaptive Precision
//! Floating-Point Arithmetic and Fast Robust Geometric Predicates*
//! (Discrete & Computational Geometry 18, 1997): every operation is exact,
//! so the sign of the final expansion equals the sign of the real value it
//! represents.
//!
//! This module is internal: the public crate surface exposes only the
//! predicates built on top of it.

/// Exact sum of two doubles: returns `(hi, lo)` with `hi + lo == a + b`
/// exactly and `hi == fl(a + b)`.
#[inline]
pub(crate) fn two_sum(a: f64, b: f64) -> (f64, f64) {
    let hi = a + b;
    let bv = hi - a;
    let av = hi - bv;
    let lo = (a - av) + (b - bv);
    (hi, lo)
}

/// Exact difference of two doubles: returns `(hi, lo)` with
/// `hi + lo == a - b` exactly.
#[inline]
pub(crate) fn two_diff(a: f64, b: f64) -> (f64, f64) {
    let hi = a - b;
    let bv = a - hi;
    let av = hi + bv;
    let lo = (a - av) + (bv - b);
    (hi, lo)
}

/// Exact product of two doubles: returns `(hi, lo)` with
/// `hi + lo == a * b` exactly, using a fused multiply-add.
#[inline]
pub(crate) fn two_product(a: f64, b: f64) -> (f64, f64) {
    let hi = a * b;
    let lo = a.mul_add(b, -hi);
    (hi, lo)
}

/// An exact multi-component floating-point value.
///
/// Components are stored in increasing order of magnitude and are
/// non-overlapping; the represented value is the exact sum of all
/// components. Zero components are eliminated eagerly.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Expansion(Vec<f64>);

impl Expansion {
    /// The zero expansion.
    pub(crate) fn zero() -> Self {
        Expansion(Vec::new())
    }

    /// An expansion holding a single double.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn from_f64(v: f64) -> Self {
        if v == 0.0 {
            Self::zero()
        } else {
            Expansion(vec![v])
        }
    }

    /// The exact value `a - b` as a two-component expansion.
    pub(crate) fn from_diff(a: f64, b: f64) -> Self {
        let (hi, lo) = two_diff(a, b);
        Self::from_parts(hi, lo)
    }

    /// The exact value `a * b` as a two-component expansion.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn from_product(a: f64, b: f64) -> Self {
        let (hi, lo) = two_product(a, b);
        Self::from_parts(hi, lo)
    }

    fn from_parts(hi: f64, lo: f64) -> Self {
        let mut c = Vec::with_capacity(2);
        if lo != 0.0 {
            c.push(lo);
        }
        if hi != 0.0 {
            c.push(hi);
        }
        Expansion(c)
    }

    /// Exact sum of two expansions (Shewchuk's `linear_expansion_sum` with
    /// zero elimination).
    ///
    /// The linear variant is used (rather than `fast_expansion_sum`)
    /// because it only requires its inputs to be nonoverlapping — the
    /// invariant every operation in this module maintains — whereas the
    /// fast variant needs the stronger "strongly nonoverlapping" property.
    pub(crate) fn add(&self, other: &Expansion) -> Expansion {
        let e = &self.0;
        let f = &other.0;
        if e.is_empty() {
            return other.clone();
        }
        if f.is_empty() {
            return self.clone();
        }
        // Merge the two component sequences by increasing magnitude.
        let mut g = Vec::with_capacity(e.len() + f.len());
        let (mut i, mut j) = (0, 0);
        while i < e.len() && j < f.len() {
            if e[i].abs() <= f[j].abs() {
                g.push(e[i]);
                i += 1;
            } else {
                g.push(f[j]);
                j += 1;
            }
        }
        g.extend_from_slice(&e[i..]);
        g.extend_from_slice(&f[j..]);

        if g.len() == 1 {
            return Expansion(g);
        }
        let mut h = Vec::with_capacity(g.len());
        // Invariant: `big + small` is the exact sum of the components
        // consumed so far, minus the components already emitted into `h`.
        let (mut big, mut small) = two_sum(g[1], g[0]);
        for &gi in &g[2..] {
            let (r, emit) = two_sum(gi, small);
            if emit != 0.0 {
                h.push(emit);
            }
            let (b, s) = two_sum(big, r);
            big = b;
            small = s;
        }
        if small != 0.0 {
            h.push(small);
        }
        if big != 0.0 {
            h.push(big);
        }
        Expansion(h)
    }

    /// Exact difference `self - other`.
    pub(crate) fn sub(&self, other: &Expansion) -> Expansion {
        self.add(&other.negate())
    }

    /// Exact negation.
    pub(crate) fn negate(&self) -> Expansion {
        Expansion(self.0.iter().map(|&c| -c).collect())
    }

    /// Exact product with a single double (Shewchuk's `scale_expansion`
    /// with zero elimination).
    pub(crate) fn scale(&self, b: f64) -> Expansion {
        if self.0.is_empty() || b == 0.0 {
            return Expansion::zero();
        }
        let e = &self.0;
        let mut h = Vec::with_capacity(2 * e.len());
        let (mut q, lo) = two_product(e[0], b);
        if lo != 0.0 {
            h.push(lo);
        }
        for &ei in &e[1..] {
            let (phi, plo) = two_product(ei, b);
            let (sum, err) = two_sum(q, plo);
            if err != 0.0 {
                h.push(err);
            }
            let (newq, err2) = two_sum(phi, sum);
            if err2 != 0.0 {
                h.push(err2);
            }
            q = newq;
        }
        if q != 0.0 {
            h.push(q);
        }
        Expansion(h)
    }

    /// Exact product of two expansions (distribute-and-sum).
    pub(crate) fn mul(&self, other: &Expansion) -> Expansion {
        let mut acc = Expansion::zero();
        for &c in &other.0 {
            acc = acc.add(&self.scale(c));
        }
        acc
    }

    /// The sign of the exact value: `-1`, `0`, or `1`.
    ///
    /// Because components are non-overlapping and ordered by magnitude, the
    /// sign of the last (largest) component is the sign of the sum.
    pub(crate) fn sign(&self) -> i32 {
        match self.0.last() {
            None => 0,
            Some(&c) if c > 0.0 => 1,
            Some(&c) if c < 0.0 => -1,
            _ => 0,
        }
    }

    /// Floating-point approximation of the exact value.
    #[cfg(test)]
    pub(crate) fn estimate(&self) -> f64 {
        self.0.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_sum_is_exact() {
        let (hi, lo) = two_sum(1e16, 1.0);
        assert_eq!(hi, 1e16); // 1.0 is lost in the rounded sum...
        assert_eq!(lo, 1.0); // ...but recovered exactly in the tail.
    }

    #[test]
    fn two_diff_is_exact() {
        let (hi, lo) = two_diff(1e16, 1.0);
        assert_eq!(hi + lo, 1e16 - 1.0);
        let tiny = f64::MIN_POSITIVE;
        let (hi, lo) = two_diff(1.0 + f64::EPSILON, 1.0);
        assert_eq!(hi, f64::EPSILON);
        assert_eq!(lo, 0.0);
        let _ = tiny;
    }

    #[test]
    fn two_product_is_exact() {
        // (1 + 2^-30)^2 = 1 + 2^-29 + 2^-60: the last term does not fit in
        // one double together with the rest.
        let a = 1.0 + 2f64.powi(-30);
        let (hi, lo) = two_product(a, a);
        assert_eq!(hi, 1.0 + 2f64.powi(-29));
        assert_eq!(lo, 2f64.powi(-60));
    }

    #[test]
    fn expansion_add_sub_roundtrip() {
        let a = Expansion::from_product(1e20, 1.0 + 2f64.powi(-40));
        let b = Expansion::from_f64(3.5);
        let s = a.add(&b);
        let back = s.sub(&b);
        assert_eq!(back, a);
    }

    #[test]
    fn expansion_sign_detects_tiny_differences() {
        // x = (1 + eps)^2 - (1 + 2 eps) = eps^2 > 0, far below f64
        // resolution of the naive evaluation.
        let eps = f64::EPSILON;
        let a = Expansion::from_f64(1.0 + eps).mul(&Expansion::from_f64(1.0 + eps));
        let b = Expansion::from_f64(1.0).add(&Expansion::from_f64(2.0 * eps));
        let d = a.sub(&b);
        assert_eq!(d.sign(), 1);
        assert_eq!(d.estimate(), eps * eps);
    }

    #[test]
    fn expansion_mul_matches_integer_arithmetic() {
        // Use values representable exactly; compare against i128 products.
        let xs = [3.0, -7.0, 255.0, -1024.0, 1.0e6];
        for &x in &xs {
            for &y in &xs {
                let e = Expansion::from_f64(x).mul(&Expansion::from_f64(y));
                assert_eq!(e.estimate(), x * y);
                assert_eq!(e.sign(), ((x * y) as i128).signum() as i32);
            }
        }
    }

    #[test]
    fn zero_handling() {
        let z = Expansion::zero();
        assert_eq!(z.sign(), 0);
        assert_eq!(z.add(&z).sign(), 0);
        assert_eq!(Expansion::from_f64(0.0).sign(), 0);
        assert_eq!(Expansion::from_f64(2.0).scale(0.0).sign(), 0);
        assert_eq!(Expansion::from_f64(2.0).mul(&z).sign(), 0);
        let a = Expansion::from_f64(5.0);
        assert_eq!(a.sub(&a).sign(), 0);
    }
}
