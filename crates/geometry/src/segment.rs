//! Exact segment intersection tests.
//!
//! Planarity checking of the constructed topologies reduces to "do any two
//! edges cross?", so these tests must be exact: they are built entirely on
//! [`orient2d`].

use crate::{orient2d, Orientation, Point};

/// How two segments intersect.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SegmentIntersection {
    /// The segments share no point.
    None,
    /// The segments cross at a single interior point of both.
    Proper,
    /// The segments touch at an endpoint of at least one of them, or
    /// overlap collinearly.
    Touching,
}

/// Classifies the intersection of segment `ab` with segment `cd`, exactly.
///
/// * [`SegmentIntersection::Proper`]: a single common point interior to
///   both segments — this is what "two edges cross" means for planarity.
/// * [`SegmentIntersection::Touching`]: common endpoints, an endpoint in
///   the interior of the other segment, or collinear overlap.
/// * [`SegmentIntersection::None`] — disjoint.
///
/// # Example
/// ```
/// use geospan_geometry::{segments_cross, SegmentIntersection, Point};
/// let p = |x, y| Point::new(x, y);
/// assert_eq!(
///     segments_cross(p(0., 0.), p(2., 2.), p(0., 2.), p(2., 0.)),
///     SegmentIntersection::Proper
/// );
/// assert_eq!(
///     segments_cross(p(0., 0.), p(1., 0.), p(1., 0.), p(2., 1.)),
///     SegmentIntersection::Touching
/// );
/// assert_eq!(
///     segments_cross(p(0., 0.), p(1., 0.), p(0., 1.), p(1., 1.)),
///     SegmentIntersection::None
/// );
/// ```
pub fn segments_cross(a: Point, b: Point, c: Point, d: Point) -> SegmentIntersection {
    let o1 = orient2d(a, b, c);
    let o2 = orient2d(a, b, d);
    let o3 = orient2d(c, d, a);
    let o4 = orient2d(c, d, b);

    use Orientation::Collinear;
    if o1 != Collinear && o2 != Collinear && o3 != Collinear && o4 != Collinear {
        if o1 != o2 && o3 != o4 {
            return SegmentIntersection::Proper;
        }
        return SegmentIntersection::None;
    }

    // At least one collinear triple: the segments can only touch or
    // overlap, never properly cross.
    if o1 == Collinear && on_segment(a, b, c) {
        return SegmentIntersection::Touching;
    }
    if o2 == Collinear && on_segment(a, b, d) {
        return SegmentIntersection::Touching;
    }
    if o3 == Collinear && on_segment(c, d, a) {
        return SegmentIntersection::Touching;
    }
    if o4 == Collinear && on_segment(c, d, b) {
        return SegmentIntersection::Touching;
    }
    // With at least one collinear triple and no on-segment containment,
    // the segments cannot meet.
    SegmentIntersection::None
}

/// True when segments `ab` and `cd` intersect at a point interior to both
/// (a *proper* crossing): exactly the situation a planar graph forbids
/// between two edges that do not share an endpoint.
///
/// Equivalent to `segments_cross(a, b, c, d) == Proper` but skips the
/// second orientation pair when the first one already rules a proper
/// crossing out — collinear or same-side cases can at most touch.
#[inline]
pub fn segments_properly_cross(a: Point, b: Point, c: Point, d: Point) -> bool {
    use Orientation::Collinear;
    let o1 = orient2d(a, b, c);
    let o2 = orient2d(a, b, d);
    if o1 == Collinear || o2 == Collinear || o1 == o2 {
        return false;
    }
    let o3 = orient2d(c, d, a);
    let o4 = orient2d(c, d, b);
    o3 != Collinear && o4 != Collinear && o3 != o4
}

/// Given that `p` is collinear with `a` and `b`, is `p` on the closed
/// segment `ab`?
fn on_segment(a: Point, b: Point, p: Point) -> bool {
    p.x >= a.x.min(b.x) && p.x <= a.x.max(b.x) && p.y >= a.y.min(b.y) && p.y <= a.y.max(b.y)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    #[test]
    fn proper_crossing() {
        assert_eq!(
            segments_cross(p(0., 0.), p(4., 4.), p(0., 4.), p(4., 0.)),
            SegmentIntersection::Proper
        );
        assert!(segments_properly_cross(
            p(0., 0.),
            p(4., 4.),
            p(0., 4.),
            p(4., 0.)
        ));
    }

    #[test]
    fn disjoint_segments() {
        assert_eq!(
            segments_cross(p(0., 0.), p(1., 0.), p(2., 0.1), p(3., 1.)),
            SegmentIntersection::None
        );
        assert!(!segments_properly_cross(
            p(0., 0.),
            p(1., 0.),
            p(2., 0.1),
            p(3., 1.)
        ));
    }

    #[test]
    fn shared_endpoint_is_touching() {
        assert_eq!(
            segments_cross(p(0., 0.), p(1., 1.), p(1., 1.), p(2., 0.)),
            SegmentIntersection::Touching
        );
    }

    #[test]
    fn endpoint_on_interior_is_touching() {
        // c lies in the middle of ab.
        assert_eq!(
            segments_cross(p(0., 0.), p(2., 0.), p(1., 0.), p(1., 5.)),
            SegmentIntersection::Touching
        );
        // T-junction the other way around.
        assert_eq!(
            segments_cross(p(1., 0.), p(1., 5.), p(0., 0.), p(2., 0.)),
            SegmentIntersection::Touching
        );
    }

    #[test]
    fn collinear_overlap_is_touching() {
        assert_eq!(
            segments_cross(p(0., 0.), p(3., 0.), p(1., 0.), p(5., 0.)),
            SegmentIntersection::Touching
        );
    }

    #[test]
    fn collinear_disjoint_is_none() {
        assert_eq!(
            segments_cross(p(0., 0.), p(1., 0.), p(2., 0.), p(3., 0.)),
            SegmentIntersection::None
        );
    }

    #[test]
    fn near_miss_is_exact() {
        // Segment cd passes within one ulp of b but does not touch it.
        let b = p(1.0, 1.0);
        let eps = f64::EPSILON;
        assert_eq!(
            segments_cross(p(0., 0.), b, p(0.0, 1.0 + eps), p(2.0, 1.0 + eps)),
            SegmentIntersection::None
        );
        // And exactly through b: touching.
        assert_eq!(
            segments_cross(p(0., 0.), b, p(0.0, 1.0), p(2.0, 1.0)),
            SegmentIntersection::Touching
        );
    }

    #[test]
    fn degenerate_zero_length_segment() {
        // A zero-length segment on another segment touches it.
        assert_eq!(
            segments_cross(p(1., 0.), p(1., 0.), p(0., 0.), p(2., 0.)),
            SegmentIntersection::Touching
        );
        // And off it: none.
        assert_eq!(
            segments_cross(p(1., 1.), p(1., 1.), p(0., 0.), p(2., 0.)),
            SegmentIntersection::None
        );
    }
}
