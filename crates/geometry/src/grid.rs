//! A uniform grid over axis-aligned bounding boxes, for sub-quadratic
//! crossing detection.
//!
//! The planarity checks and the `PLDel` crossing-triangle removal both
//! need "which pairs of short objects might intersect?". All objects in
//! those workloads (UDG edges, localized-Delaunay triangles) have
//! diameter at most the transmission radius, so a uniform grid with cell
//! size on that order puts every object into `O(1)` cells and every
//! candidate pair shares a cell. [`UniformGrid::candidate_pairs`]
//! enumerates each such pair exactly once; callers then run the exact
//! predicates only on the candidates, replacing the `O(m²)` pairwise
//! loops with `O(m + candidates)` work.

use crate::Point;

/// A uniform grid indexing items by their axis-aligned bounding box.
///
/// # Example
/// ```
/// use geospan_geometry::{Point, UniformGrid};
/// // Two crossing segments and one far away.
/// let segs = [
///     (Point::new(0., 0.), Point::new(2., 2.)),
///     (Point::new(0., 2.), Point::new(2., 0.)),
///     (Point::new(50., 50.), Point::new(51., 51.)),
/// ];
/// let grid = UniformGrid::from_segments(&segs, None);
/// assert_eq!(grid.candidate_pairs(), vec![(0, 1)]);
/// ```
#[derive(Debug, Clone)]
pub struct UniformGrid {
    /// Minimum corner of the indexed area.
    origin: Point,
    /// Cell side length.
    cell: f64,
    cols: usize,
    rows: usize,
    /// Per-item inclusive cell range `(c0, r0, c1, r1)`.
    ranges: Vec<(u32, u32, u32, u32)>,
    /// `cols × rows` buckets of item ids, row-major, each ascending.
    cells: Vec<Vec<u32>>,
}

/// Grow total cell count at most this factor beyond the item count, so
/// sparse-but-wide inputs cannot blow up memory.
const CELL_BUDGET_FACTOR: usize = 4;

impl UniformGrid {
    /// Indexes axis-aligned boxes given as `(min, max)` corner pairs.
    ///
    /// `cell_hint` is the intended cell side (the transmission radius in
    /// the spanner pipelines). When `None`, the largest box dimension is
    /// used, which guarantees every box overlaps at most 2×2 cells. The
    /// cell is enlarged as needed to respect an `O(len)` total-cell
    /// budget.
    ///
    /// # Panics
    /// Panics if a coordinate is NaN or infinite, or a box has
    /// `min > max` in some coordinate.
    pub fn from_boxes(boxes: &[(Point, Point)], cell_hint: Option<f64>) -> UniformGrid {
        let m = boxes.len();
        let mut lo = Point::new(f64::INFINITY, f64::INFINITY);
        let mut hi = Point::new(f64::NEG_INFINITY, f64::NEG_INFINITY);
        let mut max_dim = 0.0f64;
        for &(a, b) in boxes {
            assert!(
                a.is_finite() && b.is_finite(),
                "grid boxes need finite coordinates"
            );
            assert!(a.x <= b.x && a.y <= b.y, "box min must not exceed its max");
            lo = Point::new(lo.x.min(a.x), lo.y.min(a.y));
            hi = Point::new(hi.x.max(b.x), hi.y.max(b.y));
            max_dim = max_dim.max(b.x - a.x).max(b.y - a.y);
        }
        if m == 0 {
            return UniformGrid {
                origin: Point::ORIGIN,
                cell: 1.0,
                cols: 1,
                rows: 1,
                ranges: Vec::new(),
                cells: vec![Vec::new()],
            };
        }
        let mut cell = match cell_hint {
            Some(c) if c > 0.0 && c.is_finite() => c.max(max_dim / 64.0),
            _ => max_dim,
        };
        if cell <= 0.0 {
            cell = 1.0; // all boxes are points at one location
        }
        let span_x = (hi.x - lo.x).max(0.0);
        let span_y = (hi.y - lo.y).max(0.0);
        // Enforce the cell budget by doubling the cell size; terminates
        // because dims at least halve each round.
        let budget = (CELL_BUDGET_FACTOR * m).max(64);
        let dims = |cell: f64| {
            let cols = (span_x / cell).floor() as usize + 1;
            let rows = (span_y / cell).floor() as usize + 1;
            (cols, rows)
        };
        let (mut cols, mut rows) = dims(cell);
        while cols.saturating_mul(rows) > budget {
            cell *= 2.0;
            (cols, rows) = dims(cell);
        }

        let mut grid = UniformGrid {
            origin: lo,
            cell,
            cols,
            rows,
            ranges: Vec::with_capacity(m),
            cells: vec![Vec::new(); cols * rows],
        };
        for (i, &(a, b)) in boxes.iter().enumerate() {
            let (c0, r0) = grid.cell_of(a);
            let (c1, r1) = grid.cell_of(b);
            grid.ranges
                .push((c0 as u32, r0 as u32, c1 as u32, r1 as u32));
            for r in r0..=r1 {
                for c in c0..=c1 {
                    grid.cells[r * grid.cols + c].push(i as u32);
                }
            }
        }
        grid
    }

    /// Indexes segments by their bounding boxes; see [`Self::from_boxes`].
    pub fn from_segments(segments: &[(Point, Point)], cell_hint: Option<f64>) -> UniformGrid {
        let boxes: Vec<(Point, Point)> = segments
            .iter()
            .map(|&(a, b)| {
                // `f64::min` silently drops NaN operands, so check the
                // endpoints before normalizing the box corners.
                assert!(
                    a.is_finite() && b.is_finite(),
                    "grid segments need finite coordinates"
                );
                (
                    Point::new(a.x.min(b.x), a.y.min(b.y)),
                    Point::new(a.x.max(b.x), a.y.max(b.y)),
                )
            })
            .collect();
        UniformGrid::from_boxes(&boxes, cell_hint)
    }

    /// Number of indexed items.
    pub fn len(&self) -> usize {
        self.ranges.len()
    }

    /// True when nothing is indexed.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// The cell containing `p` (clamped to the grid).
    fn cell_of(&self, p: Point) -> (usize, usize) {
        let c = ((p.x - self.origin.x) / self.cell).floor() as isize;
        let r = ((p.y - self.origin.y) / self.cell).floor() as isize;
        (
            c.clamp(0, self.cols as isize - 1) as usize,
            r.clamp(0, self.rows as isize - 1) as usize,
        )
    }

    /// All item pairs `(i, j)` with `i < j` whose bounding boxes share a
    /// grid cell, each reported exactly once, in ascending order.
    ///
    /// This is a superset of the pairs whose boxes (and so the pairs
    /// whose items) intersect: intersecting boxes overlap in some cell
    /// of both ranges. A pair sharing several cells is emitted only in
    /// the lexicographically smallest common cell.
    pub fn candidate_pairs(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        self.for_each_candidate_pair(|i, j| out.push((i, j)));
        out.sort_unstable();
        out
    }

    /// Streams every candidate pair (see [`Self::candidate_pairs`]) to
    /// `visit` as `(i, j)` with `i < j`, each exactly once, without
    /// materializing the pair list.
    ///
    /// The visit order is deterministic (row-major by the pair's
    /// reporting cell) but **not** globally sorted; use this for
    /// order-insensitive aggregation — counting crossings, OR-ing
    /// removal flags — where building and sorting the full pair vector
    /// would dominate the running time (or, at 10⁵–10⁶ nodes, the
    /// memory) of the actual geometric tests.
    pub fn for_each_candidate_pair(&self, mut visit: impl FnMut(usize, usize)) {
        for r in 0..self.rows {
            for c in 0..self.cols {
                let bucket = &self.cells[r * self.cols + c];
                for (k, &bi) in bucket.iter().enumerate() {
                    let (ic0, ir0, _, _) = self.ranges[bi as usize];
                    for &bj in &bucket[k + 1..] {
                        let (jc0, jr0, _, _) = self.ranges[bj as usize];
                        // Report in the min corner of the range overlap
                        // only, so shared-multi-cell pairs appear once.
                        if ic0.max(jc0) as usize == c && ir0.max(jr0) as usize == r {
                            visit(bi.min(bj) as usize, bi.max(bj) as usize);
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(ax: f64, ay: f64, bx: f64, by: f64) -> (Point, Point) {
        (Point::new(ax, ay), Point::new(bx, by))
    }

    /// Brute-force bbox-overlap oracle.
    fn overlapping_pairs(segs: &[(Point, Point)]) -> Vec<(usize, usize)> {
        let bx =
            |&(a, b): &(Point, Point)| (a.x.min(b.x), a.y.min(b.y), a.x.max(b.x), a.y.max(b.y));
        let mut out = Vec::new();
        for (i, si) in segs.iter().enumerate() {
            let (ax0, ay0, ax1, ay1) = bx(si);
            for (j, sj) in segs.iter().enumerate().skip(i + 1) {
                let (bx0, by0, bx1, by1) = bx(sj);
                if ax0 <= bx1 && bx0 <= ax1 && ay0 <= by1 && by0 <= ay1 {
                    out.push((i, j));
                }
            }
        }
        out
    }

    #[test]
    fn empty_grid() {
        let g = UniformGrid::from_segments(&[], None);
        assert!(g.is_empty());
        assert!(g.candidate_pairs().is_empty());
    }

    #[test]
    fn single_item_has_no_pairs() {
        let g = UniformGrid::from_segments(&[seg(0., 0., 1., 1.)], None);
        assert_eq!(g.len(), 1);
        assert!(g.candidate_pairs().is_empty());
    }

    #[test]
    fn candidates_cover_all_bbox_overlaps() {
        // Pseudo-random short segments in a square; grid candidates must
        // be a superset of bbox-overlapping pairs and each pair unique.
        let mut s: u64 = 0x243F6A8885A308D3;
        let mut rnd = move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((s >> 11) as f64) / ((1u64 << 53) as f64)
        };
        let segs: Vec<(Point, Point)> = (0..200)
            .map(|_| {
                let x = rnd() * 100.0;
                let y = rnd() * 100.0;
                seg(x, y, x + rnd() * 8.0, y + rnd() * 8.0)
            })
            .collect();
        for hint in [None, Some(8.0), Some(1.0), Some(1000.0)] {
            let g = UniformGrid::from_segments(&segs, hint);
            let cand = g.candidate_pairs();
            // Uniqueness.
            let mut dedup = cand.clone();
            dedup.dedup();
            assert_eq!(cand, dedup, "hint {hint:?}: duplicate candidates");
            // Superset of true bbox overlaps.
            for p in overlapping_pairs(&segs) {
                assert!(
                    cand.binary_search(&p).is_ok(),
                    "hint {hint:?}: missing overlap pair {p:?}"
                );
            }
        }
    }

    #[test]
    fn streaming_pairs_match_materialized_pairs() {
        let mut s: u64 = 0x13198A2E03707344;
        let mut rnd = move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((s >> 11) as f64) / ((1u64 << 53) as f64)
        };
        let segs: Vec<(Point, Point)> = (0..150)
            .map(|_| {
                let x = rnd() * 60.0;
                let y = rnd() * 60.0;
                seg(x, y, x + rnd() * 6.0, y + rnd() * 6.0)
            })
            .collect();
        for hint in [None, Some(3.0), Some(50.0)] {
            let g = UniformGrid::from_segments(&segs, hint);
            let mut streamed = Vec::new();
            g.for_each_candidate_pair(|i, j| {
                assert!(i < j);
                streamed.push((i, j));
            });
            let sorted_len = streamed.len();
            streamed.sort_unstable();
            streamed.dedup();
            assert_eq!(sorted_len, streamed.len(), "hint {hint:?}: duplicates");
            assert_eq!(streamed, g.candidate_pairs(), "hint {hint:?}");
        }
    }

    #[test]
    fn degenerate_identical_and_collinear_segments() {
        // All on one horizontal line, including zero-length segments.
        let segs: Vec<(Point, Point)> = (0..10)
            .map(|i| seg(i as f64, 0.0, i as f64 + 1.5, 0.0))
            .chain(std::iter::once(seg(3.0, 0.0, 3.0, 0.0)))
            .collect();
        let g = UniformGrid::from_segments(&segs, Some(1.0));
        let cand = g.candidate_pairs();
        for p in overlapping_pairs(&segs) {
            assert!(cand.binary_search(&p).is_ok(), "missing {p:?}");
        }
    }

    #[test]
    fn all_points_at_one_location() {
        let segs = vec![seg(5.0, 5.0, 5.0, 5.0); 4];
        let g = UniformGrid::from_segments(&segs, None);
        assert_eq!(g.candidate_pairs().len(), 6); // all C(4,2) pairs
    }

    #[test]
    fn cell_budget_respected_for_spread_out_tiny_boxes() {
        // 100 tiny boxes spread over a huge area: the doubling loop must
        // keep the grid allocation proportional to the item count.
        let segs: Vec<(Point, Point)> = (0..100)
            .map(|i| {
                let x = (i as f64) * 1.0e6;
                seg(x, x, x + 1.0e-3, x + 1.0e-3)
            })
            .collect();
        let g = UniformGrid::from_segments(&segs, Some(1.0e-3));
        assert!(g.cells.len() <= (CELL_BUDGET_FACTOR * segs.len()).max(64));
        // The coarsened cells make some non-overlapping pairs candidates;
        // they must stay near-linear in the item count, not quadratic.
        assert!(g.candidate_pairs().len() <= 10 * segs.len());
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_rejected() {
        UniformGrid::from_segments(&[seg(f64::NAN, 0.0, 1.0, 1.0)], None);
    }
}
