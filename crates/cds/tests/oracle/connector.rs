//! Centralized reference implementation of Algorithm 1 (finding
//! connectors).
//!
//! Mirrors the distributed election exactly (the protocol in
//! [`geospan_cds::protocol`] is tested to produce identical output):
//!
//! * **Stage 1** — for every unordered dominator pair `{u, v}` sharing a
//!   dominatee, each common dominatee is a candidate; a candidate wins
//!   when it has the smallest identifier among itself and its *adjacent*
//!   candidates (so up to two non-adjacent winners per pair, as the paper
//!   notes). A winner `w` contributes the path `u — w — v`.
//! * **Stage 2** — for every dominatee `w` with dominator `u` and a
//!   2-hop-away dominator `v` (learned from a neighboring dominatee of
//!   `v`), `w` is a candidate for the ordered pair `(u, v)`; local-minimum
//!   winners contribute the edge `u — w`.
//! * **Stage 3** — dominatees of `v` adjacent to a stage-2 winner for
//!   `(u, v)` are candidates; local-minimum winners `x` contribute the
//!   edges `x — v` and `x — w` to the smallest adjacent stage-2 winner.
//!
//! Together the stages link every dominator pair at hop distance two or
//! three, which suffices for backbone connectivity.

use std::collections::{BTreeMap, BTreeSet};

use geospan_graph::Graph;

use geospan_cds::Clustering;

/// Output of connector election.
#[derive(Debug, Clone, PartialEq)]
pub struct ConnectorResult {
    /// Elected connectors (dominatees), ascending.
    pub connectors: Vec<usize>,
    /// Backbone edges contributed by the elections, `(a, b)` unordered.
    pub edges: Vec<(usize, usize)>,
}

/// Runs the three election stages. See the module documentation.
pub fn find_connectors(g: &Graph, clustering: &Clustering) -> ConnectorResult {
    find_connectors_impl(g, clustering, None)
}

/// Runs the election stages only for dominator pairs touching `dominators`
/// (i.e. pairs `{u, v}` with `u` or `v` in the set).
///
/// This is the localized-repair entry point: when a link break or node
/// death perturbs a bounded neighborhood, only the elections involving
/// the affected dominators can change, so only those are re-run. The
/// result composes with the retained elections of the untouched region.
pub fn find_connectors_for_pairs(
    g: &Graph,
    clustering: &Clustering,
    dominators: &BTreeSet<usize>,
) -> ConnectorResult {
    find_connectors_impl(g, clustering, Some(dominators))
}

fn find_connectors_impl(
    g: &Graph,
    clustering: &Clustering,
    restrict: Option<&BTreeSet<usize>>,
) -> ConnectorResult {
    let n = g.node_count();
    let doms = &clustering.dominators_of;
    let pair_in_scope =
        |u: usize, v: usize| restrict.is_none_or(|set| set.contains(&u) || set.contains(&v));

    // 2-hop dominators per dominatee: v such that some neighboring
    // dominatee is dominated by v, and v is not already adjacent.
    let mut two_hop: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); n];
    #[allow(clippy::needless_range_loop)]
    for w in 0..n {
        if clustering.is_dominator[w] {
            continue;
        }
        for &x in g.neighbors(w) {
            if clustering.is_dominator[x] {
                continue;
            }
            for &v in &doms[x] {
                if !doms[w].contains(&v) {
                    two_hop[w].insert(v);
                }
            }
        }
    }

    let mut connectors: BTreeSet<usize> = BTreeSet::new();
    let mut edges: BTreeSet<(usize, usize)> = BTreeSet::new();
    let add_edge = |edges: &mut BTreeSet<(usize, usize)>, a: usize, b: usize| {
        edges.insert((a.min(b), a.max(b)));
    };

    // Stage 1: common dominatees of an unordered dominator pair.
    let mut cand1: BTreeMap<(usize, usize), Vec<usize>> = BTreeMap::new();
    #[allow(clippy::needless_range_loop)]
    for w in 0..n {
        if clustering.is_dominator[w] {
            continue;
        }
        let ds = &doms[w];
        for (i, &u) in ds.iter().enumerate() {
            for &v in &ds[i + 1..] {
                if pair_in_scope(u, v) {
                    cand1.entry((u, v)).or_default().push(w);
                }
            }
        }
    }
    for ((u, v), cands) in &cand1 {
        for &w in cands {
            let beaten = cands.iter().any(|&w2| w2 < w && g.has_edge(w, w2));
            if !beaten {
                connectors.insert(w);
                add_edge(&mut edges, *u, w);
                add_edge(&mut edges, w, *v);
            }
        }
    }

    // Stage 2: dominatee w of u proposing toward a 2-hop dominator v.
    let mut cand2: BTreeMap<(usize, usize), Vec<usize>> = BTreeMap::new();
    for w in 0..n {
        if clustering.is_dominator[w] {
            continue;
        }
        for &u in &doms[w] {
            for &v in &two_hop[w] {
                if v != u && pair_in_scope(u, v) {
                    cand2.entry((u, v)).or_default().push(w);
                }
            }
        }
    }
    let mut winners2: BTreeMap<(usize, usize), Vec<usize>> = BTreeMap::new();
    for ((u, v), cands) in &cand2 {
        for &w in cands {
            let beaten = cands.iter().any(|&w2| w2 < w && g.has_edge(w, w2));
            if !beaten {
                connectors.insert(w);
                add_edge(&mut edges, *u, w);
                winners2.entry((*u, *v)).or_default().push(w);
            }
        }
    }

    // Stage 3: dominatees of v adjacent to a stage-2 winner for (u, v).
    for ((u, v), ws) in &winners2 {
        let _ = u;
        let mut cands: Vec<usize> = Vec::new();
        #[allow(clippy::needless_range_loop)]
        for x in 0..n {
            if clustering.is_dominator[x] || !doms[x].contains(v) {
                continue;
            }
            if ws.iter().any(|&w| g.has_edge(x, w)) {
                cands.push(x);
            }
        }
        for &x in &cands {
            let beaten = cands.iter().any(|&x2| x2 < x && g.has_edge(x, x2));
            if !beaten {
                connectors.insert(x);
                add_edge(&mut edges, x, *v);
                // Link to the smallest adjacent stage-2 winner.
                let w = ws
                    .iter()
                    .copied()
                    .filter(|&w| g.has_edge(x, w))
                    .min()
                    .expect("candidate is adjacent to a winner");
                add_edge(&mut edges, x, w);
            }
        }
    }

    ConnectorResult {
        connectors: connectors.into_iter().collect(),
        edges: edges.into_iter().collect(),
    }
}
