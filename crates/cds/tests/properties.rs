//! Property tests for the CDS construction: clustering and connector
//! invariants under randomized deployments and ranks.

use geospan_cds::{build_cds, cluster, find_connectors, protocol, ClusterRank, Role};
use geospan_graph::gen::{uniform_points, UnitDiskBuilder};
use geospan_graph::paths::bfs_hops;
use geospan_graph::Graph;
use proptest::prelude::*;

fn deployment() -> impl Strategy<Value = Graph> {
    (8usize..60, 25.0f64..60.0, any::<u64>()).prop_map(|(n, radius, seed)| {
        let pts = uniform_points(n, 120.0, seed);
        UnitDiskBuilder::new(radius).build(&pts)
    })
}

fn rank() -> impl Strategy<Value = u8> {
    0u8..3
}

fn make_rank(kind: u8, g: &Graph, seed: u64) -> ClusterRank {
    match kind {
        0 => ClusterRank::LowestId,
        1 => ClusterRank::HighestDegree,
        _ => {
            let mut s = seed | 1;
            ClusterRank::Weight(
                (0..g.node_count())
                    .map(|_| {
                        s ^= s << 13;
                        s ^= s >> 7;
                        s ^= s << 17;
                        s % 1000
                    })
                    .collect(),
            )
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn clustering_is_mis(g in deployment(), kind in rank(), seed in any::<u64>()) {
        let r = make_rank(kind, &g, seed);
        let c = cluster(&g, &r);
        // Independence.
        for &a in &c.dominators {
            for &b in &c.dominators {
                if a < b {
                    prop_assert!(!g.has_edge(a, b));
                }
            }
        }
        // Domination (= maximality for an independent set).
        for v in 0..g.node_count() {
            prop_assert!(c.is_dominator[v] || !c.dominators_of[v].is_empty());
        }
        // dominators_of consistency: each listed dominator is adjacent.
        for v in 0..g.node_count() {
            for &d in &c.dominators_of[v] {
                prop_assert!(g.has_edge(v, d));
                prop_assert!(c.is_dominator[d]);
            }
        }
    }

    #[test]
    fn connectors_link_close_dominator_pairs(g in deployment()) {
        let c = cluster(&g, &ClusterRank::LowestId);
        let r = find_connectors(&g, &c);
        // Connectors are dominatees; edges are UDG links.
        for &w in &r.connectors {
            prop_assert!(!c.is_dominator[w]);
        }
        for &(a, b) in &r.edges {
            prop_assert!(g.has_edge(a, b));
        }
        // Every dominator pair at UDG hop distance <= 3 is connected in
        // the backbone.
        let mut backbone = g.same_vertices();
        for &(a, b) in &r.edges {
            backbone.add_edge(a, b);
        }
        for &d1 in &c.dominators {
            let udg_hops = bfs_hops(&g, d1);
            let bb_hops = bfs_hops(&backbone, d1);
            for &d2 in &c.dominators {
                if d1 == d2 {
                    continue;
                }
                if let Some(h) = udg_hops[d2] {
                    if h <= 3 {
                        prop_assert!(
                            bb_hops[d2].is_some(),
                            "dominators {d1},{d2} at {h} hops not linked"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn distributed_equals_centralized(g in deployment(), kind in rank(), seed in any::<u64>()) {
        let r = make_rank(kind, &g, seed);
        let central = build_cds(&g, &r);
        let (dist, stats) = protocol::run_cds(&g, &r).expect("protocol converges");
        prop_assert!(protocol::same_structure(&central, &dist));
        // Lemma 3: constant per-node message bound (generous constant).
        prop_assert!(stats.max_sent() <= 150, "max sent {}", stats.max_sent());
    }

    #[test]
    fn roles_are_exhaustive(g in deployment()) {
        let c = build_cds(&g, &ClusterRank::LowestId);
        let mut dominators = 0;
        for v in 0..g.node_count() {
            match c.roles[v] {
                Role::Dominator => dominators += 1,
                Role::Connector => prop_assert!(c.connectors.contains(&v)),
                Role::Dominatee => prop_assert!(!c.connectors.contains(&v)),
            }
        }
        prop_assert_eq!(dominators, c.dominators.len());
    }

    #[test]
    fn prime_graphs_preserve_component_structure(g in deployment()) {
        let c = build_cds(&g, &ClusterRank::LowestId);
        prop_assert_eq!(c.cds_prime.components().len(), g.components().len());
        prop_assert_eq!(c.icds_prime.components().len(), g.components().len());
    }
}
