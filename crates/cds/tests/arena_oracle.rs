//! Arena-vs-BTree oracle equivalence for the CDS construction.
//!
//! The arena refactor replaced node-id-keyed `BTreeMap`/`BTreeSet` state
//! in the CDS protocol and the centralized connector election with
//! sorted-vec containers (`VecMap`/`VecSet`), and gave the connector
//! election a per-dominator dominatee index instead of its stage-3
//! `0..n` scan. The modules under `oracle/` are verbatim pre-refactor
//! copies of `protocol.rs` and `connector.rs`; these tests pin the live
//! code against them — identical roles, backbone edges, and per-node /
//! per-kind message counts — on random deployments and ranks.

#[path = "oracle/protocol.rs"]
#[allow(dead_code)]
mod oracle_protocol;

#[path = "oracle/connector.rs"]
#[allow(dead_code)]
mod oracle_connector;

use geospan_cds::{cluster, find_connectors, protocol, ClusterRank};
use geospan_graph::gen::{uniform_points, UnitDiskBuilder};
use geospan_graph::Graph;
use proptest::prelude::*;

fn deployment() -> impl Strategy<Value = Graph> {
    (8usize..60, 25.0f64..60.0, any::<u64>()).prop_map(|(n, radius, seed)| {
        let pts = uniform_points(n, 120.0, seed);
        UnitDiskBuilder::new(radius).build(&pts)
    })
}

fn rank() -> impl Strategy<Value = u8> {
    0u8..3
}

fn make_rank(kind: u8, g: &Graph, seed: u64) -> ClusterRank {
    match kind {
        0 => ClusterRank::LowestId,
        1 => ClusterRank::HighestDegree,
        _ => {
            let mut s = seed | 1;
            ClusterRank::Weight(
                (0..g.node_count())
                    .map(|_| {
                        s ^= s << 13;
                        s ^= s >> 7;
                        s ^= s << 17;
                        s % 1000
                    })
                    .collect(),
            )
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn cds_protocol_matches_btree_oracle(g in deployment(), kind in rank(), seed in any::<u64>()) {
        let r = make_rank(kind, &g, seed);
        let (new, new_stats) = protocol::run_cds(&g, &r).expect("arena protocol converges");
        let (old, old_stats) = oracle_protocol::run_cds(&g, &r).expect("oracle protocol converges");
        prop_assert!(oracle_protocol::same_structure(&new, &old));
        prop_assert_eq!(new.roles, old.roles);
        prop_assert_eq!(new_stats, old_stats);
    }

    #[test]
    fn connector_election_matches_btree_oracle(g in deployment(), kind in rank(), seed in any::<u64>()) {
        let r = make_rank(kind, &g, seed);
        let c = cluster(&g, &r);
        let new = find_connectors(&g, &c);
        let old = oracle_connector::find_connectors(&g, &c);
        prop_assert_eq!(new.connectors, old.connectors);
        prop_assert_eq!(new.edges, old.edges);
    }
}
