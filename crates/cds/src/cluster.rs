//! Centralized reference clustering: rank-greedy maximal independent set.

use geospan_graph::Graph;

use crate::ClusterRank;

/// The result of clustering: dominators (a maximal independent set) and,
/// for every node, its adjacent dominators.
#[derive(Debug, Clone, PartialEq)]
pub struct Clustering {
    /// Dominator indices, ascending.
    pub dominators: Vec<usize>,
    /// `true` for dominators.
    pub is_dominator: Vec<bool>,
    /// For each node, the sorted list of adjacent dominators (empty for
    /// dominators themselves).
    pub dominators_of: Vec<Vec<usize>>,
}

/// Rank-greedy clustering: processing nodes in ascending rank order, an
/// unmarked node becomes a dominator and marks its neighbors dominatees.
///
/// This sequential greedy produces **exactly** the maximal independent
/// set that the distributed election of the paper computes ("a white node
/// claims itself to be a dominator if it has the smallest rank among all
/// of its white neighbors"), because in both processes a node becomes a
/// dominator precisely when every better-ranked neighbor has been
/// eliminated by an even better dominator.
///
/// # Panics
/// Panics if a `Weight` rank does not cover all nodes.
///
/// # Example
/// ```
/// use geospan_cds::{cluster, ClusterRank};
/// use geospan_graph::{Graph, Point};
/// // A path 0-1-2: node 0 dominates 1, then 2 becomes a dominator.
/// let g = Graph::with_edges(
///     vec![Point::new(0.,0.), Point::new(1.,0.), Point::new(2.,0.)],
///     [(0,1),(1,2)]);
/// let c = cluster(&g, &ClusterRank::LowestId);
/// assert_eq!(c.dominators, vec![0, 2]);
/// assert_eq!(c.dominators_of[1], vec![0, 2]);
/// ```
pub fn cluster(g: &Graph, rank: &ClusterRank) -> Clustering {
    let n = g.node_count();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&v| rank.key(g, v));

    let mut is_dominator = vec![false; n];
    let mut dominated = vec![false; n];
    let mut dominators = Vec::new();
    for &v in &order {
        if dominated[v] || is_dominator[v] {
            continue;
        }
        is_dominator[v] = true;
        dominators.push(v);
        for &w in g.neighbors(v) {
            dominated[w] = true;
        }
    }
    dominators.sort_unstable();

    let mut dominators_of = vec![Vec::new(); n];
    for v in 0..n {
        if is_dominator[v] {
            continue;
        }
        for &w in g.neighbors(v) {
            if is_dominator[w] {
                dominators_of[v].push(w);
            }
        }
        // Neighbor lists are sorted, so dominators_of[v] is sorted.
    }
    Clustering {
        dominators,
        is_dominator,
        dominators_of,
    }
}

/// Number of dominators within `k` hops of `v` (Lemma 2's quantity).
///
/// The paper proves this is bounded by a constant `c_k <= (2k + 1)²`
/// via a disk-packing argument (any two dominators are more than one
/// radius apart, and a `k`-hop neighbor lies within distance `k·r`);
/// [`lemma2_bound`] exposes that constant and the tests check the bound
/// empirically.
///
/// # Panics
/// Panics if `v` is out of bounds.
pub fn dominators_within_hops(g: &Graph, clustering: &Clustering, v: usize, k: usize) -> usize {
    let mut dist = vec![usize::MAX; g.node_count()];
    dist[v] = 0;
    let mut frontier = vec![v];
    let mut count = usize::from(clustering.is_dominator[v]);
    for d in 1..=k {
        let mut next = Vec::new();
        for &x in &frontier {
            for &y in g.neighbors(x) {
                if dist[y] == usize::MAX {
                    dist[y] = d;
                    if clustering.is_dominator[y] {
                        count += 1;
                    }
                    next.push(y);
                }
            }
        }
        frontier = next;
    }
    count
}

/// The paper's Lemma 2 packing bound: at most `(2k + 1)²` dominators
/// within `k` hops of any node.
pub fn lemma2_bound(k: usize) -> usize {
    (2 * k + 1).pow(2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use geospan_graph::gen::{uniform_points, UnitDiskBuilder};
    use geospan_graph::Point;

    fn check_mis(g: &Graph, c: &Clustering) {
        // Independence.
        for &a in &c.dominators {
            for &b in &c.dominators {
                if a != b {
                    assert!(!g.has_edge(a, b), "adjacent dominators {a}, {b}");
                }
            }
        }
        // Maximality == domination for an independent set.
        for v in 0..g.node_count() {
            if !c.is_dominator[v] {
                assert!(
                    !c.dominators_of[v].is_empty(),
                    "node {v} neither dominator nor dominated"
                );
            }
        }
    }

    #[test]
    fn mis_on_random_graphs() {
        for seed in 0..8 {
            let pts = uniform_points(90, 120.0, seed);
            let g = UnitDiskBuilder::new(30.0).build(&pts);
            for rank in [ClusterRank::LowestId, ClusterRank::HighestDegree] {
                let c = cluster(&g, &rank);
                check_mis(&g, &c);
            }
        }
    }

    #[test]
    fn weight_rank_changes_heads() {
        let g = Graph::with_edges(vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0)], [(0, 1)]);
        let by_id = cluster(&g, &ClusterRank::LowestId);
        assert_eq!(by_id.dominators, vec![0]);
        let by_w = cluster(&g, &ClusterRank::Weight(vec![0, 10]));
        assert_eq!(by_w.dominators, vec![1]);
        check_mis(&g, &by_w);
    }

    #[test]
    fn isolated_nodes_become_dominators() {
        let g = Graph::new(vec![Point::new(0.0, 0.0), Point::new(10.0, 0.0)]);
        let c = cluster(&g, &ClusterRank::LowestId);
        assert_eq!(c.dominators, vec![0, 1]);
    }

    #[test]
    fn empty_graph() {
        let c = cluster(&Graph::new(vec![]), &ClusterRank::LowestId);
        assert!(c.dominators.is_empty());
    }

    #[test]
    fn lemma2_holds_on_random_instances() {
        for seed in 0..6 {
            let pts = uniform_points(120, 120.0, seed + 70);
            let g = UnitDiskBuilder::new(30.0).build(&pts);
            let c = cluster(&g, &ClusterRank::LowestId);
            for k in 1..=3 {
                let bound = lemma2_bound(k);
                for v in 0..g.node_count() {
                    let count = dominators_within_hops(&g, &c, v, k);
                    assert!(
                        count <= bound,
                        "seed {seed}: node {v} sees {count} dominators within {k} hops (bound {bound})"
                    );
                }
            }
        }
    }

    #[test]
    fn dominators_within_hops_counts_correctly() {
        // Path 0-1-2-3-4: dominators {0, 2, 4}.
        let pts = (0..5).map(|i| Point::new(i as f64, 0.0)).collect();
        let g = Graph::with_edges(pts, (0..4).map(|i| (i, i + 1)));
        let c = cluster(&g, &ClusterRank::LowestId);
        assert_eq!(c.dominators, vec![0, 2, 4]);
        assert_eq!(dominators_within_hops(&g, &c, 0, 0), 1); // itself
        assert_eq!(dominators_within_hops(&g, &c, 1, 1), 2); // 0 and 2
        assert_eq!(dominators_within_hops(&g, &c, 1, 3), 3); // all
        assert_eq!(dominators_within_hops(&g, &c, 3, 1), 2); // 2 and 4
    }
}
