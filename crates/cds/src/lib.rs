//! Connected dominating set (CDS) backbones for wireless ad hoc networks.
//!
//! Implements Section III-A of Wang & Li (ICDCS 2002): a rank-based
//! maximal-independent-set **clustering** (Baker–Ephremides / Alzoubi
//! style) followed by the **connector election** of Algorithm 1, which
//! links every pair of dominators that are two or three hops apart. The
//! dominators plus the elected connectors form a connected dominating set
//! whose size is within a constant factor of the minimum, built with a
//! constant number of messages per node.
//!
//! Both a centralized reference implementation ([`build_cds`]) and the
//! real message-passing protocol ([`protocol::run_cds`]) are provided;
//! they produce identical structures (tested), and the protocol
//! additionally yields measured per-node message counts.
//!
//! The derived graphs of the paper are all assembled here:
//!
//! * `CDS` — the backbone: elected connector paths only,
//! * `CDS'` — CDS plus every dominatee–dominator edge,
//! * `ICDS` — the unit disk graph induced on the backbone nodes,
//! * `ICDS'` — ICDS plus every dominatee–dominator edge.
//!
//! # Example
//!
//! ```
//! use geospan_cds::{build_cds, ClusterRank};
//! use geospan_graph::gen::connected_unit_disk;
//!
//! let (_pts, udg, _seed) = connected_unit_disk(60, 200.0, 60.0, 1);
//! let cds = build_cds(&udg, &ClusterRank::LowestId);
//! // The backbone nodes form one connected component of the CDS graph.
//! let backbone = cds.backbone_nodes();
//! let comps = cds.cds.components();
//! assert!(backbone.iter().all(|b| comps[0].contains(b)));
//! // CDS' spans every node and stays connected.
//! assert!(cds.cds_prime.is_connected());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cluster;
mod connector;
mod dhop;
pub mod protocol;
mod rank;

pub use cluster::{cluster, dominators_within_hops, lemma2_bound, Clustering};
pub use connector::{
    find_connectors, find_connectors_for_pairs, find_connectors_for_pairs_excluding,
    ConnectorResult,
};
pub use dhop::{cluster_d, DHopClustering};
pub use rank::ClusterRank;

use geospan_graph::Graph;

/// A node's role after backbone formation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Role {
    /// Cluster-head: member of the maximal independent set.
    Dominator,
    /// Ordinary node adjacent to at least one dominator.
    Dominatee,
    /// Dominatee elected as a gateway between dominators.
    Connector,
}

/// The complete family of backbone graphs derived from one deployment.
#[derive(Debug, Clone)]
pub struct CdsGraphs {
    /// Per-node role.
    pub roles: Vec<Role>,
    /// Dominator (cluster-head) indices, ascending.
    pub dominators: Vec<usize>,
    /// Connector (gateway) indices, ascending.
    pub connectors: Vec<usize>,
    /// For each node, its adjacent dominators (empty for dominators).
    pub dominators_of: Vec<Vec<usize>>,
    /// The backbone: dominators + connectors, linked by the elected paths.
    pub cds: Graph,
    /// `CDS` plus all dominatee–dominator edges.
    pub cds_prime: Graph,
    /// The unit disk graph induced on the backbone nodes.
    pub icds: Graph,
    /// `ICDS` plus all dominatee–dominator edges.
    pub icds_prime: Graph,
}

impl CdsGraphs {
    /// Backbone node indices (dominators and connectors), ascending.
    pub fn backbone_nodes(&self) -> Vec<usize> {
        let mut v: Vec<usize> = self
            .roles
            .iter()
            .enumerate()
            .filter(|(_, r)| matches!(r, Role::Dominator | Role::Connector))
            .map(|(i, _)| i)
            .collect();
        v.sort_unstable();
        v
    }

    /// True when `v` is a dominator or connector.
    pub fn is_backbone(&self, v: usize) -> bool {
        matches!(self.roles[v], Role::Dominator | Role::Connector)
    }
}

/// Builds the full backbone family from a unit disk graph using the
/// centralized reference algorithms (identical output to the distributed
/// protocol, without the message passing).
///
/// # Panics
/// Panics if `rank` carries per-node weights of the wrong length.
pub fn build_cds(udg: &Graph, rank: &ClusterRank) -> CdsGraphs {
    let clustering = cluster(udg, rank);
    let connectors = find_connectors(udg, &clustering);
    assemble(udg, &clustering, &connectors)
}

/// Assembles the graph family from clustering + connector results.
///
/// Public so that callers with their own clustering/election pipeline —
/// notably localized backbone *repair*, which re-elects only inside an
/// affected neighborhood — can materialize the same graph family the
/// full construction produces.
pub fn assemble(udg: &Graph, clustering: &Clustering, connectors: &ConnectorResult) -> CdsGraphs {
    let n = udg.node_count();
    let mut roles = vec![Role::Dominatee; n];
    for &d in &clustering.dominators {
        roles[d] = Role::Dominator;
    }
    for &c in &connectors.connectors {
        debug_assert_eq!(roles[c], Role::Dominatee, "connectors are dominatees");
        roles[c] = Role::Connector;
    }

    let mut cds = udg.same_vertices();
    for &(u, v) in &connectors.edges {
        cds.add_edge(u, v);
    }

    let mut cds_prime = cds.clone();
    for (w, doms) in clustering.dominators_of.iter().enumerate() {
        for &d in doms {
            cds_prime.add_edge(w, d);
        }
    }

    let is_backbone = |v: usize| matches!(roles[v], Role::Dominator | Role::Connector);
    let icds = udg.filter_edges(|u, v| is_backbone(u) && is_backbone(v));
    let mut icds_prime = icds.clone();
    for (w, doms) in clustering.dominators_of.iter().enumerate() {
        for &d in doms {
            icds_prime.add_edge(w, d);
        }
    }

    let mut connectors_list = connectors.connectors.clone();
    connectors_list.sort_unstable();
    CdsGraphs {
        roles,
        dominators: clustering.dominators.clone(),
        connectors: connectors_list,
        dominators_of: clustering.dominators_of.clone(),
        cds,
        cds_prime,
        icds,
        icds_prime,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geospan_graph::gen::connected_unit_disk;

    #[test]
    fn full_family_invariants() {
        for seed in 0..6 {
            let (_pts, udg, _s) = connected_unit_disk(70, 150.0, 45.0, seed * 11);
            let cds = build_cds(&udg, &ClusterRank::LowestId);

            // Domination: every non-dominator is adjacent to a dominator.
            for v in 0..udg.node_count() {
                match cds.roles[v] {
                    Role::Dominator => assert!(cds.dominators_of[v].is_empty()),
                    _ => assert!(
                        !cds.dominators_of[v].is_empty(),
                        "seed {seed}: node {v} undominated"
                    ),
                }
            }
            // Independence: no two dominators adjacent.
            for &a in &cds.dominators {
                for &b in &cds.dominators {
                    if a < b {
                        assert!(!udg.has_edge(a, b), "seed {seed}: adjacent dominators");
                    }
                }
            }
            // CDS edges live on backbone nodes only.
            for (u, v) in cds.cds.edges() {
                assert!(cds.is_backbone(u) && cds.is_backbone(v));
                assert!(udg.has_edge(u, v), "CDS edge must be a UDG link");
            }
            // The backbone is connected (as a subgraph over its nodes).
            let nodes = cds.backbone_nodes();
            if nodes.len() > 1 {
                let comps = cds.cds.components();
                let main = &comps[0];
                for &b in &nodes {
                    assert!(
                        main.contains(&b),
                        "seed {seed}: backbone disconnected at {b}"
                    );
                }
            }
            // CDS ⊆ ICDS; CDS' ⊆ ICDS'.
            for (u, v) in cds.cds.edges() {
                assert!(cds.icds.has_edge(u, v));
            }
            for (u, v) in cds.cds_prime.edges() {
                assert!(cds.icds_prime.has_edge(u, v));
            }
            // CDS' and ICDS' span all nodes and stay connected.
            assert!(cds.cds_prime.is_connected(), "seed {seed}");
            assert!(cds.icds_prime.is_connected(), "seed {seed}");
        }
    }

    #[test]
    fn lemma1_at_most_five_dominators() {
        for seed in 0..6 {
            let (_pts, udg, _s) = connected_unit_disk(80, 120.0, 40.0, seed * 5 + 2);
            let cds = build_cds(&udg, &ClusterRank::LowestId);
            for v in 0..udg.node_count() {
                assert!(
                    cds.dominators_of[v].len() <= 5,
                    "seed {seed}: node {v} has {} dominators",
                    cds.dominators_of[v].len()
                );
            }
        }
    }

    #[test]
    fn single_node_network() {
        let udg = Graph::new(vec![geospan_graph::Point::new(0.0, 0.0)]);
        let cds = build_cds(&udg, &ClusterRank::LowestId);
        assert_eq!(cds.roles, vec![Role::Dominator]);
        assert!(cds.connectors.is_empty());
        assert_eq!(cds.cds.edge_count(), 0);
    }
}
