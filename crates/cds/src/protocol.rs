//! The distributed CDS protocol: clustering + Algorithm 1 as real
//! message passing.
//!
//! Runs on [`geospan_sim`] in five phases:
//!
//! | phase | step | messages |
//! |-------|------|----------|
//! | 0 | learn neighbor ranks | `Hello` |
//! | 1 | MIS election ("smallest rank among white neighbors") | `IamDominator`, `IamDominatee` |
//! | 2 | connector candidacies for 2-hop and 3-hop dominator pairs | `TryConnector` |
//! | 3 | stage-1/2 winners announce; dominatees of the far dominator respond | `IamConnector`, `TryConnector` |
//! | 4 | stage-3 winners announce | `IamConnector` |
//!
//! Each message is a 1-hop broadcast; per-node totals are bounded by a
//! constant (Lemma 3 of the paper) and are measured, not assumed. The
//! final structure is identical to the centralized reference
//! ([`crate::build_cds`]) — enforced by tests.

use std::collections::{BTreeMap, BTreeSet};

use geospan_graph::collections::{VecMap, VecSet};
use geospan_graph::Graph;
use geospan_sim::{
    Context, FaultPlan, FaultReport, MessageKind, MessageStats, Network, Protocol,
    QuiescenceTimeout, ReliabilityConfig,
};

use crate::{assemble, CdsGraphs, ClusterRank, Clustering, ConnectorResult};

/// Messages of the CDS formation protocol (the paper's primitives).
#[derive(Debug, Clone, PartialEq)]
pub enum CdsMsg {
    /// Rank announcement (the paper assumes 1-hop identifiers are known;
    /// this is the broadcast that establishes it).
    Hello {
        /// The sender's election key (smaller = preferred).
        key: (i64, usize),
    },
    /// "I am a cluster-head."
    IamDominator,
    /// "I am a dominatee of `dominator`" — broadcast once per adjacent
    /// dominator (at most five times, by Lemma 1).
    IamDominatee {
        /// The dominator being acknowledged.
        dominator: usize,
    },
    /// Candidacy to connect dominators `u` and `v` (stage 1: common
    /// dominatee; stage 2: first hop of a 3-hop path; stage 3: second
    /// hop).
    TryConnector {
        /// First dominator of the pair.
        u: usize,
        /// The candidate (the sender).
        w: usize,
        /// Second dominator of the pair.
        v: usize,
        /// Election stage (1, 2 or 3).
        stage: u8,
    },
    /// Election victory announcement.
    IamConnector {
        /// First dominator of the pair.
        u: usize,
        /// The winner (the sender).
        w: usize,
        /// Second dominator of the pair.
        v: usize,
        /// Election stage (1, 2 or 3).
        stage: u8,
    },
}

impl MessageKind for CdsMsg {
    fn kind(&self) -> &'static str {
        match self {
            CdsMsg::Hello { .. } => "Hello",
            CdsMsg::IamDominator => "IamDominator",
            CdsMsg::IamDominatee { .. } => "IamDominatee",
            CdsMsg::TryConnector { .. } => "TryConnector",
            CdsMsg::IamConnector { .. } => "IamConnector",
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    White,
    Dominator,
    Dominatee,
}

/// Per-node state of the CDS protocol.
#[derive(Debug)]
pub struct CdsNode {
    id: usize,
    key: (i64, usize),
    status: Status,
    /// Neighbor ranks from `Hello`. Sorted-vec map: ascending-by-id
    /// iteration, exactly like the `BTreeMap` it replaced.
    nbr_keys: VecMap<(i64, usize)>,
    /// Neighbors confirmed as dominatees.
    nbr_dominatee: VecSet,
    /// Adjacent dominators.
    dominators: VecSet,
    /// Dominators heard of via neighboring dominatees (raw; filtered
    /// against `dominators` when candidacies are formed).
    heard_dominators: VecSet,
    /// Dominators already acknowledged with `IamDominatee`.
    announced: VecSet,
    /// Candidacies this node entered: `(u, v, stage)`. Election-keyed
    /// (not node-id-keyed), and phase 3/4 broadcasts iterate it in key
    /// order — load-bearing for the pinned message traces, so `BTree*`
    /// stays here and for the two maps below.
    my_tries: BTreeSet<(usize, usize, u8)>,
    /// Candidacy announcements heard, keyed by election.
    try_heard: BTreeMap<(usize, usize, u8), VecSet>,
    /// Stage-2 winners heard per ordered pair `(u, v)`.
    stage2_winners: BTreeMap<(usize, usize), VecSet>,
    /// Whether this node elected itself a connector.
    is_connector: bool,
    /// Backbone edges this node is responsible for.
    edges: BTreeSet<(usize, usize)>,
}

impl CdsNode {
    fn new(id: usize, key: (i64, usize)) -> Self {
        CdsNode {
            id,
            key,
            status: Status::White,
            nbr_keys: VecMap::new(),
            nbr_dominatee: VecSet::new(),
            dominators: VecSet::new(),
            heard_dominators: VecSet::new(),
            announced: VecSet::new(),
            my_tries: BTreeSet::new(),
            try_heard: BTreeMap::new(),
            stage2_winners: BTreeMap::new(),
            is_connector: false,
            edges: BTreeSet::new(),
        }
    }

    /// White node election rule: declare when every better-ranked
    /// neighbor is a confirmed dominatee.
    fn maybe_declare_dominator(&mut self, ctx: &mut Context<'_, CdsMsg>) {
        if self.status != Status::White {
            return;
        }
        let blocked = self
            .nbr_keys
            .iter()
            .any(|(nbr, &k)| k < self.key && !self.nbr_dominatee.contains(nbr));
        if !blocked {
            self.status = Status::Dominator;
            ctx.broadcast(CdsMsg::IamDominator);
        }
    }

    fn add_edge(&mut self, a: usize, b: usize) {
        self.edges.insert((a.min(b), a.max(b)));
    }

    /// Did this node win the election `(u, v, stage)`? (Smallest id among
    /// itself and the heard candidates, which are exactly its neighbors
    /// in the same election.)
    fn wins(&self, key: (usize, usize, u8)) -> bool {
        self.try_heard
            .get(&key)
            .is_none_or(|heard| heard.iter().all(|w| w > self.id))
    }
}

impl Protocol for CdsNode {
    type Message = CdsMsg;

    fn on_phase(&mut self, ctx: &mut Context<'_, CdsMsg>, phase: usize) {
        // Phases 5–9 are the *recovery epilogue*, run only by the
        // fault-injected construction ([`run_cds_faulty`]): after the
        // optimistic phases 0–4 ran under message loss and crashes, the
        // surviving dominators re-beacon (5), orphaned nodes re-attach or
        // promote themselves (6), and the connector election is re-run
        // from a clean slate (7–9 repeat the logic of 2–4).
        let phase = match phase {
            5 => {
                self.my_tries.clear();
                self.try_heard.clear();
                self.stage2_winners.clear();
                self.edges.clear();
                self.is_connector = false;
                if self.status == Status::Dominator {
                    ctx.broadcast(CdsMsg::IamDominator);
                } else {
                    self.dominators.clear();
                    self.heard_dominators.clear();
                    self.announced.clear();
                    self.nbr_dominatee.clear();
                }
                return;
            }
            6 => {
                // Anyone left unattached — a white node that never
                // settled, or a dominatee whose every dominator died —
                // promotes itself. Adjacent self-promotions are safe:
                // `ICDS` is induced on backbone nodes, so the edge
                // between two adjacent dominators appears automatically.
                if self.status != Status::Dominator && self.dominators.is_empty() {
                    self.status = Status::Dominator;
                    ctx.broadcast(CdsMsg::IamDominator);
                }
                return;
            }
            p @ 7..=9 => p - 5, // re-run the election phases 2–4
            p => p,
        };
        match phase {
            0 => ctx.broadcast(CdsMsg::Hello { key: self.key }),
            1 => self.maybe_declare_dominator(ctx),
            2 => {
                if self.status != Status::Dominatee {
                    return;
                }
                // Stage 1: a candidate for every pair of own dominators.
                let ds: Vec<usize> = self.dominators.iter().collect();
                for (i, &u) in ds.iter().enumerate() {
                    for &v in &ds[i + 1..] {
                        self.my_tries.insert((u, v, 1));
                        ctx.broadcast(CdsMsg::TryConnector {
                            u,
                            w: self.id,
                            v,
                            stage: 1,
                        });
                    }
                }
                // Stage 2: own dominator toward each 2-hop dominator.
                for &u in &ds {
                    for v in &self.heard_dominators {
                        if v != u && !self.dominators.contains(v) {
                            self.my_tries.insert((u, v, 2));
                            ctx.broadcast(CdsMsg::TryConnector {
                                u,
                                w: self.id,
                                v,
                                stage: 2,
                            });
                        }
                    }
                }
            }
            3 => {
                let tries: Vec<(usize, usize, u8)> = self.my_tries.iter().copied().collect();
                for key @ (u, v, stage) in tries {
                    if stage == 3 || !self.wins(key) {
                        continue;
                    }
                    self.is_connector = true;
                    match stage {
                        1 => {
                            self.add_edge(u, self.id);
                            self.add_edge(self.id, v);
                        }
                        2 => self.add_edge(u, self.id),
                        // geospan-analyze: allow(D11, stage 3 keys are filtered out two lines above; stages are only ever 1-3)
                        _ => unreachable!(),
                    }
                    ctx.broadcast(CdsMsg::IamConnector {
                        u,
                        w: self.id,
                        v,
                        stage,
                    });
                }
            }
            4 => {
                let tries: Vec<(usize, usize, u8)> = self.my_tries.iter().copied().collect();
                for key @ (u, v, stage) in tries {
                    if stage != 3 || !self.wins(key) {
                        continue;
                    }
                    self.is_connector = true;
                    self.add_edge(self.id, v);
                    let w = self.stage2_winners[&(u, v)]
                        .first()
                        .expect("stage-3 candidacy implies a heard stage-2 winner");
                    self.add_edge(self.id, w);
                    ctx.broadcast(CdsMsg::IamConnector {
                        u,
                        w: self.id,
                        v,
                        stage,
                    });
                }
            }
            _ => {}
        }
    }

    fn on_message(&mut self, ctx: &mut Context<'_, CdsMsg>, from: usize, msg: &CdsMsg) {
        match msg {
            CdsMsg::Hello { key } => {
                self.nbr_keys.insert(from, *key);
            }
            CdsMsg::IamDominator => {
                self.dominators.insert(from);
                if self.status == Status::White {
                    self.status = Status::Dominatee;
                }
                if self.status == Status::Dominatee && self.announced.insert(from) {
                    ctx.broadcast(CdsMsg::IamDominatee { dominator: from });
                }
            }
            CdsMsg::IamDominatee { dominator } => {
                self.nbr_dominatee.insert(from);
                self.heard_dominators.insert(*dominator);
                self.maybe_declare_dominator(ctx);
            }
            CdsMsg::TryConnector { u, w, v, stage } => {
                self.try_heard
                    .entry((*u, *v, *stage))
                    .or_default()
                    .insert(*w);
            }
            CdsMsg::IamConnector { u, w, v, stage } => {
                if *stage == 2 {
                    self.stage2_winners.entry((*u, *v)).or_default().insert(*w);
                    // Step 7: dominatees of v respond with a stage-3
                    // candidacy.
                    if self.status == Status::Dominatee
                        && self.dominators.contains(*v)
                        && self.my_tries.insert((*u, *v, 3))
                    {
                        ctx.broadcast(CdsMsg::TryConnector {
                            u: *u,
                            w: self.id,
                            v: *v,
                            stage: 3,
                        });
                    }
                }
            }
        }
    }
}

/// Runs the distributed CDS construction and assembles the graph family.
///
/// # Errors
/// Returns [`QuiescenceTimeout`] if a phase fails to converge (protocol
/// bug, not an input condition).
///
/// # Panics
/// Panics if a `Weight` rank does not cover all nodes.
pub fn run_cds(
    udg: &Graph,
    rank: &ClusterRank,
) -> Result<(CdsGraphs, MessageStats), QuiescenceTimeout> {
    run_cds_inner(udg, rank, None)
}

/// Runs the distributed CDS construction under **asynchronous** delivery:
/// every broadcast is delayed by a deterministic pseudo-random number of
/// rounds in `1..=max_delay`.
///
/// The protocol's decisions are timing-independent (a node acts only on
/// facts that can no longer change), so the constructed structure is
/// identical to the synchronous run — a property the tests enforce and
/// the paper asserts for its clustering ("this protocol can also be
/// implemented using asynchronous communications").
///
/// # Errors
/// Returns [`QuiescenceTimeout`] if a phase fails to converge.
///
/// # Panics
/// Panics if `max_delay == 0` or a `Weight` rank does not cover all
/// nodes.
pub fn run_cds_jittered(
    udg: &Graph,
    rank: &ClusterRank,
    max_delay: usize,
    seed: u64,
) -> Result<(CdsGraphs, MessageStats), QuiescenceTimeout> {
    run_cds_inner(udg, rank, Some((max_delay, seed)))
}

fn run_cds_inner(
    udg: &Graph,
    rank: &ClusterRank,
    jitter: Option<(usize, u64)>,
) -> Result<(CdsGraphs, MessageStats), QuiescenceTimeout> {
    let mut net = Network::new(udg, |id| CdsNode::new(id, rank.key(udg, id)));
    let mut budget = udg.node_count() + 16;
    if let Some((max_delay, seed)) = jitter {
        net = net.with_jitter(max_delay, seed);
        budget *= max_delay;
    }
    net.run_phases(5, budget)?;
    let (nodes, stats) = net.into_parts();
    Ok((harvest(udg, &nodes, &VecSet::new(), false), stats))
}

/// Runs the CDS construction under injected faults, with the link-layer
/// ack/retransmit scheme and the five-phase self-healing epilogue
/// (dominator beacons, orphan re-attachment / self-promotion, connector
/// re-election).
///
/// A [`FaultPlan::is_zero`] plan takes the exact code path of
/// [`run_cds`] — no reliability layer, no recovery phases — so the
/// output (structure *and* message statistics) is bit-identical.
///
/// Crashed nodes are excluded from the assembled structure: they keep
/// their vertex slot but hold no role, edges, or dominator links.
///
/// # Errors
/// Returns [`QuiescenceTimeout`] if a phase fails to converge within the
/// (reliability-extended) round budget.
///
/// # Panics
/// Panics if a `Weight` rank does not cover all nodes.
pub fn run_cds_faulty(
    udg: &Graph,
    rank: &ClusterRank,
    plan: &FaultPlan,
    reliability: ReliabilityConfig,
) -> Result<(CdsGraphs, MessageStats, FaultReport), QuiescenceTimeout> {
    if plan.is_zero() {
        let (graphs, stats) = run_cds(udg, rank)?;
        return Ok((graphs, stats, FaultReport::default()));
    }
    let mut net = Network::new(udg, |id| CdsNode::new(id, rank.key(udg, id)))
        .with_faults(plan.clone())
        .with_reliability(reliability);
    let per_hop = (reliability.max_retries as usize + 2) * (reliability.ack_timeout + 1);
    let budget = (udg.node_count() + 16) * per_hop;
    net.run_phases(10, budget)?;
    let report = net.fault_report();
    let (nodes, stats) = net.into_parts();
    let crashed: VecSet = report.crashed.iter().copied().collect();
    Ok((harvest(udg, &nodes, &crashed, true), stats, report))
}

/// Collects the per-node protocol outcomes into the graph family.
///
/// `lenient` is the fault-injected mode: crashed nodes are skipped
/// entirely, dangling references to them are filtered out, and a node
/// still white (possible only if it crashed mid-election — but kept as a
/// safety net) becomes a standalone dominator instead of panicking.
fn harvest(udg: &Graph, nodes: &[CdsNode], crashed: &VecSet, lenient: bool) -> CdsGraphs {
    let n = udg.node_count();
    let mut dominators = Vec::new();
    let mut is_dominator = vec![false; n];
    let mut dominators_of = vec![Vec::new(); n];
    let mut connectors = Vec::new();
    let mut edges: BTreeSet<(usize, usize)> = BTreeSet::new();
    for node in nodes {
        if crashed.contains(node.id) {
            continue;
        }
        match node.status {
            Status::Dominator => {
                dominators.push(node.id);
                is_dominator[node.id] = true;
            }
            Status::Dominatee => {
                dominators_of[node.id] = node.dominators.iter().collect();
                if node.is_connector {
                    connectors.push(node.id);
                }
            }
            Status::White if lenient => {
                dominators.push(node.id);
                is_dominator[node.id] = true;
            }
            // geospan-analyze: allow(D11, the clustering phase colors every node before extraction; lenient mode above absorbs injected faults)
            Status::White => unreachable!("clustering leaves no white nodes"),
        }
        edges.extend(
            node.edges
                .iter()
                .filter(|(a, b)| !crashed.contains(*a) && !crashed.contains(*b)),
        );
    }
    if lenient {
        // Drop references to dominators that died (or were demoted by a
        // crash) after being heard.
        for list in &mut dominators_of {
            list.retain(|d| is_dominator[*d]);
        }
        edges.retain(|&(a, b)| udg.has_edge(a, b));
    }
    let clustering = Clustering {
        dominators,
        is_dominator,
        dominators_of,
    };
    let result = ConnectorResult {
        connectors,
        edges: edges.into_iter().collect(),
    };
    assemble(udg, &clustering, &result)
}

/// Equality of two backbone families, for tests and validation: roles,
/// dominator/connector sets, and all four edge sets.
pub fn same_structure(a: &CdsGraphs, b: &CdsGraphs) -> bool {
    a.roles == b.roles
        && a.dominators == b.dominators
        && a.connectors == b.connectors
        && a.dominators_of == b.dominators_of
        && a.cds == b.cds
        && a.cds_prime == b.cds_prime
        && a.icds == b.icds
        && a.icds_prime == b.icds_prime
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{build_cds, Role};
    use geospan_graph::gen::connected_unit_disk;

    #[test]
    fn distributed_matches_centralized() {
        for seed in 0..6 {
            let (_pts, udg, _s) = connected_unit_disk(60, 150.0, 45.0, seed * 13 + 1);
            for rank in [ClusterRank::LowestId, ClusterRank::HighestDegree] {
                let central = build_cds(&udg, &rank);
                let (dist, _stats) = run_cds(&udg, &rank).expect("protocol converges");
                assert!(
                    same_structure(&central, &dist),
                    "seed {seed}, rank {rank:?}: structures differ"
                );
            }
        }
    }

    #[test]
    fn asynchronous_delivery_changes_nothing() {
        // The election decisions are timing-independent, so arbitrary
        // bounded per-message delays must yield the identical backbone.
        for seed in 0..4 {
            let (_pts, udg, _s) = connected_unit_disk(50, 150.0, 45.0, seed * 31 + 7);
            let sync = build_cds(&udg, &ClusterRank::LowestId);
            for delay_seed in 0..3 {
                let (jittered, _stats) =
                    run_cds_jittered(&udg, &ClusterRank::LowestId, 5, delay_seed * 997 + 1)
                        .expect("protocol converges under jitter");
                assert!(
                    same_structure(&sync, &jittered),
                    "seed {seed}, delay seed {delay_seed}: async run diverged"
                );
            }
        }
    }

    #[test]
    fn per_node_message_cost_is_bounded() {
        // The paper's Lemma 3: constant messages per node. The constant is
        // generous here; the experiments measure the actual values.
        for seed in 0..4 {
            let (_pts, udg, _s) = connected_unit_disk(80, 150.0, 40.0, seed * 29 + 5);
            let (_g, stats) = run_cds(&udg, &ClusterRank::LowestId).unwrap();
            assert!(
                stats.max_sent() <= 120,
                "seed {seed}: a node sent {} messages",
                stats.max_sent()
            );
        }
    }

    #[test]
    fn message_kind_accounting() {
        let (_pts, udg, _s) = connected_unit_disk(50, 150.0, 50.0, 3);
        let (g, stats) = run_cds(&udg, &ClusterRank::LowestId).unwrap();
        let kinds = stats.per_kind();
        assert_eq!(kinds["Hello"], 50);
        assert_eq!(kinds["IamDominator"], g.dominators.len());
        // Each dominatee announces once per adjacent dominator.
        let expected: usize = g.dominators_of.iter().map(Vec::len).sum();
        assert_eq!(kinds["IamDominatee"], expected);
    }

    #[test]
    fn zero_fault_plan_matches_plain_run_exactly() {
        let (_pts, udg, _s) = connected_unit_disk(50, 150.0, 45.0, 9);
        let (plain, plain_stats) = run_cds(&udg, &ClusterRank::LowestId).unwrap();
        let (faulty, faulty_stats, report) = run_cds_faulty(
            &udg,
            &ClusterRank::LowestId,
            &FaultPlan::none(),
            ReliabilityConfig::default(),
        )
        .unwrap();
        assert!(same_structure(&plain, &faulty));
        assert_eq!(
            plain_stats, faulty_stats,
            "message counts must be bit-identical"
        );
        assert_eq!(report, FaultReport::default());
    }

    #[test]
    fn recovery_survives_loss_and_crashes() {
        use geospan_graph::paths::bfs_hops;
        for seed in 0..4 {
            let (_pts, udg, _s) = connected_unit_disk(60, 150.0, 45.0, seed * 37 + 11);
            let plan = FaultPlan::new(seed)
                .with_loss(0.15)
                .with_crash((seed as usize * 7 + 3) % 60, 4);
            let rel = ReliabilityConfig {
                max_retries: 8,
                ack_timeout: 2,
            };
            let (g, stats, report) =
                run_cds_faulty(&udg, &ClusterRank::LowestId, &plan, rel).unwrap();
            assert!(report.dropped > 0, "seed {seed}: loss was injected");
            assert!(stats.per_kind().contains_key("ack"));
            let crashed: std::collections::BTreeSet<usize> =
                report.crashed.iter().copied().collect();
            // Every surviving node is covered: dominator, or has one.
            for v in 0..udg.node_count() {
                if crashed.contains(&v) {
                    continue;
                }
                assert!(
                    g.roles[v] == Role::Dominator || !g.dominators_of[v].is_empty(),
                    "seed {seed}: node {v} uncovered after recovery"
                );
            }
            // The surviving backbone connects every surviving UDG
            // component: any two alive nodes connected in the alive UDG
            // are connected in alive ICDS'.
            let alive_udg = udg.filter_edges(|u, v| !crashed.contains(&u) && !crashed.contains(&v));
            let alive_prime = g
                .icds_prime
                .filter_edges(|u, v| !crashed.contains(&u) && !crashed.contains(&v));
            for comp in alive_udg.components() {
                let inside: Vec<usize> = comp
                    .iter()
                    .copied()
                    .filter(|v| !crashed.contains(v))
                    .collect();
                if inside.len() < 2 {
                    continue;
                }
                let hops = bfs_hops(&alive_prime, inside[0]);
                for &v in &inside[1..] {
                    assert!(
                        hops[v].is_some(),
                        "seed {seed}: {v} cut off from {} in repaired backbone",
                        inside[0]
                    );
                }
            }
        }
    }

    #[test]
    fn five_phase_chain() {
        // A 4-chain exercises stages 2 and 3 (3-hop dominator pair).
        use geospan_graph::{Graph, Point};
        let udg = Graph::with_edges(
            vec![
                Point::new(0.0, 0.0),
                Point::new(1.0, 0.0),
                Point::new(2.0, 0.0),
                Point::new(3.0, 0.0),
            ],
            [(0, 1), (1, 2), (2, 3)],
        );
        let rank = ClusterRank::Weight(vec![10, 0, 0, 10]);
        let central = build_cds(&udg, &rank);
        let (dist, stats) = run_cds(&udg, &rank).unwrap();
        assert!(same_structure(&central, &dist));
        assert_eq!(dist.connectors, vec![1, 2]);
        assert!(stats.per_kind().contains_key("TryConnector"));
        assert!(stats.per_kind().contains_key("IamConnector"));
    }
}
