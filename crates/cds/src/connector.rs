//! Centralized reference implementation of Algorithm 1 (finding
//! connectors).
//!
//! Mirrors the distributed election exactly (the protocol in
//! [`crate::protocol`] is tested to produce identical output):
//!
//! * **Stage 1** — for every unordered dominator pair `{u, v}` sharing a
//!   dominatee, each common dominatee is a candidate; a candidate wins
//!   when it has the smallest identifier among itself and its *adjacent*
//!   candidates (so up to two non-adjacent winners per pair, as the paper
//!   notes). A winner `w` contributes the path `u — w — v`.
//! * **Stage 2** — for every dominatee `w` with dominator `u` and a
//!   2-hop-away dominator `v` (learned from a neighboring dominatee of
//!   `v`), `w` is a candidate for the ordered pair `(u, v)`; local-minimum
//!   winners contribute the edge `u — w`.
//! * **Stage 3** — dominatees of `v` adjacent to a stage-2 winner for
//!   `(u, v)` are candidates; local-minimum winners `x` contribute the
//!   edges `x — v` and `x — w` to the smallest adjacent stage-2 winner.
//!
//! Together the stages link every dominator pair at hop distance two or
//! three, which suffices for backbone connectivity.

use std::collections::{BTreeMap, BTreeSet};

use geospan_graph::collections::VecSet;
use geospan_graph::Graph;

use crate::Clustering;

/// Output of connector election.
#[derive(Debug, Clone, PartialEq)]
pub struct ConnectorResult {
    /// Elected connectors (dominatees), ascending.
    pub connectors: Vec<usize>,
    /// Backbone edges contributed by the elections, `(a, b)` unordered.
    pub edges: Vec<(usize, usize)>,
}

/// Runs the three election stages. See the module documentation.
pub fn find_connectors(g: &Graph, clustering: &Clustering) -> ConnectorResult {
    find_connectors_impl(g, clustering, None, None)
}

/// Runs the election stages only for dominator pairs touching `dominators`
/// (i.e. pairs `{u, v}` with `u` or `v` in the set).
///
/// This is the localized-repair entry point: when a link break or node
/// death perturbs a bounded neighborhood, only the elections involving
/// the affected dominators can change, so only those are re-run. The
/// result composes with the retained elections of the untouched region.
pub fn find_connectors_for_pairs(
    g: &Graph,
    clustering: &Clustering,
    dominators: &VecSet,
) -> ConnectorResult {
    find_connectors_impl(g, clustering, Some(dominators), None)
}

/// Runs the election stages for dominator pairs touching `include` but
/// *not* touching `exclude` — i.e. pairs `{u, v}` with an endpoint in
/// `include` and neither endpoint in `exclude`.
///
/// Local repair uses this to *rescue* elections when it subtracts a
/// perturbed region's old elections: an edge can be contributed by
/// several pairs at once, so after removing every election touching the
/// re-run scope, the elections of *neighboring* pairs (which may share
/// edges with the subtracted ones but are themselves unperturbed) are
/// recomputed on the old topology and added back.
pub fn find_connectors_for_pairs_excluding(
    g: &Graph,
    clustering: &Clustering,
    include: &VecSet,
    exclude: &VecSet,
) -> ConnectorResult {
    find_connectors_impl(g, clustering, Some(include), Some(exclude))
}

fn find_connectors_impl(
    g: &Graph,
    clustering: &Clustering,
    restrict: Option<&VecSet>,
    exclude: Option<&VecSet>,
) -> ConnectorResult {
    let n = g.node_count();
    let doms = &clustering.dominators_of;
    let pair_in_scope = |u: usize, v: usize| {
        restrict.is_none_or(|set| set.contains(u) || set.contains(v))
            && !exclude.is_some_and(|set| set.contains(u) || set.contains(v))
    };

    // 2-hop dominators per dominatee: v such that some neighboring
    // dominatee is dominated by v, and v is not already adjacent.
    let mut two_hop: Vec<VecSet> = vec![VecSet::new(); n];
    // Dominatees per dominator (ascending), so stage 3 enumerates only
    // the far dominator's dominatees instead of scanning all n nodes
    // per winning pair.
    let mut dominatees_of: Vec<Vec<usize>> = vec![Vec::new(); n];
    #[allow(clippy::needless_range_loop)]
    for w in 0..n {
        if clustering.is_dominator[w] {
            continue;
        }
        for &v in &doms[w] {
            dominatees_of[v].push(w);
        }
        for &x in g.neighbors(w) {
            if clustering.is_dominator[x] {
                continue;
            }
            for &v in &doms[x] {
                if !doms[w].contains(&v) {
                    two_hop[w].insert(v);
                }
            }
        }
    }

    let mut connectors = VecSet::new();
    let mut edges: BTreeSet<(usize, usize)> = BTreeSet::new();
    let add_edge = |edges: &mut BTreeSet<(usize, usize)>, a: usize, b: usize| {
        edges.insert((a.min(b), a.max(b)));
    };

    // Stage 1: common dominatees of an unordered dominator pair.
    let mut cand1: BTreeMap<(usize, usize), Vec<usize>> = BTreeMap::new();
    #[allow(clippy::needless_range_loop)]
    for w in 0..n {
        if clustering.is_dominator[w] {
            continue;
        }
        let ds = &doms[w];
        for (i, &u) in ds.iter().enumerate() {
            for &v in &ds[i + 1..] {
                if pair_in_scope(u, v) {
                    cand1.entry((u, v)).or_default().push(w);
                }
            }
        }
    }
    for ((u, v), cands) in &cand1 {
        for &w in cands {
            let beaten = cands.iter().any(|&w2| w2 < w && g.has_edge(w, w2));
            if !beaten {
                connectors.insert(w);
                add_edge(&mut edges, *u, w);
                add_edge(&mut edges, w, *v);
            }
        }
    }

    // Stage 2: dominatee w of u proposing toward a 2-hop dominator v.
    let mut cand2: BTreeMap<(usize, usize), Vec<usize>> = BTreeMap::new();
    for w in 0..n {
        if clustering.is_dominator[w] {
            continue;
        }
        for &u in &doms[w] {
            for v in &two_hop[w] {
                if v != u && pair_in_scope(u, v) {
                    cand2.entry((u, v)).or_default().push(w);
                }
            }
        }
    }
    let mut winners2: BTreeMap<(usize, usize), Vec<usize>> = BTreeMap::new();
    for ((u, v), cands) in &cand2 {
        for &w in cands {
            let beaten = cands.iter().any(|&w2| w2 < w && g.has_edge(w, w2));
            if !beaten {
                connectors.insert(w);
                add_edge(&mut edges, *u, w);
                winners2.entry((*u, *v)).or_default().push(w);
            }
        }
    }

    // Stage 3: dominatees of v adjacent to a stage-2 winner for (u, v).
    // `dominatees_of[v]` is ascending, so the candidate list comes out
    // in the same order the old all-nodes scan produced.
    for ((u, v), ws) in &winners2 {
        let _ = u;
        let mut cands: Vec<usize> = Vec::new();
        for &x in &dominatees_of[*v] {
            if ws.iter().any(|&w| g.has_edge(x, w)) {
                cands.push(x);
            }
        }
        for &x in &cands {
            let beaten = cands.iter().any(|&x2| x2 < x && g.has_edge(x, x2));
            if !beaten {
                connectors.insert(x);
                add_edge(&mut edges, x, *v);
                // Link to the smallest adjacent stage-2 winner.
                let w = ws
                    .iter()
                    .copied()
                    .filter(|&w| g.has_edge(x, w))
                    .min()
                    .expect("candidate is adjacent to a winner");
                add_edge(&mut edges, x, w);
            }
        }
    }

    ConnectorResult {
        connectors: connectors.iter().collect(),
        edges: edges.into_iter().collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{cluster, ClusterRank};
    use geospan_graph::gen::connected_unit_disk;
    use geospan_graph::paths::bfs_hops;
    use geospan_graph::Point;

    #[test]
    fn two_hop_pair_gets_connected() {
        // Dominators 0 and 2 share dominatee 1.
        let g = Graph::with_edges(
            vec![
                Point::new(0.0, 0.0),
                Point::new(1.0, 0.0),
                Point::new(2.0, 0.0),
            ],
            [(0, 1), (1, 2)],
        );
        let c = cluster(&g, &ClusterRank::LowestId);
        assert_eq!(c.dominators, vec![0, 2]);
        let r = find_connectors(&g, &c);
        assert_eq!(r.connectors, vec![1]);
        assert_eq!(r.edges, vec![(0, 1), (1, 2)]);
    }

    #[test]
    fn three_hop_pair_gets_connected() {
        // Path 0-1-2-3: dominators 0, 3 (2 is dominated by 3 ... check).
        let g = Graph::with_edges(
            vec![
                Point::new(0.0, 0.0),
                Point::new(1.0, 0.0),
                Point::new(2.0, 0.0),
                Point::new(3.0, 0.0),
            ],
            [(0, 1), (1, 2), (2, 3)],
        );
        let c = cluster(&g, &ClusterRank::LowestId);
        assert_eq!(c.dominators, vec![0, 2]);
        // Pair (0, 2) is 2 hops: stage 1 connects via 1. Node 3 is a plain
        // dominatee of 2.
        let r = find_connectors(&g, &c);
        assert!(r.connectors.contains(&1));
        assert!(r.edges.contains(&(0, 1)) && r.edges.contains(&(1, 2)));
    }

    #[test]
    fn chain_of_five_uses_stage_two_and_three() {
        // Path 0..=4 with unit spacing: dominators 0, 2, 4? cluster:
        // 0 dominator -> 1 dominatee; 2 dominator -> 3 dominatee;
        // 4 dominator. Pairs (0,2) and (2,4) are 2 hops apart.
        // Make a 3-hop dominator pair instead: 0-1-2-3 chain with
        // dominators 0 and 3. Force ranks so 3 is a dominator.
        let g = Graph::with_edges(
            vec![
                Point::new(0.0, 0.0),
                Point::new(1.0, 0.0),
                Point::new(2.0, 0.0),
                Point::new(3.0, 0.0),
            ],
            [(0, 1), (1, 2), (2, 3)],
        );
        let c = cluster(&g, &ClusterRank::Weight(vec![10, 0, 0, 10]));
        assert_eq!(c.dominators, vec![0, 3]);
        let r = find_connectors(&g, &c);
        // Both intermediates become connectors, and the path is complete.
        assert_eq!(r.connectors, vec![1, 2]);
        assert!(r.edges.contains(&(0, 1)));
        assert!(r.edges.contains(&(1, 2)));
        assert!(r.edges.contains(&(2, 3)));
    }

    #[test]
    fn backbone_connects_all_dominators() {
        for seed in 0..8 {
            let (_pts, g, _s) = connected_unit_disk(70, 150.0, 45.0, seed * 3 + 1);
            let c = cluster(&g, &ClusterRank::LowestId);
            let r = find_connectors(&g, &c);
            let mut backbone = g.same_vertices();
            for &(a, b) in &r.edges {
                backbone.add_edge(a, b);
            }
            if c.dominators.len() <= 1 {
                continue;
            }
            let d0 = c.dominators[0];
            let hops = bfs_hops(&backbone, d0);
            for &d in &c.dominators {
                assert!(hops[d].is_some(), "seed {seed}: dominator {d} unreachable");
            }
            for &cn in &r.connectors {
                assert!(
                    hops[cn].is_some(),
                    "seed {seed}: connector {cn} unreachable"
                );
            }
        }
    }

    #[test]
    fn restricted_election_composes() {
        for seed in 0..4 {
            let (_pts, g, _s) = connected_unit_disk(60, 150.0, 45.0, seed * 19 + 3);
            let c = cluster(&g, &ClusterRank::LowestId);
            let full = find_connectors(&g, &c);
            // Restricting to every dominator reproduces the full election.
            let all: VecSet = c.dominators.iter().copied().collect();
            assert_eq!(find_connectors_for_pairs(&g, &c, &all), full);
            // The empty restriction elects nothing.
            let none = find_connectors_for_pairs(&g, &c, &VecSet::new());
            assert!(none.connectors.is_empty() && none.edges.is_empty());
            // A single-dominator restriction yields a subset of the full
            // election (its pairs' winners are unchanged by locality).
            let one: VecSet = [c.dominators[0]].into_iter().collect();
            let partial = find_connectors_for_pairs(&g, &c, &one);
            for e in &partial.edges {
                assert!(full.edges.contains(e), "seed {seed}: extra edge {e:?}");
            }
            for w in &partial.connectors {
                assert!(full.connectors.contains(w), "seed {seed}");
            }
        }
    }

    #[test]
    fn include_and_exclude_partition_the_election() {
        // Elections are per-pair and pairs partition into touching-S vs
        // not-touching-S, so running the two halves separately and
        // uniting them reproduces the full election exactly. This is
        // the property the repair splice relies on.
        for seed in 0..4 {
            let (_pts, g, _s) = connected_unit_disk(60, 150.0, 45.0, seed * 11 + 5);
            let c = cluster(&g, &ClusterRank::LowestId);
            let full = find_connectors(&g, &c);
            let all: VecSet = c.dominators.iter().copied().collect();
            let s: VecSet = c.dominators.iter().step_by(3).copied().collect();
            let touching = find_connectors_for_pairs(&g, &c, &s);
            let rest = find_connectors_for_pairs_excluding(&g, &c, &all, &s);
            let mut edges: BTreeSet<(usize, usize)> = touching.edges.iter().copied().collect();
            edges.extend(rest.edges.iter().copied());
            assert_eq!(
                edges.into_iter().collect::<Vec<_>>(),
                full.edges,
                "seed {seed}: edge union mismatch"
            );
            let mut conns: BTreeSet<usize> = touching.connectors.iter().copied().collect();
            conns.extend(rest.connectors.iter().copied());
            assert_eq!(
                conns.into_iter().collect::<Vec<_>>(),
                full.connectors,
                "seed {seed}: connector union mismatch"
            );
            // Excluding everything elects nothing.
            let none = find_connectors_for_pairs_excluding(&g, &c, &all, &all);
            assert!(none.connectors.is_empty() && none.edges.is_empty());
        }
    }

    #[test]
    fn connector_count_is_linear_in_dominators() {
        for seed in 0..5 {
            let (_pts, g, _s) = connected_unit_disk(90, 150.0, 40.0, seed * 7 + 3);
            let c = cluster(&g, &ClusterRank::LowestId);
            let r = find_connectors(&g, &c);
            // Paper: at most a constant factor (their crude bound is 25x
            // per pair; empirically far lower).
            assert!(
                r.connectors.len() <= 25 * c.dominators.len().max(1),
                "seed {seed}: {} connectors for {} dominators",
                r.connectors.len(),
                c.dominators.len()
            );
        }
    }
}
