//! Clustering ranks: who wins the dominator election.

use geospan_graph::Graph;

/// The criterion deciding which white node becomes a cluster-head.
///
/// The literature the paper reviews differs exactly here: Baker &
/// Ephremides and Alzoubi use node identifiers, Gerla & Tsai use node
/// degree, Basagni uses a generic weight. All variants yield a maximal
/// independent set; the ablation experiment E8 compares them.
#[derive(Debug, Clone, PartialEq)]
pub enum ClusterRank {
    /// Smallest identifier wins (the paper's default).
    LowestId,
    /// Highest UDG degree wins, ties by smallest identifier.
    HighestDegree,
    /// Highest weight wins, ties by smallest identifier.
    ///
    /// The vector holds one weight per node.
    Weight(Vec<u64>),
}

impl ClusterRank {
    /// Comparable key for node `v`: **smaller key = preferred as
    /// dominator**.
    ///
    /// # Panics
    /// Panics if a `Weight` vector does not cover `v`.
    pub fn key(&self, g: &Graph, v: usize) -> (i64, usize) {
        match self {
            ClusterRank::LowestId => (0, v),
            ClusterRank::HighestDegree => (-(g.degree(v) as i64), v),
            ClusterRank::Weight(w) => {
                assert!(
                    w.len() == g.node_count(),
                    "weight vector length {} does not match {} nodes",
                    w.len(),
                    g.node_count()
                );
                (-(w[v] as i64), v)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geospan_graph::Point;

    fn star() -> Graph {
        Graph::with_edges(
            vec![
                Point::new(0.0, 0.0),
                Point::new(1.0, 0.0),
                Point::new(0.0, 1.0),
            ],
            [(0, 1), (0, 2)],
        )
    }

    #[test]
    fn lowest_id_orders_by_index() {
        let g = star();
        let r = ClusterRank::LowestId;
        assert!(r.key(&g, 0) < r.key(&g, 1));
        assert!(r.key(&g, 1) < r.key(&g, 2));
    }

    #[test]
    fn highest_degree_prefers_hub() {
        let g = star();
        let r = ClusterRank::HighestDegree;
        assert!(r.key(&g, 0) < r.key(&g, 1)); // degree 2 beats degree 1
        assert!(r.key(&g, 1) < r.key(&g, 2)); // tie broken by id
    }

    #[test]
    fn weight_prefers_heavier() {
        let g = star();
        let r = ClusterRank::Weight(vec![1, 9, 9]);
        assert!(r.key(&g, 1) < r.key(&g, 0));
        assert!(r.key(&g, 1) < r.key(&g, 2));
    }

    #[test]
    #[should_panic(expected = "weight vector")]
    fn wrong_weight_length_rejected() {
        let g = star();
        let _ = ClusterRank::Weight(vec![1]).key(&g, 0);
    }
}
