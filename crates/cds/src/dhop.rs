//! `d`-hop clustering: the *k-dominating set* generalization the paper's
//! introduction cites (Amis–Prakash–Huynh–Vuong, "Max-min d-cluster
//! formation", INFOCOM 2000).
//!
//! A `d`-hop dominating set covers every node within `d` hops instead of
//! one; larger `d` trades fewer, larger clusters (less backbone state)
//! for longer intra-cluster detours. [`cluster_d`] computes the
//! rank-greedy variant, which for `d = 1` coincides exactly with the
//! paper's MIS clustering.

use geospan_graph::paths::bfs_hops;
use geospan_graph::Graph;

use crate::ClusterRank;

/// The result of `d`-hop clustering.
#[derive(Debug, Clone, PartialEq)]
pub struct DHopClustering {
    /// Cluster-head indices, ascending.
    pub dominators: Vec<usize>,
    /// `true` for cluster-heads.
    pub is_dominator: Vec<bool>,
    /// For each node, its assigned cluster-head (the closest one in hops,
    /// rank-preferred on ties) — `Some(self)` for heads.
    pub assignment: Vec<Option<usize>>,
    /// The coverage radius used.
    pub d: usize,
}

/// Rank-greedy `d`-hop clustering: processing nodes in ascending rank
/// order, an uncovered node becomes a cluster-head and covers everything
/// within `d` hops.
///
/// Guarantees: every node in a connected component with a head is within
/// `d` hops of some head, and heads are pairwise more than `d` hops
/// apart (a *d-independent* set).
///
/// # Panics
/// Panics if `d == 0` or a `Weight` rank does not cover all nodes.
///
/// # Example
/// ```
/// use geospan_cds::{cluster_d, ClusterRank};
/// use geospan_graph::{Graph, Point};
/// // A 5-chain with d = 2: node 0 covers 1 and 2; node 3 heads the rest.
/// let pts = (0..5).map(|i| Point::new(i as f64, 0.0)).collect();
/// let g = Graph::with_edges(pts, (0..4).map(|i| (i, i + 1)));
/// let c = cluster_d(&g, &ClusterRank::LowestId, 2);
/// assert_eq!(c.dominators, vec![0, 3]);
/// ```
pub fn cluster_d(g: &Graph, rank: &ClusterRank, d: usize) -> DHopClustering {
    assert!(d >= 1, "coverage radius must be at least one hop");
    let n = g.node_count();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&v| rank.key(g, v));

    let mut is_dominator = vec![false; n];
    let mut assignment: Vec<Option<usize>> = vec![None; n];
    let mut best_dist = vec![usize::MAX; n];
    let mut dominators = Vec::new();

    for &v in &order {
        if assignment[v].is_some() {
            continue;
        }
        is_dominator[v] = true;
        dominators.push(v);
        // Cover the d-hop ball around v (BFS truncated at depth d).
        let hops = bfs_hops(g, v);
        for (w, h) in hops.into_iter().enumerate() {
            let Some(h) = h.map(|h| h as usize) else {
                continue;
            };
            if h <= d && h < best_dist[w] {
                best_dist[w] = h;
                assignment[w] = Some(v);
            }
        }
    }
    dominators.sort_unstable();
    DHopClustering {
        dominators,
        is_dominator,
        assignment,
        d,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster;
    use geospan_graph::gen::{uniform_points, UnitDiskBuilder};
    use geospan_graph::paths::bfs_hops;

    fn udg(seed: u64) -> Graph {
        let pts = uniform_points(90, 130.0, seed);
        UnitDiskBuilder::new(30.0).build(&pts)
    }

    #[test]
    fn coverage_and_d_independence() {
        for seed in 0..5 {
            let g = udg(seed);
            for d in 1..=3 {
                let c = cluster_d(&g, &ClusterRank::LowestId, d);
                // Every node is assigned to a head within d hops.
                for v in 0..g.node_count() {
                    let head = c.assignment[v].expect("covered");
                    let h = bfs_hops(&g, head)[v].unwrap() as usize;
                    assert!(h <= d, "seed {seed}, d {d}: node {v} at {h} hops");
                }
                // Heads are pairwise more than d hops apart.
                for &a in &c.dominators {
                    let hops = bfs_hops(&g, a);
                    for &b in &c.dominators {
                        if a != b {
                            assert!(
                                hops[b].is_none_or(|h| h as usize > d),
                                "seed {seed}, d {d}: heads {a},{b} too close"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn d1_equals_mis_clustering() {
        for seed in 0..5 {
            let g = udg(seed + 10);
            let c1 = cluster_d(&g, &ClusterRank::LowestId, 1);
            let mis = cluster(&g, &ClusterRank::LowestId);
            assert_eq!(c1.dominators, mis.dominators, "seed {seed}");
        }
    }

    #[test]
    fn larger_d_needs_fewer_heads() {
        for seed in 0..5 {
            let g = udg(seed + 20);
            let h1 = cluster_d(&g, &ClusterRank::LowestId, 1).dominators.len();
            let h2 = cluster_d(&g, &ClusterRank::LowestId, 2).dominators.len();
            let h3 = cluster_d(&g, &ClusterRank::LowestId, 3).dominators.len();
            assert!(h2 <= h1, "seed {seed}");
            assert!(h3 <= h2, "seed {seed}");
        }
    }

    #[test]
    fn heads_assigned_to_themselves() {
        let g = udg(31);
        let c = cluster_d(&g, &ClusterRank::HighestDegree, 2);
        for &h in &c.dominators {
            assert_eq!(c.assignment[h], Some(h));
        }
    }

    #[test]
    #[should_panic(expected = "at least one hop")]
    fn zero_radius_rejected() {
        let _ = cluster_d(&udg(0), &ClusterRank::LowestId, 0);
    }
}
