//! The traffic-load sweep: serve packet workloads over UDG, CDS', and
//! `LDel(ICDS)` across offered-load levels and measure delivery,
//! latency, stretch, and queue behavior under congestion.
//!
//! This is the evaluation regime the backbone exists for — spanner
//! bounds only matter for packets actually forwarded — run in the style
//! of localized-spanner workload studies (throughput/stretch under
//! sustained load) rather than static all-pairs tables.
//!
//! Cells (trial × load × topology) are independent and run in parallel;
//! results are folded in deterministic order, so the CSV is
//! byte-identical for every thread count.

use std::fmt::Write as _;

use geospan_core::{Backbone, BackboneBuilder, BackboneConfig, ClusterRank};
use geospan_graph::Graph;
use geospan_sim::FaultPlan;
use geospan_traffic::{run, Forwarding, TrafficConfig, TrafficReport, Workload};
use rayon::prelude::*;

use crate::Scenario;

/// Configuration of one traffic sweep.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Deployment parameters (`n`, `side`, `radius`, `trials`, `seed`).
    pub scenario: Scenario,
    /// Offered loads to sweep, in expected packets per tick.
    pub loads: Vec<f64>,
    /// Ticks over which each workload offers packets.
    pub duration: u64,
    /// Per-node transmit queue capacity.
    pub queue_capacity: usize,
    /// Ticks per transmission.
    pub service_time: u64,
    /// Per-link delivery loss probability (0 for a congestion-only
    /// sweep); seeded from the scenario seed.
    pub loss: f64,
}

impl SweepConfig {
    /// The default sweep: the paper's Table I deployment served at five
    /// load levels.
    pub fn standard() -> Self {
        SweepConfig {
            scenario: Scenario {
                n: 100,
                side: 200.0,
                radius: 60.0,
                trials: 3,
                seed: 1,
            },
            loads: vec![0.05, 0.1, 0.2, 0.4, 0.8],
            duration: 2_000,
            queue_capacity: 64,
            service_time: 1,
            loss: 0.0,
        }
    }

    /// The CI smoke sweep: a small field at two load levels.
    pub fn quick() -> Self {
        SweepConfig {
            scenario: Scenario {
                n: 40,
                side: 120.0,
                radius: 45.0,
                trials: 1,
                seed: 1,
            },
            loads: vec![0.05, 0.4],
            duration: 500,
            queue_capacity: 64,
            service_time: 1,
            loss: 0.0,
        }
    }
}

/// One aggregated sweep row: a (topology, load) cell averaged over the
/// scenario's trials.
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficRow {
    /// Topology served.
    pub topology: &'static str,
    /// Forwarding scheme driven over it.
    pub policy: &'static str,
    /// Offered load in packets per tick.
    pub load: f64,
    /// Total packets offered across trials.
    pub offered: usize,
    /// Total packets delivered across trials.
    pub delivered: usize,
    /// Drop totals across trials, by cause.
    pub drop_stuck: usize,
    /// Dropped at full queues.
    pub drop_queue: usize,
    /// Lost on the air.
    pub drop_loss: usize,
    /// Lost to crashes.
    pub drop_crash: usize,
    /// Exceeded the hop budget.
    pub drop_hop_limit: usize,
    /// Mean over trials of the median delivery latency.
    pub latency_p50: f64,
    /// Mean over trials of the 99th-percentile delivery latency.
    pub latency_p99: f64,
    /// Mean over trials of the mean delivery latency.
    pub latency_mean: f64,
    /// Mean over trials of the average hop stretch vs. the UDG.
    pub hop_stretch_avg: f64,
    /// Mean over trials of the average length stretch vs. the UDG.
    pub length_stretch_avg: f64,
    /// Worst queue occupancy any node reached in any trial.
    pub queue_peak_max: usize,
}

impl TrafficRow {
    /// Delivered fraction of offered packets.
    pub fn delivery_ratio(&self) -> f64 {
        if self.offered == 0 {
            1.0
        } else {
            self.delivered as f64 / self.offered as f64
        }
    }
}

/// The topologies a sweep serves, built once per trial.
struct TrialTopologies {
    udg: Graph,
    cds_prime: Graph,
    backbone: Backbone,
}

/// The three (topology, policy) pairs of the sweep, in row order.
const TOPOLOGIES: [(&str, &str); 3] = [
    ("UDG", "greedy"),
    ("CDS'", "gpsr"),
    ("LDel(ICDS)", "backbone"),
];

/// Splitmix-style seed mixing for per-cell workload schedules.
fn mix_seed(base: u64, trial: u64, load_idx: u64) -> u64 {
    let mut z = base
        .wrapping_add(trial.wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .wrapping_add(load_idx.wrapping_mul(0xc2b2_ae3d_27d4_eb4f));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Runs the sweep: every (trial, load, topology) cell in parallel, then
/// a deterministic fold into one row per (topology, load).
///
/// # Panics
/// Panics if the scenario yields no trials or no loads are configured.
pub fn traffic_rows(cfg: &SweepConfig) -> Vec<TrafficRow> {
    assert!(cfg.scenario.trials > 0, "sweep needs at least one trial");
    assert!(!cfg.loads.is_empty(), "sweep needs at least one load");
    let instances = cfg.scenario.instances();
    let trials: Vec<TrialTopologies> = instances
        .into_par_iter()
        .map(|(_pts, udg)| {
            let backbone = BackboneBuilder::new(
                BackboneConfig::new(cfg.scenario.radius).with_rank(ClusterRank::LowestId),
            )
            .build(&udg)
            .expect("centralized build cannot fail on a valid UDG");
            let cds_prime = geospan_cds::build_cds(&udg, &ClusterRank::LowestId)
                .cds_prime
                .clone();
            TrialTopologies {
                udg,
                cds_prime,
                backbone,
            }
        })
        .collect();

    // One engine configuration for the whole sweep.
    let engine_cfg = TrafficConfig {
        queue_capacity: cfg.queue_capacity,
        service_time: cfg.service_time,
        max_hops: (50 * cfg.scenario.n) as u32,
        ticks_per_round: 1,
        record_paths: false,
    };

    // Cell grid: trial-major, then load, then topology.
    let cells: Vec<(usize, usize, usize)> = (0..trials.len())
        .flat_map(|t| {
            (0..cfg.loads.len()).flat_map(move |l| (0..TOPOLOGIES.len()).map(move |k| (t, l, k)))
        })
        .collect();
    let reports: Vec<TrafficReport> = cells
        .par_iter()
        .map(|&(t, l, k)| {
            let topo = &trials[t];
            let arrivals = Workload::uniform(cfg.loads[l], cfg.duration).generate(
                cfg.scenario.n,
                mix_seed(cfg.scenario.seed, t as u64, l as u64),
            );
            let faults = if cfg.loss > 0.0 {
                FaultPlan::new(mix_seed(
                    cfg.scenario.seed ^ 0x5bf0_3635,
                    t as u64,
                    l as u64,
                ))
                .with_loss(cfg.loss)
            } else {
                FaultPlan::none()
            };
            let forwarding = match k {
                0 => Forwarding::Greedy(&topo.udg),
                1 => Forwarding::Gpsr(&topo.cds_prime),
                _ => Forwarding::Backbone {
                    backbone: &topo.backbone,
                    udg: &topo.udg,
                },
            };
            run(&forwarding, &topo.udg, &arrivals, &faults, &engine_cfg).report
        })
        .collect();

    // Fold trial-major cells into (topology, load) rows, trials averaged
    // in index order.
    let mut rows = Vec::with_capacity(cfg.loads.len() * TOPOLOGIES.len());
    for (l, &load) in cfg.loads.iter().enumerate() {
        for (k, &(topology, policy)) in TOPOLOGIES.iter().enumerate() {
            let mut row = TrafficRow {
                topology,
                policy,
                load,
                offered: 0,
                delivered: 0,
                drop_stuck: 0,
                drop_queue: 0,
                drop_loss: 0,
                drop_crash: 0,
                drop_hop_limit: 0,
                latency_p50: 0.0,
                latency_p99: 0.0,
                latency_mean: 0.0,
                hop_stretch_avg: 0.0,
                length_stretch_avg: 0.0,
                queue_peak_max: 0,
            };
            for t in 0..trials.len() {
                let r = &reports[(t * cfg.loads.len() + l) * TOPOLOGIES.len() + k];
                row.offered += r.offered;
                row.delivered += r.delivered;
                row.drop_stuck += r.drops.stuck;
                row.drop_queue += r.drops.queue_full;
                row.drop_loss += r.drops.link_loss;
                row.drop_crash += r.drops.node_crash;
                row.drop_hop_limit += r.drops.hop_limit;
                row.latency_p50 += r.latency_p50 as f64;
                row.latency_p99 += r.latency_p99 as f64;
                row.latency_mean += r.latency_mean;
                row.hop_stretch_avg += r.hop_stretch_avg;
                row.length_stretch_avg += r.length_stretch_avg;
                row.queue_peak_max = row.queue_peak_max.max(r.queue_peak_max);
            }
            let t = trials.len() as f64;
            row.latency_p50 /= t;
            row.latency_p99 /= t;
            row.latency_mean /= t;
            row.hop_stretch_avg /= t;
            row.length_stretch_avg /= t;
            rows.push(row);
        }
    }
    rows
}

/// Renders sweep rows as CSV (stable column order and formatting: the
/// artifact is byte-identical for a given seed).
pub fn traffic_csv(rows: &[TrafficRow]) -> String {
    let mut out = String::from(
        "topology,policy,load,offered,delivered,delivery_ratio,\
         drop_stuck,drop_queue,drop_loss,drop_crash,drop_hop_limit,\
         latency_p50,latency_p99,latency_mean,\
         hop_stretch_avg,length_stretch_avg,queue_peak_max\n",
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{},{},{:.3},{},{},{:.6},{},{},{},{},{},{:.3},{:.3},{:.4},{:.4},{:.4},{}",
            r.topology,
            r.policy,
            r.load,
            r.offered,
            r.delivered,
            r.delivery_ratio(),
            r.drop_stuck,
            r.drop_queue,
            r.drop_loss,
            r.drop_crash,
            r.drop_hop_limit,
            r.latency_p50,
            r.latency_p99,
            r.latency_mean,
            r.hop_stretch_avg,
            r.length_stretch_avg,
            r.queue_peak_max
        );
    }
    out
}

/// Renders sweep rows as an aligned text table.
pub fn format_traffic(rows: &[TrafficRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<12} {:<9} {:>6} {:>8} {:>9} {:>9} {:>9} {:>9} {:>8} {:>8}",
        "topology",
        "policy",
        "load",
        "offered",
        "delivered",
        "ratio",
        "p50",
        "p99",
        "stretch",
        "queue"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<12} {:<9} {:>6.2} {:>8} {:>9} {:>9.4} {:>9.1} {:>9.1} {:>8.3} {:>8}",
            r.topology,
            r.policy,
            r.load,
            r.offered,
            r.delivered,
            r.delivery_ratio(),
            r.latency_p50,
            r.latency_p99,
            r.hop_stretch_avg,
            r.queue_peak_max
        );
    }
    out
}

/// The smoke-test assertion: at the lowest swept load, dominating-set
/// backbone routing delivers at least 99% of offered packets.
///
/// Returns a description of the violation, if any.
pub fn check_low_load_delivery(rows: &[TrafficRow]) -> Result<(), String> {
    let low = rows.iter().map(|r| r.load).fold(f64::INFINITY, f64::min);
    let row = rows
        .iter()
        .find(|r| r.load == low && r.policy == "backbone")
        .ok_or_else(|| "no backbone row at the lowest load".to_string())?;
    if row.delivery_ratio() >= 0.99 {
        Ok(())
    } else {
        Err(format!(
            "backbone delivery at load {:.3} is {:.4} (< 0.99): {} of {} delivered",
            row.load,
            row.delivery_ratio(),
            row.delivered,
            row.offered
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_has_expected_shape() {
        let cfg = SweepConfig::quick();
        let rows = traffic_rows(&cfg);
        assert_eq!(rows.len(), cfg.loads.len() * TOPOLOGIES.len());
        for r in &rows {
            assert!(r.offered > 0);
            assert_eq!(
                r.offered,
                r.delivered
                    + r.drop_stuck
                    + r.drop_queue
                    + r.drop_loss
                    + r.drop_crash
                    + r.drop_hop_limit
            );
        }
        check_low_load_delivery(&rows).unwrap();
        // Backbone routes detour: stretch is measured and ≥ 1.
        let backbone_low = rows.iter().find(|r| r.policy == "backbone").unwrap();
        assert!(backbone_low.hop_stretch_avg >= 1.0);
        assert!(backbone_low.length_stretch_avg >= 1.0);
    }

    #[test]
    fn csv_is_stable_and_parsable() {
        let rows = traffic_rows(&SweepConfig::quick());
        let a = traffic_csv(&rows);
        let b = traffic_csv(&traffic_rows(&SweepConfig::quick()));
        assert_eq!(a, b, "same seed must give a byte-identical artifact");
        assert_eq!(a.lines().count(), rows.len() + 1);
        assert!(a.starts_with("topology,policy,load,"));
    }
}
