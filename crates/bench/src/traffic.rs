//! The traffic-load sweep: serve packet workloads over UDG, CDS', and
//! `LDel(ICDS)` across offered-load levels and measure delivery,
//! latency, stretch, and queue behavior under congestion.
//!
//! This is the evaluation regime the backbone exists for — spanner
//! bounds only matter for packets actually forwarded — run in the style
//! of localized-spanner workload studies (throughput/stretch under
//! sustained load) rather than static all-pairs tables.
//!
//! Cells (trial × load × topology) are independent and run in parallel;
//! results are folded in deterministic order, so the CSV is
//! byte-identical for every thread count.

use std::fmt::Write as _;

use geospan_core::{Backbone, BackboneBuilder, BackboneConfig, ClusterRank};
use geospan_graph::Graph;
use geospan_sim::{FaultPlan, OverloadConfig, ReliabilityConfig};
use geospan_traffic::{
    run, AdmissionPolicy, Discipline, Forwarding, TrafficConfig, TrafficReport, Workload,
};
use rayon::prelude::*;

use crate::Scenario;

/// Configuration of one traffic sweep.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Deployment parameters (`n`, `side`, `radius`, `trials`, `seed`).
    pub scenario: Scenario,
    /// Offered loads to sweep, in expected packets per tick.
    pub loads: Vec<f64>,
    /// Ticks over which each workload offers packets.
    pub duration: u64,
    /// Per-node transmit queue capacity.
    pub queue_capacity: usize,
    /// Ticks per transmission.
    pub service_time: u64,
    /// Per-link delivery loss probability (0 for a congestion-only
    /// sweep); seeded from the scenario seed.
    pub loss: f64,
}

impl SweepConfig {
    /// The default sweep: the paper's Table I deployment served at five
    /// load levels.
    pub fn standard() -> Self {
        SweepConfig {
            scenario: Scenario {
                n: 100,
                side: 200.0,
                radius: 60.0,
                trials: 3,
                seed: 1,
            },
            loads: vec![0.05, 0.1, 0.2, 0.4, 0.8],
            duration: 2_000,
            queue_capacity: 64,
            service_time: 1,
            loss: 0.0,
        }
    }

    /// The CI smoke sweep: a small field at two load levels.
    pub fn quick() -> Self {
        SweepConfig {
            scenario: Scenario {
                n: 40,
                side: 120.0,
                radius: 45.0,
                trials: 1,
                seed: 1,
            },
            loads: vec![0.05, 0.4],
            duration: 500,
            queue_capacity: 64,
            service_time: 1,
            loss: 0.0,
        }
    }
}

/// One aggregated sweep row: a (topology, load) cell averaged over the
/// scenario's trials.
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficRow {
    /// Topology served.
    pub topology: &'static str,
    /// Forwarding scheme driven over it.
    pub policy: &'static str,
    /// Offered load in packets per tick.
    pub load: f64,
    /// Total packets offered across trials.
    pub offered: usize,
    /// Total packets delivered across trials.
    pub delivered: usize,
    /// Drop totals across trials, by cause.
    pub drop_stuck: usize,
    /// Dropped at full queues.
    pub drop_queue: usize,
    /// Lost on the air.
    pub drop_loss: usize,
    /// Lost to crashes.
    pub drop_crash: usize,
    /// Exceeded the hop budget.
    pub drop_hop_limit: usize,
    /// Shed by watermark overload control (always 0 here: this sweep
    /// runs without overload control; the column keeps the drop
    /// breakdown schema uniform across traffic artifacts).
    pub drop_retry_shed: usize,
    /// Refused admission at sources (always 0 here, same reason).
    pub refused: usize,
    /// Mean over trials of the median delivery latency.
    pub latency_p50: f64,
    /// Mean over trials of the 99th-percentile delivery latency.
    pub latency_p99: f64,
    /// Mean over trials of the mean delivery latency.
    pub latency_mean: f64,
    /// Mean over trials of the average hop stretch vs. the UDG.
    pub hop_stretch_avg: f64,
    /// Mean over trials of the average length stretch vs. the UDG.
    pub length_stretch_avg: f64,
    /// Worst queue occupancy any node reached in any trial.
    pub queue_peak_max: usize,
}

impl TrafficRow {
    /// Delivered fraction of offered packets.
    pub fn delivery_ratio(&self) -> f64 {
        if self.offered == 0 {
            1.0
        } else {
            self.delivered as f64 / self.offered as f64
        }
    }
}

/// The topologies a sweep serves, built once per trial.
struct TrialTopologies {
    udg: Graph,
    cds_prime: Graph,
    backbone: Backbone,
}

/// The three (topology, policy) pairs of the sweep, in row order.
const TOPOLOGIES: [(&str, &str); 3] = [
    ("UDG", "greedy"),
    ("CDS'", "gpsr"),
    ("LDel(ICDS)", "backbone"),
];

/// Splitmix-style seed mixing for per-cell workload schedules.
fn mix_seed(base: u64, trial: u64, load_idx: u64) -> u64 {
    let mut z = base
        .wrapping_add(trial.wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .wrapping_add(load_idx.wrapping_mul(0xc2b2_ae3d_27d4_eb4f));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Runs the sweep: every (trial, load, topology) cell in parallel, then
/// a deterministic fold into one row per (topology, load).
///
/// # Panics
/// Panics if the scenario yields no trials or no loads are configured.
pub fn traffic_rows(cfg: &SweepConfig) -> Vec<TrafficRow> {
    assert!(cfg.scenario.trials > 0, "sweep needs at least one trial");
    assert!(!cfg.loads.is_empty(), "sweep needs at least one load");
    let instances = cfg.scenario.instances();
    let trials: Vec<TrialTopologies> = instances
        .into_par_iter()
        .map(|(_pts, udg)| {
            let backbone = BackboneBuilder::new(
                BackboneConfig::new(cfg.scenario.radius).with_rank(ClusterRank::LowestId),
            )
            .build(&udg)
            .expect("centralized build cannot fail on a valid UDG");
            let cds_prime = geospan_cds::build_cds(&udg, &ClusterRank::LowestId)
                .cds_prime
                .clone();
            TrialTopologies {
                udg,
                cds_prime,
                backbone,
            }
        })
        .collect();

    // One engine configuration for the whole sweep: FIFO queues, no
    // retransmit — the historical regime, kept so the artifact stays
    // byte-identical (the reliability sweep varies both knobs).
    let engine_cfg = TrafficConfig {
        queue_capacity: cfg.queue_capacity,
        service_time: cfg.service_time,
        max_hops: (50 * cfg.scenario.n) as u32,
        ticks_per_round: 1,
        record_paths: false,
        discipline: Discipline::Fifo,
        reliability: None,
        overload: None,
        admission: AdmissionPolicy::Open,
        shards: 1,
    };

    // Cell grid: trial-major, then load, then topology.
    let cells: Vec<(usize, usize, usize)> = (0..trials.len())
        .flat_map(|t| {
            (0..cfg.loads.len()).flat_map(move |l| (0..TOPOLOGIES.len()).map(move |k| (t, l, k)))
        })
        .collect();
    let reports: Vec<TrafficReport> = cells
        .par_iter()
        .map(|&(t, l, k)| {
            let topo = &trials[t];
            let arrivals = Workload::uniform(cfg.loads[l], cfg.duration).generate(
                cfg.scenario.n,
                mix_seed(cfg.scenario.seed, t as u64, l as u64),
            );
            let faults = if cfg.loss > 0.0 {
                FaultPlan::new(mix_seed(
                    cfg.scenario.seed ^ 0x5bf0_3635,
                    t as u64,
                    l as u64,
                ))
                .with_loss(cfg.loss)
            } else {
                FaultPlan::none()
            };
            let forwarding = match k {
                0 => Forwarding::Greedy(&topo.udg),
                1 => Forwarding::Gpsr(&topo.cds_prime),
                _ => Forwarding::Backbone {
                    backbone: &topo.backbone,
                    udg: &topo.udg,
                },
            };
            run(&forwarding, &topo.udg, &arrivals, &faults, &engine_cfg).report
        })
        .collect();

    // Fold trial-major cells into (topology, load) rows, trials averaged
    // in index order.
    let mut rows = Vec::with_capacity(cfg.loads.len() * TOPOLOGIES.len());
    for (l, &load) in cfg.loads.iter().enumerate() {
        for (k, &(topology, policy)) in TOPOLOGIES.iter().enumerate() {
            let mut row = TrafficRow {
                topology,
                policy,
                load,
                offered: 0,
                delivered: 0,
                drop_stuck: 0,
                drop_queue: 0,
                drop_loss: 0,
                drop_crash: 0,
                drop_hop_limit: 0,
                drop_retry_shed: 0,
                refused: 0,
                latency_p50: 0.0,
                latency_p99: 0.0,
                latency_mean: 0.0,
                hop_stretch_avg: 0.0,
                length_stretch_avg: 0.0,
                queue_peak_max: 0,
            };
            for t in 0..trials.len() {
                let r = &reports[(t * cfg.loads.len() + l) * TOPOLOGIES.len() + k];
                row.offered += r.offered;
                row.delivered += r.delivered;
                row.drop_stuck += r.drops.stuck;
                row.drop_queue += r.drops.queue_full;
                row.drop_loss += r.drops.link_loss;
                row.drop_crash += r.drops.node_crash;
                row.drop_hop_limit += r.drops.hop_limit;
                row.drop_retry_shed += r.drops.retry_shed;
                row.refused += r.refused;
                row.latency_p50 += r.latency_p50 as f64;
                row.latency_p99 += r.latency_p99 as f64;
                row.latency_mean += r.latency_mean;
                row.hop_stretch_avg += r.hop_stretch_avg;
                row.length_stretch_avg += r.length_stretch_avg;
                row.queue_peak_max = row.queue_peak_max.max(r.queue_peak_max);
            }
            let t = trials.len() as f64;
            row.latency_p50 /= t;
            row.latency_p99 /= t;
            row.latency_mean /= t;
            row.hop_stretch_avg /= t;
            row.length_stretch_avg /= t;
            rows.push(row);
        }
    }
    rows
}

/// Renders sweep rows as CSV (stable column order and formatting: the
/// artifact is byte-identical for a given seed).
pub fn traffic_csv(rows: &[TrafficRow]) -> String {
    let mut out = String::from(
        "topology,policy,load,offered,delivered,delivery_ratio,\
         drop_stuck,drop_queue,drop_loss,drop_crash,drop_hop_limit,\
         drop_retry_shed,refused,\
         latency_p50,latency_p99,latency_mean,\
         hop_stretch_avg,length_stretch_avg,queue_peak_max\n",
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{},{},{:.3},{},{},{:.6},{},{},{},{},{},{},{},{:.3},{:.3},{:.4},{:.4},{:.4},{}",
            r.topology,
            r.policy,
            r.load,
            r.offered,
            r.delivered,
            r.delivery_ratio(),
            r.drop_stuck,
            r.drop_queue,
            r.drop_loss,
            r.drop_crash,
            r.drop_hop_limit,
            r.drop_retry_shed,
            r.refused,
            r.latency_p50,
            r.latency_p99,
            r.latency_mean,
            r.hop_stretch_avg,
            r.length_stretch_avg,
            r.queue_peak_max
        );
    }
    out
}

/// Renders sweep rows as an aligned text table.
pub fn format_traffic(rows: &[TrafficRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<12} {:<9} {:>6} {:>8} {:>9} {:>9} {:>9} {:>9} {:>8} {:>8}",
        "topology",
        "policy",
        "load",
        "offered",
        "delivered",
        "ratio",
        "p50",
        "p99",
        "stretch",
        "queue"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<12} {:<9} {:>6.2} {:>8} {:>9} {:>9.4} {:>9.1} {:>9.1} {:>8.3} {:>8}",
            r.topology,
            r.policy,
            r.load,
            r.offered,
            r.delivered,
            r.delivery_ratio(),
            r.latency_p50,
            r.latency_p99,
            r.hop_stretch_avg,
            r.queue_peak_max
        );
    }
    out
}

/// The smoke-test assertion: at the lowest swept load, dominating-set
/// backbone routing delivers at least 99% of offered packets.
///
/// Returns a description of the violation, if any.
pub fn check_low_load_delivery(rows: &[TrafficRow]) -> Result<(), String> {
    let low = rows.iter().map(|r| r.load).fold(f64::INFINITY, f64::min);
    let row = rows
        .iter()
        .find(|r| r.load == low && r.policy == "backbone")
        .ok_or_else(|| "no backbone row at the lowest load".to_string())?;
    if row.delivery_ratio() >= 0.99 {
        Ok(())
    } else {
        Err(format!(
            "backbone delivery at load {:.3} is {:.4} (< 0.99): {} of {} delivered",
            row.load,
            row.delivery_ratio(),
            row.delivered,
            row.offered
        ))
    }
}

/// Configuration of the reliability sweep: hotspot and bursty workloads
/// served over the backbone across queue disciplines, with and without
/// link-layer retransmit, under seeded radio loss.
#[derive(Debug, Clone)]
pub struct ReliabilitySweepConfig {
    /// Deployment parameters (`n`, `side`, `radius`, `trials`, `seed`).
    pub scenario: Scenario,
    /// Offered loads to sweep, in expected packets per tick. The lowest
    /// load anchors the recovery and delivery checks.
    pub loads: Vec<f64>,
    /// Ticks over which each workload offers packets.
    pub duration: u64,
    /// Per-node transmit queue capacity.
    pub queue_capacity: usize,
    /// Ticks per transmission.
    pub service_time: u64,
    /// Per-link delivery loss probability (the noise retransmit fights).
    pub loss: f64,
    /// Hotspot sink biases to sweep (each is one workload, sink node 0).
    pub hotspot_biases: Vec<f64>,
    /// Burst sizes to sweep (each is one workload).
    pub burst_sizes: Vec<usize>,
    /// DRR quantum (packets per flow per round-robin visit).
    pub quantum: u32,
    /// The retransmit scheme of the `retx = on` half of the sweep.
    pub reliability: ReliabilityConfig,
}

impl ReliabilitySweepConfig {
    /// The default sweep: the Table I deployment under 5% loss, two
    /// biases and two burst sizes, at a low and a saturating load.
    pub fn standard() -> Self {
        ReliabilitySweepConfig {
            scenario: Scenario {
                n: 100,
                side: 200.0,
                radius: 60.0,
                trials: 3,
                seed: 1,
            },
            loads: vec![0.05, 0.4],
            duration: 2_000,
            queue_capacity: 64,
            service_time: 1,
            loss: 0.05,
            hotspot_biases: vec![0.5, 0.9],
            burst_sizes: vec![4, 16],
            quantum: 2,
            reliability: ReliabilityConfig::default(),
        }
    }

    /// The CI smoke sweep: a small field, one bias, one burst size.
    pub fn quick() -> Self {
        ReliabilitySweepConfig {
            scenario: Scenario {
                n: 40,
                side: 120.0,
                radius: 45.0,
                trials: 1,
                seed: 1,
            },
            loads: vec![0.05, 0.4],
            duration: 500,
            queue_capacity: 64,
            service_time: 1,
            loss: 0.05,
            hotspot_biases: vec![0.8],
            burst_sizes: vec![8],
            quantum: 2,
            reliability: ReliabilityConfig::default(),
        }
    }

    /// The swept workloads in row order: hotspot biases, then bursts.
    fn workloads(&self, load: f64) -> Vec<Workload> {
        self.hotspot_biases
            .iter()
            .map(|&bias| Workload::hotspot(0, bias, load, self.duration))
            .chain(
                self.burst_sizes
                    .iter()
                    .map(|&burst| Workload::bursty(burst, load, self.duration)),
            )
            .collect()
    }

    /// The swept disciplines in row order.
    fn disciplines(&self) -> [Discipline; 3] {
        [
            Discipline::Fifo,
            Discipline::NearestFirst,
            Discipline::Drr {
                quantum: self.quantum,
            },
        ]
    }
}

/// One aggregated reliability-sweep row: a (workload, load, discipline,
/// retx) cell summed/averaged over the scenario's trials.
#[derive(Debug, Clone, PartialEq)]
pub struct ReliabilityRow {
    /// Workload shape ("hotspot" or "bursty").
    pub workload: &'static str,
    /// Shape parameter: sink bias for hotspot, burst size for bursty.
    pub param: f64,
    /// Queue discipline label ("fifo", "priority", "drr").
    pub discipline: &'static str,
    /// Whether link-layer retransmit was enabled.
    pub retx: bool,
    /// Offered load in packets per tick.
    pub load: f64,
    /// Total packets offered across trials.
    pub offered: usize,
    /// Total packets delivered across trials.
    pub delivered: usize,
    /// Dropped at forwarding dead ends.
    pub drop_stuck: usize,
    /// Dropped at full queues.
    pub drop_queue: usize,
    /// Lost on the air (after the retransmit budget, when enabled).
    pub drop_loss: usize,
    /// Lost to crashes.
    pub drop_crash: usize,
    /// Exceeded the hop budget.
    pub drop_hop_limit: usize,
    /// Shed by watermark overload control (always 0 here: this sweep
    /// runs without overload control).
    pub drop_retry_shed: usize,
    /// Refused admission at sources (always 0 here, same reason).
    pub refused: usize,
    /// Link-layer retransmissions spent across trials.
    pub retransmissions: usize,
    /// Mean over trials of the median delivery latency.
    pub latency_p50: f64,
    /// Mean over trials of the 99th-percentile delivery latency.
    pub latency_p99: f64,
    /// Mean over trials of the mean delivery latency.
    pub latency_mean: f64,
    /// Worst queue occupancy any node reached in any trial.
    pub queue_peak_max: usize,
}

impl ReliabilityRow {
    /// Delivered fraction of offered packets.
    pub fn delivery_ratio(&self) -> f64 {
        if self.offered == 0 {
            1.0
        } else {
            self.delivered as f64 / self.offered as f64
        }
    }
}

/// Runs the reliability sweep: every (trial, workload, load, discipline,
/// retx) cell in parallel over the backbone forwarding scheme, then a
/// deterministic fold into one row per (workload, load, discipline,
/// retx).
///
/// The arrival schedule and fault seed of a cell depend only on (trial,
/// workload, load) — the discipline and retransmit halves of the sweep
/// see identical packets and identical loss rolls, so their rows are
/// paired comparisons, not independent samples.
///
/// # Panics
/// Panics if the scenario yields no trials, or no loads or workloads
/// are configured.
pub fn reliability_rows(cfg: &ReliabilitySweepConfig) -> Vec<ReliabilityRow> {
    assert!(cfg.scenario.trials > 0, "sweep needs at least one trial");
    assert!(!cfg.loads.is_empty(), "sweep needs at least one load");
    assert!(
        !cfg.hotspot_biases.is_empty() || !cfg.burst_sizes.is_empty(),
        "sweep needs at least one workload"
    );
    let instances = cfg.scenario.instances();
    let trials: Vec<(Graph, Backbone)> = instances
        .into_par_iter()
        .map(|(_pts, udg)| {
            let backbone = BackboneBuilder::new(
                BackboneConfig::new(cfg.scenario.radius).with_rank(ClusterRank::LowestId),
            )
            .build(&udg)
            .expect("centralized build cannot fail on a valid UDG");
            (udg, backbone)
        })
        .collect();

    let n_workloads = cfg.hotspot_biases.len() + cfg.burst_sizes.len();
    let disciplines = cfg.disciplines();
    // Cell grid: trial-major, then workload, then load, then
    // (discipline × retx).
    let variants = disciplines.len() * 2;
    let cells: Vec<(usize, usize, usize, usize)> = (0..trials.len())
        .flat_map(|t| {
            (0..n_workloads).flat_map(move |w| {
                (0..cfg.loads.len()).flat_map(move |l| (0..variants).map(move |v| (t, w, l, v)))
            })
        })
        .collect();
    let reports: Vec<TrafficReport> = cells
        .par_iter()
        .map(|&(t, w, l, v)| {
            let (udg, backbone) = &trials[t];
            let wl = cfg.workloads(cfg.loads[l])[w];
            let arrivals = wl.generate(
                cfg.scenario.n,
                mix_seed(
                    cfg.scenario.seed,
                    t as u64,
                    (w * cfg.loads.len() + l) as u64,
                ),
            );
            let faults = FaultPlan::new(mix_seed(
                cfg.scenario.seed ^ 0x7e11_ab1e,
                t as u64,
                (w * cfg.loads.len() + l) as u64,
            ))
            .with_loss(cfg.loss);
            let engine_cfg = TrafficConfig {
                queue_capacity: cfg.queue_capacity,
                service_time: cfg.service_time,
                max_hops: (50 * cfg.scenario.n) as u32,
                discipline: disciplines[v / 2],
                reliability: (v % 2 == 1).then_some(cfg.reliability),
                ..TrafficConfig::default()
            };
            let forwarding = Forwarding::Backbone { backbone, udg };
            run(&forwarding, udg, &arrivals, &faults, &engine_cfg).report
        })
        .collect();

    // Fold trial-major cells into (workload, load, discipline, retx)
    // rows, trials averaged in index order.
    let workload_meta: Vec<(&'static str, f64)> = cfg
        .workloads(1.0)
        .iter()
        .map(|wl| (wl.kind.label(), wl.kind.param()))
        .collect();
    let mut rows = Vec::with_capacity(n_workloads * cfg.loads.len() * variants);
    for (w, &(workload, param)) in workload_meta.iter().enumerate() {
        for (l, &load) in cfg.loads.iter().enumerate() {
            for (v, disc) in disciplines
                .iter()
                .enumerate()
                .flat_map(|(d, disc)| [(d * 2, disc), (d * 2 + 1, disc)])
            {
                let mut row = ReliabilityRow {
                    workload,
                    param,
                    discipline: disc.label(),
                    retx: v % 2 == 1,
                    load,
                    offered: 0,
                    delivered: 0,
                    drop_stuck: 0,
                    drop_queue: 0,
                    drop_loss: 0,
                    drop_crash: 0,
                    drop_hop_limit: 0,
                    drop_retry_shed: 0,
                    refused: 0,
                    retransmissions: 0,
                    latency_p50: 0.0,
                    latency_p99: 0.0,
                    latency_mean: 0.0,
                    queue_peak_max: 0,
                };
                for t in 0..trials.len() {
                    let idx = ((t * n_workloads + w) * cfg.loads.len() + l) * variants + v;
                    let r = &reports[idx];
                    row.offered += r.offered;
                    row.delivered += r.delivered;
                    row.drop_stuck += r.drops.stuck;
                    row.drop_queue += r.drops.queue_full;
                    row.drop_loss += r.drops.link_loss;
                    row.drop_crash += r.drops.node_crash;
                    row.drop_hop_limit += r.drops.hop_limit;
                    row.drop_retry_shed += r.drops.retry_shed;
                    row.refused += r.refused;
                    row.retransmissions += r.retransmissions;
                    row.latency_p50 += r.latency_p50 as f64;
                    row.latency_p99 += r.latency_p99 as f64;
                    row.latency_mean += r.latency_mean;
                    row.queue_peak_max = row.queue_peak_max.max(r.queue_peak_max);
                }
                let t = trials.len() as f64;
                row.latency_p50 /= t;
                row.latency_p99 /= t;
                row.latency_mean /= t;
                rows.push(row);
            }
        }
    }
    rows
}

/// Renders reliability rows as CSV (stable column order and formatting:
/// the artifact is byte-identical for a given seed).
pub fn reliability_csv(rows: &[ReliabilityRow]) -> String {
    let mut out = String::from(
        "workload,param,discipline,retx,load,offered,delivered,delivery_ratio,\
         drop_stuck,drop_queue,drop_loss,drop_crash,drop_hop_limit,\
         drop_retry_shed,refused,\
         retransmissions,latency_p50,latency_p99,latency_mean,queue_peak_max\n",
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{},{:.3},{},{},{:.3},{},{},{:.6},{},{},{},{},{},{},{},{},{:.3},{:.3},{:.4},{}",
            r.workload,
            r.param,
            r.discipline,
            if r.retx { "on" } else { "off" },
            r.load,
            r.offered,
            r.delivered,
            r.delivery_ratio(),
            r.drop_stuck,
            r.drop_queue,
            r.drop_loss,
            r.drop_crash,
            r.drop_hop_limit,
            r.drop_retry_shed,
            r.refused,
            r.retransmissions,
            r.latency_p50,
            r.latency_p99,
            r.latency_mean,
            r.queue_peak_max
        );
    }
    out
}

/// Renders reliability rows as an aligned text table.
pub fn format_reliability(rows: &[ReliabilityRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<8} {:>6} {:<9} {:>4} {:>6} {:>8} {:>9} {:>9} {:>7} {:>6} {:>9} {:>9}",
        "workload",
        "param",
        "disc",
        "retx",
        "load",
        "offered",
        "delivered",
        "ratio",
        "loss",
        "retx#",
        "p50",
        "p99"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<8} {:>6.2} {:<9} {:>4} {:>6.2} {:>8} {:>9} {:>9.4} {:>7} {:>6} {:>9.1} {:>9.1}",
            r.workload,
            r.param,
            r.discipline,
            if r.retx { "on" } else { "off" },
            r.load,
            r.offered,
            r.delivered,
            r.delivery_ratio(),
            r.drop_loss,
            r.retransmissions,
            r.latency_p50,
            r.latency_p99
        );
    }
    out
}

/// The recovery assertion: at the lowest swept load, for every
/// (workload, discipline), retransmit recovers at least 90% of the
/// first-attempt link losses — `drop_loss` with retx on is at most 10%
/// of the paired no-retx cell's.
///
/// Returns a description of the first violation, if any.
pub fn check_retx_recovery(rows: &[ReliabilityRow]) -> Result<(), String> {
    let low = rows.iter().map(|r| r.load).fold(f64::INFINITY, f64::min);
    for base in rows.iter().filter(|r| r.load == low && !r.retx) {
        let paired = rows
            .iter()
            .find(|r| {
                r.load == low
                    && r.retx
                    && r.workload == base.workload
                    && r.param == base.param
                    && r.discipline == base.discipline
            })
            .ok_or_else(|| format!("no retx row pairing {base:?}"))?;
        if base.drop_loss == 0 {
            continue;
        }
        let recovered = 1.0 - paired.drop_loss as f64 / base.drop_loss as f64;
        if recovered < 0.9 {
            return Err(format!(
                "{}/{} ({}) at load {:.3}: retransmit recovered only {:.1}% \
                 of link losses ({} -> {})",
                base.workload,
                base.param,
                base.discipline,
                low,
                100.0 * recovered,
                base.drop_loss,
                paired.drop_loss
            ));
        }
    }
    Ok(())
}

/// The delivery assertion: at the lowest swept load, every retransmit
/// row delivers at least as large a fraction as the FIFO/no-retx
/// baseline of its workload.
///
/// Returns a description of the first violation, if any.
pub fn check_retx_delivery(rows: &[ReliabilityRow]) -> Result<(), String> {
    let low = rows.iter().map(|r| r.load).fold(f64::INFINITY, f64::min);
    for r in rows.iter().filter(|r| r.load == low && r.retx) {
        let base = rows
            .iter()
            .find(|b| {
                b.load == low
                    && !b.retx
                    && b.discipline == "fifo"
                    && b.workload == r.workload
                    && b.param == r.param
            })
            .ok_or_else(|| format!("no fifo/no-retx baseline for {r:?}"))?;
        if r.delivery_ratio() < base.delivery_ratio() {
            return Err(format!(
                "{}/{} ({}, retx) delivers {:.4} < baseline {:.4} at load {:.3}",
                r.workload,
                r.param,
                r.discipline,
                r.delivery_ratio(),
                base.delivery_ratio(),
                low
            ));
        }
    }
    Ok(())
}

/// Configuration of the saturation sweep: a hotspot workload served
/// over the backbone, pushed up the load axis until every queue
/// discipline's delivery collapses — then the same cells re-run with
/// congestion-adaptive overload control (sender-queue watermarks +
/// token-bucket admission) to measure how far the 95%-delivery frontier
/// moves outward.
#[derive(Debug, Clone)]
pub struct SaturationSweepConfig {
    /// Deployment parameters (`n`, `side`, `radius`, `trials`, `seed`).
    pub scenario: Scenario,
    /// Offered loads to sweep, ascending, in expected packets per tick.
    /// The top of the range must saturate the hotspot ingress.
    pub loads: Vec<f64>,
    /// Ticks over which each workload offers packets.
    pub duration: u64,
    /// Per-node transmit queue capacity (small, so saturation shows up
    /// as `QueueFull` instead of unbounded latency).
    pub queue_capacity: usize,
    /// Ticks per transmission.
    pub service_time: u64,
    /// Per-link delivery loss probability (the retransmit layer's
    /// pressure source).
    pub loss: f64,
    /// Hotspot sink bias of the workload (sink node 0): the fraction of
    /// traffic funneled through the sink's ingress relay, which is the
    /// resource that saturates.
    pub sink_bias: f64,
    /// DRR quantum (packets per flow per round-robin visit).
    pub quantum: u32,
    /// The retransmit scheme, active in *both* halves of the sweep —
    /// overload control adapts it, it does not replace it.
    pub reliability: ReliabilityConfig,
    /// Sender-queue watermarks of the control-on half.
    pub overload: OverloadConfig,
    /// Source admission of the control-on half.
    pub admission: AdmissionPolicy,
    /// Spatial shard count of the serving engine. Any value produces
    /// byte-identical rows — the crown invariant of the sharded engine,
    /// pinned by a test sweeping this knob over the E18 config.
    pub shards: usize,
}

impl SaturationSweepConfig {
    /// The default sweep: the Table I deployment under 10% loss, loads
    /// pushed past the hotspot ingress saturation point. The sink (node
    /// 0, a lowest-ID dominator) is reached through several backbone
    /// relays, so collapse arrives well above the single-relay estimate
    /// `1/bias` — the range must extend past it by several octaves.
    pub fn standard() -> Self {
        SaturationSweepConfig {
            scenario: Scenario {
                n: 100,
                side: 200.0,
                radius: 60.0,
                trials: 3,
                seed: 1,
            },
            loads: vec![0.4, 0.8, 1.6, 3.2, 6.4, 12.8],
            duration: 2_000,
            queue_capacity: 16,
            service_time: 1,
            loss: 0.1,
            sink_bias: 0.7,
            quantum: 2,
            reliability: ReliabilityConfig::default(),
            overload: OverloadConfig::for_capacity(16),
            // Aggregate admitted ceiling n / ticks_per_token = 1.0
            // packet per tick — under the ingress saturation point, so
            // admitted traffic keeps delivering while offered load
            // grows without bound.
            admission: AdmissionPolicy::TokenBucket {
                ticks_per_token: 100,
                burst: 2,
            },
            shards: 1,
        }
    }

    /// The CI smoke sweep: a small field pushed over the same cliff.
    pub fn quick() -> Self {
        SaturationSweepConfig {
            scenario: Scenario {
                n: 40,
                side: 120.0,
                radius: 45.0,
                trials: 1,
                seed: 1,
            },
            loads: vec![0.4, 1.6, 6.4, 12.8],
            duration: 600,
            queue_capacity: 8,
            service_time: 1,
            loss: 0.1,
            sink_bias: 0.7,
            quantum: 2,
            reliability: ReliabilityConfig::default(),
            overload: OverloadConfig::for_capacity(8),
            admission: AdmissionPolicy::TokenBucket {
                ticks_per_token: 40,
                burst: 2,
            },
            shards: 1,
        }
    }

    /// The swept disciplines in row order.
    fn disciplines(&self) -> [Discipline; 3] {
        [
            Discipline::Fifo,
            Discipline::NearestFirst,
            Discipline::Drr {
                quantum: self.quantum,
            },
        ]
    }
}

/// One aggregated saturation row: a (discipline, control, load) cell
/// summed/averaged over the scenario's trials.
#[derive(Debug, Clone, PartialEq)]
pub struct SaturationRow {
    /// Queue discipline label ("fifo", "priority", "drr").
    pub discipline: &'static str,
    /// Whether overload control (watermarks + admission) was on.
    pub control: bool,
    /// Offered load in packets per tick.
    pub load: f64,
    /// Total packets offered across trials.
    pub offered: usize,
    /// Refused admission at sources (0 in the control-off half).
    pub refused: usize,
    /// Total packets delivered across trials.
    pub delivered: usize,
    /// Dropped at forwarding dead ends.
    pub drop_stuck: usize,
    /// Dropped at full queues: the congestion-collapse signature.
    pub drop_queue: usize,
    /// Lost on the air (after the retransmit budget).
    pub drop_loss: usize,
    /// Lost to crashes.
    pub drop_crash: usize,
    /// Exceeded the hop budget.
    pub drop_hop_limit: usize,
    /// Shed by watermark overload control (0 in the control-off half).
    pub drop_retry_shed: usize,
    /// Link-layer retransmissions spent across trials.
    pub retransmissions: usize,
    /// Mean over trials of the median delivery latency.
    pub latency_p50: f64,
    /// Mean over trials of the 99th-percentile delivery latency.
    pub latency_p99: f64,
    /// Worst queue occupancy any node reached in any trial.
    pub queue_peak_max: usize,
}

impl SaturationRow {
    /// Packets that entered the network: offered minus refusals.
    pub fn admitted(&self) -> usize {
        self.offered - self.refused
    }

    /// Delivered fraction of *admitted* packets (1.0 when nothing was
    /// admitted). This is the frontier metric: an admission gate is
    /// judged on what it let in, a watermark on what it kept flowing —
    /// in the control-off half `admitted == offered`, so the two
    /// halves' ratios are directly comparable.
    pub fn delivery_ratio(&self) -> f64 {
        if self.admitted() == 0 {
            1.0
        } else {
            self.delivered as f64 / self.admitted() as f64
        }
    }
}

/// Runs the saturation sweep: every (trial, load, discipline, control)
/// cell in parallel over backbone forwarding, then a deterministic fold
/// into one row per (discipline, control, load).
///
/// The arrival schedule and fault seed of a cell depend only on (trial,
/// load) — all disciplines and both control halves see identical
/// packets and identical loss rolls, so rows are paired comparisons.
///
/// # Panics
/// Panics if the scenario yields no trials or no loads are configured.
pub fn saturation_rows(cfg: &SaturationSweepConfig) -> Vec<SaturationRow> {
    assert!(cfg.scenario.trials > 0, "sweep needs at least one trial");
    assert!(!cfg.loads.is_empty(), "sweep needs at least one load");
    let instances = cfg.scenario.instances();
    let trials: Vec<(Graph, Backbone)> = instances
        .into_par_iter()
        .map(|(_pts, udg)| {
            let backbone = BackboneBuilder::new(
                BackboneConfig::new(cfg.scenario.radius).with_rank(ClusterRank::LowestId),
            )
            .build(&udg)
            .expect("centralized build cannot fail on a valid UDG");
            (udg, backbone)
        })
        .collect();

    let disciplines = cfg.disciplines();
    // Cell grid: trial-major, then load, then (discipline × control).
    let variants = disciplines.len() * 2;
    let cells: Vec<(usize, usize, usize)> = (0..trials.len())
        .flat_map(|t| (0..cfg.loads.len()).flat_map(move |l| (0..variants).map(move |v| (t, l, v))))
        .collect();
    let reports: Vec<TrafficReport> = cells
        .par_iter()
        .map(|&(t, l, v)| {
            let (udg, backbone) = &trials[t];
            let arrivals = Workload::hotspot(0, cfg.sink_bias, cfg.loads[l], cfg.duration)
                .generate(
                    cfg.scenario.n,
                    mix_seed(cfg.scenario.seed, t as u64, l as u64),
                );
            let faults = FaultPlan::new(mix_seed(
                cfg.scenario.seed ^ 0x5a70_ca7e,
                t as u64,
                l as u64,
            ))
            .with_loss(cfg.loss);
            let control = v % 2 == 1;
            let engine_cfg = TrafficConfig {
                queue_capacity: cfg.queue_capacity,
                service_time: cfg.service_time,
                max_hops: (50 * cfg.scenario.n) as u32,
                discipline: disciplines[v / 2],
                reliability: Some(cfg.reliability),
                overload: control.then_some(cfg.overload),
                admission: if control {
                    cfg.admission
                } else {
                    AdmissionPolicy::Open
                },
                shards: cfg.shards,
                ..TrafficConfig::default()
            };
            let forwarding = Forwarding::Backbone { backbone, udg };
            run(&forwarding, udg, &arrivals, &faults, &engine_cfg).report
        })
        .collect();

    // Fold trial-major cells into (discipline, control, load) rows,
    // trials averaged in index order.
    let mut rows = Vec::with_capacity(cfg.loads.len() * variants);
    for (d, disc) in disciplines.iter().enumerate() {
        for control in [false, true] {
            let v = d * 2 + usize::from(control);
            for (l, &load) in cfg.loads.iter().enumerate() {
                let mut row = SaturationRow {
                    discipline: disc.label(),
                    control,
                    load,
                    offered: 0,
                    refused: 0,
                    delivered: 0,
                    drop_stuck: 0,
                    drop_queue: 0,
                    drop_loss: 0,
                    drop_crash: 0,
                    drop_hop_limit: 0,
                    drop_retry_shed: 0,
                    retransmissions: 0,
                    latency_p50: 0.0,
                    latency_p99: 0.0,
                    queue_peak_max: 0,
                };
                for t in 0..trials.len() {
                    let idx = (t * cfg.loads.len() + l) * variants + v;
                    let r = &reports[idx];
                    row.offered += r.offered;
                    row.refused += r.refused;
                    row.delivered += r.delivered;
                    row.drop_stuck += r.drops.stuck;
                    row.drop_queue += r.drops.queue_full;
                    row.drop_loss += r.drops.link_loss;
                    row.drop_crash += r.drops.node_crash;
                    row.drop_hop_limit += r.drops.hop_limit;
                    row.drop_retry_shed += r.drops.retry_shed;
                    row.retransmissions += r.retransmissions;
                    row.latency_p50 += r.latency_p50 as f64;
                    row.latency_p99 += r.latency_p99 as f64;
                    row.queue_peak_max = row.queue_peak_max.max(r.queue_peak_max);
                }
                let t = trials.len() as f64;
                row.latency_p50 /= t;
                row.latency_p99 /= t;
                rows.push(row);
            }
        }
    }
    rows
}

/// The delivery threshold defining the saturation frontier.
pub const FRONTIER_THRESHOLD: f64 = 0.95;

/// The saturation frontier of one (discipline, control) curve: the
/// smallest swept load whose delivery ratio falls under
/// [`FRONTIER_THRESHOLD`], or `None` if the curve never collapses
/// within the sweep (an unbounded frontier — strictly further out than
/// any finite one).
pub fn saturation_frontier(rows: &[SaturationRow], discipline: &str, control: bool) -> Option<f64> {
    rows.iter()
        .filter(|r| r.discipline == discipline && r.control == control)
        .filter(|r| r.delivery_ratio() < FRONTIER_THRESHOLD)
        .map(|r| r.load)
        .fold(None, |acc, load| {
            Some(acc.map_or(load, |a: f64| a.min(load)))
        })
}

/// The collapse assertion: with overload control off, every discipline
/// has a cell where delivery collapses under the frontier threshold
/// *with queue-full drops present* — congestion, not noise, is what
/// broke delivery.
///
/// Returns a description of the first violation, if any.
pub fn check_saturation_collapse(rows: &[SaturationRow]) -> Result<(), String> {
    for disc in ["fifo", "priority", "drr"] {
        let collapsed = rows.iter().any(|r| {
            r.discipline == disc
                && !r.control
                && r.delivery_ratio() < FRONTIER_THRESHOLD
                && r.drop_queue > 0
        });
        if !collapsed {
            return Err(format!(
                "{disc} never collapsed without overload control: the sweep's \
                 load range does not reach saturation"
            ));
        }
    }
    Ok(())
}

/// The frontier-shift assertion: for every discipline, the 95%-delivery
/// frontier with overload control on sits at a strictly higher load
/// than with it off (or does not exist at all — control kept delivery
/// above the threshold through the whole sweep).
///
/// Returns a description of the first violation, if any.
pub fn check_frontier_shift(rows: &[SaturationRow]) -> Result<(), String> {
    for disc in ["fifo", "priority", "drr"] {
        let off = saturation_frontier(rows, disc, false).ok_or_else(|| {
            format!("{disc}: no control-off frontier — the sweep never saturates")
        })?;
        match saturation_frontier(rows, disc, true) {
            None => {} // never collapses: frontier pushed past the sweep
            Some(on) if on > off => {}
            Some(on) => {
                return Err(format!(
                    "{disc}: overload control did not move the frontier \
                     outward (off {off:.3}, on {on:.3})"
                ));
            }
        }
    }
    Ok(())
}

/// Renders saturation rows as CSV (stable column order and formatting:
/// the artifact is byte-identical for a given seed). `delivery_ratio`
/// is delivered / admitted — see [`SaturationRow::delivery_ratio`].
pub fn saturation_csv(rows: &[SaturationRow]) -> String {
    let mut out = String::from(
        "discipline,control,load,offered,refused,admitted,delivered,delivery_ratio,\
         drop_stuck,drop_queue,drop_loss,drop_crash,drop_hop_limit,drop_retry_shed,\
         retransmissions,latency_p50,latency_p99,queue_peak_max\n",
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{},{},{:.3},{},{},{},{},{:.6},{},{},{},{},{},{},{},{:.3},{:.3},{}",
            r.discipline,
            if r.control { "on" } else { "off" },
            r.load,
            r.offered,
            r.refused,
            r.admitted(),
            r.delivered,
            r.delivery_ratio(),
            r.drop_stuck,
            r.drop_queue,
            r.drop_loss,
            r.drop_crash,
            r.drop_hop_limit,
            r.drop_retry_shed,
            r.retransmissions,
            r.latency_p50,
            r.latency_p99,
            r.queue_peak_max
        );
    }
    out
}

/// Renders saturation rows as an aligned text table, followed by the
/// per-discipline frontier summary.
pub fn format_saturation(rows: &[SaturationRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<9} {:>7} {:>6} {:>8} {:>8} {:>9} {:>9} {:>7} {:>7} {:>7} {:>9}",
        "disc",
        "control",
        "load",
        "offered",
        "refused",
        "delivered",
        "ratio",
        "queue",
        "shed",
        "retx#",
        "p99"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<9} {:>7} {:>6.2} {:>8} {:>8} {:>9} {:>9.4} {:>7} {:>7} {:>7} {:>9.1}",
            r.discipline,
            if r.control { "on" } else { "off" },
            r.load,
            r.offered,
            r.refused,
            r.delivered,
            r.delivery_ratio(),
            r.drop_queue,
            r.drop_retry_shed,
            r.retransmissions,
            r.latency_p99
        );
    }
    let _ = writeln!(out);
    for disc in ["fifo", "priority", "drr"] {
        let fmt = |f: Option<f64>| match f {
            Some(load) => format!("{load:.2}"),
            None => "beyond sweep".to_string(),
        };
        let _ = writeln!(
            out,
            "{disc:<9} 95% frontier: off at {}, on at {}",
            fmt(saturation_frontier(rows, disc, false)),
            fmt(saturation_frontier(rows, disc, true))
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_has_expected_shape() {
        let cfg = SweepConfig::quick();
        let rows = traffic_rows(&cfg);
        assert_eq!(rows.len(), cfg.loads.len() * TOPOLOGIES.len());
        for r in &rows {
            assert!(r.offered > 0);
            assert_eq!(
                r.offered,
                r.delivered
                    + r.drop_stuck
                    + r.drop_queue
                    + r.drop_loss
                    + r.drop_crash
                    + r.drop_hop_limit
            );
        }
        check_low_load_delivery(&rows).unwrap();
        // Backbone routes detour: stretch is measured and ≥ 1.
        let backbone_low = rows.iter().find(|r| r.policy == "backbone").unwrap();
        assert!(backbone_low.hop_stretch_avg >= 1.0);
        assert!(backbone_low.length_stretch_avg >= 1.0);
    }

    #[test]
    fn csv_is_stable_and_parsable() {
        let rows = traffic_rows(&SweepConfig::quick());
        let a = traffic_csv(&rows);
        let b = traffic_csv(&traffic_rows(&SweepConfig::quick()));
        assert_eq!(a, b, "same seed must give a byte-identical artifact");
        assert_eq!(a.lines().count(), rows.len() + 1);
        assert!(a.starts_with("topology,policy,load,"));
    }

    #[test]
    fn quick_reliability_sweep_recovers_losses_and_conserves_packets() {
        let cfg = ReliabilitySweepConfig::quick();
        let rows = reliability_rows(&cfg);
        // workloads × loads × disciplines × {off, on}.
        assert_eq!(rows.len(), 2 * cfg.loads.len() * 3 * 2);
        for r in &rows {
            assert!(r.offered > 0);
            assert_eq!(
                r.offered,
                r.delivered
                    + r.drop_stuck
                    + r.drop_queue
                    + r.drop_loss
                    + r.drop_crash
                    + r.drop_hop_limit
            );
            // Retransmissions only happen in the retx half.
            assert_eq!(r.retx, r.retransmissions > 0 || r.retx && r.drop_loss == 0);
        }
        check_retx_recovery(&rows).unwrap();
        check_retx_delivery(&rows).unwrap();
    }

    #[test]
    fn reliability_halves_are_paired_comparisons() {
        // Same arrivals, same loss rolls on the first attempt: the retx
        // half can only move packets from drop_loss to delivered (or to
        // another cause), never see different traffic — offered counts
        // match pairwise.
        let rows = reliability_rows(&ReliabilitySweepConfig::quick());
        for base in rows.iter().filter(|r| !r.retx) {
            let paired = rows
                .iter()
                .find(|r| {
                    r.retx
                        && r.workload == base.workload
                        && r.param == base.param
                        && r.discipline == base.discipline
                        && r.load == base.load
                })
                .unwrap();
            assert_eq!(base.offered, paired.offered);
        }
    }

    #[test]
    fn quick_saturation_sweep_collapses_and_control_moves_the_frontier() {
        let cfg = SaturationSweepConfig::quick();
        let rows = saturation_rows(&cfg);
        // disciplines × {off, on} × loads.
        assert_eq!(rows.len(), 3 * 2 * cfg.loads.len());
        for r in &rows {
            assert!(r.offered > 0);
            assert_eq!(
                r.offered,
                r.delivered
                    + r.refused
                    + r.drop_stuck
                    + r.drop_queue
                    + r.drop_loss
                    + r.drop_crash
                    + r.drop_hop_limit
                    + r.drop_retry_shed
            );
            if !r.control {
                assert_eq!(r.refused, 0, "no admission gate in the off half");
                assert_eq!(r.drop_retry_shed, 0, "no watermarks in the off half");
            }
        }
        check_saturation_collapse(&rows).unwrap();
        check_frontier_shift(&rows).unwrap();
    }

    #[test]
    fn saturation_halves_are_paired_comparisons() {
        let rows = saturation_rows(&SaturationSweepConfig::quick());
        for base in rows.iter().filter(|r| !r.control) {
            let paired = rows
                .iter()
                .find(|r| r.control && r.discipline == base.discipline && r.load == base.load)
                .unwrap();
            assert_eq!(base.offered, paired.offered, "same arrival schedule");
        }
    }

    #[test]
    fn saturation_csv_is_stable_and_parsable() {
        let rows = saturation_rows(&SaturationSweepConfig::quick());
        let a = saturation_csv(&rows);
        let b = saturation_csv(&saturation_rows(&SaturationSweepConfig::quick()));
        assert_eq!(a, b, "same seed must give a byte-identical artifact");
        assert_eq!(a.lines().count(), rows.len() + 1);
        assert!(a.starts_with("discipline,control,load,"));
        assert!(!format_saturation(&rows).is_empty());
    }

    #[test]
    fn e18_csv_is_byte_identical_at_every_shard_count() {
        // The crown invariant on the E18 saturation config itself:
        // shards ∈ {1, 2, 4, 8} serve every (discipline × control ×
        // load) cell of the sweep to byte-identical CSV rows.
        let reference = saturation_csv(&saturation_rows(&SaturationSweepConfig::quick()));
        for shards in [2, 4, 8] {
            let mut cfg = SaturationSweepConfig::quick();
            cfg.shards = shards;
            let csv = saturation_csv(&saturation_rows(&cfg));
            assert_eq!(
                reference, csv,
                "shards={shards}: E18 CSV diverged from single-shard"
            );
        }
    }

    #[test]
    fn frontier_of_an_empty_curve_is_none() {
        assert_eq!(saturation_frontier(&[], "fifo", false), None);
    }

    #[test]
    fn reliability_csv_is_stable_and_parsable() {
        let rows = reliability_rows(&ReliabilitySweepConfig::quick());
        let a = reliability_csv(&rows);
        let b = reliability_csv(&reliability_rows(&ReliabilitySweepConfig::quick()));
        assert_eq!(a, b, "same seed must give a byte-identical artifact");
        assert_eq!(a.lines().count(), rows.len() + 1);
        assert!(a.starts_with("workload,param,discipline,retx,load,"));
        assert!(!format_reliability(&rows).is_empty());
    }
}
