//! Frozen copy of the seed construction pipeline, kept as the baseline
//! that `pipeline_speedup` and the equivalence tests measure against.
//!
//! The library crates now build `LDel¹`/`PLDel` through the parallel,
//! grid-indexed pipeline. To keep the committed speedup numbers honest —
//! and to let tests prove the optimized pipeline produces *identical*
//! output — this module preserves the seed algorithms exactly as they
//! shipped: the Bowyer–Watson core with per-insert hash maps and full
//! triangulation assembly, the serial per-node `LDel¹` loop over
//! `HashSet` membership, the `O(k²)` x-sweep planarization, and the
//! `O(m²)` pairwise crossing count. Nothing here should be "improved";
//! it is a measurement artifact, not production code.
//!
//! A second frozen generation lives alongside it: [`prev_planarized`]
//! preserves the PR 2–6 "optimized" pipeline (parallel per-node
//! triangulations with per-call allocation, full per-node key lists with
//! binary-search acceptance, materialized + sorted grid candidate
//! pairs, per-edge `add_edge` graph assembly) so the arena-generation
//! speedup is measured in-process against the path it replaced rather
//! than against a number recorded under different machine load.

use std::collections::{HashMap, HashSet};

use geospan_geometry::{CirclePosition, Orientation, Point, UniformGrid};
use geospan_graph::Graph;
use geospan_topology::ldel::LocalDelaunay;
use rayon::prelude::*;

// Non-inlined predicate shims. When these baselines were frozen the
// geometry predicates were plain cross-crate functions, so every call
// paid real call overhead; the live predicates have since grown
// `#[inline]` fast paths. Routing the frozen pipelines through
// `#[inline(never)]` wrappers keeps their timings faithful to what
// actually shipped instead of silently inheriting the new inlining.

#[inline(never)]
fn orient2d(a: Point, b: Point, c: Point) -> Orientation {
    geospan_geometry::orient2d(a, b, c)
}

#[inline(never)]
fn incircle(a: Point, b: Point, c: Point, d: Point) -> CirclePosition {
    geospan_geometry::incircle(a, b, c, d)
}

#[inline(never)]
fn in_circumcircle(a: Point, b: Point, c: Point, p: Point) -> CirclePosition {
    geospan_geometry::in_circumcircle(a, b, c, p)
}

#[inline(never)]
fn gabriel_test(u: Point, v: Point, p: Point) -> bool {
    geospan_geometry::gabriel_test(u, v, p)
}

#[inline(never)]
fn segments_properly_cross(a: Point, b: Point, c: Point, d: Point) -> bool {
    // The frozen pipelines classified the full intersection and compared,
    // always evaluating both orientation pairs; the live fast path
    // short-circuits.
    geospan_geometry::segments_cross(a, b, c, d) == geospan_geometry::SegmentIntersection::Proper
}

/// The seed's (unplanarized) `LDel¹`: serial per-node local
/// triangulations and `HashSet`-based three-way membership.
pub fn seed_ldel1(g: &Graph) -> LocalDelaunay {
    let n = g.node_count();
    let mut local_tris: Vec<HashSet<[usize; 3]>> = vec![HashSet::new(); n];
    #[allow(clippy::needless_range_loop)]
    for u in 0..n {
        if g.degree(u) < 2 {
            continue;
        }
        let mut ids: Vec<usize> = Vec::with_capacity(g.degree(u) + 1);
        ids.push(u);
        ids.extend_from_slice(g.neighbors(u));
        let pts: Vec<_> = ids.iter().map(|&i| g.position(i)).collect();
        let tri = tri::SeedTriangulation::build(&pts).expect("distinct node positions");
        for t in &tri.triangles {
            let mut key = [ids[t[0]], ids[t[1]], ids[t[2]]];
            key.sort_unstable();
            local_tris[u].insert(key);
        }
    }

    let mut accepted: HashSet<[usize; 3]> = HashSet::new();
    for u in 0..n {
        for &key in &local_tris[u] {
            let [a, b, c] = key;
            if u != a {
                continue; // consider each triple once, at its least vertex
            }
            if !(g.has_edge(a, b) && g.has_edge(b, c) && g.has_edge(a, c)) {
                continue;
            }
            if local_tris[b].contains(&key) && local_tris[c].contains(&key) {
                accepted.insert(key);
            }
        }
    }

    let gabriel_edges = seed_gabriel_edge_list(g);
    let mut graph = g.same_vertices();
    for &(u, v) in &gabriel_edges {
        graph.add_edge(u, v);
    }
    let mut triangles: Vec<[usize; 3]> = accepted.into_iter().collect();
    triangles.sort_unstable();
    for &[a, b, c] in &triangles {
        graph.add_edge(a, b);
        graph.add_edge(b, c);
        graph.add_edge(a, c);
    }
    LocalDelaunay {
        graph,
        triangles,
        gabriel_edges,
    }
}

/// The seed's `PLDel`: [`seed_ldel1`] followed by [`seed_planarize`].
pub fn seed_planarized(g: &Graph) -> LocalDelaunay {
    seed_planarize(g, seed_ldel1(g))
}

/// The seed's planarization: x-sorted bounding-box sweep over triangle
/// pairs, quadratic within each x-overlap run.
pub fn seed_planarize(g: &Graph, raw: LocalDelaunay) -> LocalDelaunay {
    let tris = &raw.triangles;
    let m = tris.len();
    let mut removed = vec![false; m];

    let mut order: Vec<usize> = (0..m).collect();
    let bbox: Vec<(f64, f64)> = tris
        .iter()
        .map(|t| {
            let xs = t.iter().map(|&v| g.position(v).x);
            (
                xs.clone().fold(f64::INFINITY, f64::min),
                xs.fold(f64::NEG_INFINITY, f64::max),
            )
        })
        .collect();
    order.sort_by(|&i, &j| bbox[i].0.partial_cmp(&bbox[j].0).expect("finite coords"));

    for (oi, &i) in order.iter().enumerate() {
        for &j in order[oi + 1..].iter() {
            if bbox[j].0 > bbox[i].1 {
                break;
            }
            if triangles_cross(g, tris[i], tris[j]) {
                if circum_contains_any(g, tris[i], tris[j]) {
                    removed[i] = true;
                }
                if circum_contains_any(g, tris[j], tris[i]) {
                    removed[j] = true;
                }
            }
        }
    }

    let triangles: Vec<[usize; 3]> = tris
        .iter()
        .zip(&removed)
        .filter(|(_, &r)| !r)
        .map(|(&t, _)| t)
        .collect();
    let mut graph = g.same_vertices();
    for &(u, v) in &raw.gabriel_edges {
        graph.add_edge(u, v);
    }
    for &[a, b, c] in &triangles {
        graph.add_edge(a, b);
        graph.add_edge(b, c);
        graph.add_edge(a, c);
    }
    LocalDelaunay {
        graph,
        triangles,
        gabriel_edges: raw.gabriel_edges,
    }
}

/// The seed's `O(m²)` pairwise crossing count (every edge pair reaches
/// the exact predicate).
pub fn seed_crossing_count(g: &Graph) -> usize {
    let edges: Vec<(usize, usize)> = g.edges().collect();
    let mut count = 0;
    for (i, &(u1, v1)) in edges.iter().enumerate() {
        for &(u2, v2) in &edges[i + 1..] {
            if u1 == u2 || u1 == v2 || v1 == u2 || v1 == v2 {
                continue;
            }
            if segments_properly_cross(
                g.position(u1),
                g.position(v1),
                g.position(u2),
                g.position(v2),
            ) {
                count += 1;
            }
        }
    }
    count
}

/// All Gabriel edges of a distance-closed graph, `(u, v)` with `u < v`
/// (the seed's serial filter).
fn seed_gabriel_edge_list(g: &Graph) -> Vec<(usize, usize)> {
    g.edges()
        .filter(|&(u, v)| {
            let pu = g.position(u);
            let pv = g.position(v);
            !common_neighbors(g, u, v).any(|w| gabriel_test(pu, pv, g.position(w)))
        })
        .collect()
}

/// Common neighbors of `u` and `v` by merging the sorted adjacency lists
/// (local re-implementation; the topology crate keeps its own private).
fn common_neighbors(g: &Graph, u: usize, v: usize) -> impl Iterator<Item = usize> + '_ {
    let a = g.neighbors(u);
    let b = g.neighbors(v);
    let mut i = 0;
    let mut j = 0;
    std::iter::from_fn(move || {
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    let x = a[i];
                    i += 1;
                    j += 1;
                    return Some(x);
                }
            }
        }
        None
    })
}

/// Do two triangles properly cross (some edge of one crosses some edge of
/// the other)?
fn triangles_cross(g: &Graph, t1: [usize; 3], t2: [usize; 3]) -> bool {
    const E: [(usize, usize); 3] = [(0, 1), (1, 2), (0, 2)];
    for &(i, j) in &E {
        for &(p, q) in &E {
            if segments_properly_cross(
                g.position(t1[i]),
                g.position(t1[j]),
                g.position(t2[p]),
                g.position(t2[q]),
            ) {
                return true;
            }
        }
    }
    false
}

/// Is any vertex of `other` inside or on the circumcircle of `t`?
fn circum_contains_any(g: &Graph, t: [usize; 3], other: [usize; 3]) -> bool {
    other.iter().any(|&x| {
        !t.contains(&x)
            && in_circumcircle(
                g.position(t[0]),
                g.position(t[1]),
                g.position(t[2]),
                g.position(x),
            ) != CirclePosition::Outside
    })
}

/// The PR 2–6 optimized `PLDel` pipeline, frozen verbatim: the
/// in-process "previous generation" that the arena-backed pipeline's
/// ≥ 2× speedup gate is measured against.
pub fn prev_planarized(g: &Graph) -> LocalDelaunay {
    prev_planarize(g, prev_ldel1(g))
}

/// The PR 2–6 optimized `LDel¹`: parallel per-node local triangulations
/// (fresh buffers per call), full sorted per-node key lists, and
/// binary-search three-way acceptance.
pub fn prev_ldel1(g: &Graph) -> LocalDelaunay {
    let n = g.node_count();
    let local_tris: Vec<Vec<[usize; 3]>> = (0..n)
        .into_par_iter()
        .map(|u| {
            if g.degree(u) < 2 {
                return Vec::new();
            }
            let mut ids: Vec<usize> = Vec::with_capacity(g.degree(u) + 1);
            ids.push(u);
            ids.extend_from_slice(g.neighbors(u));
            let pts: Vec<_> = ids.iter().map(|&i| g.position(i)).collect();
            let mut keys: Vec<[usize; 3]> = prev_tri::delaunay_triangles(&pts)
                .iter()
                .map(|&[a, b, c]| {
                    let mut key = [ids[a], ids[b], ids[c]];
                    key.sort_unstable();
                    key
                })
                .collect();
            keys.sort_unstable();
            keys
        })
        .collect();

    let kept: Vec<Vec<[usize; 3]>> = (0..n)
        .into_par_iter()
        .map(|u| {
            local_tris[u]
                .iter()
                .copied()
                .filter(|&key| {
                    let [a, b, c] = key;
                    a == u
                        && g.has_edge(a, b)
                        && g.has_edge(b, c)
                        && g.has_edge(a, c)
                        && local_tris[b].binary_search(&key).is_ok()
                        && local_tris[c].binary_search(&key).is_ok()
                })
                .collect()
        })
        .collect();
    let triangles: Vec<[usize; 3]> = kept.into_iter().flatten().collect();

    let gabriel_edges = prev_gabriel_edge_list(g);
    let mut graph = g.same_vertices();
    for &(u, v) in &gabriel_edges {
        graph.add_edge(u, v);
    }
    for &[a, b, c] in &triangles {
        graph.add_edge(a, b);
        graph.add_edge(b, c);
        graph.add_edge(a, c);
    }
    LocalDelaunay {
        graph,
        triangles,
        gabriel_edges,
    }
}

/// The PR 2–6 planarization: materialized + sorted grid candidate
/// pairs, parallel pair flags, per-edge `add_edge` assembly.
pub fn prev_planarize(g: &Graph, raw: LocalDelaunay) -> LocalDelaunay {
    let tris = &raw.triangles;
    let m = tris.len();
    let boxes: Vec<(Point, Point)> = tris
        .iter()
        .map(|t| {
            let p0 = g.position(t[0]);
            let (mut lo, mut hi) = (p0, p0);
            for &v in &t[1..] {
                let p = g.position(v);
                lo = Point::new(lo.x.min(p.x), lo.y.min(p.y));
                hi = Point::new(hi.x.max(p.x), hi.y.max(p.y));
            }
            (lo, hi)
        })
        .collect();
    let pairs = UniformGrid::from_boxes(&boxes, None).candidate_pairs();

    let flags: Vec<(bool, bool)> = pairs
        .par_iter()
        .map(|&(i, j)| {
            if triangles_cross(g, tris[i], tris[j]) {
                (
                    circum_contains_any(g, tris[i], tris[j]),
                    circum_contains_any(g, tris[j], tris[i]),
                )
            } else {
                (false, false)
            }
        })
        .collect();
    let mut removed = vec![false; m];
    for (&(i, j), &(ri, rj)) in pairs.iter().zip(&flags) {
        removed[i] |= ri;
        removed[j] |= rj;
    }

    let triangles: Vec<[usize; 3]> = tris
        .iter()
        .zip(&removed)
        .filter(|(_, &r)| !r)
        .map(|(&t, _)| t)
        .collect();
    let mut graph = g.same_vertices();
    for &(u, v) in &raw.gabriel_edges {
        graph.add_edge(u, v);
    }
    for &[a, b, c] in &triangles {
        graph.add_edge(a, b);
        graph.add_edge(b, c);
        graph.add_edge(a, c);
    }
    LocalDelaunay {
        graph,
        triangles,
        gabriel_edges: raw.gabriel_edges,
    }
}

/// The PR 2–6 Gabriel stage: parallel keep-mask over the UDG edges.
fn prev_gabriel_edge_list(g: &Graph) -> Vec<(usize, usize)> {
    let edges: Vec<(usize, usize)> = g.edges().collect();
    let keep: Vec<bool> = edges
        .par_iter()
        .map(|&(u, v)| {
            let pu = g.position(u);
            let pv = g.position(v);
            !common_neighbors(g, u, v).any(|w| gabriel_test(pu, pv, g.position(w)))
        })
        .collect();
    edges
        .into_iter()
        .zip(keep)
        .filter_map(|(e, k)| k.then_some(e))
        .collect()
}

/// The PR 2–6 Bowyer–Watson core, verbatim: per-call buffer allocation
/// (triangle arena, marks, cavity/stack/boundary all rebuilt for every
/// local triangulation), vertex positions fetched through the input
/// slice, and ghost vertices found by scanning — the cost profile of
/// `delaunay_triangles` the arena generation replaced. Frozen here so
/// improvements to the live core cannot leak into the baseline side of
/// the speedup measurement.
mod prev_tri {
    use super::{incircle, orient2d, CirclePosition, Orientation, Point};

    const GHOST: usize = usize::MAX;
    const NO_TRI: usize = usize::MAX;

    #[derive(Debug, Clone, Copy)]
    struct Tri {
        v: [usize; 3],
        n: [usize; 3],
        alive: bool,
    }

    struct BoundaryEdge {
        u: usize,
        w: usize,
        outside: usize,
    }

    fn check_distinct_finite(points: &[Point]) {
        for p in points {
            assert!(p.is_finite(), "non-finite coordinate");
        }
        if points.len() <= 48 {
            for (i, p) in points.iter().enumerate() {
                for q in points[..i].iter() {
                    assert!(
                        p.x.to_bits() != q.x.to_bits() || p.y.to_bits() != q.y.to_bits(),
                        "distinct node positions"
                    );
                }
            }
            return;
        }
        let mut seen: std::collections::HashMap<(u64, u64), usize> =
            std::collections::HashMap::with_capacity(points.len());
        for (i, p) in points.iter().enumerate() {
            assert!(
                seen.insert((p.x.to_bits(), p.y.to_bits()), i).is_none(),
                "distinct node positions"
            );
        }
    }

    /// The PR 2–6 `delaunay_triangles`: validate, run the core with
    /// fresh buffers, collect the surviving real triangles.
    pub fn delaunay_triangles(points: &[Point]) -> Vec<[usize; 3]> {
        check_distinct_finite(points);
        let core = Core::run(points);
        if core.collinear_chain {
            return Vec::new();
        }
        core.tris
            .iter()
            .filter(|t| t.alive && !t.v.contains(&GHOST))
            .map(|t| t.v)
            .collect()
    }

    struct Core<'a> {
        pts: &'a [Point],
        tris: Vec<Tri>,
        last: usize,
        collinear_chain: bool,
        mark: Vec<(u32, bool)>,
        epoch: u32,
        cavity: Vec<usize>,
        stack: Vec<usize>,
        boundary: Vec<BoundaryEdge>,
    }

    impl<'a> Core<'a> {
        fn run(points: &'a [Point]) -> Core<'a> {
            let n = points.len();
            let mut core = Core {
                pts: points,
                tris: Vec::new(),
                last: NO_TRI,
                collinear_chain: false,
                mark: Vec::new(),
                epoch: 0,
                cavity: Vec::new(),
                stack: Vec::new(),
                boundary: Vec::new(),
            };
            if n < 3 {
                core.collinear_chain = true;
                return core;
            }
            let mut apex = None;
            for k in 2..n {
                if orient2d(points[0], points[1], points[k]) != Orientation::Collinear {
                    apex = Some(k);
                    break;
                }
            }
            let Some(apex) = apex else {
                core.collinear_chain = true;
                return core;
            };
            core.init_triangle(0, 1, apex);
            for i in 2..n {
                if i == apex {
                    continue;
                }
                core.insert(i);
            }
            core
        }

        fn init_triangle(&mut self, i: usize, j: usize, k: usize) {
            let (a, b, c) = match orient2d(self.pts[i], self.pts[j], self.pts[k]) {
                Orientation::CounterClockwise => (i, j, k),
                Orientation::Clockwise => (i, k, j),
                Orientation::Collinear => unreachable!("seed triangle is non-degenerate"),
            };
            self.tris.push(Tri {
                v: [a, b, c],
                n: [2, 3, 1],
                alive: true,
            });
            self.tris.push(Tri {
                v: [b, a, GHOST],
                n: [3, 2, 0],
                alive: true,
            });
            self.tris.push(Tri {
                v: [c, b, GHOST],
                n: [1, 3, 0],
                alive: true,
            });
            self.tris.push(Tri {
                v: [a, c, GHOST],
                n: [2, 1, 0],
                alive: true,
            });
            self.last = 0;
        }

        fn in_conflict(&self, t: usize, p: Point) -> bool {
            let tri = &self.tris[t];
            if let Some(k) = tri.v.iter().position(|&v| v == GHOST) {
                let u = tri.v[(k + 1) % 3];
                let w = tri.v[(k + 2) % 3];
                match orient2d(self.pts[u], self.pts[w], p) {
                    Orientation::CounterClockwise => true,
                    Orientation::Clockwise => false,
                    Orientation::Collinear => strictly_between(self.pts[u], self.pts[w], p),
                }
            } else {
                let [a, b, c] = tri.v;
                incircle(self.pts[a], self.pts[b], self.pts[c], p) == CirclePosition::Inside
            }
        }

        fn locate(&self, p: Point) -> usize {
            let mut t = self.last;
            if t == NO_TRI || !self.tris[t].alive {
                t = self
                    .tris
                    .iter()
                    .position(|t| t.alive)
                    .expect("no alive triangle");
            }
            if let Some(k) = self.tris[t].v.iter().position(|&v| v == GHOST) {
                t = self.tris[t].n[k];
            }
            let limit = 4 * self.tris.len() + 16;
            let mut steps = 0;
            'walk: while steps < limit {
                steps += 1;
                let tri = &self.tris[t];
                if tri.v.contains(&GHOST) {
                    let mut g = t;
                    for _ in 0..self.tris.len() + 1 {
                        if self.in_conflict(g, p) {
                            return g;
                        }
                        let k = self.tris[g]
                            .v
                            .iter()
                            .position(|&v| v == GHOST)
                            .expect("ghost triangle has a ghost vertex");
                        g = self.tris[g].n[(k + 1) % 3];
                    }
                    break 'walk;
                }
                for i in 0..3 {
                    let u = tri.v[(i + 1) % 3];
                    let w = tri.v[(i + 2) % 3];
                    if orient2d(self.pts[u], self.pts[w], p) == Orientation::Clockwise {
                        t = tri.n[i];
                        continue 'walk;
                    }
                }
                return t;
            }
            (0..self.tris.len())
                .find(|&t| self.tris[t].alive && self.in_conflict(t, p))
                .expect("insertion point conflicts with no triangle")
        }

        fn insert(&mut self, pi: usize) {
            let p = self.pts[pi];
            let seed = self.locate(p);

            self.epoch += 1;
            let epoch = self.epoch;
            if self.mark.len() < self.tris.len() {
                self.mark.resize(self.tris.len(), (0, false));
            }
            let mut cavity = std::mem::take(&mut self.cavity);
            cavity.clear();
            cavity.push(seed);
            self.mark[seed] = (epoch, true);
            self.stack.clear();
            self.stack.push(seed);
            while let Some(t) = self.stack.pop() {
                for i in 0..3 {
                    let nb = self.tris[t].n[i];
                    if nb == NO_TRI || self.mark[nb].0 == epoch {
                        continue;
                    }
                    let c = self.in_conflict(nb, p);
                    self.mark[nb] = (epoch, c);
                    if c {
                        cavity.push(nb);
                        self.stack.push(nb);
                    }
                }
            }

            let mut boundary = std::mem::take(&mut self.boundary);
            boundary.clear();
            for &t in &cavity {
                for i in 0..3 {
                    let nb = self.tris[t].n[i];
                    let nb_in = nb != NO_TRI && self.mark[nb] == (epoch, true);
                    if !nb_in {
                        boundary.push(BoundaryEdge {
                            u: self.tris[t].v[(i + 1) % 3],
                            w: self.tris[t].v[(i + 2) % 3],
                            outside: nb,
                        });
                    }
                }
            }

            for &t in &cavity {
                self.tris[t].alive = false;
            }
            let base = self.tris.len();
            for (off, e) in boundary.iter().enumerate() {
                let idx = base + off;
                self.tris.push(Tri {
                    v: [pi, e.u, e.w],
                    n: [e.outside, NO_TRI, NO_TRI],
                    alive: true,
                });
                if e.outside != NO_TRI {
                    let out = &mut self.tris[e.outside];
                    for j in 0..3 {
                        let a = out.v[(j + 1) % 3];
                        let b = out.v[(j + 2) % 3];
                        if (a == e.u && b == e.w) || (a == e.w && b == e.u) {
                            out.n[j] = idx;
                            break;
                        }
                    }
                }
            }
            for (off, e) in boundary.iter().enumerate() {
                let idx = base + off;
                let across_wp = boundary
                    .iter()
                    .position(|e2| e2.u == e.w)
                    .expect("cavity boundary is a closed fan");
                let across_pu = boundary
                    .iter()
                    .position(|e2| e2.w == e.u)
                    .expect("cavity boundary is a closed fan");
                self.tris[idx].n[1] = base + across_wp;
                self.tris[idx].n[2] = base + across_pu;
            }
            self.last = base;
            self.cavity = cavity;
            self.boundary = boundary;
        }
    }

    fn strictly_between(a: Point, b: Point, p: Point) -> bool {
        if p == a || p == b {
            return false;
        }
        p.x >= a.x.min(b.x) && p.x <= a.x.max(b.x) && p.y >= a.y.min(b.y) && p.y <= a.y.max(b.y)
    }
}

/// The seed's Bowyer–Watson implementation, verbatim: hash-map duplicate
/// scan, per-insert `HashMap` cavity bookkeeping, and the full
/// triangulation assembly (edge set, adjacency, hull walk) even though
/// only the triangles are consumed — that was the cost profile of
/// `Triangulation::build` when the baseline was recorded.
mod tri {
    use super::*;

    const GHOST: usize = usize::MAX;
    const NO_TRI: usize = usize::MAX;

    #[derive(Debug, Clone, Copy)]
    struct Tri {
        v: [usize; 3],
        n: [usize; 3],
        alive: bool,
    }

    /// The assembled seed triangulation. All fields are built (to match
    /// the seed's cost) even though callers only read `triangles`.
    #[allow(dead_code)]
    pub struct SeedTriangulation {
        pub triangles: Vec<[usize; 3]>,
        pub edges: Vec<(usize, usize)>,
        pub adjacency: Vec<Vec<usize>>,
        pub hull: Vec<usize>,
        pub tri_keys: HashSet<[usize; 3]>,
    }

    impl SeedTriangulation {
        pub fn build(points: &[Point]) -> Result<Self, String> {
            let mut seen: HashMap<(u64, u64), usize> = HashMap::with_capacity(points.len());
            for (i, p) in points.iter().enumerate() {
                if !p.is_finite() {
                    return Err(format!("non-finite point at {i}"));
                }
                if seen.insert((p.x.to_bits(), p.y.to_bits()), i).is_some() {
                    return Err(format!("duplicate point at {i}"));
                }
            }
            let core = Core::run(points);
            Ok(core.finish(points))
        }
    }

    struct Core {
        pts: Vec<Point>,
        tris: Vec<Tri>,
        last: usize,
        collinear_chain: Option<Vec<usize>>,
    }

    impl Core {
        fn run(points: &[Point]) -> Core {
            let n = points.len();
            let mut core = Core {
                pts: points.to_vec(),
                tris: Vec::new(),
                last: NO_TRI,
                collinear_chain: None,
            };
            if n < 3 {
                core.collinear_chain = Some(Self::chain_order(points));
                return core;
            }
            let mut apex = None;
            for k in 2..n {
                if orient2d(points[0], points[1], points[k]) != Orientation::Collinear {
                    apex = Some(k);
                    break;
                }
            }
            let Some(apex) = apex else {
                core.collinear_chain = Some(Self::chain_order(points));
                return core;
            };
            core.init_triangle(0, 1, apex);
            for i in 2..n {
                if i == apex {
                    continue;
                }
                core.insert(i);
            }
            core
        }

        fn chain_order(points: &[Point]) -> Vec<usize> {
            let mut idx: Vec<usize> = (0..points.len()).collect();
            idx.sort_by(|&i, &j| points[i].lex_cmp(points[j]));
            idx
        }

        fn init_triangle(&mut self, i: usize, j: usize, k: usize) {
            let (a, b, c) = match orient2d(self.pts[i], self.pts[j], self.pts[k]) {
                Orientation::CounterClockwise => (i, j, k),
                Orientation::Clockwise => (i, k, j),
                Orientation::Collinear => unreachable!("seed triangle is non-degenerate"),
            };
            self.tris.push(Tri {
                v: [a, b, c],
                n: [2, 3, 1],
                alive: true,
            });
            self.tris.push(Tri {
                v: [b, a, GHOST],
                n: [3, 2, 0],
                alive: true,
            });
            self.tris.push(Tri {
                v: [c, b, GHOST],
                n: [1, 3, 0],
                alive: true,
            });
            self.tris.push(Tri {
                v: [a, c, GHOST],
                n: [2, 1, 0],
                alive: true,
            });
            self.last = 0;
        }

        fn in_conflict(&self, t: usize, p: Point) -> bool {
            let tri = &self.tris[t];
            if let Some(k) = tri.v.iter().position(|&v| v == GHOST) {
                let u = tri.v[(k + 1) % 3];
                let w = tri.v[(k + 2) % 3];
                match orient2d(self.pts[u], self.pts[w], p) {
                    Orientation::CounterClockwise => true,
                    Orientation::Clockwise => false,
                    Orientation::Collinear => strictly_between(self.pts[u], self.pts[w], p),
                }
            } else {
                let [a, b, c] = tri.v;
                incircle(self.pts[a], self.pts[b], self.pts[c], p) == CirclePosition::Inside
            }
        }

        fn locate(&self, p: Point) -> usize {
            let mut t = self.last;
            if t == NO_TRI || !self.tris[t].alive {
                t = self
                    .tris
                    .iter()
                    .position(|t| t.alive)
                    .expect("no alive triangle");
            }
            if let Some(k) = self.tris[t].v.iter().position(|&v| v == GHOST) {
                t = self.tris[t].n[k];
            }
            let limit = 4 * self.tris.len() + 16;
            let mut steps = 0;
            'walk: while steps < limit {
                steps += 1;
                let tri = &self.tris[t];
                if tri.v.contains(&GHOST) {
                    let mut g = t;
                    for _ in 0..self.tris.len() + 1 {
                        if self.in_conflict(g, p) {
                            return g;
                        }
                        let k = self.tris[g].v.iter().position(|&v| v == GHOST).unwrap();
                        g = self.tris[g].n[(k + 1) % 3];
                    }
                    break 'walk;
                }
                for i in 0..3 {
                    let u = tri.v[(i + 1) % 3];
                    let w = tri.v[(i + 2) % 3];
                    if orient2d(self.pts[u], self.pts[w], p) == Orientation::Clockwise {
                        t = tri.n[i];
                        continue 'walk;
                    }
                }
                return t;
            }
            (0..self.tris.len())
                .find(|&t| self.tris[t].alive && self.in_conflict(t, p))
                .expect("insertion point conflicts with no triangle")
        }

        fn insert(&mut self, pi: usize) {
            let p = self.pts[pi];
            let seed = self.locate(p);

            let mut cavity = vec![seed];
            let mut in_cavity: HashMap<usize, bool> = HashMap::new();
            in_cavity.insert(seed, true);
            let mut stack = vec![seed];
            while let Some(t) = stack.pop() {
                for i in 0..3 {
                    let nb = self.tris[t].n[i];
                    if nb == NO_TRI || in_cavity.contains_key(&nb) {
                        continue;
                    }
                    let c = self.in_conflict(nb, p);
                    in_cavity.insert(nb, c);
                    if c {
                        cavity.push(nb);
                        stack.push(nb);
                    }
                }
            }

            struct BoundaryEdge {
                u: usize,
                w: usize,
                outside: usize,
            }
            let mut boundary = Vec::with_capacity(cavity.len() + 2);
            for &t in &cavity {
                for i in 0..3 {
                    let nb = self.tris[t].n[i];
                    let nb_in = nb != NO_TRI && *in_cavity.get(&nb).unwrap_or(&false);
                    if !nb_in {
                        boundary.push(BoundaryEdge {
                            u: self.tris[t].v[(i + 1) % 3],
                            w: self.tris[t].v[(i + 2) % 3],
                            outside: nb,
                        });
                    }
                }
            }

            for &t in &cavity {
                self.tris[t].alive = false;
            }
            let base = self.tris.len();
            let mut by_u: HashMap<usize, usize> = HashMap::with_capacity(boundary.len());
            let mut by_w: HashMap<usize, usize> = HashMap::with_capacity(boundary.len());
            for (off, e) in boundary.iter().enumerate() {
                let idx = base + off;
                self.tris.push(Tri {
                    v: [pi, e.u, e.w],
                    n: [e.outside, NO_TRI, NO_TRI],
                    alive: true,
                });
                by_u.insert(e.u, idx);
                by_w.insert(e.w, idx);
                if e.outside != NO_TRI {
                    let out = &mut self.tris[e.outside];
                    for j in 0..3 {
                        let a = out.v[(j + 1) % 3];
                        let b = out.v[(j + 2) % 3];
                        if (a == e.u && b == e.w) || (a == e.w && b == e.u) {
                            out.n[j] = idx;
                            break;
                        }
                    }
                }
            }
            for (off, e) in boundary.iter().enumerate() {
                let idx = base + off;
                self.tris[idx].n[1] = by_u[&e.w];
                self.tris[idx].n[2] = by_w[&e.u];
            }
            self.last = base;
        }

        fn finish(self, points: &[Point]) -> SeedTriangulation {
            let n = points.len();
            let mut triangles = Vec::new();
            let mut edge_set: HashSet<(usize, usize)> = HashSet::new();
            let mut tri_keys = HashSet::new();
            let mut hull = Vec::new();

            if let Some(chain) = &self.collinear_chain {
                for w in chain.windows(2) {
                    edge_set.insert(ordered(w[0], w[1]));
                }
            } else {
                for t in self.tris.iter().filter(|t| t.alive) {
                    if t.v.contains(&GHOST) {
                        continue;
                    }
                    triangles.push(t.v);
                    let mut k = t.v;
                    k.sort_unstable();
                    tri_keys.insert(k);
                    edge_set.insert(ordered(t.v[0], t.v[1]));
                    edge_set.insert(ordered(t.v[1], t.v[2]));
                    edge_set.insert(ordered(t.v[2], t.v[0]));
                }
                if let Some(start) = self
                    .tris
                    .iter()
                    .position(|t| t.alive && t.v.contains(&GHOST))
                {
                    let mut g = start;
                    loop {
                        let k = self.tris[g].v.iter().position(|&v| v == GHOST).unwrap();
                        hull.push(self.tris[g].v[(k + 2) % 3]);
                        g = self.tris[g].n[(k + 1) % 3];
                        if g == start {
                            break;
                        }
                    }
                    hull.reverse();
                    if let Some(k) = hull
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, &v)| v)
                        .map(|(k, _)| k)
                    {
                        hull.rotate_left(k);
                    }
                }
            }

            let mut edges: Vec<(usize, usize)> = edge_set.into_iter().collect();
            edges.sort_unstable();
            let mut adjacency = vec![Vec::new(); n];
            for &(u, v) in &edges {
                adjacency[u].push(v);
                adjacency[v].push(u);
            }
            for a in &mut adjacency {
                a.sort_unstable();
            }
            SeedTriangulation {
                triangles,
                edges,
                adjacency,
                hull,
                tri_keys,
            }
        }
    }

    #[inline]
    fn ordered(u: usize, v: usize) -> (usize, usize) {
        if u < v {
            (u, v)
        } else {
            (v, u)
        }
    }

    fn strictly_between(a: Point, b: Point, p: Point) -> bool {
        if p == a || p == b {
            return false;
        }
        p.x >= a.x.min(b.x) && p.x <= a.x.max(b.x) && p.y >= a.y.min(b.y) && p.y <= a.y.max(b.y)
    }
}
