//! Experiment E10 (extension) — **power stretch factors** of the Table I
//! topologies, the third spanner metric the paper defines (§II, after
//! length and hops) with the power-attenuation model `cost = d^β`.
//!
//! Convexity of `d^β` favors many short hops, so structures that keep
//! short edges (RNG/GG/LDel and the backbone) have *better* power
//! stretch than length stretch — often 1.0 exactly.
//!
//! ```text
//! cargo run -p geospan-bench --release --bin power_stretch -- [--trials N] [--seed S] [--out DIR]
//! ```

use geospan_bench::{table1_topologies, CliArgs, Scenario, Span};
use geospan_graph::power::power_stretch;
use geospan_graph::stretch::StretchOptions;

fn main() {
    let cli = CliArgs::parse();
    let scenario = cli.apply(Scenario::table1());
    let betas = [2.0, 4.0];
    println!(
        "Power stretch (extension), n={}, R={}, {} instances, beta in {betas:?}\n",
        scenario.n, scenario.radius, scenario.trials
    );
    println!(
        "{:<12} {:>12} {:>12} {:>12} {:>12}",
        "topology", "b2 avg", "b2 max", "b4 avg", "b4 max"
    );

    let instances = scenario.instances();
    // Aggregate per topology: [beta2_avg, beta2_max, beta4_avg, beta4_max].
    let mut names: Vec<String> = Vec::new();
    let mut agg: Vec<[f64; 4]> = Vec::new();
    for (_pts, udg) in &instances {
        let topologies = table1_topologies(udg, scenario.radius);
        if names.is_empty() {
            names = topologies
                .iter()
                .filter(|t| t.span == Span::AllNodes)
                .map(|t| t.name.to_string())
                .collect();
            agg = vec![[0.0; 4]; names.len()];
        }
        let mut k = 0;
        for topo in &topologies {
            if topo.span != Span::AllNodes {
                continue;
            }
            let opts = StretchOptions {
                min_euclidean_separation: scenario.radius,
            };
            for (j, &beta) in betas.iter().enumerate() {
                let r = power_stretch(udg, &topo.graph, beta, opts);
                assert_eq!(r.disconnected_pairs, 0);
                agg[k][2 * j] += r.power_avg;
                agg[k][2 * j + 1] = agg[k][2 * j + 1].max(r.power_max);
            }
            k += 1;
        }
    }
    let t = instances.len() as f64;
    let mut csv = String::from("topology,beta2_avg,beta2_max,beta4_avg,beta4_max\n");
    for (name, a) in names.iter().zip(&agg) {
        println!(
            "{:<12} {:>12.4} {:>12.4} {:>12.4} {:>12.4}",
            name,
            a[0] / t,
            a[1],
            a[2] / t,
            a[3]
        );
        csv.push_str(&format!(
            "{},{:.6},{:.6},{:.6},{:.6}\n",
            name,
            a[0] / t,
            a[1],
            a[2] / t,
            a[3]
        ));
    }
    cli.write_artifact("power_stretch.csv", &csv);
}
