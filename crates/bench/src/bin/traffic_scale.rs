//! Experiment E20 — sharded traffic-engine scaling.
//!
//! Serves one hotspot workload (1.1M offered packets in the standard
//! configuration) over `LDel(ICDS)` backbone routing once per shard
//! count and writes the scaling ledger to
//! `BENCH_traffic_scale.json` (in `--out`, or `results/` by default):
//! events/second, speedup over single-shard, barrier rounds, boundary
//! messages, idle shard-rounds, load imbalance, and edge-cut fraction.
//!
//! ```text
//! cargo run -p geospan-bench --release --bin traffic_scale -- \
//!     [--quick] [--check] [--seed S] [--reps R] [--out DIR]
//! ```
//!
//! `--quick` swaps in the small CI smoke sweep. `--check` exits
//! non-zero unless every shard count's outcome is bit-identical to the
//! single-shard run (and, full-size, the workload offered ≥ 1M
//! packets); the ≥ 2× speedup gate additionally applies on hosts with
//! 4+ cores — on smaller hosts the measurements are recorded but the
//! hardware has no parallelism for a speedup to come from, so the gate
//! is reported as skipped rather than faked.

use std::path::PathBuf;
use std::process::ExitCode;

use geospan_bench::scale::{
    check_identity, check_speedup, format_scale, scale_json, scale_rows, ScaleConfig,
};

struct Args {
    quick: bool,
    check: bool,
    seed: Option<u64>,
    reps: Option<usize>,
    out: Option<PathBuf>,
}

fn parse_args() -> Args {
    let mut parsed = Args {
        quick: false,
        check: false,
        seed: None,
        reps: None,
        out: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut next = |what: &str| {
            args.next()
                .unwrap_or_else(|| panic!("missing value after {what}"))
        };
        match a.as_str() {
            "--quick" => parsed.quick = true,
            "--check" => parsed.check = true,
            "--seed" => parsed.seed = Some(next("--seed").parse().expect("seed: integer")),
            "--reps" => parsed.reps = Some(next("--reps").parse().expect("reps: integer")),
            "--out" => parsed.out = Some(next("--out").into()),
            other => panic!(
                "unknown argument {other}; supported: --quick --check --seed S --reps R --out DIR"
            ),
        }
    }
    parsed
}

fn main() -> ExitCode {
    let args = parse_args();
    let mut cfg = if args.quick {
        ScaleConfig::quick()
    } else {
        ScaleConfig::standard()
    };
    if let Some(s) = args.seed {
        cfg.seed = s;
    }
    if let Some(r) = args.reps {
        cfg.reps = r;
    }

    println!(
        "Sharded engine scaling: n={}, R={}, hotspot rate {} x {} ticks \
         (~{:.0} packets offered), loss {:.0}%, shards {:?}\n",
        cfg.n,
        cfg.radius,
        cfg.rate,
        cfg.duration,
        cfg.expected_offered(),
        100.0 * cfg.loss,
        cfg.shard_counts
    );
    let report = scale_rows(&cfg);
    print!("{}", format_scale(&report));
    println!(
        "\nEvery shard count replays the identical packet ledger; the partition's price is \
         the boundary-message and idle-round columns (lockstep barriers at zero lookahead), \
         its payoff the wall-clock column on multi-core hosts. Host cores: {}.",
        report.cores
    );

    let dir = args.out.unwrap_or_else(|| PathBuf::from("results"));
    std::fs::create_dir_all(&dir).expect("create output directory");
    let path = dir.join("BENCH_traffic_scale.json");
    std::fs::write(&path, scale_json(&cfg, &report, args.quick))
        .expect("write BENCH_traffic_scale.json");
    println!("wrote {}", path.display());

    if args.check {
        if let Err(msg) = check_identity(&report) {
            eprintln!("check failed: {msg}");
            return ExitCode::FAILURE;
        }
        if !args.quick && report.offered < 1_000_000 {
            eprintln!(
                "check failed: full-size workload offered only {} packets (< 1M)",
                report.offered
            );
            return ExitCode::FAILURE;
        }
        if report.cores >= 4 {
            if let Err(msg) = check_speedup(&report) {
                eprintln!("check failed: {msg}");
                return ExitCode::FAILURE;
            }
            println!(
                "check passed: outcomes bit-identical at every shard count, 2x speedup reached"
            );
        } else {
            println!(
                "check passed: outcomes bit-identical at every shard count \
                 (speedup gate skipped on a {}-core host)",
                report.cores
            );
        }
    }
    ExitCode::SUCCESS
}
