//! Experiment E1 — regenerates **Table I** (topology quality
//! measurements): average/maximum node degree, length and hop stretch
//! factors, and edge counts for the paper's ten topologies.
//!
//! ```text
//! cargo run -p geospan-bench --release --bin table1 -- [--trials N] [--seed S] [--out DIR]
//! ```

use geospan_bench::{format_table1, table1_csv, table1_rows, CliArgs, Scenario};

fn main() {
    let cli = CliArgs::parse();
    let scenario = cli.apply(Scenario::table1());
    println!(
        "Table I: n={} nodes, {}x{} region, radius {}, {} connected instances",
        scenario.n, scenario.side, scenario.side, scenario.radius, scenario.trials
    );
    let rows = table1_rows(&scenario);
    print!("{}", format_table1(&rows));
    cli.write_artifact("table1.csv", &table1_csv(&rows));
}
