//! Experiment E18 — the saturation frontier, with and without overload
//! control.
//!
//! Serves a hotspot workload over `LDel(ICDS)` backbone routing under
//! seeded radio loss, pushing offered load past the point where every
//! queue discipline's delivery collapses into `QueueFull` drops — then
//! re-runs the same cells with congestion-adaptive overload control
//! (sender-queue watermarks + token-bucket source admission) and
//! reports how far the 95%-delivery frontier moves outward. Writes
//! `traffic_saturation.csv` (in `--out`, or `results/` by default).
//! The CSV is byte-identical for a given seed regardless of thread
//! count.
//!
//! ```text
//! cargo run -p geospan-bench --release --bin traffic_saturation -- \
//!     [--quick] [--check] [--trials N] [--seed S] [--out DIR]
//! ```
//!
//! `--quick` swaps in the small CI smoke sweep; `--check` exits
//! non-zero unless every discipline's control-off half has a collapsed
//! cell (admitted delivery < 95% with `QueueFull` drops) and its
//! control-on frontier sits at a strictly higher load (or beyond the
//! sweep entirely).

use std::path::PathBuf;
use std::process::ExitCode;

use geospan_bench::traffic::{
    check_frontier_shift, check_saturation_collapse, format_saturation, saturation_csv,
    saturation_rows, SaturationSweepConfig,
};

struct Args {
    quick: bool,
    check: bool,
    trials: Option<usize>,
    seed: Option<u64>,
    out: Option<PathBuf>,
}

fn parse_args() -> Args {
    let mut parsed = Args {
        quick: false,
        check: false,
        trials: None,
        seed: None,
        out: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut next = |what: &str| {
            args.next()
                .unwrap_or_else(|| panic!("missing value after {what}"))
        };
        match a.as_str() {
            "--quick" => parsed.quick = true,
            "--check" => parsed.check = true,
            "--trials" => parsed.trials = Some(next("--trials").parse().expect("trials: integer")),
            "--seed" => parsed.seed = Some(next("--seed").parse().expect("seed: integer")),
            "--out" => parsed.out = Some(next("--out").into()),
            other => panic!(
                "unknown argument {other}; supported: --quick --check --trials N --seed S --out DIR"
            ),
        }
    }
    parsed
}

fn main() -> ExitCode {
    let args = parse_args();
    let mut cfg = if args.quick {
        SaturationSweepConfig::quick()
    } else {
        SaturationSweepConfig::standard()
    };
    if let Some(t) = args.trials {
        cfg.scenario.trials = t;
    }
    if let Some(s) = args.seed {
        cfg.scenario.seed = s;
    }

    println!(
        "Saturation frontier under {:.0}% loss: n={}, R={}, {} trials, {} ticks, \
         loads {:?}, sink bias {}, queue capacity {}\n",
        100.0 * cfg.loss,
        cfg.scenario.n,
        cfg.scenario.radius,
        cfg.scenario.trials,
        cfg.duration,
        cfg.loads,
        cfg.sink_bias,
        cfg.queue_capacity
    );
    let rows = saturation_rows(&cfg);
    print!("{}", format_saturation(&rows));
    println!(
        "\nWithout overload control the hotspot's ingress relays saturate: queues fill, \
         retries amplify the backlog, and delivery collapses into QueueFull drops. With \
         watermarks shedding retries and token buckets refusing excess injections at the \
         source, admitted traffic keeps delivering — refusals absorb the overload instead \
         of the queues, and the 95%-delivery frontier moves past the top of the sweep."
    );

    let dir = args.out.unwrap_or_else(|| PathBuf::from("results"));
    std::fs::create_dir_all(&dir).expect("create output directory");
    let path = dir.join("traffic_saturation.csv");
    std::fs::write(&path, saturation_csv(&rows)).expect("write traffic_saturation.csv");
    println!("wrote {}", path.display());

    if args.check {
        if let Err(msg) = check_saturation_collapse(&rows) {
            eprintln!("check failed: {msg}");
            return ExitCode::FAILURE;
        }
        if let Err(msg) = check_frontier_shift(&rows) {
            eprintln!("check failed: {msg}");
            return ExitCode::FAILURE;
        }
        println!(
            "check passed: every discipline collapses below 95% with QueueFull drops when \
             overload control is off, and its frontier sits strictly higher with control on"
        );
    }
    ExitCode::SUCCESS
}
