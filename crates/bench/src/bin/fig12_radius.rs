//! Experiment E7 — regenerates **Figure 12**: per-node communication
//! cost and node degree of CDS, ICDS and LDel(ICDS) as the transmission
//! radius varies from 20 to 60 (n = 500, 200×200 region).
//!
//! ```text
//! cargo run -p geospan-bench --release --bin fig12_radius -- [--trials N] [--seed S] [--out DIR]
//! ```

use geospan_bench::{format_series, series_csv, CliArgs, Scenario, Series};
use geospan_core::{BackboneBuilder, BackboneConfig};
use geospan_graph::stats::degree_stats;

fn main() {
    let cli = CliArgs::parse();
    let base = cli.apply(Scenario {
        n: 500,
        trials: 5,
        ..Scenario::table1()
    });
    let names = ["CDS", "ICDS", "LDelICDS"];
    let mut comm_series: Vec<Series> = Vec::new();
    let mut deg_series: Vec<Series> = Vec::new();
    for n in names {
        comm_series.push(Series {
            label: format!("{n} comm max"),
            points: vec![],
        });
        comm_series.push(Series {
            label: format!("{n} comm avg"),
            points: vec![],
        });
        deg_series.push(Series {
            label: format!("{n} deg max"),
            points: vec![],
        });
        deg_series.push(Series {
            label: format!("{n} deg avg"),
            points: vec![],
        });
    }

    for radius in (20..=60).step_by(5) {
        let scenario = Scenario {
            radius: radius as f64,
            ..base
        };
        let mut comm = vec![0.0f64; comm_series.len()];
        let mut deg = vec![0.0f64; deg_series.len()];
        for (_pts, udg) in scenario.instances() {
            let backbone = BackboneBuilder::new(BackboneConfig::new(scenario.radius).distributed())
                .build(&udg)
                .expect("protocols converge");
            let stats = backbone.stats().expect("distributed build records stats");
            let cds_sent: Vec<usize> = stats.cds.sent_per_node().to_vec();
            let icds_sent: Vec<usize> = cds_sent.iter().map(|c| c + 1).collect();
            let total = stats.total_per_node();
            let graphs = [
                &backbone.cds_graphs().cds,
                &backbone.cds_graphs().icds,
                backbone.ldel_icds(),
            ];
            for (k, (sent, graph)) in [&cds_sent, &icds_sent, &total]
                .into_iter()
                .zip(graphs)
                .enumerate()
            {
                let mx = sent.iter().copied().max().unwrap_or(0) as f64;
                let av = sent.iter().sum::<usize>() as f64 / sent.len() as f64;
                comm[2 * k] = comm[2 * k].max(mx);
                comm[2 * k + 1] += av;
                let d = degree_stats(graph);
                deg[2 * k] = deg[2 * k].max(d.max as f64);
                deg[2 * k + 1] += d.avg;
            }
        }
        for k in 0..3 {
            let t = scenario.trials as f64;
            comm_series[2 * k].points.push((radius as f64, comm[2 * k]));
            comm_series[2 * k + 1]
                .points
                .push((radius as f64, comm[2 * k + 1] / t));
            deg_series[2 * k].points.push((radius as f64, deg[2 * k]));
            deg_series[2 * k + 1]
                .points
                .push((radius as f64, deg[2 * k + 1] / t));
        }
        eprintln!("R = {radius}: done ({} instances)", scenario.trials);
    }

    println!(
        "Figure 12 (communication cost and degree vs transmission radius), n = {}, {} trials per point\n",
        base.n, base.trials
    );
    println!("the communications:");
    print!("{}", format_series("R", &comm_series));
    println!("\nthe node degree:");
    print!("{}", format_series("R", &deg_series));
    cli.write_artifact("fig12_comm.csv", &series_csv("R", &comm_series));
    cli.write_artifact("fig12_degree.csv", &series_csv("R", &deg_series));
}
