//! Experiment E6 — regenerates **Figure 11**: maximum and average
//! spanning ratios of CDS', ICDS' and LDel(ICDS') as the transmission
//! radius varies from 20 to 60 (n = 500, 200×200 region).
//!
//! ```text
//! cargo run -p geospan-bench --release --bin fig11_stretch_radius -- [--trials N] [--seed S] [--out DIR]
//! ```
//!
//! Note: with 500 nodes the all-pairs stretch computation dominates; the
//! default trial count is 5 (the paper's qualitative trends are stable
//! already at that count).

use geospan_bench::{
    format_series, measure_stretch, series_csv, table1_topologies, CliArgs, Scenario, Series,
};

fn main() {
    let cli = CliArgs::parse();
    let base = cli.apply(Scenario {
        n: 500,
        trials: 5,
        ..Scenario::table1()
    });
    let names = ["CDS'", "ICDS'", "LDel(ICDS')"];
    let metrics = ["length", "hop"];
    let mut max_series: Vec<Series> = Vec::new();
    let mut avg_series: Vec<Series> = Vec::new();
    for n in names {
        for m in metrics {
            max_series.push(Series {
                label: format!("{n} {m} max"),
                points: vec![],
            });
            avg_series.push(Series {
                label: format!("{n} {m} avg"),
                points: vec![],
            });
        }
    }

    for radius in (20..=60).step_by(5) {
        let scenario = Scenario {
            radius: radius as f64,
            ..base
        };
        let mut maxes = vec![0.0f64; max_series.len()];
        let mut avgs = vec![0.0f64; avg_series.len()];
        for (_pts, udg) in scenario.instances() {
            let topologies = table1_topologies(&udg, scenario.radius);
            for topo in &topologies {
                let Some(k) = names.iter().position(|&m| m == topo.name) else {
                    continue;
                };
                let r = measure_stretch(&udg, &topo.graph, scenario.radius);
                let vals_max = [r.length_max, r.hop_max];
                let vals_avg = [r.length_avg, r.hop_avg];
                for j in 0..2 {
                    let idx = k * 2 + j;
                    maxes[idx] = maxes[idx].max(vals_max[j]);
                    avgs[idx] += vals_avg[j];
                }
            }
        }
        for idx in 0..max_series.len() {
            max_series[idx].points.push((radius as f64, maxes[idx]));
            avg_series[idx]
                .points
                .push((radius as f64, avgs[idx] / scenario.trials as f64));
        }
        eprintln!("R = {radius}: done ({} instances)", scenario.trials);
    }

    println!(
        "Figure 11 (spanning ratios vs transmission radius), n = {}, {} trials per point\n",
        base.n, base.trials
    );
    println!("the maximum spanning ratios:");
    print!("{}", format_series("R", &max_series));
    println!("\nthe average spanning ratios:");
    print!("{}", format_series("R", &avg_series));
    cli.write_artifact("fig11_stretch_max.csv", &series_csv("R", &max_series));
    cli.write_artifact("fig11_stretch_avg.csv", &series_csv("R", &avg_series));
}
