//! Experiment E3 — regenerates **Figure 8**: maximum and average node
//! degree of CDS, CDS', ICDS, ICDS', LDel(ICDS), LDel(ICDS') as the
//! number of nodes varies (R = 60, 200×200 region).
//!
//! ```text
//! cargo run -p geospan-bench --release --bin fig8_degree -- [--trials N] [--seed S] [--out DIR]
//! ```

use geospan_bench::{format_series, series_csv, table1_topologies, CliArgs, Scenario, Series};
use geospan_graph::stats::degree_stats;

fn main() {
    let cli = CliArgs::parse();
    let base = cli.apply(Scenario::table1());
    let names = ["CDS", "CDS'", "ICDS", "ICDS'", "LDel(ICDS)", "LDel(ICDS')"];
    let mut max_series: Vec<Series> = names
        .iter()
        .map(|n| Series {
            label: format!("{n} deg max"),
            points: vec![],
        })
        .collect();
    let mut avg_series: Vec<Series> = names
        .iter()
        .map(|n| Series {
            label: format!("{n} deg avg"),
            points: vec![],
        })
        .collect();

    for n in (20..=100).step_by(10) {
        let scenario = Scenario { n, ..base };
        let mut maxes = vec![0usize; names.len()];
        let mut avgs = vec![0.0f64; names.len()];
        for (_pts, udg) in scenario.instances() {
            let topologies = table1_topologies(&udg, scenario.radius);
            for topo in &topologies {
                if let Some(k) = names.iter().position(|&m| m == topo.name) {
                    let d = degree_stats(&topo.graph);
                    maxes[k] = maxes[k].max(d.max);
                    avgs[k] += d.avg;
                }
            }
        }
        for k in 0..names.len() {
            max_series[k].points.push((n as f64, maxes[k] as f64));
            avg_series[k]
                .points
                .push((n as f64, avgs[k] / scenario.trials as f64));
        }
        eprintln!("n = {n}: done ({} instances)", scenario.trials);
    }

    println!(
        "Figure 8 (degree vs node count), R = {}, {} trials per point\n",
        base.radius, base.trials
    );
    println!("the maximum degree:");
    print!("{}", format_series("n", &max_series));
    println!("\nthe average degree:");
    print!("{}", format_series("n", &avg_series));
    cli.write_artifact("fig8_degree_max.csv", &series_csv("n", &max_series));
    cli.write_artifact("fig8_degree_avg.csv", &series_csv("n", &avg_series));
}
