//! Experiment E16 — packet delivery under load across backbone topologies.
//!
//! Serves seeded packet workloads over UDG (greedy), CDS' (GPSR), and
//! `LDel(ICDS)` (dominating-set backbone routing) at a range of offered
//! loads, through the discrete-event traffic engine, and writes
//! `traffic_load.csv` (in `--out`, or `results/` by default). The CSV is
//! byte-identical for a given seed regardless of thread count.
//!
//! ```text
//! cargo run -p geospan-bench --release --bin traffic_load -- \
//!     [--quick] [--check] [--trials N] [--seed S] [--out DIR]
//! ```
//!
//! `--quick` swaps in the small CI smoke sweep; `--check` exits non-zero
//! unless backbone routing delivers >= 99% at the lowest swept load.

use std::path::PathBuf;
use std::process::ExitCode;

use geospan_bench::traffic::{
    check_low_load_delivery, format_traffic, traffic_csv, traffic_rows, SweepConfig,
};

struct Args {
    quick: bool,
    check: bool,
    trials: Option<usize>,
    seed: Option<u64>,
    out: Option<PathBuf>,
}

fn parse_args() -> Args {
    let mut parsed = Args {
        quick: false,
        check: false,
        trials: None,
        seed: None,
        out: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut next = |what: &str| {
            args.next()
                .unwrap_or_else(|| panic!("missing value after {what}"))
        };
        match a.as_str() {
            "--quick" => parsed.quick = true,
            "--check" => parsed.check = true,
            "--trials" => parsed.trials = Some(next("--trials").parse().expect("trials: integer")),
            "--seed" => parsed.seed = Some(next("--seed").parse().expect("seed: integer")),
            "--out" => parsed.out = Some(next("--out").into()),
            other => panic!(
                "unknown argument {other}; supported: --quick --check --trials N --seed S --out DIR"
            ),
        }
    }
    parsed
}

fn main() -> ExitCode {
    let args = parse_args();
    let mut cfg = if args.quick {
        SweepConfig::quick()
    } else {
        SweepConfig::standard()
    };
    if let Some(t) = args.trials {
        cfg.scenario.trials = t;
    }
    if let Some(s) = args.seed {
        cfg.scenario.seed = s;
    }

    println!(
        "Traffic under load: n={}, R={}, {} trials, {} ticks, loads {:?}\n",
        cfg.scenario.n, cfg.scenario.radius, cfg.scenario.trials, cfg.duration, cfg.loads
    );
    let rows = traffic_rows(&cfg);
    print!("{}", format_traffic(&rows));
    println!(
        "\nAt low load the backbone delivers nearly everything at bounded stretch; as load \
         rises, queueing on the (smaller) backbone caps throughput first — the cost side of \
         concentrating traffic on a spanner."
    );

    let dir = args.out.unwrap_or_else(|| PathBuf::from("results"));
    std::fs::create_dir_all(&dir).expect("create output directory");
    let path = dir.join("traffic_load.csv");
    std::fs::write(&path, traffic_csv(&rows)).expect("write traffic_load.csv");
    println!("wrote {}", path.display());

    if args.check {
        if let Err(msg) = check_low_load_delivery(&rows) {
            eprintln!("check failed: {msg}");
            return ExitCode::FAILURE;
        }
        println!("check passed: backbone delivery >= 0.99 at the lowest load");
    }
    ExitCode::SUCCESS
}
