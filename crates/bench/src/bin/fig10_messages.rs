//! Experiment E5 — regenerates **Figure 10**: maximum and average
//! per-node communication cost (messages sent) to build CDS, ICDS and
//! LDel(ICDS) as the number of nodes varies (R = 60, 200×200 region).
//!
//! The protocols actually run on the message-passing simulator; the
//! counts are measured, not modeled.
//!
//! ```text
//! cargo run -p geospan-bench --release --bin fig10_messages -- [--trials N] [--seed S] [--out DIR]
//! ```

use geospan_bench::{format_series, series_csv, CliArgs, Scenario, Series};
use geospan_core::{BackboneBuilder, BackboneConfig};

fn main() {
    let cli = CliArgs::parse();
    let base = cli.apply(Scenario::table1());
    let names = ["CDS", "ICDS", "LDelICDS"];
    let mut max_series: Vec<Series> = names
        .iter()
        .map(|n| Series {
            label: format!("{n} comm max"),
            points: vec![],
        })
        .collect();
    let mut avg_series: Vec<Series> = names
        .iter()
        .map(|n| Series {
            label: format!("{n} comm avg"),
            points: vec![],
        })
        .collect();

    for n in (20..=100).step_by(10) {
        let scenario = Scenario { n, ..base };
        let mut maxes = [0usize; 3];
        let mut avgs = [0.0f64; 3];
        for (_pts, udg) in scenario.instances() {
            let backbone = BackboneBuilder::new(BackboneConfig::new(scenario.radius).distributed())
                .build(&udg)
                .expect("protocols converge");
            let stats = backbone.stats().expect("distributed build records stats");
            // CDS: the clustering + connector protocol.
            let cds: Vec<usize> = stats.cds.sent_per_node().to_vec();
            // ICDS: one extra status broadcast per node.
            let icds: Vec<usize> = cds.iter().map(|c| c + 1).collect();
            // LDel(ICDS): everything, including the triangulation phase.
            let total = stats.total_per_node();
            for (k, v) in [&cds, &icds, &total].into_iter().enumerate() {
                maxes[k] = maxes[k].max(v.iter().copied().max().unwrap_or(0));
                avgs[k] += v.iter().sum::<usize>() as f64 / v.len() as f64;
            }
        }
        for k in 0..3 {
            max_series[k].points.push((n as f64, maxes[k] as f64));
            avg_series[k]
                .points
                .push((n as f64, avgs[k] / scenario.trials as f64));
        }
        eprintln!("n = {n}: done ({} instances)", scenario.trials);
    }

    println!(
        "Figure 10 (per-node communication cost vs node count), R = {}, {} trials per point\n",
        base.radius, base.trials
    );
    println!("the maximum communications:");
    print!("{}", format_series("n", &max_series));
    println!("\nthe average communications:");
    print!("{}", format_series("n", &avg_series));
    cli.write_artifact("fig10_comm_max.csv", &series_csv("n", &max_series));
    cli.write_artifact("fig10_comm_avg.csv", &series_csv("n", &avg_series));
}
