//! Experiment E8 (ablation, ours) — how does the clustering rank affect
//! the backbone? Compares lowest-id, highest-degree, and random-weight
//! elections on backbone size, degree, and spanning ratios.
//!
//! ```text
//! cargo run -p geospan-bench --release --bin ablation_rank -- [--trials N] [--seed S] [--out DIR]
//! ```

use geospan_bench::{measure_stretch, CliArgs, Scenario};
use geospan_core::{BackboneBuilder, BackboneConfig, ClusterRank};
use geospan_graph::stats::degree_stats_over;

fn main() {
    let cli = CliArgs::parse();
    let scenario = cli.apply(Scenario::table1());
    println!(
        "Ablation E8 (clustering rank), n={}, R={}, {} instances\n",
        scenario.n, scenario.radius, scenario.trials
    );
    println!(
        "{:<16} {:>10} {:>11} {:>12} {:>10} {:>10} {:>9} {:>9}",
        "rank",
        "dominators",
        "connectors",
        "backbone deg",
        "len avg",
        "len max",
        "hop avg",
        "hop max"
    );

    let mut csv = String::from(
        "rank,dominators,connectors,backbone_deg_max,len_avg,len_max,hop_avg,hop_max\n",
    );
    let instances = scenario.instances();
    for (name, rank_of) in [
        ("lowest-id", RankKind::LowestId),
        ("highest-degree", RankKind::HighestDegree),
        ("random-weight", RankKind::RandomWeight),
    ] {
        let mut doms = 0.0;
        let mut conns = 0.0;
        let mut deg_max = 0usize;
        let (mut la, mut lm, mut ha, mut hm) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
        for (k, (_pts, udg)) in instances.iter().enumerate() {
            let rank = rank_of.build(udg.node_count(), scenario.seed + k as u64);
            let backbone =
                BackboneBuilder::new(BackboneConfig::new(scenario.radius).with_rank(rank))
                    .build(udg)
                    .expect("valid UDG");
            doms += backbone.cds_graphs().dominators.len() as f64;
            conns += backbone.cds_graphs().connectors.len() as f64;
            let nodes = backbone.backbone_nodes();
            deg_max = deg_max.max(degree_stats_over(backbone.ldel_icds(), nodes).max);
            let r = measure_stretch(udg, backbone.ldel_icds_prime(), scenario.radius);
            la += r.length_avg;
            lm = lm.max(r.length_max);
            ha += r.hop_avg;
            hm = hm.max(r.hop_max);
        }
        let t = instances.len() as f64;
        println!(
            "{:<16} {:>10.1} {:>11.1} {:>12} {:>10.3} {:>10.3} {:>9.3} {:>9.3}",
            name,
            doms / t,
            conns / t,
            deg_max,
            la / t,
            lm,
            ha / t,
            hm
        );
        csv.push_str(&format!(
            "{},{:.2},{:.2},{},{:.4},{:.4},{:.4},{:.4}\n",
            name,
            doms / t,
            conns / t,
            deg_max,
            la / t,
            lm,
            ha / t,
            hm
        ));
    }
    cli.write_artifact("ablation_rank.csv", &csv);
}

enum RankKind {
    LowestId,
    HighestDegree,
    RandomWeight,
}

impl RankKind {
    fn build(&self, n: usize, seed: u64) -> ClusterRank {
        match self {
            RankKind::LowestId => ClusterRank::LowestId,
            RankKind::HighestDegree => ClusterRank::HighestDegree,
            RankKind::RandomWeight => {
                // Deterministic pseudo-random weights per instance.
                let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
                let w = (0..n)
                    .map(|_| {
                        s ^= s << 13;
                        s ^= s >> 7;
                        s ^= s << 17;
                        s % 1_000_000
                    })
                    .collect();
                ClusterRank::Weight(w)
            }
        }
    }
}
