//! Experiment E14 (extension) — `LDel¹`+planarization versus `LDel²`:
//! the knowledge/communication trade the paper's design implicitly makes.
//!
//! `LDel²` is planar without a removal pass but needs a 2-hop neighbor
//! exchange; `LDel¹` needs only 1-hop knowledge plus the
//! crossing-removal phase. Both run on the simulator; both end planar;
//! this measures what each costs and what each keeps.
//!
//! ```text
//! cargo run -p geospan-bench --release --bin ldel_variants -- [--trials N] [--seed S] [--out DIR]
//! ```

use geospan_bench::{format_series, measure_stretch, series_csv, CliArgs, Scenario, Series};
use geospan_topology::distributed::run_ldel;
use geospan_topology::distributed2::run_ldel2;

fn main() {
    let cli = CliArgs::parse();
    let base = cli.apply(Scenario::table1());
    let labels = [
        "LDel1 comm max",
        "LDel1 comm avg",
        "LDel2 comm max",
        "LDel2 comm avg",
        "LDel1 edges",
        "LDel2 edges",
        "LDel1 len max",
        "LDel2 len max",
    ];
    let mut series: Vec<Series> = labels
        .iter()
        .map(|&l| Series {
            label: l.to_string(),
            points: vec![],
        })
        .collect();

    for n in (20..=100).step_by(20) {
        let scenario = Scenario { n, ..base };
        let mut acc = [0.0f64; 8];
        for (_pts, udg) in scenario.instances() {
            let one = run_ldel(&udg, scenario.radius).expect("protocol converges");
            let (two, two_stats) = run_ldel2(&udg, scenario.radius).expect("protocol converges");
            acc[0] = acc[0].max(one.stats.max_sent() as f64);
            acc[1] += one.stats.avg_sent();
            acc[2] = acc[2].max(two_stats.max_sent() as f64);
            acc[3] += two_stats.avg_sent();
            acc[4] += one.ldel.graph.edge_count() as f64;
            acc[5] += two.graph.edge_count() as f64;
            acc[6] = acc[6].max(measure_stretch(&udg, &one.ldel.graph, scenario.radius).length_max);
            acc[7] = acc[7].max(measure_stretch(&udg, &two.graph, scenario.radius).length_max);
        }
        let t = scenario.trials as f64;
        for (k, s) in series.iter_mut().enumerate() {
            let v = match k {
                0 | 2 | 6 | 7 => acc[k],
                _ => acc[k] / t,
            };
            s.points.push((n as f64, v));
        }
        eprintln!("n = {n}: done");
    }

    println!(
        "LDel1+planarize vs LDel2 (extension E14), R = {}, {} trials per point\n",
        base.radius, base.trials
    );
    print!("{}", format_series("n", &series));
    println!(
        "\nBoth end planar. LDel1 pays two extra local phases; LDel2 pays the\n\
         2-hop neighbor-table exchange and keeps slightly fewer triangles."
    );
    cli.write_artifact("ldel_variants.csv", &series_csv("n", &series));
}
