//! Experiment E11 (extension) — end-to-end routing quality: GPSR over
//! the planar candidates (RNG, GG, PLDel) versus the paper's
//! dominating-set-based routing over `LDel(ICDS')`, measured against
//! shortest paths. Also reports the dominating-set-based broadcast cost
//! versus blind flooding.
//!
//! ```text
//! cargo run -p geospan-bench --release --bin routing_quality -- [--trials N] [--seed S] [--out DIR]
//! ```

use geospan_bench::{CliArgs, Scenario};
use geospan_core::routing::{backbone_broadcast, backbone_route, gpsr_route};
use geospan_core::{BackboneBuilder, BackboneConfig};
use geospan_graph::paths::{bfs_hops, dijkstra_lengths};
use geospan_graph::Graph;
use geospan_topology::{gabriel, ldel, relative_neighborhood};

#[derive(Default)]
struct Tally {
    delivered: usize,
    total: usize,
    hop_ratio: f64,
    len_ratio: f64,
}

fn main() {
    let cli = CliArgs::parse();
    let scenario = cli.apply(Scenario::table1());
    println!(
        "Routing quality (extension), n={}, R={}, {} instances\n",
        scenario.n, scenario.radius, scenario.trials
    );

    let names = ["GPSR/RNG", "GPSR/GG", "GPSR/PLDel", "backbone/LDel(ICDS')"];
    let mut tallies: Vec<Tally> = (0..names.len()).map(|_| Tally::default()).collect();
    let mut bcast_backbone = 0usize;
    let mut bcast_flood = 0usize;

    let instances = scenario.instances();
    for (_pts, udg) in &instances {
        let n = udg.node_count();
        let graphs: Vec<Graph> = vec![
            relative_neighborhood(udg),
            gabriel(udg),
            ldel::planarized(udg).graph,
        ];
        let backbone = BackboneBuilder::new(BackboneConfig::new(scenario.radius))
            .build(udg)
            .expect("valid UDG");
        for s in (0..n).step_by(6) {
            let oh = bfs_hops(udg, s);
            let ol = dijkstra_lengths(udg, s);
            for t in (1..n).step_by(9) {
                if s == t {
                    continue;
                }
                let oh = f64::from(oh[t].expect("UDG is connected: BFS reaches every target"));
                let ol = ol[t].expect("UDG is connected: Dijkstra reaches every target");
                for (k, g) in graphs.iter().enumerate() {
                    let r = gpsr_route(g, s, t, 100 * n);
                    tallies[k].total += 1;
                    if r.delivered() {
                        tallies[k].delivered += 1;
                        tallies[k].hop_ratio += r.hops() as f64 / oh;
                        tallies[k].len_ratio += r.length(g) / ol;
                    }
                }
                let r = backbone_route(&backbone, udg, s, t, 100 * n);
                tallies[3].total += 1;
                if r.delivered() {
                    tallies[3].delivered += 1;
                    tallies[3].hop_ratio += r.hops() as f64 / oh;
                    tallies[3].len_ratio += r.length(udg) / ol;
                }
            }
            bcast_backbone += backbone_broadcast(&backbone, udg, s).transmissions;
            bcast_flood += n;
        }
    }

    println!(
        "{:<22} {:>10} {:>14} {:>14}",
        "scheme", "delivery", "hops/optimal", "length/optimal"
    );
    let mut csv = String::from("scheme,delivery,hop_ratio,len_ratio\n");
    for (name, t) in names.iter().zip(&tallies) {
        let d = t.delivered as f64;
        println!(
            "{:<22} {:>9.1}% {:>14.3} {:>14.3}",
            name,
            100.0 * d / t.total as f64,
            t.hop_ratio / d,
            t.len_ratio / d
        );
        csv.push_str(&format!(
            "{},{:.4},{:.4},{:.4}\n",
            name,
            d / t.total as f64,
            t.hop_ratio / d,
            t.len_ratio / d
        ));
    }
    println!(
        "\nbroadcast: backbone {} transmissions vs flooding {} ({:.1}x cheaper)",
        bcast_backbone,
        bcast_flood,
        bcast_flood as f64 / bcast_backbone as f64
    );
    csv.push_str(&format!(
        "broadcast_tx,{bcast_backbone},{bcast_flood},{:.4}\n",
        bcast_flood as f64 / bcast_backbone as f64
    ));
    cli.write_artifact("routing_quality.csv", &csv);
}
