//! Experiment E4 — regenerates **Figure 9**: maximum and average
//! spanning ratios (length and hop stretch) of CDS', ICDS' and
//! LDel(ICDS') as the number of nodes varies (R = 60, 200×200 region).
//!
//! ```text
//! cargo run -p geospan-bench --release --bin fig9_stretch -- [--trials N] [--seed S] [--out DIR]
//! ```

use geospan_bench::{
    format_series, measure_stretch, series_csv, table1_topologies, CliArgs, Scenario, Series,
};

fn main() {
    let cli = CliArgs::parse();
    let base = cli.apply(Scenario::table1());
    let names = ["CDS'", "ICDS'", "LDel(ICDS')"];
    let metrics = ["length", "hop"];
    let mut max_series: Vec<Series> = Vec::new();
    let mut avg_series: Vec<Series> = Vec::new();
    for n in names {
        for m in metrics {
            max_series.push(Series {
                label: format!("{n} {m} max"),
                points: vec![],
            });
            avg_series.push(Series {
                label: format!("{n} {m} avg"),
                points: vec![],
            });
        }
    }

    for n in (20..=100).step_by(10) {
        let scenario = Scenario { n, ..base };
        let mut maxes = vec![0.0f64; max_series.len()];
        let mut avgs = vec![0.0f64; avg_series.len()];
        for (_pts, udg) in scenario.instances() {
            let topologies = table1_topologies(&udg, scenario.radius);
            for topo in &topologies {
                let Some(k) = names.iter().position(|&m| m == topo.name) else {
                    continue;
                };
                let r = measure_stretch(&udg, &topo.graph, scenario.radius);
                let vals_max = [r.length_max, r.hop_max];
                let vals_avg = [r.length_avg, r.hop_avg];
                for j in 0..2 {
                    let idx = k * 2 + j;
                    maxes[idx] = maxes[idx].max(vals_max[j]);
                    avgs[idx] += vals_avg[j];
                }
            }
        }
        for idx in 0..max_series.len() {
            max_series[idx].points.push((n as f64, maxes[idx]));
            avg_series[idx]
                .points
                .push((n as f64, avgs[idx] / scenario.trials as f64));
        }
        eprintln!("n = {n}: done ({} instances)", scenario.trials);
    }

    println!(
        "Figure 9 (spanning ratios vs node count), R = {}, {} trials per point\n",
        base.radius, base.trials
    );
    println!("the maximum spanning ratios:");
    print!("{}", format_series("n", &max_series));
    println!("\nthe average spanning ratios:");
    print!("{}", format_series("n", &avg_series));
    cli.write_artifact("fig9_stretch_max.csv", &series_csv("n", &max_series));
    cli.write_artifact("fig9_stretch_avg.csv", &series_csv("n", &avg_series));
}
