//! Experiment E9 (ablation, ours) — why planarize the backbone with the
//! localized Delaunay graph rather than the cheaper Gabriel or RNG
//! filters? Compares `LDel(ICDS)`, `GG(ICDS)` and `RNG(ICDS)` as the
//! planar backbone: all three are plane graphs, but the Delaunay-based
//! one keeps the spanning ratios small — the paper's core design choice.
//!
//! ```text
//! cargo run -p geospan-bench --release --bin ablation_planarizer -- [--trials N] [--seed S] [--out DIR]
//! ```

use geospan_bench::{measure_stretch, CliArgs, Scenario};
use geospan_cds::{build_cds, ClusterRank};
use geospan_graph::planarity::is_plane_embedding;
use geospan_graph::stats::degree_stats_over;
use geospan_graph::Graph;
use geospan_topology::{gabriel, ldel, relative_neighborhood};

fn main() {
    let cli = CliArgs::parse();
    let scenario = cli.apply(Scenario::table1());
    println!(
        "Ablation E9 (backbone planarizer), n={}, R={}, {} instances\n",
        scenario.n, scenario.radius, scenario.trials
    );
    println!(
        "{:<12} {:>7} {:>12} {:>9} {:>10} {:>10} {:>9} {:>9}",
        "planarizer", "planar", "backbone deg", "edges", "len avg", "len max", "hop avg", "hop max"
    );

    let mut csv =
        String::from("planarizer,planar,backbone_deg_max,edges,len_avg,len_max,hop_avg,hop_max\n");
    let instances = scenario.instances();
    for name in ["LDel", "GG", "RNG"] {
        let mut planar = true;
        let mut deg_max = 0usize;
        let mut edges = 0.0;
        let (mut la, mut lm, mut ha, mut hm) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
        for (_pts, udg) in &instances {
            let cds = build_cds(udg, &ClusterRank::LowestId);
            let backbone: Graph = match name {
                "LDel" => ldel::planarized(&cds.icds).graph,
                "GG" => gabriel(&cds.icds),
                "RNG" => relative_neighborhood(&cds.icds),
                _ => unreachable!(),
            };
            planar &= is_plane_embedding(&backbone);
            let nodes = cds.backbone_nodes();
            deg_max = deg_max.max(degree_stats_over(&backbone, nodes).max);
            edges += backbone.edge_count() as f64;
            // Re-attach the dominatee edges to measure spanning ratios.
            let mut prime = backbone.clone();
            for (w, doms) in cds.dominators_of.iter().enumerate() {
                for &d in doms {
                    prime.add_edge(w, d);
                }
            }
            let r = measure_stretch(udg, &prime, scenario.radius);
            la += r.length_avg;
            lm = lm.max(r.length_max);
            ha += r.hop_avg;
            hm = hm.max(r.hop_max);
        }
        let t = instances.len() as f64;
        println!(
            "{:<12} {:>7} {:>12} {:>9.1} {:>10.3} {:>10.3} {:>9.3} {:>9.3}",
            name,
            planar,
            deg_max,
            edges / t,
            la / t,
            lm,
            ha / t,
            hm
        );
        csv.push_str(&format!(
            "{},{},{},{:.2},{:.4},{:.4},{:.4},{:.4}\n",
            name,
            planar,
            deg_max,
            edges / t,
            la / t,
            lm,
            ha / t,
            hm
        ));
    }
    cli.write_artifact("ablation_planarizer.csv", &csv);
}
