//! Experiment E2 — regenerates **Figures 6 and 7**: one deployment
//! rendered as the UDG plus the nine derived topologies, with node roles
//! drawn as in the paper's Figure 3 (dominators as squares, connectors
//! as diamonds, dominatees as circles).
//!
//! ```text
//! cargo run -p geospan-bench --release --bin fig7_topologies -- --out figures [--seed S]
//! ```

use geospan_bench::{table1_topologies, CliArgs, Scenario};
use geospan_core::Role;
use geospan_graph::gen::connected_unit_disk;
use geospan_graph::svg::{render_svg, NodeRole, SvgOptions};

fn main() {
    let cli = CliArgs::parse();
    let scenario = cli.apply(Scenario::table1());
    let (_pts, udg, used_seed) =
        connected_unit_disk(scenario.n, scenario.side, scenario.radius, scenario.seed);
    println!(
        "Figure 6/7 gallery: n={}, radius={}, accepted seed {}",
        scenario.n, scenario.radius, used_seed
    );

    let topologies = table1_topologies(&udg, scenario.radius);
    // Recover roles from the backbone for coloring.
    let backbone =
        geospan_core::BackboneBuilder::new(geospan_core::BackboneConfig::new(scenario.radius))
            .build(&udg)
            .expect("valid UDG");
    let roles: Vec<NodeRole> = backbone
        .roles()
        .iter()
        .map(|r| match r {
            Role::Dominator => NodeRole::Dominator,
            Role::Connector => NodeRole::Connector,
            Role::Dominatee => NodeRole::Dominatee,
        })
        .collect();

    for topo in &topologies {
        let file = format!(
            "fig7_{}.svg",
            topo.name
                .to_lowercase()
                .replace(['(', ')'], "_")
                .replace('\'', "p")
        );
        let opts = SvgOptions {
            title: topo.name.to_string(),
            ..SvgOptions::default()
        };
        let svg = render_svg(&topo.graph, &roles, &opts);
        println!(
            "{:<12} {:>5} edges -> {}",
            topo.name,
            topo.graph.edge_count(),
            file
        );
        cli.write_artifact(&file, &svg);
    }
    if cli.out.is_none() {
        println!("note: pass --out DIR to write the SVG files");
    }
}
