//! Experiment E13 (extension) — the paper's §II claim, measured:
//! Gao et al.'s Restricted Delaunay Graph needs per-node communication
//! that grows with the neighborhood size, while the localized Delaunay
//! handshake stays constant-ish; structurally the two are near-twins.
//!
//! ```text
//! cargo run -p geospan-bench --release --bin rdg_comparison -- [--trials N] [--seed S] [--out DIR]
//! ```

use geospan_bench::{format_series, measure_stretch, series_csv, CliArgs, Scenario, Series};
use geospan_topology::distributed::run_ldel;
use geospan_topology::rdg::run_rdg;

fn main() {
    let cli = CliArgs::parse();
    let base = cli.apply(Scenario::table1());
    let mut series: Vec<Series> = [
        "RDG comm max",
        "RDG comm avg",
        "LDel comm max",
        "LDel comm avg",
        "RDG edges",
        "LDel edges",
        "RDG len max",
        "LDel len max",
    ]
    .iter()
    .map(|&l| Series {
        label: l.to_string(),
        points: vec![],
    })
    .collect();

    for n in (20..=100).step_by(20) {
        let scenario = Scenario { n, ..base };
        let mut acc = [0.0f64; 8];
        for (_pts, udg) in scenario.instances() {
            let (rdg, rdg_stats) = run_rdg(&udg, scenario.radius).expect("protocol converges");
            let ldel = run_ldel(&udg, scenario.radius).expect("protocol converges");
            acc[0] = acc[0].max(rdg_stats.max_sent() as f64);
            acc[1] += rdg_stats.avg_sent();
            acc[2] = acc[2].max(ldel.stats.max_sent() as f64);
            acc[3] += ldel.stats.avg_sent();
            acc[4] += rdg.edge_count() as f64;
            acc[5] += ldel.ldel.graph.edge_count() as f64;
            let r1 = measure_stretch(&udg, &rdg, scenario.radius);
            let r2 = measure_stretch(&udg, &ldel.ldel.graph, scenario.radius);
            acc[6] = acc[6].max(r1.length_max);
            acc[7] = acc[7].max(r2.length_max);
        }
        let t = scenario.trials as f64;
        for (k, s) in series.iter_mut().enumerate() {
            let v = match k {
                0 | 2 | 6 | 7 => acc[k],
                _ => acc[k] / t,
            };
            s.points.push((n as f64, v));
        }
        eprintln!("n = {n}: done");
    }

    println!(
        "RDG vs LDel (extension E13), R = {}, {} trials per point\n",
        base.radius, base.trials
    );
    print!("{}", format_series("n", &series));
    println!(
        "\nBoth are planar spanners of nearly identical quality; the RDG's\n\
         per-node message cost grows with density while LDel's stays flat —\n\
         the efficiency gap the paper's construction exists to close."
    );
    cli.write_artifact("rdg_comparison.csv", &series_csv("n", &series));
}
