//! Experiment E17 — retransmit and queue disciplines under lossy load.
//!
//! Serves hotspot and bursty workloads over `LDel(ICDS)` backbone
//! routing under seeded radio loss, sweeping the three queue
//! disciplines (FIFO, priority-by-remaining-distance, deficit round
//! robin) with link-layer retransmit off and on, and writes
//! `traffic_reliability.csv` (in `--out`, or `results/` by default).
//! The CSV is byte-identical for a given seed regardless of thread
//! count.
//!
//! ```text
//! cargo run -p geospan-bench --release --bin traffic_reliability -- \
//!     [--quick] [--check] [--trials N] [--seed S] [--out DIR]
//! ```
//!
//! `--quick` swaps in the small CI smoke sweep; `--check` exits non-zero
//! unless, at the lowest swept load, retransmit recovers >= 90% of
//! first-attempt link losses in every cell and every retransmit cell
//! delivers at least the FIFO/no-retx baseline fraction.

use std::path::PathBuf;
use std::process::ExitCode;

use geospan_bench::traffic::{
    check_retx_delivery, check_retx_recovery, format_reliability, reliability_csv,
    reliability_rows, ReliabilitySweepConfig,
};

struct Args {
    quick: bool,
    check: bool,
    trials: Option<usize>,
    seed: Option<u64>,
    out: Option<PathBuf>,
}

fn parse_args() -> Args {
    let mut parsed = Args {
        quick: false,
        check: false,
        trials: None,
        seed: None,
        out: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut next = |what: &str| {
            args.next()
                .unwrap_or_else(|| panic!("missing value after {what}"))
        };
        match a.as_str() {
            "--quick" => parsed.quick = true,
            "--check" => parsed.check = true,
            "--trials" => parsed.trials = Some(next("--trials").parse().expect("trials: integer")),
            "--seed" => parsed.seed = Some(next("--seed").parse().expect("seed: integer")),
            "--out" => parsed.out = Some(next("--out").into()),
            other => panic!(
                "unknown argument {other}; supported: --quick --check --trials N --seed S --out DIR"
            ),
        }
    }
    parsed
}

fn main() -> ExitCode {
    let args = parse_args();
    let mut cfg = if args.quick {
        ReliabilitySweepConfig::quick()
    } else {
        ReliabilitySweepConfig::standard()
    };
    if let Some(t) = args.trials {
        cfg.scenario.trials = t;
    }
    if let Some(s) = args.seed {
        cfg.scenario.seed = s;
    }

    println!(
        "Retransmit + disciplines under {:.0}% loss: n={}, R={}, {} trials, {} ticks, \
         loads {:?}, biases {:?}, bursts {:?}\n",
        100.0 * cfg.loss,
        cfg.scenario.n,
        cfg.scenario.radius,
        cfg.scenario.trials,
        cfg.duration,
        cfg.loads,
        cfg.hotspot_biases,
        cfg.burst_sizes
    );
    let rows = reliability_rows(&cfg);
    print!("{}", format_reliability(&rows));
    println!(
        "\nAt low load retransmit converts link losses into latency — deliveries go up, \
         tails stretch by the backoff. At high load retries compete with fresh packets \
         for queue slots, so reliability buys less and can cost delivery; DRR keeps the \
         hotspot from starving cross traffic where FIFO lets the sink's backlog win."
    );

    let dir = args.out.unwrap_or_else(|| PathBuf::from("results"));
    std::fs::create_dir_all(&dir).expect("create output directory");
    let path = dir.join("traffic_reliability.csv");
    std::fs::write(&path, reliability_csv(&rows)).expect("write traffic_reliability.csv");
    println!("wrote {}", path.display());

    if args.check {
        if let Err(msg) = check_retx_recovery(&rows) {
            eprintln!("check failed: {msg}");
            return ExitCode::FAILURE;
        }
        if let Err(msg) = check_retx_delivery(&rows) {
            eprintln!("check failed: {msg}");
            return ExitCode::FAILURE;
        }
        println!(
            "check passed: retransmit recovers >= 90% of link losses and no retransmit \
             cell delivers below the fifo/no-retx baseline at the lowest load"
        );
    }
    ExitCode::SUCCESS
}
