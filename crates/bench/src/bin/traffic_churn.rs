//! Experiment E21 — delivery through churn: localized 2-hop repair
//! versus the full-rebuild baseline.
//!
//! Generates seeded churn plans (joins, leaves, moves) of increasing
//! intensity, serves the same uniform workload through each plan twice
//! — once with the paper's incremental repair maintaining `LDel(ICDS)`,
//! once rebuilding the backbone from scratch on every event — and
//! reports delivery, the per-window delivery dip, repair message cost,
//! and staleness. Writes `traffic_churn.csv` (in `--out`, or
//! `results/` by default). The CSV is byte-identical for a given seed
//! regardless of thread count.
//!
//! ```text
//! cargo run -p geospan-bench --release --bin traffic_churn -- \
//!     [--quick] [--check] [--trials N] [--seed S] [--out DIR]
//! ```
//!
//! `--quick` swaps in the small CI smoke sweep; `--check` exits
//! non-zero unless, at every non-zero churn level, localized repair
//! absorbs events in place at strictly lower repair cost than the
//! rebuild baseline, the baseline rebuilds on every membership event,
//! and both arms' packet ledgers balance.

use std::path::PathBuf;
use std::process::ExitCode;

use geospan_bench::churn::{
    check_repair_advantage, churn_csv, churn_rows, format_churn, ChurnSweepConfig,
};

struct Args {
    quick: bool,
    check: bool,
    trials: Option<usize>,
    seed: Option<u64>,
    out: Option<PathBuf>,
}

fn parse_args() -> Args {
    let mut parsed = Args {
        quick: false,
        check: false,
        trials: None,
        seed: None,
        out: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut next = |what: &str| {
            args.next()
                .unwrap_or_else(|| panic!("missing value after {what}"))
        };
        match a.as_str() {
            "--quick" => parsed.quick = true,
            "--check" => parsed.check = true,
            "--trials" => parsed.trials = Some(next("--trials").parse().expect("trials: integer")),
            "--seed" => parsed.seed = Some(next("--seed").parse().expect("seed: integer")),
            "--out" => parsed.out = Some(next("--out").into()),
            other => panic!(
                "unknown argument {other}; supported: --quick --check --trials N --seed S --out DIR"
            ),
        }
    }
    parsed
}

fn main() -> ExitCode {
    let args = parse_args();
    let mut cfg = if args.quick {
        ChurnSweepConfig::quick()
    } else {
        ChurnSweepConfig::standard()
    };
    if let Some(t) = args.trials {
        cfg.scenario.trials = t;
    }
    if let Some(s) = args.seed {
        cfg.scenario.seed = s;
    }

    println!(
        "Delivery through churn: n={}, R={}, {} trials, {} ticks, churn levels {:?}, \
         load {} pkt/tick, {}-tick delivery windows\n",
        cfg.scenario.n,
        cfg.scenario.radius,
        cfg.scenario.trials,
        cfg.duration,
        cfg.levels,
        cfg.load,
        cfg.window
    );
    let rows = churn_rows(&cfg);
    print!("{}", format_churn(&rows));
    println!(
        "\nBoth arms apply the identical churn plan to the identical workload; only the \
         maintenance scheme differs. The full-rebuild baseline reconstructs the backbone \
         on every membership event, charging the whole present population each time, while \
         localized repair absorbs most events with 2-hop neighborhood updates — the same \
         delivery through the dip at a fraction of the repair message cost."
    );

    let dir = args.out.unwrap_or_else(|| PathBuf::from("results"));
    std::fs::create_dir_all(&dir).expect("create output directory");
    let path = dir.join("traffic_churn.csv");
    std::fs::write(&path, churn_csv(&rows)).expect("write traffic_churn.csv");
    println!("wrote {}", path.display());

    if args.check {
        if let Err(msg) = check_repair_advantage(&rows) {
            eprintln!("check failed: {msg}");
            return ExitCode::FAILURE;
        }
        println!(
            "check passed: at every churn level localized repair absorbs events in place \
             at strictly lower cost than the rebuild baseline, and all ledgers balance"
        );
    }
    ExitCode::SUCCESS
}
