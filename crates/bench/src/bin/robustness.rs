//! Experiment E12 (extension) — backbone robustness to node failures.
//!
//! Algorithm 1 deliberately keeps multiple connectors per dominator pair
//! ("this increases the robustness of the backbone"). This experiment
//! quantifies that in two parts:
//!
//! 1. **Post-hoc failures** — for every single backbone-node failure,
//!    does the remaining backbone still span and connect the surviving
//!    nodes? Compared against a minimal (single-connector) pruning of
//!    the same backbone.
//! 2. **Degradation sweep** — the construction itself runs over a faulty
//!    radio (message loss × node crashes, with the link-layer
//!    ack/retransmit scheme and the self-healing election phases) and we
//!    measure what survives: connectivity of the built backbone over the
//!    surviving nodes, its stretch, and the message overhead paid for
//!    reliability. Written to `robustness_faults.csv` (in `--out`, or
//!    `results/` by default).
//!
//! ```text
//! cargo run -p geospan-bench --release --bin robustness -- [--trials N] [--seed S] [--out DIR]
//! ```

use std::fmt::Write as _;

use geospan_bench::{measure_stretch, CliArgs, Scenario};
use geospan_cds::{build_cds, CdsGraphs, ClusterRank};
use geospan_core::{BackboneBuilder, BackboneConfig};
use geospan_graph::Graph;
use geospan_sim::{FaultPlan, ReliabilityConfig};

/// After deleting `dead`, is every surviving node still connected to the
/// rest through the given spanning graph?
fn survives(spanning: &Graph, udg: &Graph, dead: usize) -> bool {
    let alive = spanning.filter_edges(|u, v| u != dead && v != dead);
    let udg_alive = udg.filter_edges(|u, v| u != dead && v != dead);
    // Compare component structure over surviving nodes: the spanning
    // graph must not split any component the UDG keeps whole.
    alive.components().len() == udg_alive.components().len()
}

/// A minimal variant of CDS': keep a single (smallest) dominator link per
/// dominatee and a spanning tree of the backbone edges.
fn minimal_prime(cds: &CdsGraphs, udg: &Graph) -> Graph {
    let mut g = udg.same_vertices();
    // Spanning tree over the backbone via BFS on the CDS edges.
    let nodes = cds.backbone_nodes();
    if let Some(&root) = nodes.first() {
        let mut seen = vec![false; udg.node_count()];
        seen[root] = true;
        let mut queue = std::collections::VecDeque::from([root]);
        while let Some(u) = queue.pop_front() {
            for &v in cds.cds.neighbors(u) {
                if !seen[v] {
                    seen[v] = true;
                    g.add_edge(u, v);
                    queue.push_back(v);
                }
            }
        }
    }
    for (w, doms) in cds.dominators_of.iter().enumerate() {
        if let Some(&d) = doms.first() {
            g.add_edge(w, d);
        }
    }
    g
}

fn main() {
    let cli = CliArgs::parse();
    let scenario = cli.apply(Scenario::table1());
    println!(
        "Robustness to single node failures (extension), n={}, R={}, {} instances\n",
        scenario.n, scenario.radius, scenario.trials
    );

    let mut full_ok = 0usize;
    let mut full_total = 0usize;
    let mut min_ok = 0usize;
    let mut min_total = 0usize;
    let mut full_edges = 0usize;
    let mut min_edges = 0usize;

    for (_pts, udg) in scenario.instances() {
        let cds = build_cds(&udg, &ClusterRank::LowestId);
        let minimal = minimal_prime(&cds, &udg);
        full_edges += cds.cds_prime.edge_count();
        min_edges += minimal.edge_count();
        for &dead in &cds.backbone_nodes() {
            full_total += 1;
            if survives(&cds.cds_prime, &udg, dead) {
                full_ok += 1;
            }
            min_total += 1;
            if survives(&minimal, &udg, dead) {
                min_ok += 1;
            }
        }
    }

    let t = scenario.trials;
    println!(
        "{:<26} {:>12} {:>16}",
        "backbone variant", "avg edges", "failure survival"
    );
    println!(
        "{:<26} {:>12.1} {:>15.1}%",
        "paper election (CDS')",
        full_edges as f64 / t as f64,
        100.0 * full_ok as f64 / full_total as f64
    );
    println!(
        "{:<26} {:>12.1} {:>15.1}%",
        "minimal tree variant",
        min_edges as f64 / t as f64,
        100.0 * min_ok as f64 / min_total as f64
    );
    println!(
        "\nThe redundant connectors of Algorithm 1 buy measurable fault tolerance \
         for a modest edge overhead."
    );
    cli.write_artifact(
        "robustness.csv",
        &format!(
            "variant,avg_edges,survival\npaper,{:.2},{:.4}\nminimal,{:.2},{:.4}\n",
            full_edges as f64 / t as f64,
            full_ok as f64 / full_total as f64,
            min_edges as f64 / t as f64,
            min_ok as f64 / min_total as f64
        ),
    );

    degradation_sweep(&cli, &scenario);
}

/// Part 2: build the backbone over a faulty radio across a loss × crash
/// grid and measure the degradation.
fn degradation_sweep(cli: &CliArgs, scenario: &Scenario) {
    // The distributed construction with retransmissions is much heavier
    // than the centralized one; a handful of instances per cell gives
    // stable averages.
    let mut sweep = *scenario;
    sweep.trials = sweep.trials.clamp(1, 5);
    let reliability = ReliabilityConfig {
        max_retries: 8,
        ack_timeout: 2,
    };
    let losses = [0.0, 0.05, 0.10, 0.20];
    let crash_counts = [0usize, 1, 2];

    println!(
        "\nDegradation sweep: construction under a faulty radio (n={}, R={}, {} instances/cell)",
        sweep.n, sweep.radius, sweep.trials
    );
    println!(
        "{:>6} {:>8} {:>10} {:>10} {:>9} {:>9} {:>10} {:>8}",
        "loss", "crashes", "survival", "len_max", "hop_max", "overhead", "retx/node", "gave_up"
    );

    let instances = sweep.instances();
    // Zero-fault baseline message cost per instance (same protocols, clean
    // radio) — the denominator of the overhead column.
    let baseline: Vec<f64> = instances
        .iter()
        .map(|(_pts, udg)| {
            let b = BackboneBuilder::new(BackboneConfig::new(sweep.radius).distributed())
                .build(udg)
                .expect("clean distributed build succeeds");
            let s = b.stats().expect("distributed build has stats");
            (s.cds.total_sent() + s.ldel.total_sent()) as f64
        })
        .collect();

    let mut csv = String::from(
        "loss,crashes,survival,len_stretch_max,hop_stretch_max,disconnected_pairs,msg_overhead,retx_per_node,gave_up\n",
    );
    for &loss in &losses {
        for &crashes in &crash_counts {
            let mut survived = 0usize;
            let mut len_max: f64 = 0.0;
            let mut hop_max: f64 = 0.0;
            let mut disconnected = 0usize;
            let mut overhead = 0.0;
            let mut retx = 0usize;
            let mut gave_up = 0usize;
            for (k, (_pts, udg)) in instances.iter().enumerate() {
                let mut plan = FaultPlan::new(sweep.seed + k as u64 + 101).with_loss(loss);
                for c in 0..crashes {
                    let victim = (k * 37 + c * 53 + 11) % sweep.n;
                    plan = plan.with_crash(victim, 1 + 3 * c);
                }
                if plan.is_zero() {
                    // Keep the zero cell honest: it must take the exact
                    // fault-free code path (bit-identical by contract).
                    plan = plan.with_loss(0.0);
                }
                let config = BackboneConfig::new(sweep.radius)
                    .distributed()
                    .with_faults(plan)
                    .with_reliability(reliability);
                let b = BackboneBuilder::new(config)
                    .build(udg)
                    .expect("faulty build converges");
                let report = b.fault_report().cloned().unwrap_or_default();
                let alive = |v: usize| !report.crashed.contains(&v);
                let routing = b
                    .ldel_icds_prime()
                    .filter_edges(|u, v| alive(u) && alive(v));
                let udg_alive = udg.filter_edges(|u, v| alive(u) && alive(v));
                if routing.components().len() == udg_alive.components().len() {
                    survived += 1;
                }
                let s = measure_stretch(&udg_alive, &routing, sweep.radius);
                if s.length_max.is_finite() {
                    len_max = len_max.max(s.length_max);
                }
                if s.hop_max.is_finite() {
                    hop_max = hop_max.max(s.hop_max);
                }
                disconnected += s.disconnected_pairs;
                let stats = b.stats().expect("faulty build has stats");
                let sent = (stats.cds.total_sent() + stats.ldel.total_sent()) as f64;
                overhead += sent / baseline[k];
                retx += report.retransmissions;
                gave_up += report.gave_up;
            }
            let t = instances.len() as f64;
            let survival = survived as f64 / t;
            let retx_per_node = retx as f64 / (t * sweep.n as f64);
            println!(
                "{:>5.0}% {:>8} {:>9.0}% {:>10.3} {:>9.3} {:>8.2}x {:>10.2} {:>8}",
                loss * 100.0,
                crashes,
                survival * 100.0,
                len_max,
                hop_max,
                overhead / t,
                retx_per_node,
                gave_up
            );
            let _ = writeln!(
                csv,
                "{},{},{:.4},{:.4},{:.4},{},{:.4},{:.4},{}",
                loss,
                crashes,
                survival,
                len_max,
                hop_max,
                disconnected,
                overhead / t,
                retx_per_node,
                gave_up
            );
        }
    }
    println!(
        "\nReliability is paid for in messages — per-neighbor acks (~ average degree per \
         broadcast) plus retransmissions that grow with loss, and a crashed neighbor makes \
         every sender around it burn its full retry budget. What the overhead buys: across \
         the whole grid the constructed backbone still connects and spans the surviving nodes."
    );

    // This artifact is always written: `--out` if given, `results/` else.
    let dir = cli
        .out
        .clone()
        .unwrap_or_else(|| std::path::PathBuf::from("results"));
    std::fs::create_dir_all(&dir).expect("create output directory");
    let path = dir.join("robustness_faults.csv");
    std::fs::write(&path, &csv).expect("write robustness_faults.csv");
    println!("wrote {}", path.display());
}
