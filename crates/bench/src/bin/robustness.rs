//! Experiment E12 (extension) — backbone robustness to node failures.
//!
//! Algorithm 1 deliberately keeps multiple connectors per dominator pair
//! ("this increases the robustness of the backbone"). This experiment
//! quantifies that: for every single backbone-node failure, does the
//! remaining backbone still span and connect the surviving nodes? It
//! compares the paper's election against a minimal (single-connector)
//! pruning of the same backbone.
//!
//! ```text
//! cargo run -p geospan-bench --release --bin robustness -- [--trials N] [--seed S] [--out DIR]
//! ```

use geospan_bench::{CliArgs, Scenario};
use geospan_cds::{build_cds, CdsGraphs, ClusterRank};
use geospan_graph::Graph;

/// After deleting `dead`, is every surviving node still connected to the
/// rest through the given spanning graph?
fn survives(spanning: &Graph, udg: &Graph, dead: usize) -> bool {
    let alive = spanning.filter_edges(|u, v| u != dead && v != dead);
    let udg_alive = udg.filter_edges(|u, v| u != dead && v != dead);
    // Compare component structure over surviving nodes: the spanning
    // graph must not split any component the UDG keeps whole.
    alive.components().len() == udg_alive.components().len()
}

/// A minimal variant of CDS': keep a single (smallest) dominator link per
/// dominatee and a spanning tree of the backbone edges.
fn minimal_prime(cds: &CdsGraphs, udg: &Graph) -> Graph {
    let mut g = udg.same_vertices();
    // Spanning tree over the backbone via BFS on the CDS edges.
    let nodes = cds.backbone_nodes();
    if let Some(&root) = nodes.first() {
        let mut seen = vec![false; udg.node_count()];
        seen[root] = true;
        let mut queue = std::collections::VecDeque::from([root]);
        while let Some(u) = queue.pop_front() {
            for &v in cds.cds.neighbors(u) {
                if !seen[v] {
                    seen[v] = true;
                    g.add_edge(u, v);
                    queue.push_back(v);
                }
            }
        }
    }
    for (w, doms) in cds.dominators_of.iter().enumerate() {
        if let Some(&d) = doms.first() {
            g.add_edge(w, d);
        }
    }
    g
}

fn main() {
    let cli = CliArgs::parse();
    let scenario = cli.apply(Scenario::table1());
    println!(
        "Robustness to single node failures (extension), n={}, R={}, {} instances\n",
        scenario.n, scenario.radius, scenario.trials
    );

    let mut full_ok = 0usize;
    let mut full_total = 0usize;
    let mut min_ok = 0usize;
    let mut min_total = 0usize;
    let mut full_edges = 0usize;
    let mut min_edges = 0usize;

    for (_pts, udg) in scenario.instances() {
        let cds = build_cds(&udg, &ClusterRank::LowestId);
        let minimal = minimal_prime(&cds, &udg);
        full_edges += cds.cds_prime.edge_count();
        min_edges += minimal.edge_count();
        for &dead in &cds.backbone_nodes() {
            full_total += 1;
            if survives(&cds.cds_prime, &udg, dead) {
                full_ok += 1;
            }
            min_total += 1;
            if survives(&minimal, &udg, dead) {
                min_ok += 1;
            }
        }
    }

    let t = scenario.trials;
    println!(
        "{:<26} {:>12} {:>16}",
        "backbone variant", "avg edges", "failure survival"
    );
    println!(
        "{:<26} {:>12.1} {:>15.1}%",
        "paper election (CDS')",
        full_edges as f64 / t as f64,
        100.0 * full_ok as f64 / full_total as f64
    );
    println!(
        "{:<26} {:>12.1} {:>15.1}%",
        "minimal tree variant",
        min_edges as f64 / t as f64,
        100.0 * min_ok as f64 / min_total as f64
    );
    println!(
        "\nThe redundant connectors of Algorithm 1 buy measurable fault tolerance \
         for a modest edge overhead."
    );
    cli.write_artifact(
        "robustness.csv",
        &format!(
            "variant,avg_edges,survival\npaper,{:.2},{:.4}\nminimal,{:.2},{:.4}\n",
            full_edges as f64 / t as f64,
            full_ok as f64 / full_total as f64,
            min_edges as f64 / t as f64,
            min_ok as f64 / min_total as f64
        ),
    );
}
