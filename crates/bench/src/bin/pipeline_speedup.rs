//! Persisted pipeline benchmark: the frozen baselines versus the
//! arena-backed construction pipeline, from n=200 up to n=1M.
//!
//! For each deployment size the binary times three implementations of the
//! `LDel¹ → PLDel` pipeline on the same instance:
//!
//! - the frozen **seed** (serial, hash-map Bowyer–Watson, x-sweep
//!   planarization, `O(m²)` crossing count) — run for n ≤ 10k,
//! - the frozen **prev** optimized path (grid-indexed, parallel, but
//!   BTree-keyed state and per-edge sorted inserts) — run for n ≤ 10k,
//! - the current **arena** pipeline (flat stores, sorted-vec sets, CSR
//!   freeze for queries) — run at every size,
//!
//! checks that all produce **identical** output wherever they run, and
//! writes wall-clock, bytes-per-node, and peak-RSS measurements to
//! `results/BENCH_pipeline.json` so regressions are diffable in review.
//!
//! Usage: `pipeline_speedup [--quick] [--check] [--seed S] [--out DIR]`
//!
//! `--quick` restricts the sweep to n = 200 / 500 / 10k and one timing
//! repetition — the CI smoke mode. `--check` additionally verifies scale
//! invariants (PLDel ⊆ UDG, zero crossings, component preservation) so a
//! correctness regression at n=10k fails CI, not just a slowdown. Node
//! density follows the paper's Table I calibration (side `200·√(n/100)`,
//! radius 60), so the average degree stays constant across sizes.

// geospan-analyze: allow(D02, wall-clock timing is the benchmark's measurement, not an artifact input)
use std::time::Instant;

use geospan_bench::baseline::{prev_planarized, seed_crossing_count, seed_ldel1, seed_planarize};
use geospan_cds::build_cds;
use geospan_core::ClusterRank;
use geospan_graph::gen::connected_unit_disk;
use geospan_graph::planarity::crossing_count;
use geospan_graph::stretch::{stretch_factors, StretchOptions};
use geospan_topology::ldel;

/// Largest size the frozen seed and prev pipelines are timed at; beyond
/// this the seed's hash-map Bowyer–Watson dominates the whole sweep.
const BASELINE_MAX_N: usize = 10_000;
/// Largest size for the seed's `O(m²)` crossing count.
const SEED_CROSSING_MAX_N: usize = 2_000;
/// Largest size for the grid crossing count and the CDS construction.
const QUERY_MAX_N: usize = 100_000;
/// Largest size for the all-pairs stretch measurement.
const STRETCH_MAX_N: usize = 500;

struct SizeResult {
    n: usize,
    side: f64,
    radius: f64,
    seed: u64,
    udg_edges: usize,
    ldel_triangles: usize,
    pldel_triangles: usize,
    pldel_edges: usize,
    /// Seed pipeline (LDel¹ + planarize), best-of-reps wall clock.
    serial_pipeline_ms: Option<f64>,
    /// Frozen pre-arena optimized pipeline on the same instance.
    prev_pipeline_ms: Option<f64>,
    /// Current arena-backed pipeline on the same instance.
    parallel_pipeline_ms: f64,
    /// seed / arena.
    pipeline_speedup: Option<f64>,
    /// prev / arena: the gain attributable to this refactor alone.
    arena_speedup: Option<f64>,
    /// Seed `O(m²)` crossing count over the UDG edges.
    serial_crossing_ms: Option<f64>,
    /// Grid-indexed crossing count (same result).
    grid_crossing_ms: Option<f64>,
    crossing_speedup: Option<f64>,
    udg_crossings: Option<usize>,
    cds_ms: Option<f64>,
    cds_edges: Option<usize>,
    /// Stretch of PLDel vs the UDG; only measured for n ≤ 500 (the
    /// all-pairs measurement dwarfs construction above that).
    stretch_ms: Option<f64>,
    /// Frozen-CSR footprint of the UDG, per node.
    bytes_per_node: f64,
    /// Frozen-CSR footprint of the PLDel output, per node.
    pldel_bytes_per_node: f64,
    /// Process high-water RSS when this row was recorded (monotone over
    /// the ascending sweep; the last row is the true peak).
    peak_rss_mb: Option<f64>,
    outputs_identical: Option<bool>,
}

struct Report {
    description: &'static str,
    threads: usize,
    quick: bool,
    reps: usize,
    sizes: Vec<SizeResult>,
}

fn json_opt_f64(v: Option<f64>) -> String {
    match v {
        Some(x) => format!("{x:.3}"),
        None => "null".into(),
    }
}

fn json_opt_usize(v: Option<usize>) -> String {
    match v {
        Some(x) => x.to_string(),
        None => "null".into(),
    }
}

impl Report {
    /// Machine-readable artifact (the serde stubs don't serialize, so the
    /// JSON is written by hand; the schema is flat and additive-friendly).
    fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::from("{\n");
        let _ = writeln!(s, "  \"description\": \"{}\",", self.description);
        let _ = writeln!(s, "  \"threads\": {},", self.threads);
        let _ = writeln!(s, "  \"quick\": {},", self.quick);
        let _ = writeln!(s, "  \"reps\": {},", self.reps);
        s.push_str("  \"sizes\": [\n");
        for (k, r) in self.sizes.iter().enumerate() {
            s.push_str("    {\n");
            let _ = writeln!(s, "      \"n\": {},", r.n);
            let _ = writeln!(s, "      \"side\": {:.3},", r.side);
            let _ = writeln!(s, "      \"radius\": {:.1},", r.radius);
            let _ = writeln!(s, "      \"seed\": {},", r.seed);
            let _ = writeln!(s, "      \"udg_edges\": {},", r.udg_edges);
            let _ = writeln!(s, "      \"ldel_triangles\": {},", r.ldel_triangles);
            let _ = writeln!(s, "      \"pldel_triangles\": {},", r.pldel_triangles);
            let _ = writeln!(s, "      \"pldel_edges\": {},", r.pldel_edges);
            let _ = writeln!(
                s,
                "      \"serial_pipeline_ms\": {},",
                json_opt_f64(r.serial_pipeline_ms)
            );
            let _ = writeln!(
                s,
                "      \"prev_pipeline_ms\": {},",
                json_opt_f64(r.prev_pipeline_ms)
            );
            let _ = writeln!(
                s,
                "      \"parallel_pipeline_ms\": {:.3},",
                r.parallel_pipeline_ms
            );
            let _ = writeln!(
                s,
                "      \"pipeline_speedup\": {},",
                json_opt_f64(r.pipeline_speedup)
            );
            let _ = writeln!(
                s,
                "      \"arena_speedup\": {},",
                json_opt_f64(r.arena_speedup)
            );
            let _ = writeln!(
                s,
                "      \"serial_crossing_ms\": {},",
                json_opt_f64(r.serial_crossing_ms)
            );
            let _ = writeln!(
                s,
                "      \"grid_crossing_ms\": {},",
                json_opt_f64(r.grid_crossing_ms)
            );
            let _ = writeln!(
                s,
                "      \"crossing_speedup\": {},",
                json_opt_f64(r.crossing_speedup)
            );
            let _ = writeln!(
                s,
                "      \"udg_crossings\": {},",
                json_opt_usize(r.udg_crossings)
            );
            let _ = writeln!(s, "      \"cds_ms\": {},", json_opt_f64(r.cds_ms));
            let _ = writeln!(s, "      \"cds_edges\": {},", json_opt_usize(r.cds_edges));
            let _ = writeln!(s, "      \"stretch_ms\": {},", json_opt_f64(r.stretch_ms));
            let _ = writeln!(s, "      \"bytes_per_node\": {:.1},", r.bytes_per_node);
            let _ = writeln!(
                s,
                "      \"pldel_bytes_per_node\": {:.1},",
                r.pldel_bytes_per_node
            );
            let _ = writeln!(s, "      \"peak_rss_mb\": {},", json_opt_f64(r.peak_rss_mb));
            let _ = writeln!(
                s,
                "      \"outputs_identical\": {}",
                match r.outputs_identical {
                    Some(b) => b.to_string(),
                    None => "null".into(),
                }
            );
            s.push_str(if k + 1 < self.sizes.len() {
                "    },\n"
            } else {
                "    }\n"
            });
        }
        s.push_str("  ]\n}\n");
        s
    }
}

/// Best-of-`reps` wall clock in milliseconds, plus the last result.
fn best_of<T>(reps: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..reps {
        // geospan-analyze: allow(D02, wall-clock timing is the benchmark's measurement, not an artifact input)
        let t0 = Instant::now();
        let r = f();
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
        out = Some(r);
    }
    (best, out.expect("reps >= 1"))
}

/// Best-of-`reps` for two alternatives timed back-to-back within each
/// repetition, so clock-frequency drift on a busy host hits both sides
/// of the ratio equally. One untimed warmup precedes the timed reps.
fn interleaved_best<A, B>(
    reps: usize,
    mut f: impl FnMut() -> A,
    mut g: impl FnMut() -> B,
) -> ((f64, A), (f64, B)) {
    let _ = f();
    let _ = g();
    let mut best_f = f64::INFINITY;
    let mut best_g = f64::INFINITY;
    let mut out_f = None;
    let mut out_g = None;
    for _ in 0..reps {
        // geospan-analyze: allow(D02, wall-clock timing is the benchmark's measurement, not an artifact input)
        let t0 = Instant::now();
        let a = f();
        best_f = best_f.min(t0.elapsed().as_secs_f64() * 1e3);
        out_f = Some(a);
        // geospan-analyze: allow(D02, wall-clock timing is the benchmark's measurement, not an artifact input)
        let t1 = Instant::now();
        let b = g();
        best_g = best_g.min(t1.elapsed().as_secs_f64() * 1e3);
        out_g = Some(b);
    }
    (
        (best_f, out_f.expect("reps >= 1")),
        (best_g, out_g.expect("reps >= 1")),
    )
}

/// Process peak RSS from `/proc/self/status` (Linux only).
fn peak_rss_mb() -> Option<f64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: f64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb / 1024.0)
}

fn main() {
    let mut quick = false;
    let mut check = false;
    let mut seed = 1u64;
    let mut out_dir = std::path::PathBuf::from("results");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--check" => check = true,
            "--seed" => {
                seed = args
                    .next()
                    .expect("value after --seed")
                    .parse()
                    .expect("u64")
            }
            "--out" => out_dir = args.next().expect("value after --out").into(),
            other => {
                panic!("unknown argument {other}; supported: --quick --check --seed S --out DIR")
            }
        }
    }

    let sizes: &[usize] = if quick {
        &[200, 500, 10_000]
    } else {
        &[200, 500, 1000, 2000, 10_000, 100_000, 1_000_000]
    };
    let base_reps = if quick { 1 } else { 3 };
    let radius = 60.0;

    let mut results = Vec::new();
    for &n in sizes {
        // Constant density: scale the region with n (Table I calibration).
        let side = 200.0 * ((n as f64) / 100.0).sqrt();
        let (_pts, udg, used_seed) = connected_unit_disk(n, side, radius, seed);
        // Single repetition above the baseline ceiling: one arena run at
        // n=1M outweighs the noise a best-of would absorb.
        let reps = if n > BASELINE_MAX_N { 1 } else { base_reps };

        // The frozen prev pipeline and the arena pipeline are the ratio
        // the acceptance gate reads, so they are timed interleaved.
        let pair_reps = if quick || n > SEED_CROSSING_MAX_N {
            reps
        } else {
            7
        };
        let (prev_timing, (parallel_ms, parallel)) = if n <= BASELINE_MAX_N {
            let ((prev_ms, prev), new) = interleaved_best(
                pair_reps,
                || prev_planarized(&udg),
                || ldel::planarized(&udg),
            );
            assert_eq!(
                prev, new.1,
                "n={n}: arena pipeline output diverged from the frozen prev pipeline"
            );
            (Some(prev_ms), new)
        } else {
            (None, best_of(reps, || ldel::planarized(&udg)))
        };

        let (serial_ms, identical) = if n <= BASELINE_MAX_N {
            let (ms, serial) = best_of(reps, || seed_planarize(&udg, seed_ldel1(&udg)));
            let identical = serial == parallel;
            assert!(
                identical,
                "n={n}: optimized pipeline output diverged from the seed baseline"
            );
            (Some(ms), Some(identical))
        } else {
            (None, None)
        };

        let serial_crossing =
            (n <= SEED_CROSSING_MAX_N).then(|| best_of(reps, || seed_crossing_count(&udg)));
        let grid_crossing = (n <= QUERY_MAX_N).then(|| best_of(reps, || crossing_count(&udg)));
        if let (Some((_, s)), Some((_, g))) = (&serial_crossing, &grid_crossing) {
            assert_eq!(s, g, "n={n}: crossing counts");
        }

        let cds =
            (n <= QUERY_MAX_N).then(|| best_of(reps, || build_cds(&udg, &ClusterRank::LowestId)));

        let stretch_ms = (n <= STRETCH_MAX_N).then(|| {
            best_of(reps, || {
                stretch_factors(&udg, &parallel.graph, StretchOptions::default())
            })
            .0
        });

        let udg_csr = udg.freeze();
        let pldel_csr = parallel.graph.freeze();

        if check {
            // Scale invariants: a correctness regression at large n must
            // fail CI even where the frozen baselines no longer run.
            for (u, v) in parallel.graph.edges() {
                assert!(udg.has_edge(u, v), "n={n}: PLDel edge ({u},{v}) not in UDG");
            }
            assert_eq!(
                crossing_count(&parallel.graph),
                0,
                "n={n}: PLDel is not plane"
            );
            assert_eq!(
                parallel.graph.components().len(),
                udg.components().len(),
                "n={n}: PLDel broke connectivity"
            );
            assert_eq!(
                pldel_csr.thaw().edges().collect::<Vec<_>>(),
                parallel.graph.edges().collect::<Vec<_>>(),
                "n={n}: freeze/thaw round-trip"
            );
        }

        let r = SizeResult {
            n,
            side,
            radius,
            seed: used_seed,
            udg_edges: udg.edge_count(),
            ldel_triangles: ldel::ldel1(&udg).triangles.len(),
            pldel_triangles: parallel.triangles.len(),
            pldel_edges: parallel.graph.edge_count(),
            serial_pipeline_ms: serial_ms,
            prev_pipeline_ms: prev_timing,
            parallel_pipeline_ms: parallel_ms,
            pipeline_speedup: serial_ms.map(|s| s / parallel_ms),
            arena_speedup: prev_timing.map(|p| p / parallel_ms),
            serial_crossing_ms: serial_crossing.as_ref().map(|(ms, _)| *ms),
            grid_crossing_ms: grid_crossing.as_ref().map(|(ms, _)| *ms),
            crossing_speedup: match (&serial_crossing, &grid_crossing) {
                (Some((s, _)), Some((g, _))) => Some(s / g),
                _ => None,
            },
            udg_crossings: grid_crossing.as_ref().map(|(_, c)| *c),
            cds_ms: cds.as_ref().map(|(ms, _)| *ms),
            cds_edges: cds.as_ref().map(|(_, c)| c.cds.edge_count()),
            stretch_ms,
            bytes_per_node: udg_csr.memory_bytes() as f64 / n as f64,
            pldel_bytes_per_node: pldel_csr.memory_bytes() as f64 / n as f64,
            peak_rss_mb: peak_rss_mb(),
            outputs_identical: identical,
        };
        println!(
            "n={:>7}  arena {:>9.2}ms  prev {}  seed {}  ({} B/node UDG, rss {})",
            r.n,
            r.parallel_pipeline_ms,
            r.prev_pipeline_ms
                .map_or("      n/a".into(), |ms| format!("{ms:>9.2}ms")),
            r.serial_pipeline_ms
                .map_or("      n/a".into(), |ms| format!("{ms:>9.2}ms")),
            r.bytes_per_node as usize,
            r.peak_rss_mb
                .map_or("n/a".into(), |mb| format!("{mb:.0}MB")),
        );
        results.push(r);
    }

    let report = Report {
        description: "Construction pipeline: frozen seed and prev-optimized baselines vs the \
                      arena-backed pipeline; best-of-reps wall clock, frozen-CSR bytes-per-node, \
                      peak RSS",
        threads: rayon::current_num_threads(),
        quick,
        reps: base_reps,
        sizes: results,
    };
    std::fs::create_dir_all(&out_dir).expect("create output directory");
    let path = out_dir.join("BENCH_pipeline.json");
    std::fs::write(&path, report.to_json()).expect("write BENCH_pipeline.json");
    println!("wrote {}", path.display());
    if check {
        println!("check: all scale invariants hold");
    }
}
