//! Persisted pipeline benchmark: the frozen seed implementation versus
//! the optimized (parallel + grid-indexed) construction pipeline.
//!
//! For each deployment size the binary times the seed `LDel¹ → PLDel`
//! pipeline (serial, hash-map Bowyer–Watson, x-sweep planarization,
//! `O(m²)` crossing count) against the current library pipeline, checks
//! that both produce **identical** output, and writes the measurements to
//! `results/BENCH_pipeline.json` so regressions are diffable in review.
//!
//! Usage: `pipeline_speedup [--quick] [--seed S] [--out DIR]`
//!
//! `--quick` restricts the sweep to the two smallest sizes and one timing
//! repetition — the CI smoke mode. Node density follows the paper's
//! Table I calibration (side `200·√(n/100)`, radius 60), so the average
//! degree stays constant across sizes.

// geospan-analyze: allow(D02, wall-clock timing is the benchmark's measurement, not an artifact input)
use std::time::Instant;

use geospan_bench::baseline::{seed_crossing_count, seed_ldel1, seed_planarize};
use geospan_cds::build_cds;
use geospan_core::ClusterRank;
use geospan_graph::gen::connected_unit_disk;
use geospan_graph::planarity::crossing_count;
use geospan_graph::stretch::{stretch_factors, StretchOptions};
use geospan_topology::ldel;

struct SizeResult {
    n: usize,
    side: f64,
    radius: f64,
    seed: u64,
    udg_edges: usize,
    ldel_triangles: usize,
    pldel_triangles: usize,
    pldel_edges: usize,
    /// Seed pipeline (LDel¹ + planarize), best-of-reps wall clock.
    serial_pipeline_ms: f64,
    /// Current pipeline on the same instance.
    parallel_pipeline_ms: f64,
    pipeline_speedup: f64,
    /// Seed `O(m²)` crossing count over the UDG edges.
    serial_crossing_ms: f64,
    /// Grid-indexed crossing count (same result).
    grid_crossing_ms: f64,
    crossing_speedup: f64,
    udg_crossings: usize,
    cds_ms: f64,
    cds_edges: usize,
    /// Stretch of PLDel vs the UDG; only measured for n ≤ 500 (the
    /// all-pairs measurement dwarfs construction above that).
    stretch_ms: Option<f64>,
    outputs_identical: bool,
}

struct Report {
    description: &'static str,
    threads: usize,
    quick: bool,
    reps: usize,
    sizes: Vec<SizeResult>,
}

impl Report {
    /// Machine-readable artifact (the serde stubs don't serialize, so the
    /// JSON is written by hand; the schema is flat and additive-friendly).
    fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::from("{\n");
        let _ = writeln!(s, "  \"description\": \"{}\",", self.description);
        let _ = writeln!(s, "  \"threads\": {},", self.threads);
        let _ = writeln!(s, "  \"quick\": {},", self.quick);
        let _ = writeln!(s, "  \"reps\": {},", self.reps);
        s.push_str("  \"sizes\": [\n");
        for (k, r) in self.sizes.iter().enumerate() {
            s.push_str("    {\n");
            let _ = writeln!(s, "      \"n\": {},", r.n);
            let _ = writeln!(s, "      \"side\": {:.3},", r.side);
            let _ = writeln!(s, "      \"radius\": {:.1},", r.radius);
            let _ = writeln!(s, "      \"seed\": {},", r.seed);
            let _ = writeln!(s, "      \"udg_edges\": {},", r.udg_edges);
            let _ = writeln!(s, "      \"ldel_triangles\": {},", r.ldel_triangles);
            let _ = writeln!(s, "      \"pldel_triangles\": {},", r.pldel_triangles);
            let _ = writeln!(s, "      \"pldel_edges\": {},", r.pldel_edges);
            let _ = writeln!(
                s,
                "      \"serial_pipeline_ms\": {:.3},",
                r.serial_pipeline_ms
            );
            let _ = writeln!(
                s,
                "      \"parallel_pipeline_ms\": {:.3},",
                r.parallel_pipeline_ms
            );
            let _ = writeln!(s, "      \"pipeline_speedup\": {:.3},", r.pipeline_speedup);
            let _ = writeln!(
                s,
                "      \"serial_crossing_ms\": {:.3},",
                r.serial_crossing_ms
            );
            let _ = writeln!(s, "      \"grid_crossing_ms\": {:.3},", r.grid_crossing_ms);
            let _ = writeln!(s, "      \"crossing_speedup\": {:.3},", r.crossing_speedup);
            let _ = writeln!(s, "      \"udg_crossings\": {},", r.udg_crossings);
            let _ = writeln!(s, "      \"cds_ms\": {:.3},", r.cds_ms);
            let _ = writeln!(s, "      \"cds_edges\": {},", r.cds_edges);
            match r.stretch_ms {
                Some(ms) => {
                    let _ = writeln!(s, "      \"stretch_ms\": {ms:.3},");
                }
                None => {
                    let _ = writeln!(s, "      \"stretch_ms\": null,");
                }
            }
            let _ = writeln!(s, "      \"outputs_identical\": {}", r.outputs_identical);
            s.push_str(if k + 1 < self.sizes.len() {
                "    },\n"
            } else {
                "    }\n"
            });
        }
        s.push_str("  ]\n}\n");
        s
    }
}

/// Best-of-`reps` wall clock in milliseconds, plus the last result.
fn best_of<T>(reps: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..reps {
        // geospan-analyze: allow(D02, wall-clock timing is the benchmark's measurement, not an artifact input)
        let t0 = Instant::now();
        let r = f();
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
        out = Some(r);
    }
    (best, out.expect("reps >= 1"))
}

fn main() {
    let mut quick = false;
    let mut seed = 1u64;
    let mut out_dir = std::path::PathBuf::from("results");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--seed" => {
                seed = args
                    .next()
                    .expect("value after --seed")
                    .parse()
                    .expect("u64")
            }
            "--out" => out_dir = args.next().expect("value after --out").into(),
            other => panic!("unknown argument {other}; supported: --quick --seed S --out DIR"),
        }
    }

    let sizes: &[usize] = if quick {
        &[200, 500]
    } else {
        &[200, 500, 1000, 2000]
    };
    let reps = if quick { 1 } else { 3 };
    let radius = 60.0;

    let mut results = Vec::new();
    for &n in sizes {
        // Constant density: scale the region with n (Table I calibration).
        let side = 200.0 * ((n as f64) / 100.0).sqrt();
        let (_pts, udg, used_seed) = connected_unit_disk(n, side, radius, seed);

        let (serial_ms, serial) = best_of(reps, || seed_planarize(&udg, seed_ldel1(&udg)));
        let (parallel_ms, parallel) = best_of(reps, || ldel::planarized(&udg));
        let identical = serial == parallel;
        assert!(
            identical,
            "n={n}: optimized pipeline output diverged from the seed baseline"
        );

        let (serial_cross_ms, serial_crossings) = best_of(reps, || seed_crossing_count(&udg));
        let (grid_cross_ms, grid_crossings) = best_of(reps, || crossing_count(&udg));
        assert_eq!(serial_crossings, grid_crossings, "n={n}: crossing counts");

        let (cds_ms, cds) = best_of(reps, || build_cds(&udg, &ClusterRank::LowestId));

        let stretch_ms = (n <= 500).then(|| {
            best_of(reps, || {
                stretch_factors(&udg, &parallel.graph, StretchOptions::default())
            })
            .0
        });

        let r = SizeResult {
            n,
            side,
            radius,
            seed: used_seed,
            udg_edges: udg.edge_count(),
            ldel_triangles: seed_ldel1(&udg).triangles.len(),
            pldel_triangles: parallel.triangles.len(),
            pldel_edges: parallel.graph.edge_count(),
            serial_pipeline_ms: serial_ms,
            parallel_pipeline_ms: parallel_ms,
            pipeline_speedup: serial_ms / parallel_ms,
            serial_crossing_ms: serial_cross_ms,
            grid_crossing_ms: grid_cross_ms,
            crossing_speedup: serial_cross_ms / grid_cross_ms,
            udg_crossings: grid_crossings,
            cds_ms,
            cds_edges: cds.cds.edge_count(),
            stretch_ms,
            outputs_identical: identical,
        };
        println!(
            "n={:>5}  pipeline {:>8.2}ms -> {:>7.2}ms ({:.2}x)   crossings {:>8.2}ms -> {:>7.2}ms ({:.2}x)",
            r.n,
            r.serial_pipeline_ms,
            r.parallel_pipeline_ms,
            r.pipeline_speedup,
            r.serial_crossing_ms,
            r.grid_crossing_ms,
            r.crossing_speedup,
        );
        results.push(r);
    }

    let report = Report {
        description: "Construction pipeline: frozen seed implementation vs optimized \
                      (grid-indexed, parallel) pipeline; best-of-reps wall clock",
        threads: rayon::current_num_threads(),
        quick,
        reps,
        sizes: results,
    };
    std::fs::create_dir_all(&out_dir).expect("create output directory");
    let path = out_dir.join("BENCH_pipeline.json");
    std::fs::write(&path, report.to_json()).expect("write BENCH_pipeline.json");
    println!("wrote {}", path.display());
}
