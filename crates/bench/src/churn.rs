//! Experiment E21 — delivery through churn: incremental 2-hop repair
//! versus the full-rebuild baseline.
//!
//! Sweeps the churn intensity (membership/mobility events over a fixed
//! traffic horizon) and serves the same packet workload twice per
//! cell: once with the paper's localized repair maintaining the
//! backbone, once with a full reconstruction on every event. Both
//! arms see the identical [`ChurnPlan`], arrivals, and fault rolls,
//! so rows are paired comparisons of the *maintenance* scheme alone:
//! how far delivery dips around churn, and what the repair messages
//! cost.
//!
//! Cells (trial × churn level × arm) are independent and run in
//! parallel; results fold in deterministic order, so the CSV is
//! byte-identical for every thread count.

use std::fmt::Write as _;

use geospan_sim::{ChurnMix, ChurnPlan, FaultPlan};
use geospan_traffic::{ChurnEngine, ChurnOutcome, RepairStrategy, TrafficConfig, Workload};
use rayon::prelude::*;
use serde::Serialize;

use crate::Scenario;

/// Configuration of the churn sweep.
#[derive(Debug, Clone)]
pub struct ChurnSweepConfig {
    /// Deployment parameters (`n`, `side`, `radius`, `trials`, `seed`).
    pub scenario: Scenario,
    /// Churn intensities to sweep: total events over the horizon.
    pub levels: Vec<usize>,
    /// Relative join/leave/move weights of the generated plans.
    pub mix: ChurnMix,
    /// Offered load in expected packets per tick.
    pub load: f64,
    /// Ticks over which the workload offers packets; churn events land
    /// in `1..=duration`.
    pub duration: u64,
    /// Per-link delivery loss probability.
    pub loss: f64,
    /// Delivery-window length in ticks for the dip measurement.
    pub window: u64,
}

impl ChurnSweepConfig {
    /// The default sweep: the Table I deployment under four churn
    /// intensities, balanced join/leave/move mix.
    pub fn standard() -> Self {
        ChurnSweepConfig {
            scenario: Scenario {
                n: 100,
                side: 200.0,
                radius: 60.0,
                trials: 3,
                seed: 1,
            },
            levels: vec![0, 30, 90, 180],
            mix: ChurnMix::balanced(),
            load: 0.2,
            duration: 1_500,
            loss: 0.0,
            window: 150,
        }
    }

    /// The CI smoke sweep: a small field at two churn levels.
    pub fn quick() -> Self {
        ChurnSweepConfig {
            scenario: Scenario {
                n: 40,
                side: 120.0,
                radius: 45.0,
                trials: 1,
                seed: 1,
            },
            levels: vec![0, 20],
            mix: ChurnMix::balanced(),
            load: 0.2,
            duration: 400,
            loss: 0.0,
            window: 100,
        }
    }
}

/// One aggregated sweep row: a (repair arm, churn level) cell summed
/// (counts) or averaged (latencies, ratios) over the trials.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ChurnRow {
    /// Maintenance arm: `"local-repair"` or `"full-rebuild"`.
    pub arm: &'static str,
    /// Churn events scheduled over the horizon.
    pub level: usize,
    /// Join / leave / move events applied, summed over trials.
    pub joins: usize,
    /// Leave events applied.
    pub leaves: usize,
    /// Move events applied.
    pub moves: usize,
    /// Events absorbed verbatim.
    pub kept: usize,
    /// Events resolved by 2-hop localized repair.
    pub local_repairs: usize,
    /// Events that took a full rebuild.
    pub full_rebuilds: usize,
    /// Repair message cost in node-updates (the cost axis).
    pub repair_cost: u64,
    /// Ticks spent routing over a stale (kept-under-drift) topology.
    pub staleness_ticks: u64,
    /// Packets offered across trials.
    pub offered: usize,
    /// Packets delivered.
    pub delivered: usize,
    /// Packets lost to departed nodes.
    pub drop_departed: usize,
    /// All other drops (stuck, queue, loss, crash, hop limit, shed).
    pub drop_other: usize,
    /// Mean over trials of the median delivery latency.
    pub latency_p50: f64,
    /// Mean over trials of the worst delivery window's delivery ratio —
    /// the depth of the churn dip (1.0 = no dip anywhere).
    pub min_window_delivery: f64,
}

impl ChurnRow {
    /// Delivered fraction of offered packets.
    pub fn delivery_ratio(&self) -> f64 {
        if self.offered == 0 {
            1.0
        } else {
            self.delivered as f64 / self.offered as f64
        }
    }
}

/// The two maintenance arms, in row order.
const ARMS: [(&str, RepairStrategy); 2] = [
    ("local-repair", RepairStrategy::LocalRepair),
    ("full-rebuild", RepairStrategy::FullRebuild),
];

/// Splitmix-style per-cell seed mixing (same shape as the other traffic
/// sweeps).
fn mix_seed(base: u64, trial: u64, level_idx: u64) -> u64 {
    let mut z = base
        .wrapping_add(trial.wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .wrapping_add(level_idx.wrapping_mul(0xc2b2_ae3d_27d4_eb4f));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Runs the sweep: every (trial, level, arm) cell in parallel, then a
/// deterministic fold into one row per (arm, level).
///
/// # Panics
/// Panics if the scenario yields no trials or no levels are configured.
pub fn churn_rows(cfg: &ChurnSweepConfig) -> Vec<ChurnRow> {
    assert!(cfg.scenario.trials > 0, "sweep needs at least one trial");
    assert!(!cfg.levels.is_empty(), "sweep needs at least one level");
    let instances = cfg.scenario.instances();

    // Cell grid: trial-major, then level, then arm.
    let cells: Vec<(usize, usize, usize)> = (0..instances.len())
        .flat_map(|t| {
            (0..cfg.levels.len()).flat_map(move |l| (0..ARMS.len()).map(move |a| (t, l, a)))
        })
        .collect();
    let outcomes: Vec<ChurnOutcome> = cells
        .par_iter()
        .map(|&(t, l, a)| {
            let (pts, _udg) = &instances[t];
            let seed = mix_seed(cfg.scenario.seed, t as u64, l as u64);
            let plan = if cfg.levels[l] == 0 {
                ChurnPlan::none(cfg.scenario.n)
            } else {
                ChurnPlan::generate(
                    seed ^ 0x6368_7572_6e21,
                    cfg.scenario.n,
                    cfg.scenario.side,
                    cfg.levels[l],
                    cfg.duration,
                    cfg.mix,
                )
            };
            // Both arms of a cell share the plan, arrivals, and fault
            // rolls: the workload targets the whole universe, so
            // traffic to joiners-to-be and leavers is part of the
            // scenario, identically in both arms.
            let arrivals =
                Workload::uniform(cfg.load, cfg.duration).generate(plan.universe(), seed);
            let faults = FaultPlan::new(seed ^ 0x5a70_ca7e).with_loss(cfg.loss);
            let engine_cfg = TrafficConfig {
                max_hops: (50 * cfg.scenario.n) as u32,
                ..TrafficConfig::default()
            };
            ChurnEngine::new(1)
                .with_threads(1)
                .with_window(cfg.window)
                .run(
                    pts,
                    cfg.scenario.radius,
                    &plan,
                    &arrivals,
                    &faults,
                    &engine_cfg,
                    ARMS[a].1,
                )
                .expect("churn run on a generated connected instance")
        })
        .collect();

    let mut rows = Vec::with_capacity(cfg.levels.len() * ARMS.len());
    for (a, (arm, _)) in ARMS.iter().enumerate() {
        for (l, &level) in cfg.levels.iter().enumerate() {
            let mut row = ChurnRow {
                arm,
                level,
                joins: 0,
                leaves: 0,
                moves: 0,
                kept: 0,
                local_repairs: 0,
                full_rebuilds: 0,
                repair_cost: 0,
                staleness_ticks: 0,
                offered: 0,
                delivered: 0,
                drop_departed: 0,
                drop_other: 0,
                latency_p50: 0.0,
                min_window_delivery: 0.0,
            };
            for t in 0..instances.len() {
                let idx = (t * cfg.levels.len() + l) * ARMS.len() + a;
                let out = &outcomes[idx];
                let c = &out.churn;
                row.joins += c.joins;
                row.leaves += c.leaves;
                row.moves += c.moves;
                row.kept += c.kept;
                row.local_repairs += c.local_repairs;
                row.full_rebuilds += c.full_rebuilds;
                row.repair_cost += c.repair_cost;
                row.staleness_ticks += c.staleness_ticks;
                let r = &out.traffic.report;
                row.offered += r.offered;
                row.delivered += r.delivered;
                row.drop_departed += r.drops.node_departed;
                row.drop_other += r.drops.total() - r.drops.node_departed;
                row.latency_p50 += r.latency_p50 as f64;
                row.min_window_delivery += c
                    .windows
                    .iter()
                    .map(|w| w.delivery_ratio())
                    .fold(1.0, f64::min);
            }
            let t = instances.len() as f64;
            row.latency_p50 /= t;
            row.min_window_delivery /= t;
            rows.push(row);
        }
    }
    rows
}

/// Renders the rows as `traffic_churn.csv`.
pub fn churn_csv(rows: &[ChurnRow]) -> String {
    let mut out = String::from(
        "arm,level,joins,leaves,moves,kept,local_repairs,full_rebuilds,repair_cost,\
         staleness_ticks,offered,delivered,delivery_ratio,drop_departed,drop_other,\
         latency_p50,min_window_delivery\n",
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{},{},{},{},{},{},{:.6},{},{},{:.2},{:.6}",
            r.arm,
            r.level,
            r.joins,
            r.leaves,
            r.moves,
            r.kept,
            r.local_repairs,
            r.full_rebuilds,
            r.repair_cost,
            r.staleness_ticks,
            r.offered,
            r.delivered,
            r.delivery_ratio(),
            r.drop_departed,
            r.drop_other,
            r.latency_p50,
            r.min_window_delivery
        );
    }
    out
}

/// Renders the rows as an aligned human-readable table.
pub fn format_churn(rows: &[ChurnRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<13} {:>6} {:>6} {:>7} {:>8} {:>11} {:>10} {:>10} {:>9} {:>8} {:>9}",
        "arm",
        "churn",
        "kept",
        "local",
        "rebuild",
        "cost",
        "delivery",
        "dip",
        "departed",
        "other",
        "p50"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<13} {:>6} {:>6} {:>7} {:>8} {:>11} {:>9.2}% {:>9.2}% {:>9} {:>8} {:>9.1}",
            r.arm,
            r.level,
            r.kept,
            r.local_repairs,
            r.full_rebuilds,
            r.repair_cost,
            100.0 * r.delivery_ratio(),
            100.0 * r.min_window_delivery,
            r.drop_departed,
            r.drop_other,
            r.latency_p50
        );
    }
    out
}

/// Acceptance check: at every non-zero churn level, localized repair
/// resolves some events in place and pays strictly less repair cost
/// than the full-rebuild baseline; the baseline rebuilds on every
/// membership event; and both arms' ledgers balance.
pub fn check_repair_advantage(rows: &[ChurnRow]) -> Result<(), String> {
    for r in rows {
        if r.offered != r.delivered + r.drop_departed + r.drop_other {
            return Err(format!(
                "{} level {}: ledger does not balance ({} offered, {} accounted)",
                r.arm,
                r.level,
                r.offered,
                r.delivered + r.drop_departed + r.drop_other
            ));
        }
    }
    for level in rows.iter().map(|r| r.level).filter(|&l| l > 0) {
        let find = |arm: &str| {
            rows.iter()
                .find(|r| r.arm == arm && r.level == level)
                .ok_or_else(|| format!("missing {arm} row at level {level}"))
        };
        let local = find("local-repair")?;
        let full = find("full-rebuild")?;
        if local.kept + local.local_repairs == 0 {
            return Err(format!(
                "level {level}: localized repair absorbed no events in place"
            ));
        }
        if local.repair_cost >= full.repair_cost {
            return Err(format!(
                "level {level}: local repair cost {} is not below the rebuild baseline's {}",
                local.repair_cost, full.repair_cost
            ));
        }
        if full.full_rebuilds < full.joins + full.leaves {
            return Err(format!(
                "level {level}: the baseline skipped a membership rebuild ({} rebuilds, {} membership events)",
                full.full_rebuilds,
                full.joins + full.leaves
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_passes_its_own_check() {
        let rows = churn_rows(&ChurnSweepConfig::quick());
        assert_eq!(rows.len(), 4, "two arms x two levels");
        check_repair_advantage(&rows).expect("quick sweep satisfies the acceptance check");
        let csv = churn_csv(&rows);
        assert_eq!(csv.lines().count(), 5);
        assert!(csv.starts_with("arm,level,"));
        // Zero churn: both arms identical, no maintenance at all.
        for r in rows.iter().filter(|r| r.level == 0) {
            assert_eq!(r.kept + r.local_repairs + r.full_rebuilds, 0);
            assert_eq!(r.repair_cost, 0);
            assert_eq!(r.drop_departed, 0);
        }
        let zero: Vec<_> = rows.iter().filter(|r| r.level == 0).collect();
        assert_eq!(zero[0].delivered, zero[1].delivered);
        // Churn bites: departures cost packets in at least one arm.
        assert!(rows.iter().any(|r| r.level > 0 && r.drop_departed > 0));
    }
}
