//! Experiment harness regenerating the evaluation of Wang & Li
//! (ICDCS 2002).
//!
//! Each table/figure of the paper has a binary in `src/bin` that drives
//! the functions here (see `EXPERIMENTS.md` at the repository root for
//! the experiment ↔ binary index). This library holds the shared pieces:
//! scenario configuration, instance generation, the construction of the
//! paper's ten topologies, the measured statistics, and plain-text /
//! CSV output.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod churn;
pub mod scale;
pub mod traffic;

use std::fmt::Write as _;

use geospan_cds::build_cds;
use geospan_core::{BackboneBuilder, BackboneConfig, ClusterRank};
use geospan_graph::gen::{connected_unit_disk, UnitDiskBuilder};
use geospan_graph::stats::degree_stats;
use geospan_graph::stretch::{stretch_factors, StretchOptions, StretchReport};
use geospan_graph::{Graph, Point};
use geospan_topology::{gabriel, ldel, relative_neighborhood};
use rayon::prelude::*;
use serde::Serialize;

/// An experiment scenario: the deployment parameters of the paper's
/// simulations.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct Scenario {
    /// Number of nodes.
    pub n: usize,
    /// Side of the square deployment region.
    pub side: f64,
    /// Transmission radius.
    pub radius: f64,
    /// Number of connected instances to aggregate over.
    pub trials: usize,
    /// Base RNG seed (instances use consecutive accepted seeds).
    pub seed: u64,
}

impl Scenario {
    /// The paper's Table I configuration: `n = 100` nodes in a 200 × 200
    /// square with transmission radius 60 (see DESIGN.md for the region
    /// calibration).
    pub fn table1() -> Self {
        Scenario {
            n: 100,
            side: 200.0,
            radius: 60.0,
            trials: 20,
            seed: 1,
        }
    }

    /// Generates the connected instances of this scenario.
    pub fn instances(&self) -> Vec<(Vec<Point>, Graph)> {
        let mut out = Vec::with_capacity(self.trials);
        let mut seed = self.seed;
        for _ in 0..self.trials {
            let (pts, udg, used) = connected_unit_disk(self.n, self.side, self.radius, seed);
            seed = used + 1;
            out.push((pts, udg));
        }
        out
    }
}

/// Whether a topology spans all nodes (stretch factors are meaningful)
/// or only the backbone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Span {
    /// Spans every node: measure stretch against the UDG.
    AllNodes,
    /// Backbone only: degree/edge statistics, no stretch.
    BackboneOnly,
    /// The base graph itself.
    Base,
}

/// One named topology derived from a deployment.
pub struct NamedTopology {
    /// Row label, matching the paper's Table I.
    pub name: &'static str,
    /// The graph (shared vertex set with the UDG).
    pub graph: Graph,
    /// Stretch measurement category.
    pub span: Span,
}

/// Builds the paper's ten topologies for one deployment.
///
/// Order matches Table I: UDG, RNG, GG, LDel, CDS, CDS', ICDS, ICDS',
/// LDel(ICDS), LDel(ICDS').
///
/// # Panics
/// Panics if `udg` has an edge longer than `radius` (wrong scenario
/// pairing).
pub fn table1_topologies(udg: &Graph, radius: f64) -> Vec<NamedTopology> {
    let cds = build_cds(udg, &ClusterRank::LowestId);
    let backbone = BackboneBuilder::new(BackboneConfig::new(radius))
        .build(udg)
        .expect("centralized build cannot fail on a valid UDG");
    vec![
        NamedTopology {
            name: "UDG",
            graph: udg.clone(),
            span: Span::Base,
        },
        NamedTopology {
            name: "RNG",
            graph: relative_neighborhood(udg),
            span: Span::AllNodes,
        },
        NamedTopology {
            name: "GG",
            graph: gabriel(udg),
            span: Span::AllNodes,
        },
        NamedTopology {
            name: "LDel",
            graph: ldel::planarized(udg).graph,
            span: Span::AllNodes,
        },
        NamedTopology {
            name: "CDS",
            graph: cds.cds.clone(),
            span: Span::BackboneOnly,
        },
        NamedTopology {
            name: "CDS'",
            graph: cds.cds_prime.clone(),
            span: Span::AllNodes,
        },
        NamedTopology {
            name: "ICDS",
            graph: cds.icds.clone(),
            span: Span::BackboneOnly,
        },
        NamedTopology {
            name: "ICDS'",
            graph: cds.icds_prime.clone(),
            span: Span::AllNodes,
        },
        NamedTopology {
            name: "LDel(ICDS)",
            graph: backbone.ldel_icds().clone(),
            span: Span::BackboneOnly,
        },
        NamedTopology {
            name: "LDel(ICDS')",
            graph: backbone.ldel_icds_prime().clone(),
            span: Span::AllNodes,
        },
    ]
}

/// Table I row statistics for one topology, aggregated over instances.
#[derive(Debug, Clone, Serialize, Default)]
pub struct RowStats {
    /// Row label.
    pub name: String,
    /// Mean (over instances) of the average node degree.
    pub deg_avg: f64,
    /// Maximum node degree over all instances.
    pub deg_max: usize,
    /// Mean average length stretch (`None` for backbone-only rows).
    pub len_avg: Option<f64>,
    /// Maximum length stretch.
    pub len_max: Option<f64>,
    /// Mean average hop stretch.
    pub hop_avg: Option<f64>,
    /// Maximum hop stretch.
    pub hop_max: Option<f64>,
    /// Mean edge count.
    pub edges: f64,
}

/// Measures one topology against its UDG.
///
/// For spanning topologies the length stretch is computed over node pairs
/// separated by more than one transmission radius, following the paper's
/// convention for the backbone graphs ("we are only interested in nodes
/// `u`, `v` with `|uv| > 1`"); hop stretch uses all connected pairs.
pub fn measure_stretch(udg: &Graph, g: &Graph, radius: f64) -> StretchReport {
    stretch_factors(
        udg,
        g,
        StretchOptions {
            min_euclidean_separation: radius,
        },
    )
}

/// One topology's measurements on one instance (intermediate record of
/// [`table1_rows`]).
struct TopoMeasurement {
    name: &'static str,
    deg_avg: f64,
    deg_max: usize,
    edges: f64,
    stretch: Option<StretchReport>,
}

/// Runs the full Table I measurement over a scenario.
///
/// Instances are measured in parallel (each builds its own topologies);
/// the per-instance measurements are folded serially in instance order,
/// so the aggregate is identical for every thread count.
pub fn table1_rows(scenario: &Scenario) -> Vec<RowStats> {
    let instances = scenario.instances();
    let per_instance: Vec<Vec<TopoMeasurement>> = (0..instances.len())
        .into_par_iter()
        .map(|k| {
            let (_pts, udg) = &instances[k];
            table1_topologies(udg, scenario.radius)
                .into_iter()
                .map(|topo| {
                    let d = degree_stats(&topo.graph);
                    let stretch = (topo.span == Span::AllNodes).then(|| {
                        let r = measure_stretch(udg, &topo.graph, scenario.radius);
                        assert_eq!(
                            r.disconnected_pairs, 0,
                            "instance {k}: {} disconnects pairs",
                            topo.name
                        );
                        r
                    });
                    TopoMeasurement {
                        name: topo.name,
                        deg_avg: d.avg,
                        deg_max: d.max,
                        edges: topo.graph.edge_count() as f64,
                        stretch,
                    }
                })
                .collect()
        })
        .collect();

    let mut rows: Vec<RowStats> = Vec::new();
    for inst in &per_instance {
        if rows.is_empty() {
            rows = inst
                .iter()
                .map(|m| RowStats {
                    name: m.name.to_string(),
                    ..RowStats::default()
                })
                .collect();
        }
        for (row, m) in rows.iter_mut().zip(inst) {
            row.deg_avg += m.deg_avg;
            row.deg_max = row.deg_max.max(m.deg_max);
            row.edges += m.edges;
            if let Some(r) = &m.stretch {
                *row.len_avg.get_or_insert(0.0) += r.length_avg;
                *row.hop_avg.get_or_insert(0.0) += r.hop_avg;
                let lm = row.len_max.get_or_insert(0.0);
                *lm = lm.max(r.length_max);
                let hm = row.hop_max.get_or_insert(0.0);
                *hm = hm.max(r.hop_max);
            }
        }
    }
    let t = instances.len() as f64;
    for row in &mut rows {
        row.deg_avg /= t;
        row.edges /= t;
        if let Some(v) = row.len_avg.as_mut() {
            *v /= t;
        }
        if let Some(v) = row.hop_avg.as_mut() {
            *v /= t;
        }
    }
    rows
}

/// Formats a float column entry, rendering `None` as the paper's "-".
fn opt(v: Option<f64>, prec: usize) -> String {
    v.map_or_else(|| "-".to_string(), |x| format!("{x:.prec$}"))
}

/// Renders Table I in the paper's layout.
pub fn format_table1(rows: &[RowStats]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<12} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>9}",
        "topology", "deg_avg", "deg_max", "len_avg", "len_max", "hop_avg", "hop_max", "edges"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<12} {:>8.2} {:>8} {:>8} {:>8} {:>8} {:>8} {:>9.1}",
            r.name,
            r.deg_avg,
            r.deg_max,
            opt(r.len_avg, 2),
            opt(r.len_max, 2),
            opt(r.hop_avg, 2),
            opt(r.hop_max, 2),
            r.edges
        );
    }
    out
}

/// Writes rows as CSV (header + one line per row).
pub fn table1_csv(rows: &[RowStats]) -> String {
    let mut out = String::from("topology,deg_avg,deg_max,len_avg,len_max,hop_avg,hop_max,edges\n");
    for r in rows {
        let _ = writeln!(
            out,
            "{},{:.4},{},{},{},{},{},{:.2}",
            r.name,
            r.deg_avg,
            r.deg_max,
            opt(r.len_avg, 4),
            opt(r.len_max, 4),
            opt(r.hop_avg, 4),
            opt(r.hop_max, 4),
            r.edges
        );
    }
    out
}

/// A generic sweep series: one metric sampled across a parameter range.
#[derive(Debug, Clone, Serialize)]
pub struct Series {
    /// Metric label, e.g. `"CDS deg max"`.
    pub label: String,
    /// `(parameter, value)` samples.
    pub points: Vec<(f64, f64)>,
}

/// Renders sweep series as an aligned text table: one row per parameter
/// value, one column per series.
pub fn format_series(param_name: &str, series: &[Series]) -> String {
    let mut out = String::new();
    let _ = write!(out, "{param_name:>8}");
    for s in series {
        let _ = write!(out, " {:>18}", s.label);
    }
    out.push('\n');
    if series.is_empty() {
        return out;
    }
    for i in 0..series[0].points.len() {
        let _ = write!(out, "{:>8.0}", series[0].points[i].0);
        for s in series {
            let _ = write!(out, " {:>18.3}", s.points[i].1);
        }
        out.push('\n');
    }
    out
}

/// Renders sweep series as CSV.
pub fn series_csv(param_name: &str, series: &[Series]) -> String {
    let mut out = String::new();
    let _ = write!(out, "{param_name}");
    for s in series {
        let _ = write!(out, ",{}", s.label.replace(',', ";"));
    }
    out.push('\n');
    if series.is_empty() {
        return out;
    }
    for i in 0..series[0].points.len() {
        let _ = write!(out, "{}", series[0].points[i].0);
        for s in series {
            let _ = write!(out, ",{:.6}", s.points[i].1);
        }
        out.push('\n');
    }
    out
}

/// Simple CLI parsing shared by the experiment binaries: `--trials N`,
/// `--seed S`, `--out DIR` (all optional).
#[derive(Debug, Clone, Default)]
pub struct CliArgs {
    /// Override for the trial count.
    pub trials: Option<usize>,
    /// Override for the base seed.
    pub seed: Option<u64>,
    /// Output directory for CSV/SVG artifacts.
    pub out: Option<std::path::PathBuf>,
}

impl CliArgs {
    /// Parses `std::env::args`.
    ///
    /// # Panics
    /// Panics (with a usage message) on malformed arguments.
    pub fn parse() -> Self {
        let mut args = std::env::args().skip(1);
        let mut out = CliArgs::default();
        while let Some(a) = args.next() {
            let mut next = |what: &str| {
                args.next()
                    // geospan-analyze: allow(D11, documented CLI usage panic: this helper exists only for bin targets)
                    .unwrap_or_else(|| panic!("missing value after {what}"))
            };
            match a.as_str() {
                "--trials" => out.trials = Some(next("--trials").parse().expect("trials: integer")),
                "--seed" => out.seed = Some(next("--seed").parse().expect("seed: integer")),
                "--out" => out.out = Some(next("--out").into()),
                other => {
                    // geospan-analyze: allow(D11, documented CLI usage panic: this helper exists only for bin targets)
                    panic!("unknown argument {other}; supported: --trials N --seed S --out DIR")
                }
            }
        }
        out
    }

    /// Applies the overrides to a scenario.
    pub fn apply(&self, mut s: Scenario) -> Scenario {
        if let Some(t) = self.trials {
            s.trials = t;
        }
        if let Some(seed) = self.seed {
            s.seed = seed;
        }
        s
    }

    /// Writes an artifact into the `--out` directory, if one was given.
    ///
    /// # Panics
    /// Panics when the directory or file cannot be written.
    pub fn write_artifact(&self, name: &str, content: &str) {
        if let Some(dir) = &self.out {
            std::fs::create_dir_all(dir).expect("create output directory");
            let path = dir.join(name);
            std::fs::write(&path, content).expect("write artifact");
            println!("wrote {}", path.display());
        }
    }
}

/// Builds a UDG directly (used by benches and the gallery binary).
pub fn udg_of(pts: &[Point], radius: f64) -> Graph {
    UnitDiskBuilder::new(radius).build(pts)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Scenario {
        Scenario {
            n: 30,
            side: 100.0,
            radius: 40.0,
            trials: 2,
            seed: 1,
        }
    }

    #[test]
    fn scenario_instances_are_connected() {
        for (_pts, udg) in tiny().instances() {
            assert!(udg.is_connected());
            assert_eq!(udg.node_count(), 30);
        }
    }

    #[test]
    fn table1_rows_structure() {
        let rows = table1_rows(&tiny());
        assert_eq!(rows.len(), 10);
        assert_eq!(rows[0].name, "UDG");
        assert_eq!(rows[9].name, "LDel(ICDS')");
        // Base and backbone-only rows have no stretch.
        assert!(rows[0].len_avg.is_none());
        assert!(rows[4].len_avg.is_none());
        // Spanning rows do.
        for i in [1, 2, 3, 5, 7, 9] {
            assert!(rows[i].len_avg.is_some(), "row {i}");
            assert!(rows[i].len_avg.unwrap() >= 1.0);
            assert!(rows[i].hop_max.unwrap() >= 1.0);
        }
        // Sparsity ordering: every derived topology has fewer edges than
        // the UDG.
        for r in &rows[1..] {
            assert!(r.edges <= rows[0].edges);
        }
    }

    #[test]
    fn formatting_smoke() {
        let rows = table1_rows(&tiny());
        let table = format_table1(&rows);
        assert!(table.contains("LDel(ICDS')"));
        assert!(table.contains('-'));
        let csv = table1_csv(&rows);
        assert_eq!(csv.lines().count(), 11);
    }

    #[test]
    fn cli_overrides_apply() {
        let cli = CliArgs {
            trials: Some(3),
            seed: Some(77),
            out: None,
        };
        let s = cli.apply(Scenario::table1());
        assert_eq!(s.trials, 3);
        assert_eq!(s.seed, 77);
        assert_eq!(s.n, 100); // untouched fields stay
        let none = CliArgs::default().apply(Scenario::table1());
        assert_eq!(none.trials, Scenario::table1().trials);
    }

    #[test]
    fn artifacts_written_only_with_out_dir() {
        let dir = std::env::temp_dir().join(format!("geospan-bench-test-{}", std::process::id()));
        let cli = CliArgs {
            trials: None,
            seed: None,
            out: Some(dir.clone()),
        };
        cli.write_artifact("x.csv", "a,b\n1,2\n");
        assert_eq!(
            std::fs::read_to_string(dir.join("x.csv")).unwrap(),
            "a,b\n1,2\n"
        );
        std::fs::remove_dir_all(&dir).ok();
        // Without --out: no panic, nothing written.
        CliArgs::default().write_artifact("y.csv", "ignored");
    }

    #[test]
    fn measure_stretch_uses_separation_convention() {
        let (_pts, udg) = &tiny().instances()[0];
        let r = measure_stretch(udg, udg, 40.0);
        // Self-stretch is exactly 1 and only separated pairs counted.
        assert!((r.length_max - 1.0).abs() < 1e-9);
        assert!(
            r.length_pairs < r.hop_pairs,
            "separation filter must drop pairs"
        );
    }

    #[test]
    fn series_formatting() {
        let s = vec![
            Series {
                label: "a".into(),
                points: vec![(10.0, 1.0), (20.0, 2.0)],
            },
            Series {
                label: "b".into(),
                points: vec![(10.0, 3.0), (20.0, 4.0)],
            },
        ];
        let txt = format_series("n", &s);
        assert_eq!(txt.lines().count(), 3);
        let csv = series_csv("n", &s);
        assert!(csv.starts_with("n,a,b"));
        assert!(csv.contains("10,1.000000,3.000000"));
    }
}
