//! Experiment E20 — scaling the sharded traffic engine.
//!
//! Serves one large hotspot workload (≥ 1M offered packets in the
//! standard configuration) over `LDel(ICDS)` backbone routing, once per
//! shard count, and records the throughput ledger of conservative
//! synchronization: wall clock, events per second, speedup over the
//! single-shard run, barrier rounds, boundary messages, idle
//! shard-rounds (the zero-lookahead analogue of null-message overhead),
//! spatial load imbalance, and the edge-cut fraction of the partition.
//!
//! The crown invariant is checked on the way: every shard count must
//! produce a [`TrafficOutcome`] identical to the single-shard run —
//! the shard knob trades synchronization overhead for parallelism and
//! changes nothing else.

use std::fmt::Write as _;
// geospan-analyze: allow(D02, wall-clock timing is the benchmark's measurement, not an artifact input)
use std::time::Instant;

use geospan_core::{BackboneBuilder, BackboneConfig, ClusterRank};
use geospan_graph::gen::connected_unit_disk;
use geospan_sim::{FaultPlan, OverloadConfig};
use geospan_traffic::{
    Forwarding, ShardMap, ShardedEngine, TrafficConfig, TrafficOutcome, Workload,
};

/// Configuration of one scaling run.
#[derive(Debug, Clone)]
pub struct ScaleConfig {
    /// Number of nodes.
    pub n: usize,
    /// Side of the square deployment region.
    pub side: f64,
    /// Transmission radius.
    pub radius: f64,
    /// Base RNG seed (instance, workload, and faults derive from it).
    pub seed: u64,
    /// Offered load in expected packets per tick.
    pub rate: f64,
    /// Workload duration in ticks.
    pub duration: u64,
    /// Hotspot sink bias.
    pub sink_bias: f64,
    /// Per-transmission radio loss probability.
    pub loss: f64,
    /// Per-node transmit queue capacity.
    pub queue_capacity: usize,
    /// Service time per transmission.
    pub service_time: u64,
    /// Shard counts to sweep (must include 1, the speedup baseline).
    pub shard_counts: Vec<usize>,
    /// Timing repetitions per shard count (best-of).
    pub reps: usize,
}

impl ScaleConfig {
    /// The full-size run: 2 000 nodes at the paper's Table I density
    /// (side `200·√(n/100)`, radius 60) under a hotspot offering
    /// 550 packets/tick for 2 000 ticks — 1.1M offered packets.
    pub fn standard() -> Self {
        let n = 2_000;
        ScaleConfig {
            n,
            side: 200.0 * ((n as f64) / 100.0).sqrt(),
            radius: 60.0,
            seed: 1,
            rate: 550.0,
            duration: 2_000,
            sink_bias: 0.6,
            loss: 0.05,
            queue_capacity: 16,
            service_time: 1,
            shard_counts: vec![1, 2, 4, 8],
            reps: 1,
        }
    }

    /// The CI smoke configuration: a few hundred packets, seconds not
    /// minutes, same checks.
    pub fn quick() -> Self {
        ScaleConfig {
            n: 60,
            side: 160.0,
            radius: 50.0,
            seed: 1,
            rate: 2.0,
            duration: 300,
            sink_bias: 0.6,
            loss: 0.05,
            queue_capacity: 8,
            service_time: 1,
            shard_counts: vec![1, 2, 4],
            reps: 1,
        }
    }

    /// Expected offered packets (`rate × duration`).
    pub fn expected_offered(&self) -> f64 {
        self.rate * self.duration as f64
    }
}

/// Measurements of one shard count.
#[derive(Debug, Clone)]
pub struct ScaleRow {
    /// Shard count of this run.
    pub shards: usize,
    /// Worker threads the driver actually used.
    pub threads: usize,
    /// Best-of-reps wall clock in milliseconds.
    pub wall_ms: f64,
    /// Total events processed (arrivals + retries + services + merges).
    pub events: u64,
    /// Events per second at the best wall clock.
    pub events_per_sec: f64,
    /// Single-shard wall clock over this row's wall clock.
    pub speedup: f64,
    /// Barrier rounds (safe-horizon advances).
    pub rounds: u64,
    /// Forwards that crossed a shard boundary.
    pub boundary_messages: u64,
    /// Shard-rounds spent with nothing scheduled at the safe horizon —
    /// the lockstep protocol's null-message-overhead analogue.
    pub idle_shard_rounds: u64,
    /// Busiest shard's event count over the mean (1.0 = balanced).
    pub imbalance: f64,
    /// Fraction of UDG edges crossing a shard boundary.
    pub cut_fraction: f64,
    /// Whether this run's outcome is identical to the single-shard run.
    pub identical: bool,
}

/// The full scaling report: environment, workload ledger, one row per
/// shard count.
#[derive(Debug, Clone)]
pub struct ScaleReport {
    /// Cores the host exposes (speedup is only meaningful when > 1).
    pub cores: usize,
    /// Packets the workload offered.
    pub offered: usize,
    /// Packets delivered (identical at every shard count).
    pub delivered: usize,
    /// Edges of the deployment UDG.
    pub udg_edges: usize,
    /// One row per swept shard count.
    pub rows: Vec<ScaleRow>,
}

/// Runs the scaling sweep: one instance, one workload, one run per
/// shard count, each compared against the single-shard outcome.
///
/// # Panics
/// Panics if `shard_counts` does not include 1, if `reps == 0`, or if
/// the per-packet ledger of any run fails conservation
/// (`offered = delivered + drops + refused`).
pub fn scale_rows(cfg: &ScaleConfig) -> ScaleReport {
    assert!(cfg.reps > 0, "reps must be positive");
    assert!(
        cfg.shard_counts.contains(&1),
        "shard_counts must include the single-shard baseline"
    );

    let (_pts, udg, _used) = connected_unit_disk(cfg.n, cfg.side, cfg.radius, cfg.seed);
    let backbone =
        BackboneBuilder::new(BackboneConfig::new(cfg.radius).with_rank(ClusterRank::LowestId))
            .build(&udg)
            .expect("centralized build cannot fail on a valid UDG");
    let forwarding = Forwarding::Backbone {
        backbone: &backbone,
        udg: &udg,
    };
    let arrivals =
        Workload::hotspot(0, cfg.sink_bias, cfg.rate, cfg.duration).generate(cfg.n, cfg.seed);
    let faults = FaultPlan::new(cfg.seed ^ 0x5a70_ca7e).with_loss(cfg.loss);
    let engine_cfg = TrafficConfig {
        queue_capacity: cfg.queue_capacity,
        service_time: cfg.service_time,
        max_hops: (50 * cfg.n) as u32,
        overload: Some(OverloadConfig::for_capacity(cfg.queue_capacity)),
        ..TrafficConfig::default()
    };
    let csr = udg.freeze();

    let mut reference: Option<TrafficOutcome> = None;
    let mut rows = Vec::with_capacity(cfg.shard_counts.len());
    for &s in &cfg.shard_counts {
        let engine = ShardedEngine::new(s);
        let mut best_ms = f64::INFINITY;
        let mut last = None;
        for _ in 0..cfg.reps {
            // geospan-analyze: allow(D02, wall-clock timing is the benchmark's measurement, not an artifact input)
            let t0 = Instant::now();
            let (outcome, stats) =
                engine.run_with_stats(&forwarding, &udg, &arrivals, &faults, &engine_cfg);
            best_ms = best_ms.min(t0.elapsed().as_secs_f64() * 1e3);
            last = Some((outcome, stats));
        }
        let (outcome, stats) = last.expect("reps >= 1");

        let r = &outcome.report;
        assert_eq!(
            r.offered,
            r.delivered + r.drops.total() + r.refused,
            "shards={s}: offered != delivered + drops + refused"
        );
        let identical = match &reference {
            Some(single) => *single == outcome,
            None => {
                reference = Some(outcome.clone());
                true
            }
        };

        let cut = csr.shard_cut(ShardMap::spatial(udg.points(), s).shard_of(), s.max(1));
        rows.push(ScaleRow {
            shards: stats.shards,
            threads: stats.threads,
            wall_ms: best_ms,
            events: stats.events,
            events_per_sec: stats.events as f64 / (best_ms / 1e3),
            speedup: 0.0, // filled from the baseline row below
            rounds: stats.rounds,
            boundary_messages: stats.boundary_messages,
            idle_shard_rounds: stats.idle_shard_rounds,
            imbalance: stats.imbalance(),
            cut_fraction: cut.cut_fraction(),
            identical,
        });
    }

    let base_ms = rows
        .iter()
        .find(|r| r.shards == 1)
        .expect("shard_counts contains 1")
        .wall_ms;
    for row in &mut rows {
        row.speedup = base_ms / row.wall_ms;
    }

    let reference = reference.expect("shard_counts is non-empty");
    ScaleReport {
        // geospan-analyze: allow(D07, reading the host's core count reports the environment, no threads are spawned)
        cores: std::thread::available_parallelism().map_or(1, |p| p.get()),
        offered: reference.report.offered,
        delivered: reference.report.delivered,
        udg_edges: udg.edge_count(),
        rows,
    }
}

/// Checks the crown invariant: every shard count produced an outcome
/// identical to the single-shard run.
pub fn check_identity(report: &ScaleReport) -> Result<(), String> {
    for row in &report.rows {
        if !row.identical {
            return Err(format!(
                "shards={}: outcome diverged from the single-shard run",
                row.shards
            ));
        }
    }
    Ok(())
}

/// Checks the scaling gate: some run at 4+ shards reached a ≥ 2×
/// speedup over single-shard. Only meaningful on a host with 4+ cores;
/// on smaller hosts the caller should skip this check (the measurements
/// are still recorded honestly, there is just no parallel hardware for
/// the speedup to come from).
pub fn check_speedup(report: &ScaleReport) -> Result<(), String> {
    let best = report
        .rows
        .iter()
        .filter(|r| r.shards >= 4)
        .map(|r| r.speedup)
        .fold(0.0f64, f64::max);
    if best >= 2.0 {
        Ok(())
    } else {
        Err(format!(
            "no run at 4+ shards reached a 2x speedup (best {best:.2}x on {} cores)",
            report.cores
        ))
    }
}

/// Renders the report as an aligned text table.
pub fn format_scale(report: &ScaleReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:>7} {:>8} {:>10} {:>10} {:>12} {:>8} {:>8} {:>10} {:>11} {:>10} {:>8} {:>10}",
        "shards",
        "threads",
        "wall_ms",
        "events",
        "events/s",
        "speedup",
        "rounds",
        "boundary",
        "idle_rounds",
        "imbalance",
        "cut",
        "identical"
    );
    for r in &report.rows {
        let _ = writeln!(
            out,
            "{:>7} {:>8} {:>10.1} {:>10} {:>12.0} {:>7.2}x {:>8} {:>10} {:>11} {:>10.3} {:>8.3} {:>10}",
            r.shards,
            r.threads,
            r.wall_ms,
            r.events,
            r.events_per_sec,
            r.speedup,
            r.rounds,
            r.boundary_messages,
            r.idle_shard_rounds,
            r.imbalance,
            r.cut_fraction,
            r.identical
        );
    }
    out
}

/// Machine-readable artifact (the serde stubs don't serialize, so the
/// JSON is written by hand; the schema is flat and additive-friendly).
pub fn scale_json(cfg: &ScaleConfig, report: &ScaleReport, quick: bool) -> String {
    let mut s = String::from("{\n");
    let _ = writeln!(
        s,
        "  \"description\": \"Sharded traffic engine scaling: one hotspot workload served once \
         per shard count; outcomes are bit-identical, only wall clock and synchronization \
         overhead vary\","
    );
    let _ = writeln!(s, "  \"quick\": {quick},");
    let _ = writeln!(s, "  \"cores\": {},", report.cores);
    let _ = writeln!(s, "  \"n\": {},", cfg.n);
    let _ = writeln!(s, "  \"side\": {:.3},", cfg.side);
    let _ = writeln!(s, "  \"radius\": {:.1},", cfg.radius);
    let _ = writeln!(s, "  \"seed\": {},", cfg.seed);
    let _ = writeln!(s, "  \"rate\": {:.1},", cfg.rate);
    let _ = writeln!(s, "  \"duration\": {},", cfg.duration);
    let _ = writeln!(s, "  \"sink_bias\": {:.2},", cfg.sink_bias);
    let _ = writeln!(s, "  \"loss\": {:.2},", cfg.loss);
    let _ = writeln!(s, "  \"queue_capacity\": {},", cfg.queue_capacity);
    let _ = writeln!(s, "  \"reps\": {},", cfg.reps);
    let _ = writeln!(s, "  \"offered\": {},", report.offered);
    let _ = writeln!(s, "  \"delivered\": {},", report.delivered);
    let _ = writeln!(s, "  \"udg_edges\": {},", report.udg_edges);
    s.push_str("  \"shard_counts\": [\n");
    for (k, r) in report.rows.iter().enumerate() {
        s.push_str("    {\n");
        let _ = writeln!(s, "      \"shards\": {},", r.shards);
        let _ = writeln!(s, "      \"threads\": {},", r.threads);
        let _ = writeln!(s, "      \"wall_ms\": {:.3},", r.wall_ms);
        let _ = writeln!(s, "      \"events\": {},", r.events);
        let _ = writeln!(s, "      \"events_per_sec\": {:.0},", r.events_per_sec);
        let _ = writeln!(s, "      \"speedup\": {:.3},", r.speedup);
        let _ = writeln!(s, "      \"rounds\": {},", r.rounds);
        let _ = writeln!(s, "      \"boundary_messages\": {},", r.boundary_messages);
        let _ = writeln!(s, "      \"idle_shard_rounds\": {},", r.idle_shard_rounds);
        let _ = writeln!(s, "      \"imbalance\": {:.4},", r.imbalance);
        let _ = writeln!(s, "      \"cut_fraction\": {:.4},", r.cut_fraction);
        let _ = writeln!(s, "      \"identical\": {}", r.identical);
        s.push_str(if k + 1 < report.rows.len() {
            "    },\n"
        } else {
            "    }\n"
        });
    }
    s.push_str("  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_is_identical_and_conserved() {
        let cfg = ScaleConfig::quick();
        let report = scale_rows(&cfg);
        assert_eq!(report.rows.len(), cfg.shard_counts.len());
        check_identity(&report).unwrap();
        assert!(report.offered > 0);
        assert!(report.delivered > 0);
        for r in &report.rows {
            assert!(r.identical, "shards={}", r.shards);
            assert!(r.events > 0 && r.rounds > 0);
            assert!(r.wall_ms > 0.0 && r.events_per_sec > 0.0);
            assert!(r.imbalance >= 1.0 || r.events == 0, "shards={}", r.shards);
            assert!((0.0..=1.0).contains(&r.cut_fraction));
        }
        // Single shard crosses no boundaries and cuts no edges.
        let single = report.rows.iter().find(|r| r.shards == 1).unwrap();
        assert_eq!(single.boundary_messages, 0);
        assert_eq!(single.cut_fraction, 0.0);
        assert!((single.speedup - 1.0).abs() < 1e-9);
        // Sharded runs pay for the partition in boundary traffic.
        let sharded = report.rows.iter().find(|r| r.shards == 4).unwrap();
        assert!(sharded.boundary_messages > 0);
        assert!(sharded.cut_fraction > 0.0);
    }

    #[test]
    fn json_and_table_render_every_row() {
        let cfg = ScaleConfig::quick();
        let report = scale_rows(&cfg);
        let json = scale_json(&cfg, &report, true);
        assert!(json.contains("\"events_per_sec\""));
        assert!(json.contains("\"idle_shard_rounds\""));
        assert!(json.contains("\"identical\": true"));
        assert_eq!(json.matches("\"shards\":").count(), cfg.shard_counts.len());
        let table = format_scale(&report);
        assert_eq!(table.lines().count(), 1 + cfg.shard_counts.len());
        assert!(table.contains("speedup"));
    }

    #[test]
    fn speedup_gate_reports_honestly() {
        let mut report = ScaleReport {
            cores: 8,
            offered: 10,
            delivered: 10,
            udg_edges: 5,
            rows: vec![ScaleRow {
                shards: 4,
                threads: 4,
                wall_ms: 1.0,
                events: 10,
                events_per_sec: 1e4,
                speedup: 2.5,
                rounds: 3,
                boundary_messages: 1,
                idle_shard_rounds: 0,
                imbalance: 1.0,
                cut_fraction: 0.1,
                identical: true,
            }],
        };
        assert!(check_speedup(&report).is_ok());
        report.rows[0].speedup = 1.1;
        let err = check_speedup(&report).unwrap_err();
        assert!(err.contains("1.10x"), "{err}");
        report.rows[0].identical = false;
        assert!(check_identity(&report).is_err());
    }
}
