//! Benchmark baseline for the optimized construction pipeline.
//!
//! One group per pipeline stage, each parameterized over deployment size
//! at the paper's constant density (side `200·√(n/100)`, radius 60):
//!
//! * `udg_build` — unit disk graph construction from points,
//! * `ldel1` — the parallel local-triangulation stage,
//! * `planarized` — `LDel¹` plus the grid-indexed planarization,
//! * `crossing_count` — the grid-indexed crossing diagnostic,
//! * `cds_election` — clustering + gateway selection,
//! * `stretch` — all-pairs stretch measurement (smallest size only),
//! * `seed_baseline` — the frozen seed pipeline for the same instances,
//!   so a plain `cargo bench` prints the before/after comparison that
//!   `results/BENCH_pipeline.json` persists.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use geospan_bench::baseline::{seed_ldel1, seed_planarize};
use geospan_bench::udg_of;
use geospan_cds::{build_cds, ClusterRank};
use geospan_graph::gen::connected_unit_disk;
use geospan_graph::planarity::crossing_count;
use geospan_graph::stretch::{stretch_factors, StretchOptions};
use geospan_graph::{Graph, Point};
use geospan_topology::ldel;

const SIZES: [usize; 2] = [200, 1000];
const RADIUS: f64 = 60.0;

fn instance(n: usize) -> (Vec<Point>, Graph) {
    let side = 200.0 * ((n as f64) / 100.0).sqrt();
    let (pts, udg, _seed) = connected_unit_disk(n, side, RADIUS, 1);
    (pts, udg)
}

fn pipeline_stages(c: &mut Criterion) {
    let mut g = c.benchmark_group("pipeline");
    g.sample_size(10);
    for n in SIZES {
        let (pts, udg) = instance(n);
        g.bench_with_input(BenchmarkId::new("udg_build", n), &pts, |b, pts| {
            b.iter(|| black_box(udg_of(pts, RADIUS)))
        });
        g.bench_with_input(BenchmarkId::new("ldel1", n), &udg, |b, udg| {
            b.iter(|| black_box(ldel::ldel1(udg)))
        });
        g.bench_with_input(BenchmarkId::new("planarized", n), &udg, |b, udg| {
            b.iter(|| black_box(ldel::planarized(udg)))
        });
        g.bench_with_input(BenchmarkId::new("crossing_count", n), &udg, |b, udg| {
            b.iter(|| black_box(crossing_count(udg)))
        });
        g.bench_with_input(BenchmarkId::new("cds_election", n), &udg, |b, udg| {
            b.iter(|| black_box(build_cds(udg, &ClusterRank::LowestId)))
        });
    }
    // All-pairs stretch is quadratic in n; one size keeps the suite fast.
    let (_pts, udg) = instance(SIZES[0]);
    let pl = ldel::planarized(&udg);
    g.bench_function(BenchmarkId::new("stretch", SIZES[0]), |b| {
        b.iter(|| black_box(stretch_factors(&udg, &pl.graph, StretchOptions::default())))
    });
    g.finish();
}

fn seed_baseline(c: &mut Criterion) {
    let mut g = c.benchmark_group("seed_baseline");
    g.sample_size(10);
    for n in SIZES {
        let (_pts, udg) = instance(n);
        g.bench_with_input(BenchmarkId::new("ldel1", n), &udg, |b, udg| {
            b.iter(|| black_box(seed_ldel1(udg)))
        });
        g.bench_with_input(BenchmarkId::new("planarized", n), &udg, |b, udg| {
            b.iter(|| black_box(seed_planarize(udg, seed_ldel1(udg))))
        });
    }
    g.finish();
}

criterion_group!(benches, pipeline_stages, seed_baseline);
criterion_main!(benches);
