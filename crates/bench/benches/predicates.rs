//! Micro-benchmarks of the exact geometric predicates and the Delaunay
//! triangulation — the `O(d log d)` local computation every node performs
//! in the paper's Algorithm 2.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use geospan_geometry::{gabriel_test, incircle, orient2d, Point, Triangulation};
use geospan_graph::gen::uniform_points;

fn predicates(c: &mut Criterion) {
    let pts = uniform_points(4096, 1000.0, 11);
    let quads: Vec<[Point; 4]> = pts
        .chunks_exact(4)
        .map(|q| [q[0], q[1], q[2], q[3]])
        .collect();

    let mut g = c.benchmark_group("predicates");
    g.bench_function("orient2d_random", |b| {
        b.iter(|| {
            for q in &quads {
                black_box(orient2d(q[0], q[1], q[2]));
            }
        })
    });
    g.bench_function("orient2d_degenerate", |b| {
        // Collinear triples force the exact expansion fallback.
        let a = Point::new(0.1, 0.1);
        let steps: Vec<Point> = (1..1024)
            .map(|i| Point::new(0.1 + i as f64 * 0.2, 0.1 + i as f64 * 0.2))
            .collect();
        b.iter(|| {
            for w in steps.windows(2) {
                black_box(orient2d(a, w[0], w[1]));
            }
        })
    });
    g.bench_function("incircle_random", |b| {
        b.iter(|| {
            for q in &quads {
                black_box(incircle(q[0], q[1], q[2], q[3]));
            }
        })
    });
    g.bench_function("gabriel_test", |b| {
        b.iter(|| {
            for q in &quads {
                black_box(gabriel_test(q[0], q[1], q[2]));
            }
        })
    });
    g.finish();

    // The per-node local computation: Delaunay of a 1-hop neighborhood.
    let mut g = c.benchmark_group("local_delaunay");
    for d in [8usize, 32, 128] {
        let hood = uniform_points(d + 1, 60.0, d as u64);
        g.bench_with_input(BenchmarkId::new("del_n1", d), &hood, |b, hood| {
            b.iter(|| black_box(Triangulation::build(hood).unwrap()))
        });
    }
    g.finish();
}

criterion_group!(benches, predicates);
criterion_main!(benches);
