//! Routing-cost benchmarks: the workloads the backbone exists to serve.
//!
//! Groups:
//! * `greedy` — pure greedy forwarding on the UDG,
//! * `gpsr` — greedy + perimeter on the planar Gabriel graph and on the
//!   planar backbone `LDel(ICDS)`,
//! * `backbone` — the paper's dominating-set-based routing end to end,
//! * `shortest_path` — the Dijkstra/BFS yardsticks used by the stretch
//!   measurements.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use geospan_core::routing::{backbone_route, gpsr_route, greedy_route};
use geospan_core::{BackboneBuilder, BackboneConfig};
use geospan_graph::gen::connected_unit_disk;
use geospan_graph::paths::{bfs_hops, dijkstra_lengths};
use geospan_topology::gabriel;

fn routing(c: &mut Criterion) {
    let (_pts, udg, _seed) = connected_unit_disk(100, 200.0, 60.0, 7);
    let gg = gabriel(&udg);
    let backbone = BackboneBuilder::new(BackboneConfig::new(60.0))
        .build(&udg)
        .unwrap();
    let n = udg.node_count();
    let pairs: Vec<(usize, usize)> = (0..n)
        .step_by(7)
        .flat_map(|s| (0..n).step_by(13).map(move |t| (s, t)))
        .filter(|(s, t)| s != t)
        .collect();

    let mut g = c.benchmark_group("routing");
    g.bench_function("greedy_udg", |b| {
        b.iter(|| {
            for &(s, t) in &pairs {
                black_box(greedy_route(&udg, s, t, 10 * n));
            }
        })
    });
    g.bench_function("gpsr_gabriel", |b| {
        b.iter(|| {
            for &(s, t) in &pairs {
                black_box(gpsr_route(&gg, s, t, 50 * n));
            }
        })
    });
    g.bench_function("gpsr_ldel_icds", |b| {
        let nodes = backbone.backbone_nodes();
        b.iter(|| {
            for (&s, &t) in nodes.iter().zip(nodes.iter().rev()) {
                black_box(gpsr_route(backbone.ldel_icds(), s, t, 50 * n));
            }
        })
    });
    g.bench_function("backbone_route", |b| {
        b.iter(|| {
            for &(s, t) in &pairs {
                black_box(backbone_route(&backbone, &udg, s, t, 50 * n));
            }
        })
    });
    g.finish();

    let mut g = c.benchmark_group("shortest_path");
    g.bench_function("dijkstra_all_sources", |b| {
        b.iter(|| {
            for s in 0..n {
                black_box(dijkstra_lengths(&udg, s));
            }
        })
    });
    g.bench_function("bfs_all_sources", |b| {
        b.iter(|| {
            for s in 0..n {
                black_box(bfs_hops(&udg, s));
            }
        })
    });
    g.finish();
}

criterion_group!(benches, routing);
criterion_main!(benches);
