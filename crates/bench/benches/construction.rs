//! Construction-cost benchmarks, one group per experiment pipeline:
//!
//! * `table1` — building each of the Table I topologies at the paper's
//!   configuration (n = 100, R = 60),
//! * `fig8_fig9` — the centralized backbone pipeline across the node
//!   counts of the density sweeps,
//! * `fig10` — the distributed (message-passing) construction whose
//!   communication costs Figure 10 reports,
//! * `fig11_fig12` — the n = 500 radius-sweep pipeline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use geospan_bench::udg_of;
use geospan_cds::{build_cds, ClusterRank};
use geospan_core::{BackboneBuilder, BackboneConfig};
use geospan_graph::gen::connected_unit_disk;
use geospan_topology::{delaunay, gabriel, ldel, relative_neighborhood, yao};

fn table1_constructions(c: &mut Criterion) {
    let (pts, udg, _seed) = connected_unit_disk(100, 200.0, 60.0, 1);
    let mut g = c.benchmark_group("table1");
    g.bench_function("udg", |b| b.iter(|| black_box(udg_of(&pts, 60.0))));
    g.bench_function("rng", |b| b.iter(|| black_box(relative_neighborhood(&udg))));
    g.bench_function("gabriel", |b| b.iter(|| black_box(gabriel(&udg))));
    g.bench_function("yao6", |b| b.iter(|| black_box(yao(&udg, 6))));
    g.bench_function("delaunay", |b| b.iter(|| black_box(delaunay(&udg))));
    g.bench_function("ldel_planarized", |b| {
        b.iter(|| black_box(ldel::planarized(&udg)))
    });
    g.bench_function("cds_family", |b| {
        b.iter(|| black_box(build_cds(&udg, &ClusterRank::LowestId)))
    });
    g.bench_function("full_backbone", |b| {
        let builder = BackboneBuilder::new(BackboneConfig::new(60.0));
        b.iter(|| black_box(builder.build(&udg).unwrap()))
    });
    g.finish();
}

fn density_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8_fig9");
    for n in [20usize, 60, 100] {
        let (_pts, udg, _seed) = connected_unit_disk(n, 200.0, 60.0, 2);
        let builder = BackboneBuilder::new(BackboneConfig::new(60.0));
        g.bench_with_input(BenchmarkId::new("backbone", n), &udg, |b, udg| {
            b.iter(|| black_box(builder.build(udg).unwrap()))
        });
    }
    g.finish();
}

fn distributed_construction(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig10");
    g.sample_size(20);
    for n in [40usize, 100] {
        let (_pts, udg, _seed) = connected_unit_disk(n, 200.0, 60.0, 3);
        let builder = BackboneBuilder::new(BackboneConfig::new(60.0).distributed());
        g.bench_with_input(BenchmarkId::new("protocol", n), &udg, |b, udg| {
            b.iter(|| black_box(builder.build(udg).unwrap()))
        });
    }
    g.finish();
}

fn radius_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig11_fig12");
    g.sample_size(10);
    for radius in [20.0f64, 40.0, 60.0] {
        let (_pts, udg, _seed) = connected_unit_disk(500, 200.0, radius, 4);
        let builder = BackboneBuilder::new(BackboneConfig::new(radius));
        g.bench_with_input(
            BenchmarkId::new("backbone_n500", radius as u64),
            &udg,
            |b, udg| b.iter(|| black_box(builder.build(udg).unwrap())),
        );
    }
    g.finish();
}

criterion_group!(
    benches,
    table1_constructions,
    density_sweep,
    distributed_construction,
    radius_sweep
);
criterion_main!(benches);
