//! The traffic sweep artifact must be byte-identical for a given seed —
//! across consecutive runs and across every thread count. Cells run in
//! parallel, but the fold into rows is serial and index-ordered, so the
//! CSV cannot depend on scheduling.

use geospan_bench::traffic::{traffic_csv, traffic_rows, SweepConfig};

fn sweep_csv() -> String {
    let mut cfg = SweepConfig::quick();
    cfg.scenario.n = 30;
    cfg.scenario.side = 110.0;
    cfg.duration = 300;
    traffic_csv(&traffic_rows(&cfg))
}

/// One test owns every `RAYON_NUM_THREADS` mutation in this binary
/// (tests share the process environment).
#[test]
fn traffic_csv_is_bit_identical_across_thread_counts_and_runs() {
    std::env::set_var("RAYON_NUM_THREADS", "1");
    let serial = sweep_csv();
    let serial_again = sweep_csv();
    std::env::set_var("RAYON_NUM_THREADS", "4");
    let four = sweep_csv();
    std::env::remove_var("RAYON_NUM_THREADS");
    let auto = sweep_csv();

    assert_eq!(serial, serial_again, "consecutive runs differ");
    assert_eq!(serial, four, "1 vs 4 threads");
    assert_eq!(serial, auto, "1 vs auto threads");
}
