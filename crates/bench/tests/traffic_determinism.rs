//! The traffic sweep artifacts must be byte-identical for a given seed —
//! across consecutive runs and across every thread count. Cells run in
//! parallel, but the fold into rows is serial and index-ordered, so the
//! CSVs cannot depend on scheduling.

use geospan_bench::traffic::{
    reliability_csv, reliability_rows, saturation_csv, saturation_rows, traffic_csv, traffic_rows,
    ReliabilitySweepConfig, SaturationSweepConfig, SweepConfig,
};

fn sweep_csv() -> String {
    let mut cfg = SweepConfig::quick();
    cfg.scenario.n = 30;
    cfg.scenario.side = 110.0;
    cfg.duration = 300;
    traffic_csv(&traffic_rows(&cfg))
}

/// The reliability sweep exercises the hotspot/bursty workloads, all
/// three queue disciplines, and the retransmit path — the scheduling
/// surface PR 4 added on top of the load sweep.
fn reliability_sweep_csv() -> String {
    let mut cfg = ReliabilitySweepConfig::quick();
    cfg.scenario.n = 30;
    cfg.scenario.side = 110.0;
    cfg.duration = 300;
    reliability_csv(&reliability_rows(&cfg))
}

/// The saturation sweep exercises the overload layer — watermark
/// retry-shedding, inflated backoff, and token-bucket admission — whose
/// decisions are all node-local and must not leak scheduling either.
fn saturation_sweep_csv() -> String {
    let mut cfg = SaturationSweepConfig::quick();
    cfg.scenario.n = 30;
    cfg.scenario.side = 110.0;
    cfg.duration = 300;
    cfg.loads = vec![0.4, 3.2];
    saturation_csv(&saturation_rows(&cfg))
}

/// One test owns every `RAYON_NUM_THREADS` mutation in this binary
/// (tests share the process environment).
#[test]
fn traffic_csvs_are_bit_identical_across_thread_counts_and_runs() {
    std::env::set_var("RAYON_NUM_THREADS", "1");
    let serial = sweep_csv();
    let serial_again = sweep_csv();
    let rel_serial = reliability_sweep_csv();
    let rel_serial_again = reliability_sweep_csv();
    let sat_serial = saturation_sweep_csv();
    let sat_serial_again = saturation_sweep_csv();
    std::env::set_var("RAYON_NUM_THREADS", "4");
    let four = sweep_csv();
    let rel_four = reliability_sweep_csv();
    let sat_four = saturation_sweep_csv();
    std::env::remove_var("RAYON_NUM_THREADS");
    let auto = sweep_csv();
    let rel_auto = reliability_sweep_csv();
    let sat_auto = saturation_sweep_csv();

    assert_eq!(serial, serial_again, "consecutive runs differ");
    assert_eq!(serial, four, "1 vs 4 threads");
    assert_eq!(serial, auto, "1 vs auto threads");

    assert_eq!(
        rel_serial, rel_serial_again,
        "consecutive reliability runs differ"
    );
    assert_eq!(rel_serial, rel_four, "reliability: 1 vs 4 threads");
    assert_eq!(rel_serial, rel_auto, "reliability: 1 vs auto threads");

    assert_eq!(
        sat_serial, sat_serial_again,
        "consecutive saturation runs differ"
    );
    assert_eq!(sat_serial, sat_four, "saturation: 1 vs 4 threads");
    assert_eq!(sat_serial, sat_auto, "saturation: 1 vs auto threads");
}
